"""The continuous canary: corpus, drift gates, invariants, CLI.

The expensive fixtures (a recorded corpus, a fresh matrix) are
module-scoped; everything here runs at quick budgets so the whole file
stays in tier-1 territory.
"""

import gzip
import json
import os

import pytest

from repro.canary import (
    CHECK_DRIFT,
    CHECK_OK,
    CHECK_UNREADABLE,
    CellMetrics,
    CorpusError,
    DriftGates,
    MatrixSpec,
    canary_check,
    cell_metrics,
    cell_name,
    check_cell,
    diff_populations,
    load_corpus,
    record_corpus,
    render_check,
    render_drift,
    run_invariants,
)
from repro.canary.corpus import CorpusCell, canonical_journal_bytes
from repro.cli import main

QUICK_SPEC = MatrixSpec(subsystems=("F", "H"), seeds=(1, 2), budget_hours=0.5)

#: The corpus committed to the repository (the acceptance surface).
COMMITTED_CORPUS = os.path.join(
    os.path.dirname(__file__), "..", "..", "canary", "corpus"
)


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """A small recorded corpus shared by the read-only tests."""
    corpus = tmp_path_factory.mktemp("canary") / "corpus"
    record_corpus(QUICK_SPEC, corpus)
    return corpus


class TestMatrixSpec:
    def test_cells_enumerate_in_deterministic_order(self):
        assert QUICK_SPEC.cells() == [
            ("F", 1), ("F", 2), ("H", 1), ("H", 2)
        ]

    def test_roundtrips_through_dict(self):
        assert MatrixSpec.from_dict(QUICK_SPEC.to_dict()) == QUICK_SPEC

    def test_rejects_empty_or_invalid(self):
        with pytest.raises(ValueError):
            MatrixSpec(subsystems=())
        with pytest.raises(ValueError):
            MatrixSpec(seeds=())
        with pytest.raises(ValueError):
            MatrixSpec(budget_hours=0)
        with pytest.raises(ValueError):
            MatrixSpec(counter_mode="bogus")

    def test_cell_name_is_the_file_stem(self):
        assert cell_name("F", 3) == "F-s3"


class TestCorpus:
    def test_record_then_load_roundtrips(self, corpus_dir):
        manifest, cells = load_corpus(corpus_dir)
        assert MatrixSpec.from_dict(manifest["spec"]) == QUICK_SPEC
        assert [c.name for c in cells] == ["F-s1", "F-s2", "H-s1", "H-s2"]
        for cell in cells:
            assert cell.records[0]["t"] == "run_start"
            assert cell.records[-1]["t"] == "run_end"

    def test_re_record_is_byte_identical(self, corpus_dir, tmp_path):
        """Determinism: the corpus is a pure function of the code."""
        other = tmp_path / "again"
        record_corpus(QUICK_SPEC, other)
        for name in sorted(os.listdir(corpus_dir)):
            with open(corpus_dir / name, "rb") as a, \
                    open(other / name, "rb") as b:
                assert a.read() == b.read(), name

    def test_missing_manifest_raises_corpus_error(self, tmp_path):
        with pytest.raises(CorpusError, match="no corpus manifest"):
            load_corpus(tmp_path)

    def test_tampered_cell_fails_integrity(self, corpus_dir, tmp_path):
        copy = tmp_path / "tampered"
        copy.mkdir()
        for name in os.listdir(corpus_dir):
            (copy / name).write_bytes((corpus_dir / name).read_bytes())
        victim = copy / "F-s1.jsonl.gz"
        records = [
            json.loads(line)
            for line in gzip.open(victim, "rt").read().splitlines()
        ]
        records[-1]["anomalies"] = 99
        with open(victim, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb") as handle:
                handle.write(canonical_journal_bytes(records))
        with pytest.raises(CorpusError, match="integrity"):
            load_corpus(copy)

    def test_missing_cell_raises(self, corpus_dir, tmp_path):
        copy = tmp_path / "holey"
        copy.mkdir()
        for name in os.listdir(corpus_dir):
            if name != "H-s2.jsonl.gz":
                (copy / name).write_bytes((corpus_dir / name).read_bytes())
        with pytest.raises(CorpusError, match="H-s2 is missing"):
            load_corpus(copy)


def _cell(subsystem="F", seed=1, anomalies=3, ttfa=100.0, coverage=0.9,
          shapes=("pause frame|i2|m1|x0",) * 3, sizes=(3, 3, 3)):
    return CellMetrics(
        subsystem=subsystem, seed=seed, anomalies=anomalies,
        time_to_first_anomaly_seconds=ttfa, coverage_fraction=coverage,
        experiments=80, mfs_shapes=tuple(sorted(shapes)),
        mfs_condition_sizes=tuple(sorted(sizes)),
    )


class TestDriftGates:
    def test_identical_populations_are_clean(self):
        base = [_cell(seed=s, ttfa=50.0 * s) for s in (1, 2, 3)]
        report = diff_populations(base, base)
        assert report.ok
        assert "no drift" in render_drift(report)

    def test_median_shift_gates_and_names_culprit(self):
        base = [_cell(seed=s, anomalies=4) for s in (1, 2, 3)]
        fresh = [
            _cell(seed=1, anomalies=4),
            _cell(seed=2, anomalies=4),
            _cell(seed=3, anomalies=1),  # drags the median to 4 -> ok...
        ]
        # median unchanged (4,4,1 -> median 4): no median finding, but
        # the spread gate sees the inflation.
        report = diff_populations(base, fresh)
        assert not report.ok
        finding = report.findings[0]
        assert finding.subsystem == "F"
        assert finding.seed == 3
        fresh_shifted = [_cell(seed=s, anomalies=2) for s in (1, 2, 3)]
        report = diff_populations(base, fresh_shifted)
        assert any(f.metric == "anomalies" for f in report.findings)

    def test_improvement_also_gates(self):
        """Drift is change, not regression: better numbers still gate."""
        base = [_cell(seed=s, anomalies=2) for s in (1, 2, 3)]
        fresh = [_cell(seed=s, anomalies=4) for s in (1, 2, 3)]
        report = diff_populations(base, fresh)
        assert any(f.metric == "anomalies" for f in report.findings)

    def test_missing_ttfa_counts_gate(self):
        base = [_cell(seed=s) for s in (1, 2, 3)]
        fresh = [
            _cell(seed=1),
            _cell(seed=2),
            _cell(seed=3, ttfa=None),  # this seed stopped finding anything
        ]
        report = diff_populations(base, fresh)
        findings = [
            f for f in report.findings
            if f.metric == "time_to_first_anomaly_seconds"
        ]
        assert findings and findings[0].seed == 3

    def test_shape_multiset_change_gates(self):
        base = [_cell(seed=s) for s in (1, 2, 3)]
        fresh = [
            _cell(seed=1),
            _cell(seed=2),
            _cell(seed=3, shapes=("low throughput|i1|m0|x1",) * 3),
        ]
        report = diff_populations(base, fresh)
        shape_findings = [
            f for f in report.findings if f.metric == "mfs_shapes"
        ]
        assert shape_findings
        assert shape_findings[0].seed == 3
        assert "low throughput|i1|m0|x1" in shape_findings[0].detail

    def test_population_size_mismatch_gates(self):
        base = [_cell(subsystem="F", seed=1)]
        fresh = [_cell(subsystem="H", seed=1)]
        report = diff_populations(base, fresh)
        assert {f.subsystem for f in report.findings} == {"F", "H"}

    def test_tolerance_admits_small_shifts(self):
        base = [_cell(seed=s, coverage=0.90) for s in (1, 2, 3)]
        fresh = [_cell(seed=s, coverage=0.93) for s in (1, 2, 3)]
        assert diff_populations(base, fresh).ok
        gates = DriftGates(median_tolerance=0.01)
        assert not diff_populations(base, fresh, gates=gates).ok


class TestInvariants:
    def test_recorded_corpus_passes(self, corpus_dir):
        _, cells = load_corpus(corpus_dir)
        assert run_invariants(cells) == []

    def test_schema_violation_is_caught(self, corpus_dir):
        _, cells = load_corpus(corpus_dir)
        records = [dict(r) for r in cells[0].records]
        records[0]["v"] = 99
        broken = CorpusCell(
            name=cells[0].name, subsystem=cells[0].subsystem,
            seed=cells[0].seed, records=records,
        )
        kinds = {v.kind for v in check_cell(broken)}
        assert "schema" in kinds

    def test_unsound_mfs_is_caught(self, corpus_dir):
        _, cells = load_corpus(corpus_dir)
        cell = next(
            c for c in cells
            if any(r.get("t") == "anomaly" for r in c.records)
        )
        records = []
        for record in cell.records:
            record = json.loads(json.dumps(record))
            if record.get("t") == "anomaly":
                record["mfs"]["intervals"].append(
                    {"dimension": "num_qps", "low": 64.0, "high": 8.0}
                )
            records.append(record)
        broken = CorpusCell(
            name=cell.name, subsystem=cell.subsystem, seed=cell.seed,
            records=records,
        )
        violations = check_cell(broken)
        assert any(
            v.kind == "mfs-soundness" and "low 64 > high 8" in v.detail
            for v in violations
        )

    def test_out_of_ladder_bound_is_caught(self, corpus_dir):
        _, cells = load_corpus(corpus_dir)
        cell = next(
            c for c in cells
            if any(r.get("t") == "anomaly" for r in c.records)
        )
        records = []
        for record in cell.records:
            record = json.loads(json.dumps(record))
            if record.get("t") == "anomaly":
                record["mfs"]["intervals"] = [
                    {"dimension": "mtu", "low": None, "high": 1 << 30}
                ]
            records.append(record)
        broken = CorpusCell(
            name=cell.name, subsystem=cell.subsystem, seed=cell.seed,
            records=records,
        )
        assert any(
            "outside ladder" in v.detail for v in check_cell(broken)
        )

    def test_non_reproducing_anomaly_is_caught(self, corpus_dir):
        """A symptom the witness cannot re-trigger fails reproduction."""
        _, cells = load_corpus(corpus_dir)
        cell = next(
            c for c in cells
            if any(r.get("t") == "anomaly" for r in c.records)
        )
        records = []
        for record in cell.records:
            record = json.loads(json.dumps(record))
            if record.get("t") == "anomaly":
                record["mfs"]["symptom"] = "low throughput"
            records.append(record)
        broken = CorpusCell(
            name=cell.name, subsystem=cell.subsystem, seed=cell.seed,
            records=records,
        )
        assert any(
            v.kind == "reproduction" for v in check_cell(broken)
        )


class TestCanaryCheck:
    def test_unmodified_code_is_clean(self, corpus_dir, tmp_path):
        result = canary_check(corpus_dir, tmp_path / "fresh")
        assert result.exit_code == CHECK_OK
        assert result.violations == []
        assert result.drift.ok
        assert "verdict: OK" in render_check(result)

    def test_committed_corpus_is_clean_at_head(self, tmp_path):
        """ACCEPTANCE: `canary check` against the repo's own corpus.

        If this fails, either the search core's behaviour changed (fix
        it or intentionally re-record with `repro canary record`) or a
        hard invariant broke (always a bug).
        """
        result = canary_check(COMMITTED_CORPUS, tmp_path / "fresh")
        assert result.exit_code == CHECK_OK, render_check(result)

    def test_missing_corpus_exits_two(self, tmp_path):
        result = canary_check(tmp_path / "nope", tmp_path / "fresh")
        assert result.exit_code == CHECK_UNREADABLE
        assert "unreadable" in render_check(result)

    def test_clean_corpus_has_no_skip_notes(self, corpus_dir, tmp_path):
        result = canary_check(
            corpus_dir, tmp_path / "fresh", skip_invariants=True
        )
        assert result.skipped_kinds == []

    def test_future_record_kinds_surfaced_not_silently_dropped(
        self, corpus_dir, tmp_path
    ):
        """A corpus written by a *newer* schema (extra record kinds) is
        still checkable: the unknown kinds are named in the verdict, and
        the drift gates compare only what both builds understand."""
        import hashlib
        import shutil

        from repro.canary.corpus import _write_gz

        doctored = tmp_path / "corpus"
        shutil.copytree(corpus_dir, doctored)
        cell_file = "F-s1.jsonl.gz"
        with gzip.open(doctored / cell_file) as handle:
            data = handle.read()
        data += b'{"t":"telemetry_v9","payload":1}\n'
        data += b'{"t":"telemetry_v9","payload":2}\n'
        _write_gz(str(doctored / cell_file), data)
        manifest_path = doctored / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        records = [json.loads(line) for line in data.splitlines()]
        manifest["cells"]["F-s1"]["sha256"] = hashlib.sha256(
            canonical_journal_bytes(records)
        ).hexdigest()
        manifest_path.write_text(json.dumps(manifest))

        result = canary_check(
            doctored, tmp_path / "fresh", skip_invariants=True
        )
        assert result.exit_code == CHECK_OK
        note = "unknown record kind skipped: telemetry_v9 (n=2)"
        assert any(note in line for line in result.skipped_kinds)
        assert any("F-s1" in line for line in result.skipped_kinds)
        assert note in render_check(result)

    def test_acceptance_rule_change_trips_the_gate(
        self, tmp_path, monkeypatch
    ):
        """ACCEPTANCE: a perturbed SA acceptance rule is detected.

        Forcing the Metropolis probability to zero turns SA into greedy
        descent — a behavioural change in the search core that single
        runs might shrug off, but the seed population statistics catch.
        """
        import repro.core.annealing as annealing

        spec = MatrixSpec(subsystems=("E",), seeds=(1, 2, 3),
                          budget_hours=1.0)
        corpus = tmp_path / "corpus"
        record_corpus(spec, corpus)
        monkeypatch.setattr(annealing.math, "exp", lambda _: 0.0)
        result = canary_check(
            corpus, tmp_path / "fresh", skip_invariants=True
        )
        assert result.exit_code == CHECK_DRIFT
        finding = result.drift.findings[0]
        assert finding.subsystem == "E"
        assert finding.metric
        assert finding.seed in (1, 2, 3)
        rendered = render_check(result)
        assert "DRIFT" in rendered and "culprit" in rendered


class TestCanaryCLI:
    def test_record_then_check_roundtrip(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        code = main([
            "canary", "record", "--corpus", str(corpus),
            "--subsystems", "F", "--seeds", "2", "--hours", "0.5",
        ])
        assert code == 0
        assert "corpus recorded" in capsys.readouterr().out
        code = main(["canary", "check", "--corpus", str(corpus)])
        assert code == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_check_keeps_fresh_dir_artifacts(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main([
            "canary", "record", "--corpus", str(corpus),
            "--subsystems", "F", "--seeds", "1", "--hours", "0.5",
        ]) == 0
        fresh = tmp_path / "fresh"
        assert main([
            "canary", "check", "--corpus", str(corpus),
            "--fresh-dir", str(fresh), "--skip-invariants",
        ]) == 0
        assert sorted(os.listdir(fresh)) == ["F-s1.jsonl"]

    def test_check_missing_corpus_exits_two(self, tmp_path, capsys):
        code = main([
            "canary", "check", "--corpus", str(tmp_path / "nope"),
        ])
        assert code == 2
        assert "unreadable" in capsys.readouterr().out

    def test_record_rejects_unknown_subsystem(self, tmp_path, capsys):
        code = main([
            "canary", "record", "--corpus", str(tmp_path / "c"),
            "--subsystems", "FZ",
        ])
        assert code == 2
        assert "unknown subsystem" in capsys.readouterr().err
