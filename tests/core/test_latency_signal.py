"""The tail-latency signal end to end: bit-identity and anomaly class.

Three contracts from the latency tentpole:

1. **Disabled mode is the old tool.**  With ``latency=False`` a search
   journal is bit-identical to one recorded by the pre-latency code —
   pinned against the committed ``tests/obs/fixtures/v3.jsonl`` (real
   pre-latency run of subsystem F, 1.0h, seed 1).
2. **Enabled mode only adds the stream.**  While no latency-inflation
   verdict fires, an enabled run's journal differs from a disabled
   run's only by the ``latency`` records and the L-tags they document —
   the search trajectory (workloads, counters, symptoms, times) is
   untouched.
3. **The signal finds what throughput cannot.**  Subsystems F and H
   harbour latency quirks (L1/L2) whose witnesses run at full wire rate
   with zero pauses: only the latency trigger flags them, the MFS is
   sound (reproducer round-trip), and the journal names the quirk.
"""

import json
import os

import numpy as np
import pytest

from repro.core import Collie
from repro.core.monitor import AnomalyMonitor
from repro.core.reproducer import reproduce_mfs
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.obs import FlightRecorder, RunJournal

FIXTURE = os.path.join(
    os.path.dirname(__file__), "..", "obs", "fixtures", "v3.jsonl"
)

LATENCY_INFLATION = "latency inflation"


def _journal_records(tmp_path, filename, letter, **collie_kwargs):
    path = tmp_path / filename
    recorder = FlightRecorder(journal=RunJournal(path))
    try:
        report = Collie.for_subsystem(
            letter, recorder=recorder, **collie_kwargs
        ).run()
    finally:
        recorder.close()
    with open(path) as handle:
        return report, [json.loads(line) for line in handle]


def _canonical(records):
    """Strip what legitimately differs across versions and machines.

    The ``v`` stamp moves with the schema; wall-clock histograms are
    real elapsed time (zeroed in the committed fixture); simulated-time
    histograms keep every moment but drop p50/p90/p99, which the
    percentile-interpolation fix changed deliberately (the regression
    test in tests/obs/test_metrics.py pins the new values).  Verdict
    tallies (``monitor.verdicts{...}``) are dropped too: the fixture
    predates the classify-dedup change, which counts one classification
    per measurement instead of re-classifying on the anomaly path — the
    search trajectory itself is still compared record for record.
    """
    out = []
    for record in records:
        record = {k: v for k, v in record.items() if k != "v"}
        if isinstance(record.get("metrics"), dict):
            metrics = json.loads(json.dumps(record["metrics"]))
            metrics["counters"] = {
                name: value
                for name, value in metrics.get("counters", {}).items()
                if not name.startswith("monitor.verdicts")
            }
            for name, histogram in metrics.get("histograms", {}).items():
                if "wall" in name:
                    metrics["histograms"][name] = {
                        "count": histogram.get("count")
                    }
                else:
                    for quantile in ("p50", "p90", "p99"):
                        histogram.pop(quantile, None)
            record = {**record, "metrics": metrics}
        out.append(record)
    return out


def _strip_latency_stream(records):
    """Drop latency records, L-tags and latency metrics — the only three
    places an enabled run is allowed to differ from a disabled one."""
    out = []
    for record in records:
        if record.get("t") == "latency":
            continue
        if record.get("t") == "experiment":
            record = {
                **record,
                "tags": [
                    tag for tag in record["tags"]
                    if not (tag.startswith("L") and tag[1:].isdigit())
                ],
            }
        if isinstance(record.get("metrics"), dict):
            metrics = json.loads(json.dumps(record["metrics"]))
            for family in ("counters", "histograms"):
                metrics[family] = {
                    name: value
                    for name, value in metrics.get(family, {}).items()
                    if "latency" not in name
                }
            record = {**record, "metrics": metrics}
        out.append(record)
    return out


class TestDisabledModeBitIdentity:
    def test_disabled_run_matches_pre_latency_fixture(self, tmp_path):
        """latency=False reproduces the pre-PR journal byte for byte
        (modulo schema stamp and the canonicalisation documented on
        :func:`_canonical`)."""
        _, records = _journal_records(
            tmp_path, "f.jsonl", "F",
            budget_hours=1.0, seed=1, latency=False,
        )
        with open(FIXTURE) as handle:
            fixture = [json.loads(line) for line in handle]
        assert all(r["v"] == 3 for r in fixture)
        assert _canonical(records) == _canonical(fixture)

    @pytest.mark.parametrize("letter", list("ABCDEFGH"))
    def test_enabled_adds_only_the_latency_stream(self, letter, tmp_path):
        """Same seed, latency on vs off: identical searches while no
        latency verdict fires (the quick budget stays under the L-rule
        regions on every subsystem)."""
        _, enabled = _journal_records(
            tmp_path, "on.jsonl", letter,
            budget_hours=0.5, seed=3, latency=True,
        )
        _, disabled = _journal_records(
            tmp_path, "off.jsonl", letter,
            budget_hours=0.5, seed=3, latency=False,
        )
        verdicts = {
            r["symptom"] for r in enabled if r.get("t") == "experiment"
        }
        if LATENCY_INFLATION in verdicts:
            # The trigger fired: the trajectories legitimately diverge
            # (extra MFS extraction, skipped regions) — nothing to pin.
            pytest.skip(f"{letter}: latency verdict fired at quick budget")
        assert any(r.get("t") == "latency" for r in enabled)
        assert not any(r.get("t") == "latency" for r in disabled)
        # _canonical flattens wall-clock histograms (real elapsed time,
        # never comparable across two processes); everything simulated
        # must match record for record.
        assert _canonical(_strip_latency_stream(enabled)) \
            == _canonical(disabled)


class TestBatchScalarLatencyIdentity:
    @pytest.mark.parametrize("letter", list("ABCDEFGH"))
    def test_latency_columns_bit_identical(self, letter):
        """evaluate_many attaches the exact LatencyProfile the scalar
        path derives — same floats, same components, same tags."""
        from repro.core.batcheval import BatchEvaluator
        from repro.core.space import SearchSpace

        subsystem = get_subsystem(letter)
        space = SearchSpace.for_subsystem(subsystem)
        sample_rng = np.random.default_rng(77)
        points = [space.random(sample_rng) for _ in range(12)]
        points += points[:4]  # exact duplicates, the dedup path

        scalar_rng = np.random.default_rng(5)
        scalar = [
            SteadyStateModel(subsystem).evaluate(p, scalar_rng)
            for p in points
        ]
        batched_rng = np.random.default_rng(5)
        batched = BatchEvaluator(SteadyStateModel(subsystem)).evaluate_many(
            points, rng=batched_rng
        )
        for a, b in zip(scalar, batched):
            assert a.latency is not None
            assert a.latency == b.latency
            assert a.latency.summary() == b.latency.summary()


@pytest.mark.parametrize(
    "letter,seed,expected_tag",
    [("F", 2, "L1"), ("H", 1, "L2")],
)
class TestLatencyAnomalyAcceptance:
    """The acceptance-criterion anomaly: invisible to throughput+PFC."""

    def _search(self, tmp_path, letter, seed):
        return _journal_records(
            tmp_path, "run.jsonl", letter,
            budget_hours=10.0, seed=seed, latency=True,
        )

    def test_latency_mfs_found_sound_and_journaled(
        self, tmp_path, letter, seed, expected_tag
    ):
        report, records = self._search(tmp_path, letter, seed)
        latency_mfs = [
            mfs for mfs in report.anomalies
            if mfs.symptom == LATENCY_INFLATION
        ]
        assert latency_mfs, "search never extracted a latency MFS"

        subsystem = get_subsystem(letter)
        for mfs in latency_mfs:
            result = reproduce_mfs(mfs, subsystem)
            assert result.reproduced
            assert LATENCY_INFLATION in result.observed_symptoms

        tagged = [
            r for r in records
            if r.get("t") == "latency" and expected_tag in r.get("tags", ())
        ]
        assert tagged, f"journal never named quirk {expected_tag}"
        assert any(r["inflation"] > 4.0 for r in tagged)

    def test_throughput_and_pfc_stay_blind(
        self, tmp_path, letter, seed, expected_tag
    ):
        """The witness saturates the wire with zero pauses: the paper's
        two symptoms call it healthy, only the latency trigger fires."""
        report, _ = self._search(tmp_path, letter, seed)
        subsystem = get_subsystem(letter)
        model = SteadyStateModel(subsystem, noise=0.0)
        witnesses = [
            mfs.witness for mfs in report.anomalies
            if mfs.symptom == LATENCY_INFLATION
        ]
        assert witnesses
        for witness in witnesses:
            measurement = model.evaluate(
                witness, np.random.default_rng(0)
            )
            blind = AnomalyMonitor(subsystem, latency=False).classify(
                measurement
            )
            assert blind.symptom == "healthy"
            seeing = AnomalyMonitor(subsystem).classify(measurement)
            assert seeing.symptom == LATENCY_INFLATION
            assert seeing.latency_inflation > 4.0
            assert expected_tag in measurement.latency.tags
            # Blind-healthy already certifies wire rate and pauses: the
            # workload clears the throughput bound and the PFC threshold.
            assert seeing.pause_ratio == blind.pause_ratio
