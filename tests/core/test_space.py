"""The search space: sampling, mutation, coercion invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.space import (
    CATEGORICAL_DIMENSIONS,
    MAX_QPS,
    MAX_TOTAL_MRS,
    ORDERED_DIMENSIONS,
    SearchSpace,
)
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import SGLayout, WorkloadDescriptor
from repro.verbs.constants import SUPPORTED_OPCODES, Opcode, QPType


@pytest.fixture
def space():
    return SearchSpace.for_subsystem(get_subsystem("F"))


class TestConstruction:
    def test_for_subsystem_picks_up_devices_and_pattern_length(self, space):
        assert space.memory_devices == ("numa0", "numa1", "gpu0")
        assert space.pattern_length == 8

    def test_restriction_kwargs(self):
        restricted = SearchSpace.for_subsystem(
            "B", qp_types=(QPType.RC,), opcodes=(Opcode.WRITE,)
        )
        assert restricted.qp_types == (QPType.RC,)
        assert restricted.opcodes == (Opcode.WRITE,)

    def test_space_is_large(self, space):
        """The paper puts the space around 10^36; ours is coarser but
        still far beyond exhaustive search."""
        assert space.log10_size() > 12

    def test_choice_accessors(self, space):
        assert space.ordered_choices("num_qps")[-1] <= MAX_QPS
        assert QPType.RC in space.categorical_choices("qp_type")
        with pytest.raises(KeyError):
            space.ordered_choices("qp_type")
        with pytest.raises(KeyError):
            space.categorical_choices("num_qps")


class TestRandomSampling:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_every_sample_is_valid(self, seed):
        """Sampling + coercion always yields a constructible workload
        satisfying the verbs couplings (constructor raises otherwise)."""
        space = SearchSpace.for_subsystem(get_subsystem("F"))
        workload = space.random(np.random.default_rng(seed))
        assert workload.opcode in SUPPORTED_OPCODES[workload.qp_type]
        assert workload.total_mrs <= MAX_TOTAL_MRS
        assert workload.num_qps <= MAX_QPS
        assert len(workload.msg_sizes_bytes) == space.pattern_length
        if workload.qp_type is QPType.UD:
            assert workload.max_msg_bytes <= workload.mtu
        if workload.sge_per_wqe == 1:
            assert workload.sg_layout is SGLayout.EVEN

    def test_samples_cover_transports(self, space, rng):
        seen = {space.random(rng).qp_type for _ in range(100)}
        assert seen == {QPType.RC, QPType.UC, QPType.UD}

    def test_restricted_space_respects_restriction(self, rng):
        restricted = SearchSpace.for_subsystem("F", qp_types=(QPType.RC,))
        for _ in range(50):
            assert restricted.random(rng).qp_type is QPType.RC


class TestMutation:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_mutants_stay_valid(self, seed):
        space = SearchSpace.for_subsystem(get_subsystem("F"))
        rng = np.random.default_rng(seed)
        workload = space.random(rng)
        for _ in range(10):
            workload = space.mutate(workload, rng)
            assert workload.opcode in SUPPORTED_OPCODES[workload.qp_type]
            assert workload.total_mrs <= MAX_TOTAL_MRS

    def test_mutation_changes_few_dimensions(self, space, rng):
        from repro.core.space import PATTERN_DIMENSION  # noqa: F401

        workload = space.random(rng)
        for _ in range(30):
            mutant = space.mutate(workload, rng)
            differing = sum(
                1
                for dim in ORDERED_DIMENSIONS + CATEGORICAL_DIMENSIONS
                if getattr(mutant, dim) != getattr(workload, dim)
            )
            pattern_changed = (
                mutant.msg_sizes_bytes != workload.msg_sizes_bytes
            )
            # one or two mutated dims, plus possible coercion fix-ups
            assert differing + (1 if pattern_changed else 0) <= 4

    def test_mutation_eventually_moves_every_dimension(self, space, rng):
        workload = space.random(rng)
        moved = set()
        current = workload
        for _ in range(500):
            mutant = space.mutate(current, rng)
            for dim in ORDERED_DIMENSIONS + CATEGORICAL_DIMENSIONS:
                if getattr(mutant, dim) != getattr(current, dim):
                    moved.add(dim)
            if mutant.msg_sizes_bytes != current.msg_sizes_bytes:
                moved.add("msg_pattern")
            current = mutant
        assert len(moved) >= 12


class TestWithValue:
    def test_sets_ordered_dimension(self, space, rng):
        workload = space.random(rng)
        probe = space.with_value(workload, "num_qps", 4096)
        assert probe.num_qps == 4096

    def test_sets_pattern(self, space, rng):
        workload = space.random(rng)
        pattern = (2048,) * space.pattern_length
        probe = space.with_value(workload, "msg_pattern", pattern)
        if probe.qp_type is not QPType.UD or probe.mtu >= 2048:
            assert probe.msg_sizes_bytes == pattern

    def test_coercion_can_roll_back_invalid_values(self, space, rng):
        base = space.with_value(
            space.random(rng), "qp_type", QPType.UD
        )
        probe = space.with_value(base, "opcode", Opcode.READ)
        assert probe.opcode is Opcode.SEND  # UD cannot READ


class TestCoercion:
    def test_mr_budget_steps_down(self, space):
        raw = space._to_raw(WorkloadDescriptor())
        raw["num_qps"] = 16384
        raw["mrs_per_qp"] = 1024  # 16M MRs: way over the 200K budget
        workload = space.coerce(raw)
        assert workload.total_mrs <= MAX_TOTAL_MRS

    def test_ud_messages_clipped_to_mtu(self, space):
        raw = space._to_raw(WorkloadDescriptor())
        raw["qp_type"] = QPType.UD
        raw["opcode"] = Opcode.SEND
        raw["mtu"] = 512
        raw["msg_sizes_bytes"] = (4096, 100, 512)
        workload = space.coerce(raw)
        assert workload.msg_sizes_bytes == (512, 100, 512)
