"""MFS extraction against synthetic (fast, deterministic) oracles."""

import pytest

from repro.core.mfs import (
    IntervalCondition,
    MembershipCondition,
    MFSExtractor,
    MinimalFeatureSet,
    _triggering_run_bounds,
    match_any,
)
from repro.core.space import SearchSpace
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import Colocation, WorkloadDescriptor
from repro.verbs.constants import Opcode, QPType


@pytest.fixture
def space():
    return SearchSpace.for_subsystem(get_subsystem("F"))


def oracle(predicate):
    """Symptom oracle from a boolean predicate over workloads."""

    def classify(workload):
        return "pause frame" if predicate(workload) else "healthy"

    return classify


class TestConditions:
    def test_interval_matching(self):
        cond = IntervalCondition("num_qps", low=16, high=256)
        assert cond.matches(16) and cond.matches(256)
        assert not cond.matches(15) and not cond.matches(257)

    def test_open_ended_intervals(self):
        assert IntervalCondition("x", low=None, high=5).matches(-1e9)
        assert IntervalCondition("x", low=5, high=None).matches(1e9)

    def test_membership_matching(self):
        cond = MembershipCondition("qp_type", ("RC", "UC"))
        assert cond.matches("RC")
        assert not cond.matches("UD")

    def test_describe_strings(self):
        assert "num_qps >= 16" == IntervalCondition("num_qps", 16, None).describe()
        assert "qp_type in {RC}" == MembershipCondition("qp_type",
                                                        ("RC",)).describe()


class TestMatching:
    def test_mfs_matches_its_region(self):
        mfs = MinimalFeatureSet(
            symptom="pause frame",
            witness=WorkloadDescriptor(),
            memberships=(MembershipCondition("qp_type", ("RC",)),),
            intervals=(IntervalCondition("num_qps", 100, None),),
        )
        assert mfs.matches(WorkloadDescriptor(num_qps=128))
        assert not mfs.matches(WorkloadDescriptor(num_qps=8))
        assert not mfs.matches(
            WorkloadDescriptor(qp_type=QPType.UC, opcode=Opcode.WRITE,
                               num_qps=128)
        )

    def test_mix_requirement(self):
        mfs = MinimalFeatureSet(
            symptom="pause frame",
            witness=WorkloadDescriptor(),
            requires_mix=True,
        )
        assert mfs.matches(
            WorkloadDescriptor(msg_sizes_bytes=(128, 65536))
        )
        assert not mfs.matches(WorkloadDescriptor(msg_sizes_bytes=(128,)))

    def test_match_any_returns_first_hit(self):
        narrow = MinimalFeatureSet(
            symptom="s", witness=WorkloadDescriptor(),
            intervals=(IntervalCondition("num_qps", 1000, None),),
        )
        wide = MinimalFeatureSet(
            symptom="s", witness=WorkloadDescriptor(),
            intervals=(IntervalCondition("num_qps", 1, None),),
        )
        assert match_any([narrow, wide], WorkloadDescriptor(num_qps=8)) is wide
        assert match_any([narrow], WorkloadDescriptor(num_qps=8)) is None


class TestRunBounds:
    def test_bounds_only_from_tested_triggering_values(self):
        ladder = [1, 2, 8, 32, 128]
        # tested: 1 (fail), 8 (pass), 32=origin (pass); 2 untested.
        results = {0: False, 2: True, 3: True}
        low, high = _triggering_run_bounds(ladder, results, origin_index=3)
        assert low == 8  # never 2: it was not probed
        assert high == 32  # index 4 untested: stay conservative

    def test_unbounded_when_everything_triggers(self):
        assert _triggering_run_bounds([1, 2, 3], {0: True, 1: True, 2: True},
                                      1) == (None, None)

    def test_high_bound_from_failing_probe(self):
        ladder = [1, 2, 4, 8]
        results = {0: True, 1: True, 2: False, 3: False}
        low, high = _triggering_run_bounds(ladder, results, origin_index=0)
        assert low is None
        assert high == 2


class TestExtraction:
    def test_single_categorical_condition(self, space):
        classify = oracle(lambda w: w.colocation is Colocation.MIXED_LOOPBACK)
        extractor = MFSExtractor(space, classify)
        witness = WorkloadDescriptor(colocation=Colocation.MIXED_LOOPBACK)
        mfs = extractor.construct(witness, "pause frame")
        assert mfs is not None
        assert any(
            c.dimension == "colocation" and c.allowed == ("mixed_loopback",)
            for c in mfs.memberships
        )
        # No spurious interval conditions on unrelated dimensions.
        assert not any(c.dimension == "num_qps" for c in mfs.intervals)

    def test_threshold_interval_condition(self, space):
        classify = oracle(lambda w: w.num_qps >= 512)
        extractor = MFSExtractor(space, classify)
        mfs = extractor.construct(
            WorkloadDescriptor(num_qps=2048), "pause frame"
        )
        conds = {c.dimension: c for c in mfs.intervals}
        assert "num_qps" in conds
        assert conds["num_qps"].low == 512
        assert conds["num_qps"].high is None
        # The MFS must never cover healthy space (soundness).
        assert not mfs.matches(WorkloadDescriptor(num_qps=256))

    def test_conjunction_extraction(self, space):
        classify = oracle(
            lambda w: w.qp_type is QPType.UD and w.wq_depth >= 1024
        )
        witness = WorkloadDescriptor(
            qp_type=QPType.UD, opcode=Opcode.SEND, mtu=1024,
            wq_depth=2048, msg_sizes_bytes=(512,),
        )
        mfs = MFSExtractor(space, classify).construct(witness, "pause frame")
        assert mfs.matches(witness)
        assert not mfs.matches(witness.replace(wq_depth=128))

    def test_soundness_on_product_constraint(self, space):
        """Axis-aligned boxes must under- not over-approximate a
        product-shaped trigger region (the A7 total-MRs shape)."""
        classify = oracle(lambda w: w.total_mrs >= 12288)
        witness = WorkloadDescriptor(num_qps=512, mrs_per_qp=128)
        mfs = MFSExtractor(space, classify).construct(witness, "pause frame")
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(300):
            probe = space.random(rng)
            if mfs.matches(probe):
                assert probe.total_mrs >= 12288

    def test_reduction_isolates_one_anomaly(self, space):
        """A witness straddling two anomalies reduces into exactly one."""
        classify = oracle(
            lambda w: (
                w.colocation is Colocation.MIXED_LOOPBACK
                or w.num_qps >= 8192
            )
        )
        witness = WorkloadDescriptor(
            colocation=Colocation.MIXED_LOOPBACK, num_qps=16384
        )
        extractor = MFSExtractor(space, classify)
        mfs = extractor.construct(witness, "pause frame")
        assert mfs is not None
        # The reduced witness must sit in a single region; the MFS then
        # has exactly one necessary condition, not a vacuous union.
        assert mfs.conditions >= 1

    def test_refind_returns_none_when_known_covers_reduction(self, space):
        classify = oracle(lambda w: w.num_qps >= 512)
        extractor = MFSExtractor(space, classify)
        first = extractor.construct(
            WorkloadDescriptor(num_qps=2048), "pause frame"
        )
        second = extractor.construct(
            WorkloadDescriptor(num_qps=16384, wqe_batch=64),
            "pause frame",
            known=[first],
        )
        assert second is None

    def test_degenerate_extraction_pins_transport(self, space):
        """If every probe triggers (pathological oracle), the fallback
        pins the witness's transport identity instead of matching all."""
        classify = oracle(lambda w: True)
        mfs = MFSExtractor(space, classify).construct(
            WorkloadDescriptor(), "pause frame", reduce=False
        )
        assert mfs.conditions >= 1

    def test_mix_requirement_detected(self, space):
        classify = oracle(lambda w: w.mixes_small_and_large)
        witness = WorkloadDescriptor(
            msg_sizes_bytes=(128, 65536, 128, 128)
        )
        mfs = MFSExtractor(space, classify).construct(witness, "pause frame")
        assert mfs.requires_mix
        assert not mfs.matches(witness.replace(msg_sizes_bytes=(128,)))

    def test_probe_budget_is_bounded(self, space):
        classify = oracle(lambda w: w.num_qps >= 512)
        extractor = MFSExtractor(space, classify, probes_per_dimension=2)
        extractor.construct(WorkloadDescriptor(num_qps=2048), "pause frame")
        assert extractor.experiments < 120

    def test_validation(self, space):
        with pytest.raises(ValueError):
            MFSExtractor(space, oracle(lambda w: True),
                         probes_per_dimension=1)
