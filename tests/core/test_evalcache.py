"""Memoized experiment evaluation: bit-identity, keys, persistence."""

import dataclasses
import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evalcache import (
    FORMAT_VERSION,
    EvalCache,
    canonical_point,
    describe_stats,
    subsystem_fingerprint,
)
from repro.core.space import SearchSpace
from repro.hardware.features import extract_features
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem

LETTERS = "ABCDEFGH"

letters = st.sampled_from(LETTERS)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_point(letter, seed):
    space = SearchSpace.for_subsystem(get_subsystem(letter))
    return space.random(np.random.default_rng(seed))


class TestBitIdentity:
    """Caching must be observably transparent, noise included."""

    @given(letter=letters, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_cached_evaluation_bit_identical(self, letter, seed):
        subsystem = get_subsystem(letter)
        workload = random_point(letter, seed)
        cache = EvalCache()
        plain = SteadyStateModel(subsystem).evaluate(
            workload, np.random.default_rng(seed)
        )
        miss = SteadyStateModel(subsystem, cache=cache).evaluate(
            workload, np.random.default_rng(seed)
        )
        hit = SteadyStateModel(subsystem, cache=cache).evaluate(
            workload, np.random.default_rng(seed)
        )
        for via_cache in (miss, hit):
            assert via_cache.counters == plain.counters
            assert via_cache.pause_ratio == plain.pause_ratio
            assert via_cache.directions == plain.directions
            assert via_cache.fired == plain.fired
            assert via_cache.features == plain.features
            assert via_cache.samples == plain.samples
        assert cache.hits == 1 and cache.misses == 1

    @given(letter=letters, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_noise_still_follows_the_rng(self, letter, seed):
        """A hit consumes the caller's RNG exactly like a miss would."""
        subsystem = get_subsystem(letter)
        workload = random_point(letter, seed)
        cache = EvalCache()
        model = SteadyStateModel(subsystem, cache=cache)
        rng = np.random.default_rng(seed)
        first = model.evaluate(workload, rng)
        second = model.evaluate(workload, rng)  # hit, fresh noise draws
        plain_rng = np.random.default_rng(seed)
        plain_model = SteadyStateModel(subsystem)
        assert plain_model.evaluate(workload, plain_rng).counters \
            == first.counters
        assert plain_model.evaluate(workload, plain_rng).counters \
            == second.counters


class TestKeys:
    @given(letter=letters, seed_a=seeds, seed_b=seeds)
    @settings(max_examples=40, deadline=None)
    def test_no_collision_across_feature_vectors(self, letter, seed_a, seed_b):
        """Different feature vectors can never share a cache key."""
        subsystem = get_subsystem(letter)
        point_a = random_point(letter, seed_a)
        point_b = random_point(letter, seed_b)
        if extract_features(point_a, subsystem) != extract_features(
            point_b, subsystem
        ):
            assert canonical_point(point_a) != canonical_point(point_b)

    @given(letter=letters, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_identical_points_share_a_key(self, letter, seed):
        point = random_point(letter, seed)
        clone = dataclasses.replace(point)
        assert canonical_point(point) == canonical_point(clone)

    def test_duty_cycle_distinguishes_points(self):
        point = random_point("F", 7)
        shifted = dataclasses.replace(point, duty_cycle=0.125)
        assert canonical_point(point) != canonical_point(shifted)

    def test_fingerprint_tracks_content_not_name(self):
        """Same Table 1 letter, different config → different entries."""
        original = get_subsystem("A")
        modified = dataclasses.replace(original, rnic=get_subsystem("B").rnic)
        assert modified.name == original.name
        assert subsystem_fingerprint(modified) != subsystem_fingerprint(
            original
        )

    def test_fingerprints_unique_across_table1(self):
        prints = {subsystem_fingerprint(get_subsystem(x)) for x in LETTERS}
        assert len(prints) == len(LETTERS)


class TestDiskStore:
    def test_round_trip_serves_hits(self, tmp_path):
        subsystem = get_subsystem("H")
        path = str(tmp_path / "cache.json")
        cache = EvalCache(path=path)
        model = SteadyStateModel(subsystem, cache=cache)
        points = [random_point("H", seed) for seed in range(5)]
        for point in points:
            model.evaluate(point, np.random.default_rng(0))
        cache.save()

        warm = EvalCache(path=path)
        assert warm.loaded_entries == len(points)
        warm_model = SteadyStateModel(subsystem, cache=warm)
        for seed, point in enumerate(points):
            fresh = SteadyStateModel(subsystem).evaluate(
                point, np.random.default_rng(seed)
            )
            served = warm_model.evaluate(point, np.random.default_rng(seed))
            assert served.counters == fresh.counters
        assert warm.hits == len(points) and warm.misses == 0

    def test_stale_rule_tags_drop_the_entry(self, tmp_path):
        subsystem = get_subsystem("H")
        path = str(tmp_path / "cache.json")
        cache = EvalCache(path=path)
        point = random_point("H", 3)
        SteadyStateModel(subsystem, cache=cache).evaluate(
            point, np.random.default_rng(0)
        )
        cache.save()

        payload = json.loads((tmp_path / "cache.json").read_text())
        for entry in payload["entries"].values():
            entry["fired"] = [{"tag": "GONE-AFTER-FIX", "factor": 1.0}]
        (tmp_path / "cache.json").write_text(json.dumps(payload))

        warm = EvalCache(path=path)
        assert warm.lookup(subsystem, point) is None  # dropped, not replayed
        served = SteadyStateModel(subsystem, cache=warm).evaluate(
            point, np.random.default_rng(0)
        )
        fresh = SteadyStateModel(subsystem).evaluate(
            point, np.random.default_rng(0)
        )
        assert served.counters == fresh.counters

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps(
            {"format_version": FORMAT_VERSION + 1, "entries": {}}
        ))
        with pytest.raises(ValueError, match="unsupported cache format"):
            EvalCache(path=str(path))

    def test_load_stats_reads_persisted_statistics(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = EvalCache(path=path)
        SteadyStateModel(get_subsystem("H"), cache=cache).evaluate(
            random_point("H", 1), np.random.default_rng(0), phase="probe"
        )
        cache.save()
        stats = EvalCache.load_stats(path)
        assert stats["misses"] == 1
        assert "probe" in stats["phases"]
        assert "probe" in describe_stats(stats)


class TestTransportAndStats:
    def test_import_keeps_existing_entries(self):
        subsystem = get_subsystem("F")
        point = random_point("F", 1)
        donor = EvalCache()
        SteadyStateModel(subsystem, cache=donor).evaluate(
            point, np.random.default_rng(0)
        )
        receiver = EvalCache()
        solve = SteadyStateModel(subsystem, cache=receiver).evaluate(
            point, np.random.default_rng(0)
        )
        added = receiver.import_entries(donor.export_entries())
        assert added == 0  # existing key wins
        again = SteadyStateModel(subsystem, cache=receiver).evaluate(
            point, np.random.default_rng(0)
        )
        assert again.counters == solve.counters

    def test_merge_stats_accumulates_phases(self):
        cache = EvalCache()
        cache.merge_stats(
            {"phases": {"mfs": {"hits": 3, "misses": 1, "seconds": 0.5}}}
        )
        cache.merge_stats(
            {"phases": {"mfs": {"hits": 1, "misses": 1, "seconds": 0.25}}}
        )
        phases = cache.phase_stats()
        assert phases["mfs"].hits == 4
        assert phases["mfs"].misses == 2
        assert phases["mfs"].seconds == pytest.approx(0.75)
        assert phases["mfs"].hit_rate == pytest.approx(4 / 6)

    def test_snapshot_scopes_a_subphase(self):
        subsystem = get_subsystem("F")
        cache = EvalCache()
        model = SteadyStateModel(subsystem, cache=cache)
        model.evaluate(random_point("F", 1), np.random.default_rng(0))
        before = cache.snapshot()
        model.evaluate(random_point("F", 1), np.random.default_rng(0))
        hits, misses = cache.snapshot()
        assert (hits - before[0], misses - before[1]) == (1, 0)

    def test_timed_charges_the_phase(self):
        cache = EvalCache()
        with cache.timed("rank"):
            pass
        assert cache.phase_stats()["rank"].seconds >= 0.0
        assert "rank" in cache.describe()

    def test_thread_safety_under_concurrent_evaluation(self):
        subsystem = get_subsystem("F")
        cache = EvalCache()
        points = [random_point("F", seed) for seed in range(8)]

        def worker(offset):
            model = SteadyStateModel(subsystem, cache=cache)
            for point in points[offset::2] + points:
                model.evaluate(point, np.random.default_rng(0))

        threads = [threading.Thread(target=worker, args=(k,)) for k in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == len(points)
        assert cache.hits + cache.misses == 3 * len(points)
