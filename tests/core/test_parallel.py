"""The parallel-fleet extension (§8)."""

import pytest

from repro.core.parallel import ParallelCollie, ParallelReport


class TestConfiguration:
    def test_machine_count_validation(self):
        with pytest.raises(ValueError):
            ParallelCollie("F", machines=0)

    def test_partition_is_round_robin_and_covers_all(self):
        fleet = ParallelCollie("F", machines=3)
        ranked = ["a", "b", "c", "d", "e"]
        shares = fleet._partition(ranked)
        assert shares == [("a", "d"), ("b", "e"), ("c",)]
        assert sorted(sum(shares, ())) == sorted(ranked)

    def test_more_machines_than_counters(self):
        fleet = ParallelCollie("F", machines=5)
        shares = fleet._partition(["a", "b"])
        assert shares == [("a",), ("b",)]  # idle machines dropped


@pytest.fixture(scope="module")
def small_fleet():
    return ParallelCollie("H", machines=2, budget_hours=1.5, seed=3).run()


class TestRun:
    def test_one_report_per_busy_machine(self, small_fleet):
        assert 1 <= len(small_fleet.reports) <= 2
        assert small_fleet.machines == 2

    def test_machines_search_disjoint_counters(self, small_fleet):
        rankings = [set(r.counter_ranking) for r in small_fleet.reports]
        for i, a in enumerate(rankings):
            for b in rankings[i + 1:]:
                assert not a & b

    def test_wall_clock_is_concurrent_not_additive(self, small_fleet):
        assert small_fleet.elapsed_seconds <= 1.5 * 3600 + 60
        assert small_fleet.total_experiments > max(
            r.experiments for r in small_fleet.reports
        )

    def test_merged_hits_take_earliest_time(self, small_fleet):
        merged = small_fleet.first_hit_times()
        for tag, seconds in merged.items():
            per_machine = [
                r.first_hit_times()[tag]
                for r in small_fleet.reports
                if tag in r.first_hit_times()
            ]
            assert seconds == min(per_machine)

    def test_finds_anomalies(self, small_fleet):
        assert len(small_fleet.found_tags()) >= 2

    def test_events_merged_chronologically(self, small_fleet):
        times = [e.time_seconds for e in small_fleet.events()]
        assert times == sorted(times)


class TestScaling:
    def test_fleet_beats_single_machine(self):
        """The §8 claim: a fleet with per-machine counter shares finds
        more of the table in the same wall-clock budget."""
        single = ParallelCollie("F", machines=1, budget_hours=4.0, seed=5).run()
        fleet = ParallelCollie("F", machines=9, budget_hours=4.0, seed=5).run()
        assert len(fleet.found_tags()) >= len(single.found_tags())
        assert fleet.elapsed_seconds <= 4.0 * 3600 + 60
