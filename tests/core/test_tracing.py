"""Traffic tracing: functional slices on the predicted timeline."""

import pytest

from repro.core.tracing import TrafficTracer
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import Opcode, QPType
from repro.workloads.appendix import setting


@pytest.fixture(scope="module")
def tracer():
    return TrafficTracer("F")


class TestTrace:
    def test_rejects_non_positive_message_count(self, tracer):
        with pytest.raises(ValueError):
            tracer.trace(WorkloadDescriptor(), messages=0)

    def test_every_message_posts_delivers_completes(self, tracer):
        log = tracer.trace(WorkloadDescriptor(), messages=8)
        assert len(log.events_of("post")) == 8
        assert len(log.events_of("deliver")) == 8
        assert len(log.events_of("complete")) == 8  # sender CQEs (WRITE)

    def test_send_traffic_completes_on_both_sides(self, tracer):
        workload = WorkloadDescriptor(
            opcode=Opcode.SEND, msg_sizes_bytes=(1024,), mtu=1024
        )
        log = tracer.trace(workload, messages=6)
        assert len(log.events_of("complete")) == 12  # sender + receiver

    def test_timeline_is_monotone_and_rate_spaced(self, tracer):
        log = tracer.trace(WorkloadDescriptor(), messages=5)
        posts = [r.time_us for r in log.events_of("post")]
        assert posts == sorted(posts)
        spacing = posts[1] - posts[0]
        assert spacing == pytest.approx(
            1e6 / log.predicted_msgs_per_sec, rel=0.01
        )

    def test_anomalous_workload_traces_slower(self, tracer):
        healthy = tracer.trace(WorkloadDescriptor(mtu=4096), messages=4)
        anomalous = tracer.trace(setting(3).workload, messages=4)
        assert (
            anomalous.predicted_msgs_per_sec
            < healthy.predicted_msgs_per_sec
        )

    def test_ud_workload_traces(self, tracer):
        log = tracer.trace(setting(1).workload, messages=6)
        statuses = {r.detail for r in log.events_of("complete")}
        assert statuses == {"SUCCESS"}

    def test_mixed_sg_layout_traces(self, tracer):
        log = tracer.trace(setting(9).workload, messages=4)
        assert any("3-entry SG" in r.detail for r in log.events_of("post"))

    def test_render_is_bounded(self, tracer):
        log = tracer.trace(WorkloadDescriptor(), messages=30)
        text = log.render(limit=10)
        assert "more records" in text
        assert text.count("\n") < 20


class TestRenderPaths:
    def test_record_render_carries_every_field(self, tracer):
        log = tracer.trace(WorkloadDescriptor(), messages=1)
        record = log.events_of("post")[0]
        text = record.render()
        assert "us]" in text
        assert f"qp{record.qp_index}" in text
        assert "post" in text
        assert f"wr={record.wr_id}" in text
        assert f"{record.nbytes:>8}B" in text
        assert record.detail in text

    def test_render_without_limit_shows_everything(self, tracer):
        log = tracer.trace(WorkloadDescriptor(), messages=30)
        text = log.render(limit=None)
        assert "more records" not in text
        # Header (2 lines) + every record on its own line.
        assert text.count("\n") == 1 + len(log.records)

    def test_render_exact_limit_has_no_ellipsis(self, tracer):
        log = tracer.trace(WorkloadDescriptor(), messages=4)
        text = log.render(limit=len(log.records))
        assert "more records" not in text

    def test_render_header_names_workload_and_subsystem(self, tracer):
        log = tracer.trace(WorkloadDescriptor(), messages=1)
        text = log.render()
        assert "trace of" in text
        assert "on subsystem F" in text
        assert "msgs/s" in text

    def test_events_of_unknown_kind_is_empty(self, tracer):
        log = tracer.trace(WorkloadDescriptor(), messages=2)
        assert log.events_of("retransmit") == []
