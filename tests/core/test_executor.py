"""CampaignExecutor: ordering, stats, serial/pooled equivalence."""

import pytest

from repro.core.executor import CampaignExecutor, ExecutorStats
from repro.core.faults import RetryPolicy
from repro.obs import MetricsRegistry


def square(payload):
    return payload * payload


def unpicklable_result(payload):
    return lambda: payload  # closures cannot cross the process boundary


def _require_pool() -> None:
    """Skip (at run time — never fork during collection) without a pool."""
    executor = CampaignExecutor(workers=2)
    executor.map(square, [1, 2])
    if executor.last_stats.fell_back_serial:
        pytest.skip("no process pool in this sandbox")


def describe_payload(payload):
    return {"seed": payload["seed"], "value": payload["seed"] * 10}


def boom(payload):
    raise RuntimeError(f"task {payload} failed")


class TestSerial:
    def test_results_in_payload_order(self):
        executor = CampaignExecutor(workers=1)
        assert executor.map(square, [3, 1, 2]) == [9, 1, 4]

    def test_stats_recorded(self):
        executor = CampaignExecutor(workers=1)
        executor.map(square, [1, 2, 3])
        stats = executor.last_stats
        assert stats.tasks == 3
        assert stats.workers == 1
        assert not stats.fell_back_serial
        assert stats.wall_seconds >= stats.busy_seconds >= 0.0

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            CampaignExecutor(workers=0)

    def test_empty_payloads(self):
        executor = CampaignExecutor(workers=4)
        assert executor.map(square, []) == []
        assert executor.last_stats.tasks == 0

    def test_single_payload_skips_the_pool(self):
        executor = CampaignExecutor(workers=4)
        assert executor.map(square, [5]) == [25]
        assert executor.last_stats.workers == 1


class TestPooled:
    def test_matches_serial_results_in_order(self):
        payloads = [{"seed": seed} for seed in range(7)]
        serial = CampaignExecutor(workers=1).map(describe_payload, payloads)
        pooled = CampaignExecutor(workers=4).map(describe_payload, payloads)
        assert pooled == serial

    def test_pool_stats(self):
        executor = CampaignExecutor(workers=3)
        executor.map(square, list(range(6)))
        stats = executor.last_stats
        assert stats.tasks == 6
        assert stats.workers == 3
        assert stats.wall_seconds > 0.0

    def test_worker_exception_propagates(self):
        executor = CampaignExecutor(workers=2)
        with pytest.raises(RuntimeError, match="failed"):
            executor.map(boom, [1, 2])


class TestEdgeCases:
    def test_zero_tasks(self):
        executor = CampaignExecutor(workers=4, metrics=MetricsRegistry())
        assert executor.map(square, []) == []
        stats = executor.last_stats
        assert stats.tasks == 0
        assert stats.workers == 1  # clamped floor, not zero

    def test_zero_tasks_with_retry_policy(self):
        executor = CampaignExecutor(workers=4, retry=RetryPolicy())
        assert executor.map(square, []) == []
        assert executor.last_stats.retries == 0

    def test_more_workers_than_tasks(self):
        executor = CampaignExecutor(workers=8)
        assert executor.map(square, [1, 2, 3]) == [1, 4, 9]
        assert executor.last_stats.workers == 3

    def test_more_workers_than_tasks_resilient(self):
        executor = CampaignExecutor(workers=8, retry=RetryPolicy())
        assert executor.map(square, [1, 2, 3]) == [1, 4, 9]
        stats = executor.last_stats
        assert stats.workers == 3
        assert stats.retries == 0

    def test_worker_raising_during_result_pickling(self):
        _require_pool()
        executor = CampaignExecutor(workers=2)
        with pytest.raises(Exception, match="(?i)pickle"):
            executor.map(unpicklable_result, [1, 2])

    def test_pickling_failure_is_fatal_not_retried(self):
        _require_pool()
        metrics = MetricsRegistry()
        executor = CampaignExecutor(
            workers=2, retry=RetryPolicy(max_retries=3), metrics=metrics
        )
        with pytest.raises(Exception, match="(?i)pickle"):
            executor.map(unpicklable_result, [1, 2])
        assert metrics.counters_with_prefix("faults.") == {}


class TestStatsSurface:
    def test_speedup_guarded_against_zero_wall(self):
        stats = ExecutorStats(workers=2, tasks=4)
        assert stats.speedup == 1.0
        stats.wall_seconds, stats.busy_seconds = 2.0, 6.0
        assert stats.speedup == pytest.approx(3.0)

    def test_describe_mentions_mode(self):
        stats = ExecutorStats(workers=4, tasks=8, wall_seconds=1.0,
                              busy_seconds=3.0)
        assert "4 workers" in stats.describe()
        assert "3.00x" in stats.describe()
        fallback = ExecutorStats(workers=4, tasks=8, fell_back_serial=True)
        assert "serial (fallback)" in fallback.describe()
        serial = ExecutorStats(workers=1, tasks=2, wall_seconds=0.1,
                               busy_seconds=0.1)
        assert "serial" in serial.describe()
