"""Deterministic fault injection and the resilient executor.

The chaos suite: seeded :class:`FaultPlan`\\ s drive crashes, hangs,
transient errors and slow hosts through the campaign stack, and every
test pins the two contract halves — the campaign *completes* despite
the faults, and its results are *bit-identical* to a fault-free run
with a retry/quarantine trajectory that matches the plan exactly.
"""

import numpy as np
import pytest

from repro.analysis.campaign import run_campaign
from repro.cluster.testbed import Testbed
from repro.core.executor import CampaignExecutor
from repro.core.faults import (
    FAILING_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyTestbed,
    RetryPolicy,
    TaskFailed,
    TaskHang,
    TaskTimeout,
    TransientEvalError,
    WorkerCrash,
    raise_fault,
)
from repro.core.space import SearchSpace
from repro.obs import (
    SCHEMA_VERSION,
    FlightRecorder,
    MetricsRegistry,
    RunJournal,
    read_journal,
    validate_journal,
)

SUBSYSTEMS = tuple("ABCDEFGH")


def square(payload):
    return payload * payload


def seeded_draw(payload):
    """A pure function of its payload, like every campaign task."""
    rng = np.random.default_rng(payload["seed"])
    return {"seed": payload["seed"], "draw": float(rng.random())}


# -- fault specs and plans ---------------------------------------------------


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gamma-ray")

    def test_none_selectors_are_wildcards(self):
        spec = FaultSpec(kind="crash", host=1)
        assert spec.matches(task=0, host=1, attempt=0)
        assert spec.matches(task=9, host=1, attempt=5)
        assert not spec.matches(task=0, host=2, attempt=0)

    def test_all_selectors_must_agree(self):
        spec = FaultSpec(kind="transient", task=3, attempt=1)
        assert spec.matches(task=3, host=0, attempt=1)
        assert not spec.matches(task=3, host=0, attempt=0)
        assert not spec.matches(task=2, host=0, attempt=1)

    def test_slow_does_not_fail_the_attempt(self):
        assert not FaultSpec(kind="slow", factor=2.0).fails
        assert all(FaultSpec(kind=k).fails for k in FAILING_KINDS)

    def test_raise_fault_maps_kinds_to_exceptions(self):
        with pytest.raises(WorkerCrash):
            raise_fault(FaultSpec(kind="crash"))
        with pytest.raises(TaskHang):
            raise_fault(FaultSpec(kind="hang"))
        with pytest.raises(TransientEvalError):
            raise_fault(FaultSpec(kind="transient"))
        with pytest.raises(ValueError, match="does not fail"):
            raise_fault(FaultSpec(kind="slow"))


class TestFaultPlan:
    def test_fault_for_matches_task_host_attempt(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="crash", task=1, attempt=0),
            FaultSpec(kind="transient", host=2),
        ))
        assert plan.fault_for(1, 0, 0).kind == "crash"
        assert plan.fault_for(1, 0, 1) is None
        assert plan.fault_for(5, 2, 3).kind == "transient"
        assert plan.fault_for(0, 0, 0) is None

    def test_experiment_specs_never_match_at_task_level(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="transient", experiment=4),
        ))
        assert plan.fault_for(0, 0, 0) is None
        assert plan.eval_fault_for(4, 0).kind == "transient"
        assert plan.eval_fault_for(3, 0) is None

    def test_slowdowns_are_separate_from_failures(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="slow", task=0, factor=2.0),
            FaultSpec(kind="crash", task=0),
        ))
        assert plan.slowdown_for(0, 0, 0).factor == 2.0
        assert plan.fault_for(0, 0, 0).kind == "crash"
        assert plan.task_faults() == (FaultSpec(kind="crash", task=0),)

    def test_random_plans_are_seeded_and_reproducible(self):
        one = FaultPlan.random(seed=11, tasks=20)
        two = FaultPlan.random(seed=11, tasks=20)
        other = FaultPlan.random(seed=12, tasks=20)
        assert one == two
        assert one != other
        assert one.seed == 11

    def test_random_specs_target_first_attempts_of_real_tasks(self):
        plan = FaultPlan.random(
            seed=3, tasks=10, fault_rate=0.9, max_faults_per_task=2
        )
        assert plan  # rate 0.9 over 10 tasks: ~impossible to be empty
        for spec in plan.faults:
            assert 0 <= spec.task < 10
            assert spec.attempt in (0, 1)
            assert spec.kind in FAILING_KINDS
        assert plan.task_faults() == plan.faults

    def test_broken_hosts_fail_every_attempt(self):
        plan = FaultPlan.broken_hosts([1, 3])
        for attempt in range(4):
            assert plan.fault_for(7, 1, attempt).kind == "crash"
            assert plan.fault_for(0, 3, attempt).kind == "crash"
        assert plan.fault_for(0, 0, 0) is None

    def test_describe_and_dunders(self):
        plan = FaultPlan.random(seed=5, tasks=8, fault_rate=0.9)
        assert "seed 5" in plan.describe()
        assert len(plan) == len(plan.faults)
        assert bool(plan)
        assert not FaultPlan()
        assert FaultPlan().describe() == "fault plan: empty"


class TestRetryPolicy:
    def test_backoff_is_pure_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0,
                             backoff_max=2.0)
        assert [policy.backoff(a) for a in range(4)] == [0.5, 1.0, 2.0, 2.0]

    def test_zero_base_keeps_schedule_at_zero(self):
        policy = RetryPolicy()
        assert all(policy.backoff(a) == 0.0 for a in range(5))

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="quarantine_after"):
            RetryPolicy(quarantine_after=0)
        with pytest.raises(ValueError, match="timeout_seconds"):
            RetryPolicy(timeout_seconds=0.0)

    def test_describe_mentions_the_knobs(self):
        text = RetryPolicy(max_retries=3, timeout_seconds=5.0).describe()
        assert "3 retries" in text and "5s timeout" in text


# -- FaultyTestbed: injection inside the evaluation loop ---------------------


def _workloads(n, seed=0):
    rng = np.random.default_rng(seed)
    space = SearchSpace.for_subsystem("F")
    return [space.random(rng) for _ in range(n)]


class TestFaultyTestbed:
    def test_raises_at_the_targeted_experiment(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="transient", experiment=2, attempt=0),
        ))
        testbed = FaultyTestbed("F", plan)
        workloads = _workloads(3)
        testbed.run(workloads[0])
        testbed.run(workloads[1])
        with pytest.raises(TransientEvalError):
            testbed.run(workloads[2])
        assert testbed.faults_raised == 1
        assert testbed.experiments_run == 2

    def test_fault_fires_before_clock_or_rng_are_touched(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="crash", experiment=0, attempt=0),
        ))
        testbed = FaultyTestbed("F", plan)
        rng = np.random.default_rng(9)
        before = rng.bit_generator.state
        with pytest.raises(WorkerCrash):
            testbed.run(_workloads(1)[0], rng=rng)
        assert testbed.clock.now == 0.0
        assert rng.bit_generator.state == before

    def test_batched_run_many_raises_upfront(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="hang", experiment=1, attempt=0),
        ))
        testbed = FaultyTestbed("F", plan)
        assert testbed.batch_enabled
        with pytest.raises(TaskHang):
            testbed.run_many(_workloads(3))
        assert testbed.clock.now == 0.0
        assert testbed.experiments_run == 0

    def test_bumped_attempt_sails_past_and_matches_clean_run(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="transient", experiment=1, attempt=0),
        ))
        workloads = _workloads(3, seed=4)
        retried = FaultyTestbed("F", plan, attempt=1)
        clean = Testbed("F")
        retried_results = [
            retried.run(w, rng=np.random.default_rng(1)) for w in workloads
        ]
        clean_results = [
            clean.run(w, rng=np.random.default_rng(1)) for w in workloads
        ]
        assert retried.faults_raised == 0
        assert retried_results == clean_results
        assert retried.clock.now == clean.clock.now

    def test_injection_counts_into_metrics(self):
        metrics = MetricsRegistry()
        plan = FaultPlan(faults=(
            FaultSpec(kind="transient", experiment=0),
        ))
        testbed = FaultyTestbed("F", plan, metrics=metrics)
        with pytest.raises(TransientEvalError):
            testbed.run(_workloads(1)[0])
        assert metrics.value("faults.injected", kind="transient") == 1


# -- the resilient executor --------------------------------------------------


def force_serial(executor, monkeypatch):
    """Deny the pool so the resilient loop runs its serial path."""
    monkeypatch.setattr(executor, "_make_pool", lambda tasks: None)


class TestResilientExecutor:
    def test_injected_transient_is_retried_to_the_same_result(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="transient", task=1, attempt=0),
        ))
        executor = CampaignExecutor(retry=RetryPolicy(), faults=plan)
        assert executor.map(square, [0, 1, 2]) == [0, 1, 4]
        stats = executor.last_stats
        assert stats.retries == 1
        assert stats.injected_faults == 1
        assert stats.timeouts == 0
        assert "1 retried attempt(s)" in stats.describe()

    def test_injected_hang_counts_as_timeout(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="hang", task=0, attempt=0),
        ))
        executor = CampaignExecutor(retry=RetryPolicy(), faults=plan)
        assert executor.map(square, [3]) == [9]
        assert executor.last_stats.timeouts == 1

    def test_exhausted_budget_raises_task_failed(self):
        plan = FaultPlan(faults=(FaultSpec(kind="crash", task=0),))
        executor = CampaignExecutor(
            retry=RetryPolicy(max_retries=1), faults=plan
        )
        with pytest.raises(TaskFailed) as excinfo:
            executor.map(square, [5])
        assert excinfo.value.task == 0
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, WorkerCrash)

    def test_plan_alone_turns_on_resilience(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="transient", task=0, attempt=0),
        ))
        executor = CampaignExecutor(faults=plan)  # default RetryPolicy
        assert executor.map(square, [2]) == [4]
        assert executor.last_stats.retries == 1

    def test_backoff_schedule_is_accounted_and_slept(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="transient", task=0, attempt=0),
            FaultSpec(kind="transient", task=0, attempt=1),
        ))
        policy = RetryPolicy(
            max_retries=2, backoff_base=0.01, backoff_factor=2.0
        )
        executor = CampaignExecutor(retry=policy, faults=plan)
        assert executor.map(square, [4]) == [16]
        stats = executor.last_stats
        assert stats.retries == 2
        assert stats.backoff_seconds == pytest.approx(0.03)
        assert stats.wall_seconds >= 0.03

    def test_zero_base_accounts_without_sleeping(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="transient", task=0, attempt=0),
        ))
        executor = CampaignExecutor(retry=RetryPolicy(), faults=plan)
        executor.map(square, [4])
        assert executor.last_stats.backoff_seconds == 0.0

    def test_slow_fault_inflates_duration_not_results(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="slow", task=0, factor=100.0),
        ))
        executor = CampaignExecutor(retry=RetryPolicy(), faults=plan)
        baseline = CampaignExecutor(retry=RetryPolicy())
        payloads = [{"seed": s} for s in range(3)]
        assert executor.map(seeded_draw, payloads) == (
            baseline.map(seeded_draw, payloads)
        )
        stats = executor.last_stats
        assert stats.injected_faults == 1
        assert stats.retries == 0
        assert stats.busy_seconds > baseline.last_stats.busy_seconds

    def test_real_timeout_maps_to_task_timeout(self):
        import concurrent.futures

        from repro.core.executor import ExecutorStats, _ResilientRun

        class _NeverDone:
            cancelled = False

            def result(self, timeout=None):
                raise concurrent.futures.TimeoutError()

            def cancel(self):
                self.cancelled = True

        executor = CampaignExecutor(
            retry=RetryPolicy(max_retries=0, timeout_seconds=0.01)
        )
        run = _ResilientRun(
            executor, square, [1], ExecutorStats(workers=1, tasks=1),
            executor.retry, FaultPlan(),
        )
        never = _NeverDone()
        run.futures[0] = never
        with pytest.raises(TaskTimeout, match="0.01s timeout"):
            run._wait(0)
        assert never.cancelled
        assert run.futures == {}


class TestQuarantine:
    POLICY = RetryPolicy(max_retries=3, quarantine_after=2)

    def test_acceptance_two_broken_hosts_of_four(self):
        """The ISSUE's acceptance scenario: crashes injected on 2 of 4
        virtual hosts; the campaign completes, quarantines both after
        the retry budget, and the results match a fault-free run."""
        plan = FaultPlan.broken_hosts([1, 3])
        payloads = [{"seed": s} for s in range(8)]
        clean = CampaignExecutor(workers=1).map(seeded_draw, payloads)
        executor = CampaignExecutor(
            workers=4, retry=self.POLICY, faults=plan
        )
        assert executor.map(seeded_draw, payloads) == clean
        stats = executor.last_stats
        assert stats.quarantined_hosts == (1, 3)
        assert stats.redistributed_tasks == 4
        if stats.fell_back_serial:
            # Faults resolve at dispatch: tasks 5 and 7 run after their
            # hosts were quarantined and never see a fault.
            assert stats.retries == 4
        else:
            # All first attempts were submitted (and faulted) upfront.
            assert stats.retries == 6
        assert "2 host(s) quarantined" in stats.describe()

    def test_serial_trajectory_is_deterministic(self, monkeypatch):
        plan = FaultPlan.broken_hosts([1, 3])
        payloads = [{"seed": s} for s in range(8)]
        executor = CampaignExecutor(
            workers=4, retry=self.POLICY, faults=plan
        )
        force_serial(executor, monkeypatch)
        clean = CampaignExecutor(workers=1).map(seeded_draw, payloads)
        assert executor.map(seeded_draw, payloads) == clean
        stats = executor.last_stats
        assert stats.fell_back_serial
        assert stats.retries == 4
        assert stats.injected_faults == 4
        assert stats.quarantined_hosts == (1, 3)
        assert stats.redistributed_tasks == 4

    def test_last_healthy_host_is_never_quarantined(self):
        metrics = MetricsRegistry()
        plan = FaultPlan.broken_hosts([0])
        executor = CampaignExecutor(
            workers=1, retry=RetryPolicy(max_retries=2, quarantine_after=1),
            faults=plan, metrics=metrics,
        )
        with pytest.raises(TaskFailed):
            executor.map(square, [1, 2])
        assert metrics.value("faults.quarantines") == 0
        assert metrics.value("faults.retries", kind="crash") == 2

    def test_redistributed_tasks_move_to_healthy_hosts(self, monkeypatch):
        plan = FaultPlan.broken_hosts([1])
        executor = CampaignExecutor(
            workers=2, retry=RetryPolicy(max_retries=2, quarantine_after=1),
            faults=plan,
        )
        force_serial(executor, monkeypatch)
        payloads = [{"seed": s} for s in range(4)]
        clean = CampaignExecutor(workers=1).map(seeded_draw, payloads)
        assert executor.map(seeded_draw, payloads) == clean
        stats = executor.last_stats
        assert stats.quarantined_hosts == (1,)
        assert stats.retries == 1  # task 1's faulted first attempt
        assert stats.redistributed_tasks == 2  # tasks 1 and 3


class TestFaultObservability:
    def test_recorder_journals_retry_and_quarantine(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "faults.jsonl"
        recorder = FlightRecorder(journal=RunJournal(path))
        plan = FaultPlan.broken_hosts([1])
        executor = CampaignExecutor(
            workers=2,
            retry=RetryPolicy(max_retries=2, quarantine_after=1),
            faults=plan,
            metrics=recorder.metrics,
            recorder=recorder,
        )
        force_serial(executor, monkeypatch)
        executor.map(square, [0, 1, 2, 3])
        recorder.close()
        records = read_journal(path)
        assert validate_journal(records) == []
        retries = [r for r in records if r["t"] == "retry"]
        quarantines = [r for r in records if r["t"] == "quarantine"]
        assert len(retries) == 1
        assert retries[0]["task"] == 1
        assert retries[0]["host"] == 1
        assert retries[0]["error"] == "crash"
        assert quarantines == [{
            "v": SCHEMA_VERSION, "t": "quarantine", "host": 1,
            "failures": 1, "redistributed": 2,
        }]
        # Metrics route through the recorder exactly once (the executor
        # holds both the recorder and its registry — no double counting).
        assert recorder.metrics.value("faults.retries", kind="crash") == 1
        assert recorder.metrics.value("faults.quarantines") == 1
        assert recorder.metrics.value("faults.redistributed") == 2

    def test_bare_metrics_count_without_a_recorder(self):
        metrics = MetricsRegistry()
        plan = FaultPlan(faults=(
            FaultSpec(kind="transient", task=0, attempt=0),
        ))
        executor = CampaignExecutor(
            retry=RetryPolicy(), faults=plan, metrics=metrics
        )
        executor.map(square, [1, 2])
        assert metrics.value("faults.injected", kind="transient") == 1
        assert metrics.value("faults.retries", kind="transient") == 1
        faults = metrics.counters_with_prefix("faults.")
        assert set(faults) == {
            "faults.injected{kind=transient}",
            "faults.retries{kind=transient}",
        }


# -- chaos campaigns over every subsystem ------------------------------------


CHAOS_HOURS = 0.25
CHAOS_SEEDS = (1, 2)


@pytest.mark.parametrize("subsystem", SUBSYSTEMS)
def test_chaos_campaign_is_bit_identical_despite_faults(subsystem):
    """Property-style chaos: a seeded random fault plan over subsystem
    campaigns A-H never changes the reports, and the executor performs
    exactly the retries the plan implies."""
    plan = FaultPlan.random(
        seed=ord(subsystem), tasks=len(CHAOS_SEEDS),
        fault_rate=0.8, max_faults_per_task=2,
    )
    baseline = run_campaign(
        "collie", subsystem, seeds=CHAOS_SEEDS, budget_hours=CHAOS_HOURS
    )
    chaotic = run_campaign(
        "collie", subsystem, seeds=CHAOS_SEEDS, budget_hours=CHAOS_HOURS,
        retry=RetryPolicy(max_retries=2), faults=plan,
    )
    assert chaotic.reports == baseline.reports
    assert chaotic.executor_stats.retries == len(plan.task_faults())
    assert chaotic.executor_stats.injected_faults == len(plan.task_faults())


def test_chaos_campaign_pooled_matches_serial_baseline():
    plan = FaultPlan.random(seed=99, tasks=3, fault_rate=0.9)
    assert plan.task_faults()  # rate 0.9: the plan really injects
    baseline = run_campaign(
        "collie", "H", seeds=(1, 2, 3), budget_hours=CHAOS_HOURS
    )
    chaotic = run_campaign(
        "collie", "H", seeds=(1, 2, 3), budget_hours=CHAOS_HOURS,
        workers=2, retry=RetryPolicy(max_retries=1), faults=plan,
    )
    assert chaotic.reports == baseline.reports
    assert chaotic.executor_stats.retries == len(plan.task_faults())
