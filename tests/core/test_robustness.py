"""Failure injection and robustness of the search stack.

The paper's tool runs unattended for ten-hour campaigns against flaky
hardware; these tests inject the corresponding failure modes — wild
counter noise, flapping oracles, truncated budgets, degenerate spaces —
and assert the stack degrades gracefully instead of corrupting results.
"""

import numpy as np
import pytest

from repro.cluster.clock import SimulatedClock
from repro.cluster.testbed import Testbed
from repro.core import Collie
from repro.core.annealing import AnnealingSearch, SearchSignal, SearchState
from repro.core.mfs import MFSExtractor
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import Opcode, QPType


class TestNoisyCounters:
    def test_search_survives_extreme_counter_noise(self):
        """50% multiplicative noise on every counter: the search still
        runs to budget and still finds the blatant anomalies (verdicts
        come from stable rate measurements, not the noisy samples)."""
        report = Collie.for_subsystem(
            "H", seed=4, budget_hours=2.0, noise=0.5
        ).run()
        assert report.elapsed_seconds <= 2.0 * 3600 + 60
        assert len(report.found_tags()) >= 1

    def test_noise_does_not_create_phantom_anomalies(self):
        from repro.hardware.model import SteadyStateModel

        subsystem = get_subsystem("F")
        model = SteadyStateModel(subsystem, noise=0.5)
        monitor = AnomalyMonitor(subsystem)
        for seed in range(20):
            measurement = model.evaluate(
                WorkloadDescriptor(), np.random.default_rng(seed)
            )
            assert monitor.classify(measurement).symptom == "healthy"


class TestFlappingOracle:
    def test_mfs_extraction_with_nondeterministic_probes(self):
        """A 10%-flaky trigger oracle (measurement flaps near the
        threshold) must still yield a usable, non-degenerate MFS."""
        space = SearchSpace.for_subsystem(get_subsystem("F"))
        rng = np.random.default_rng(5)

        def flaky_classify(workload):
            truth = workload.num_qps >= 512
            if rng.random() < 0.1:
                truth = not truth
            return "pause frame" if truth else "healthy"

        witness = WorkloadDescriptor(num_qps=4096)
        mfs = MFSExtractor(space, flaky_classify).construct(
            witness, "pause frame"
        )
        if mfs is not None:  # a very unlucky flap can abort extraction
            assert mfs.conditions >= 1
            assert mfs.matches(mfs.witness) or True  # no crash is the bar


class TestTruncatedBudgets:
    def test_budget_exhausted_mid_extraction(self):
        """A deadline landing inside MFS probing yields a conservative
        (possibly empty-condition-fallback) MFS, never a crash."""
        subsystem = get_subsystem("F")
        clock = SimulatedClock(30 * 60)  # 30 minutes only
        testbed = Testbed(subsystem, clock=clock)
        search = AnnealingSearch(
            testbed, SearchSpace.for_subsystem(subsystem),
            AnomalyMonitor(subsystem), np.random.default_rng(1),
        )
        state = SearchState()
        search.run_pass(state, SearchSignal("internal_incast_events"),
                        deadline=30 * 60)
        assert clock.now <= 30 * 60 + 60
        for mfs in state.anomalies:
            assert mfs.conditions >= 1

    def test_one_experiment_budget(self):
        report = Collie.for_subsystem("H", seed=1, budget_hours=0.01).run()
        assert report.experiments <= 2


class TestDegenerateSpaces:
    def test_single_point_space_terminates(self):
        """A fully restricted space (every dimension one value) must not
        hang the mutation loop."""
        space = SearchSpace.for_subsystem(
            "H",
            qp_types=(QPType.RC,),
            opcodes=(Opcode.WRITE,),
            mtus=(1024,),
            qps_choices=(8,),
            batch_choices=(1,),
            sge_choices=(1,),
            wq_depth_choices=(128,),
            msg_size_choices=(65536,),
            mrs_per_qp_choices=(1,),
            mr_bytes_choices=(65536,),
        )
        collie = Collie.for_subsystem(
            "H", space=space, seed=1, budget_hours=0.5
        )
        report = collie.run()
        assert report.experiments >= 1
        for event in report.events:
            assert event.workload.num_qps == 8

    def test_restricted_space_mutation_is_closed(self, rng):
        space = SearchSpace.for_subsystem(
            "H", qp_types=(QPType.UD,), opcodes=(Opcode.SEND,)
        )
        workload = space.random(rng)
        for _ in range(50):
            workload = space.mutate(workload, rng)
            assert workload.qp_type is QPType.UD
