"""Determinism suite: parallel == serial, cached == uncached, no
shared mutable state leaking between experiments.

These tests pin the contracts the executor and cache are built on: a
run's outcome is a pure function of its seed, so process fan-out and
memoization are observably transparent.
"""

import numpy as np
import pytest

from repro.analysis.campaign import run_campaign
from repro.analysis.serialize import mfs_to_dict, workload_to_dict
from repro.cluster.clock import SimulatedClock
from repro.cluster.host import Host
from repro.cluster.testbed import Testbed
from repro.core import Collie, EvalCache
from repro.core.mfs import MFSExtractor
from repro.core.monitor import AnomalyMonitor
from repro.core.parallel import ParallelCollie
from repro.core.space import SearchSpace
from repro.hardware.subsystems import get_subsystem
from repro.verbs.constants import QPType
from repro.verbs.device import QPNumberAllocator
from repro.verbs.qp import QPCapabilities
from repro.workloads.appendix import APPENDIX_SETTINGS


def event_key(event):
    """Everything observable about one experiment, exactly."""
    return (
        event.time_seconds,
        event.counter,
        event.counter_value,
        event.symptom,
        event.tags,
        event.kind,
        workload_to_dict(event.workload),
        sorted(event.counters.items()),
    )


def report_key(report):
    """Anomaly set + full trajectory of one search run."""
    return (
        [mfs_to_dict(a) for a in getattr(report, "anomalies", [])],
        [event_key(e) for e in report.events],
    )


class TestParallelEqualsSerial:
    @pytest.mark.parametrize(
        "approach,hours",
        [("collie", 0.2), ("random", 0.1), ("genetic", 0.1)],
    )
    def test_campaign_bit_identical_across_workers(self, approach, hours):
        seeds = (1, 2, 3, 4)
        serial = run_campaign(
            approach, subsystem="H", seeds=seeds, budget_hours=hours,
            workers=1,
        )
        parallel = run_campaign(
            approach, subsystem="H", seeds=seeds, budget_hours=hours,
            workers=4,
        )
        assert [report_key(r) for r in serial.reports] \
            == [report_key(r) for r in parallel.reports]
        assert parallel.executor_stats.tasks == len(seeds)

    def test_fleet_bit_identical_across_workers(self):
        def fleet(workers):
            return ParallelCollie(
                "H", machines=2, budget_hours=0.2, seed=5, workers=workers
            ).run()

        serial, pooled = fleet(1), fleet(3)
        assert [report_key(r) for r in serial.reports] \
            == [report_key(r) for r in pooled.reports]
        assert serial.first_hit_times() == pooled.first_hit_times()

    def test_cache_does_not_change_a_campaign(self):
        seeds = (1, 2, 3)
        plain = run_campaign(
            "collie", subsystem="H", seeds=seeds, budget_hours=0.2
        )
        cache = EvalCache()
        cached = run_campaign(
            "collie", subsystem="H", seeds=seeds, budget_hours=0.2,
            workers=3, cache=cache,
        )
        assert [report_key(r) for r in plain.reports] \
            == [report_key(r) for r in cached.reports]
        assert len(cache) > 0
        assert cache.hits + cache.misses > 0


class TestMFSCacheHitRate:
    def test_mfs_probing_on_known_witness_exceeds_half_hits(self):
        """Regression: MFS necessity probing must be cache-friendly.

        Extracting the MFS of a known witness twice with a shared cache
        replays the probe sequence; if the canonical key ever started
        incorporating probe-order state, the second pass would miss and
        this bound would collapse.
        """
        setting = next(
            s for s in APPENDIX_SETTINGS if s.subsystem == "H"
        )
        subsystem = get_subsystem("H")
        space = SearchSpace.for_subsystem(subsystem)
        cache = EvalCache()
        monitor = AnomalyMonitor(subsystem)

        def extract_once():
            testbed = Testbed(
                subsystem, clock=SimulatedClock(), cache=cache
            )
            rng = np.random.default_rng(0)

            def probe(candidate):
                result = testbed.run(candidate, rng=rng, phase="mfs")
                return monitor.classify(result.measurement).symptom

            return MFSExtractor(space, probe).construct(
                setting.workload, setting.expected_symptom, at_seconds=0.0
            )

        first = extract_once()
        assert first is not None, "appendix witness must extract an MFS"
        before_hits, before_misses = cache.snapshot()
        second = extract_once()
        hits, misses = cache.snapshot()
        warm_hits = hits - before_hits
        warm_misses = misses - before_misses
        hit_rate = warm_hits / (warm_hits + warm_misses)
        assert hit_rate > 0.5, f"warm MFS probing hit rate {hit_rate:.1%}"
        assert mfs_to_dict(second) == mfs_to_dict(first)
        assert cache.phase_stats()["mfs"].hits == warm_hits


class TestSharedStateAudit:
    """No module-level mutable state may leak between experiments."""

    def _burst_qpns(self, topology):
        """QP numbers observed by one two-host functional burst."""
        qpns = QPNumberAllocator()
        host_a = Host("audit-a", topology, qpn_allocator=qpns)
        host_b = Host("audit-b", topology, qpn_allocator=qpns)
        numbers = []
        for host in (host_a, host_b):
            pd = host.context.alloc_pd()
            cq = host.context.create_cq(16)
            qp = host.context.create_qp(
                pd, QPType.RC, cq, cq, QPCapabilities()
            )
            numbers.append(qp.qp_num)
        return numbers

    def test_qp_numbering_is_history_independent(self):
        topology = get_subsystem("H").topology
        first = self._burst_qpns(topology)
        # Interleave unrelated fabric activity: a full testbed run plus
        # a stray burst. Neither may shift the next burst's numbering.
        Testbed(get_subsystem("H")).run(
            SearchSpace.for_subsystem(get_subsystem("H")).random(
                np.random.default_rng(0)
            ),
            rng=np.random.default_rng(0),
        )
        self._burst_qpns(topology)
        assert self._burst_qpns(topology) == first
        assert first[0] == QPNumberAllocator.FIRST_QPN

    def test_qp_numbers_unique_within_a_shared_allocator(self):
        topology = get_subsystem("H").topology
        numbers = self._burst_qpns(topology)
        assert len(set(numbers)) == len(numbers)

    def test_clocks_do_not_alias(self):
        ticking = SimulatedClock(100.0)
        bystander = SimulatedClock(100.0)
        ticking.advance(42.0)
        assert bystander.now == 0.0
        assert ticking.now == 42.0

    def test_testbeds_do_not_share_clocks(self):
        subsystem = get_subsystem("H")
        first = Testbed(subsystem)
        second = Testbed(subsystem)
        point = SearchSpace.for_subsystem(subsystem).random(
            np.random.default_rng(1)
        )
        first.run(point, rng=np.random.default_rng(1))
        assert second.clock.now == 0.0
        assert first.clock.now > 0.0

    def test_subsystem_singletons_never_mutated_by_runs(self):
        """get_subsystem caches instances; searches must not write them."""
        from repro.core.evalcache import subsystem_fingerprint

        subsystem = get_subsystem("H")
        before = subsystem_fingerprint(subsystem)
        Collie.for_subsystem("H", budget_hours=0.1, seed=2).run()
        assert get_subsystem("H") is subsystem
        assert subsystem_fingerprint(subsystem) == before

    def test_runs_with_same_seed_identical_back_to_back(self):
        """End-to-end: no hidden state survives one run into the next."""
        first = Collie.for_subsystem("H", budget_hours=0.1, seed=9).run()
        second = Collie.for_subsystem("H", budget_hours=0.1, seed=9).run()
        assert report_key(first) == report_key(second)
