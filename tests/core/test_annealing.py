"""SA search mechanics: energy, schedule, and short end-to-end passes."""

import numpy as np
import pytest

from repro.cluster.clock import SimulatedClock
from repro.cluster.testbed import Testbed
from repro.core.annealing import (
    AnnealingSearch,
    SAParams,
    SearchSignal,
    SearchState,
)
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.subsystems import get_subsystem


class TestSearchSignal:
    def test_diagnostic_energy_rewards_increase(self):
        """§5.1: diagnostic counters drive high; (A-B)/B < 0 when B > A."""
        signal = SearchSignal("rx_wqe_cache_miss")
        assert signal.diagnostic
        assert signal.delta_energy(old=100, new=200) < 0
        assert signal.delta_energy(old=200, new=100) > 0

    def test_performance_energy_rewards_decrease(self):
        """Performance counters drive low; (B-A)/A < 0 when B < A."""
        signal = SearchSignal("tx_bytes_per_sec")
        assert not signal.diagnostic
        assert signal.lower_is_better
        assert signal.delta_energy(old=200, new=100) < 0
        assert signal.delta_energy(old=100, new=200) > 0

    def test_energy_is_relative_not_absolute(self):
        """The paper's form avoids the value-region problem: the same
        proportional change yields the same energy at any scale."""
        signal = SearchSignal("qpc_cache_miss")
        small = signal.delta_energy(old=10, new=20)
        large = signal.delta_energy(old=1e9, new=2e9)
        assert small == pytest.approx(large)

    def test_zero_denominator_is_safe(self):
        signal = SearchSignal("qpc_cache_miss")
        assert np.isfinite(signal.delta_energy(old=0.0, new=0.0))


class TestSAParams:
    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            SAParams(alpha=1.0)
        with pytest.raises(ValueError):
            SAParams(t0=0.01, t_min=0.05)

    def test_defaults_are_relaxed(self):
        """§5.1: "we always set a more relaxed temperature and alpha"."""
        params = SAParams()
        assert params.alpha >= 0.8
        assert params.t0 / params.t_min >= 10


def run_short_pass(counter, seed=0, hours=1.5, use_mfs=True):
    subsystem = get_subsystem("F")
    clock = SimulatedClock(hours * 3600)
    testbed = Testbed(subsystem, clock=clock)
    search = AnnealingSearch(
        testbed,
        SearchSpace.for_subsystem(subsystem),
        AnomalyMonitor(subsystem),
        np.random.default_rng(seed),
        use_mfs=use_mfs,
    )
    state = SearchState()
    search.run_pass(state, SearchSignal(counter), deadline=hours * 3600)
    return state, clock


class TestRunPass:
    def test_respects_deadline(self):
        state, clock = run_short_pass("rx_wqe_cache_miss", hours=0.5)
        assert clock.now <= 0.5 * 3600 + 60  # one experiment of slack

    def test_finds_anomalies_in_half_anomalous_space(self):
        state, _ = run_short_pass("internal_incast_events", hours=2.0)
        assert len(state.anomalies) >= 1
        assert state.experiments > 10

    def test_events_are_chronological(self):
        state, _ = run_short_pass("qpc_cache_miss", hours=1.0)
        times = [e.time_seconds for e in state.events]
        assert times == sorted(times)

    def test_mfs_skipping_records_skips(self):
        state, _ = run_short_pass("internal_incast_events", hours=3.0)
        assert state.skipped > 0

    def test_without_mfs_no_extraction(self):
        state, _ = run_short_pass("rx_wqe_cache_miss", hours=1.0,
                                  use_mfs=False)
        assert state.anomalies == []
        assert all(e.kind != "mfs" for e in state.events)

    def test_anomalous_events_carry_ground_truth_tags(self):
        state, _ = run_short_pass("internal_incast_events", hours=2.0)
        anomalous = [e for e in state.events if e.symptom != "healthy"]
        assert anomalous
        assert any(e.tags for e in anomalous)

    def test_new_anomaly_marked_on_trace(self):
        state, _ = run_short_pass("internal_incast_events", hours=2.0)
        marks = [e for e in state.events if e.new_anomaly_index is not None]
        assert len(marks) == len(state.anomalies)
