"""The anomaly monitor's detection conditions (§5.2)."""

import numpy as np
import pytest

from repro.core.monitor import (
    HEALTHY,
    LOW_THROUGHPUT,
    PAUSE_FRAME,
    AnomalyMonitor,
)
from repro.hardware.model import SteadyStateModel
from repro.hardware.workload import WorkloadDescriptor
from repro.workloads.appendix import setting


@pytest.fixture
def monitor(subsystem_f):
    return AnomalyMonitor(subsystem_f)


def measure(subsystem, workload, noise=0.0, seed=0):
    return SteadyStateModel(subsystem, noise=noise).evaluate(
        workload, np.random.default_rng(seed)
    )


class TestClassification:
    def test_healthy_baseline(self, monitor, subsystem_f):
        verdict = monitor.classify(measure(subsystem_f, WorkloadDescriptor()))
        assert verdict.symptom == HEALTHY
        assert not verdict.is_anomalous

    def test_pause_detection(self, monitor, subsystem_f):
        verdict = monitor.classify(measure(subsystem_f, setting(1).workload))
        assert verdict.symptom == PAUSE_FRAME
        assert verdict.pause_ratio > monitor.pause_threshold

    def test_low_throughput_detection(self, monitor, subsystem_f):
        verdict = monitor.classify(measure(subsystem_f, setting(2).workload))
        assert verdict.symptom == LOW_THROUGHPUT
        assert verdict.pause_ratio <= monitor.pause_threshold

    def test_pause_takes_precedence_over_throughput(self, monitor,
                                                    subsystem_f):
        # Setting 4 collapses throughput AND pauses; Table 2 reports it
        # as a pause-frame anomaly.
        verdict = monitor.classify(measure(subsystem_f, setting(4).workload))
        assert verdict.symptom == PAUSE_FRAME

    def test_pps_bound_workload_is_healthy_despite_low_bits(
        self, monitor, subsystem_f
    ):
        """§5.2: bottlenecked by either bits/s OR packets/s is healthy."""
        from repro.verbs.constants import Opcode, QPType

        tiny = WorkloadDescriptor(
            qp_type=QPType.UD, opcode=Opcode.SEND, mtu=1024,
            msg_sizes_bytes=(64,), wqe_batch=32, num_qps=16,
        )
        verdict = monitor.classify(measure(subsystem_f, tiny))
        assert verdict.symptom == HEALTHY
        assert verdict.min_wire_gbps < 0.8 * subsystem_f.rnic.line_rate_gbps

    def test_mtu_framing_overhead_is_not_an_anomaly(self, monitor,
                                                    subsystem_f):
        small_mtu = WorkloadDescriptor(mtu=256, msg_sizes_bytes=(1048576,))
        verdict = monitor.classify(measure(subsystem_f, small_mtu))
        assert verdict.symptom == HEALTHY


class TestThresholds:
    def test_pause_threshold_is_paper_value(self, monitor):
        assert monitor.pause_threshold == pytest.approx(0.001)

    def test_throughput_fraction_is_paper_value(self, monitor):
        assert monitor.throughput_fraction == pytest.approx(0.8)

    def test_custom_thresholds(self, subsystem_f):
        # With an absurd 90% pause threshold, setting 1's 22% pause no
        # longer classifies as a pause anomaly; its throughput collapse
        # is still caught by the second condition.
        lax = AnomalyMonitor(subsystem_f, pause_threshold=0.9)
        verdict = lax.classify(measure(subsystem_f, setting(1).workload))
        assert verdict.symptom == LOW_THROUGHPUT


class TestStability:
    def test_low_noise_measurements_are_stable(self, monitor, subsystem_f):
        measurement = measure(subsystem_f, WorkloadDescriptor(), noise=0.02)
        assert monitor.is_stable(measurement)

    def test_wild_noise_flags_instability(self, subsystem_f):
        monitor = AnomalyMonitor(subsystem_f, stability_cv=0.01)
        measurement = measure(
            subsystem_f, WorkloadDescriptor(), noise=0.5, seed=3
        )
        assert not monitor.is_stable(measurement)
