"""Isolation soundness: minimized attackers must reproduce their harm.

Mirrors ``tests/core/test_mfs_soundness.py`` for the adversarial-
neighbor domain.  The search's output there is an MFS whose sampled
points stay anomalous; here the output is a *minimized attacker*, and
its soundness claim is stronger — replayed against the same victim on a
fresh co-run testbed, the recorded symptom must recur.  A minimized
attacker that cannot re-harm the victim is a false catalog entry.
"""

import pytest

from repro.analysis.isolation import (
    DEFAULT_VICTIM_SHARE,
    catalog_findings,
    default_victim,
    isolation_search,
)
from repro.core.monitor import (
    PAUSE_FRAME,
    VICTIM_DEGRADED,
    VICTIM_LATENCY,
)
from repro.core.reproducer import reproduce_mfs

ISOLATION_SYMPTOMS = {PAUSE_FRAME, VICTIM_DEGRADED, VICTIM_LATENCY}

#: Quick-budget grid: one cache-constrained subsystem per Table 1
#: corner (A: deep NIC, F: shallow rx-queue, H: big-cache) crossed with
#: two seeds, so soundness is not an artifact of one SA trajectory.
GRID = [
    ("A", 3), ("A", 11),
    ("F", 3), ("F", 11),
    ("H", 3),
]


@pytest.mark.parametrize(("letter", "seed"), GRID)
def test_minimized_attacker_reproduces(letter, seed):
    victim = default_victim()
    report = isolation_search(
        letter, victim=victim, budget_hours=0.2, seed=seed
    )
    assert report.anomalies, (
        f"quick isolation search on {letter} (seed {seed}) found nothing"
    )
    for mfs in report.anomalies:
        assert mfs.symptom in ISOLATION_SYMPTOMS
        result = reproduce_mfs(
            mfs, letter, victim=victim,
            victim_share=DEFAULT_VICTIM_SHARE,
        )
        assert result.reproduced, (
            f"{letter} seed {seed}: {mfs.describe()} — {result.describe()}"
        )


def test_catalog_findings_record_reproduction_honestly():
    """catalog_findings replays through the same reproducer and must
    agree with a direct replay, entry by entry."""
    victim = default_victim()
    report = isolation_search("F", victim=victim, budget_hours=0.2, seed=3)
    findings = catalog_findings(report, victim)
    assert len(findings) == len(report.anomalies)
    for finding, mfs in zip(findings, report.anomalies):
        direct = reproduce_mfs(
            mfs, "F", victim=victim, victim_share=DEFAULT_VICTIM_SHARE
        )
        assert finding.reproduced == direct.reproduced
        assert finding.symptom == mfs.symptom
        assert finding.tag == f"I-F{finding.index + 1}"
