"""The §8 inter-arrival (duty cycle) search-space extension."""

import numpy as np
import pytest

from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import WorkloadDescriptor
from repro.workloads.appendix import setting


def measure(workload, letter="F"):
    subsystem = get_subsystem(letter)
    measurement = SteadyStateModel(subsystem, noise=0.0).evaluate(
        workload, np.random.default_rng(0)
    )
    return measurement, AnomalyMonitor(subsystem).classify(measurement)


class TestDescriptor:
    def test_default_saturates(self):
        assert WorkloadDescriptor().duty_cycle == 1.0

    @pytest.mark.parametrize("value", [0.0, -0.5, 1.5])
    def test_invalid_values_rejected(self, value):
        with pytest.raises(ValueError):
            WorkloadDescriptor(duty_cycle=value)


class TestModelEffect:
    def test_injection_scales_with_duty(self):
        full, _ = measure(WorkloadDescriptor())
        half, _ = measure(WorkloadDescriptor(duty_cycle=0.5))
        assert half.directions[0].injection_msgs_per_sec == pytest.approx(
            full.directions[0].injection_msgs_per_sec * 0.5
        )

    def test_idle_sender_defuses_pause_anomalies(self):
        """With enough idle time, even a trigger workload's offered load
        fits within the degraded service rate — pauses vanish (the §7.4
        'end-to-end flow control' discussion, made concrete)."""
        trigger = setting(1).workload
        _, hot = measure(trigger)
        assert hot.symptom == "pause frame"
        _, cool = measure(trigger.replace(duty_cycle=0.5))
        assert cool.pause_ratio == 0.0

    def test_low_duty_reads_as_low_throughput_not_anomaly(self):
        """An intentionally idle sender is not a subsystem anomaly...
        except that the spec-based monitor cannot tell intent: at very
        low duty the throughput check fires.  The search space therefore
        keeps duty at 1.0 unless the operator opts in."""
        _, verdict = measure(WorkloadDescriptor(duty_cycle=0.25))
        assert verdict.symptom == "low throughput"


class TestSpaceExtension:
    def test_default_space_never_varies_duty(self, rng):
        space = SearchSpace.for_subsystem(get_subsystem("F"))
        assert all(
            space.random(rng).duty_cycle == 1.0 for _ in range(50)
        )

    def test_extended_space_samples_duty(self, rng):
        space = SearchSpace.for_subsystem(
            get_subsystem("F"), duty_cycles=(0.5, 1.0)
        )
        seen = {space.random(rng).duty_cycle for _ in range(60)}
        assert seen == {0.5, 1.0}

    def test_mutation_moves_duty_in_extended_space(self, rng):
        space = SearchSpace.for_subsystem(
            get_subsystem("F"), duty_cycles=(0.25, 0.5, 1.0)
        )
        current = space.random(rng)
        seen = {current.duty_cycle}
        for _ in range(200):
            current = space.mutate(current, rng)
            seen.add(current.duty_cycle)
        assert len(seen) >= 2
