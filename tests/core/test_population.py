"""Population-stepped SA: bit-identity, determinism, tempering.

The population driver's whole contract is that batching is invisible:
a chain stepped in lockstep with N-1 siblings must journal, measure
and report exactly what it would have standalone.  These tests pin
that contract from every side — 1-chain vs legacy, chain c vs
standalone seed + c, population vs the ``--seeds`` campaign path at
any worker count, and tempering determinism.
"""

import json

import pytest

from repro.analysis.campaign import run_campaign
from repro.core.annealing import SearchSignal
from repro.core.collie import Collie
from repro.core.population import PopulationCollie
from repro.obs import (
    FlightRecorder,
    RunJournal,
    read_journal,
    reports_from_journal,
)
from tests.core.test_determinism import report_key

SUBSYSTEMS = ["A", "B", "C", "D", "E", "F", "G", "H"]


def _canonical(records):
    """Journal records with wall-clock histograms flattened to counts.

    Wall-clock histograms measure *real* elapsed time, which differs
    between any two runs of the same trajectory; their event counts are
    deterministic and stay in the comparison.  Every other byte of the
    journal — simulated clock, RNG-driven workloads, metrics counters,
    record order — must match exactly.
    """
    out = []
    for record in records:
        if isinstance(record.get("metrics"), dict):
            metrics = json.loads(json.dumps(record["metrics"]))
            for name, histogram in metrics.get("histograms", {}).items():
                if "wall" in name:
                    metrics["histograms"][name] = {
                        "count": histogram.get("count")
                    }
            record = {**record, "metrics": metrics}
        out.append(record)
    return out


class TestOneChainIsLegacy:
    @pytest.mark.parametrize("subsystem", SUBSYSTEMS)
    def test_single_chain_population_matches_scalar_run(self, subsystem):
        legacy = Collie.for_subsystem(
            subsystem, budget_hours=0.15, seed=7,
        ).run()
        population = PopulationCollie(
            subsystem, chains=1, budget_hours=0.15, seed=7,
        ).run()
        assert population.chains == 1
        assert report_key(population.reports[0]) == report_key(legacy)

    def test_single_chain_journal_is_record_identical(self, tmp_path):
        legacy_path = tmp_path / "legacy.jsonl"
        recorder = FlightRecorder(journal=RunJournal(legacy_path))
        Collie.for_subsystem(
            "F", budget_hours=0.2, seed=3, recorder=recorder,
        ).run()
        recorder.close()

        population_path = tmp_path / "population.jsonl"
        recorder = FlightRecorder(journal=RunJournal(population_path))
        PopulationCollie(
            "F", chains=1, budget_hours=0.2, seed=3, recorder=recorder,
        ).run()
        recorder.close()

        legacy = _canonical(read_journal(legacy_path))
        population = _canonical(read_journal(population_path))
        assert population == legacy
        # No chain stamps on a 1-chain journal: it *is* the legacy one.
        assert not any("chain" in record for record in population)


class TestChainsAreIndependent:
    def test_each_chain_matches_standalone_seed(self):
        population = PopulationCollie(
            "F", chains=3, budget_hours=0.2, seed=5,
        ).run()
        for chain, report in enumerate(population.reports):
            standalone = Collie.for_subsystem(
                "F", budget_hours=0.2, seed=5 + chain,
            ).run()
            assert report_key(report) == report_key(standalone)

    def test_population_repeats_bit_identically(self):
        first = PopulationCollie(
            "H", chains=4, budget_hours=0.2, seed=9,
        ).run()
        second = PopulationCollie(
            "H", chains=4, budget_hours=0.2, seed=9,
        ).run()
        assert (
            [report_key(r) for r in first.reports]
            == [report_key(r) for r in second.reports]
        )
        assert first.generations == second.generations

    @pytest.mark.parametrize("workers", [1, 2])
    def test_population_equals_seed_campaign(self, workers):
        campaign = run_campaign(
            "collie", subsystem="G", seeds=range(4, 7),
            budget_hours=0.2, workers=workers,
        )
        population = PopulationCollie(
            "G", chains=3, budget_hours=0.2, seed=4,
        ).run()
        assert (
            [report_key(r) for r in population.reports]
            == [report_key(r) for r in campaign.reports]
        )


class TestPopulationJournal:
    def test_interleaved_journal_reconstructs_per_chain_reports(
        self, tmp_path
    ):
        path = tmp_path / "population.jsonl"
        recorder = FlightRecorder(journal=RunJournal(path))
        population = PopulationCollie(
            "F", chains=3, budget_hours=0.2, seed=5, recorder=recorder,
        ).run()
        recorder.close()
        replayed = reports_from_journal(path)
        assert (
            [report_key(r) for r in replayed]
            == [report_key(r) for r in population.reports]
        )


class TestValidation:
    def test_rejects_zero_chains(self):
        with pytest.raises(ValueError, match="at least one chain"):
            PopulationCollie("F", chains=0)

    def test_rejects_single_rung_ladder(self):
        with pytest.raises(ValueError, match=">= 2 rungs"):
            PopulationCollie("F", temperature_ladder=(1.0,))

    def test_rejects_non_positive_temperatures(self):
        with pytest.raises(ValueError, match="positive"):
            PopulationCollie("F", temperature_ladder=(1.0, -0.5))

    def test_ladder_fixes_the_chain_count(self):
        driver = PopulationCollie(
            "F", chains=1, temperature_ladder=(2.0, 1.0, 0.5),
        )
        assert driver.chains == 3


class TestTempering:
    def test_tempering_repeats_bit_identically(self):
        kwargs = dict(
            budget_hours=0.4, seed=3,
            temperature_ladder=(2.0, 1.0, 0.5),
            counters=("qpc_cache_miss",), exchange_every=5,
        )
        first = PopulationCollie("H", **kwargs).run()
        second = PopulationCollie("H", **kwargs).run()
        assert (
            [report_key(r) for r in first.reports]
            == [report_key(r) for r in second.reports]
        )
        assert first.exchanges == second.exchanges

    def test_exchange_sweep_swaps_when_hot_holds_better_point(self):
        driver = PopulationCollie(
            "F", temperature_ladder=(2.0, 1.0),
            counters=("qpc_cache_miss",),
        )
        hot, cold = driver._collies[0].search, driver._collies[1].search
        flip = -1.0 if SearchSignal("qpc_cache_miss").lower_is_better else 1.0
        better, worse = ("hot-point", 100.0), ("cold-point", 10.0)
        if flip < 0:
            better, worse = (better[0], 10.0), (worse[0], 100.0)
        hot.exchange_state = ("qpc_cache_miss",) + better
        cold.exchange_state = ("qpc_cache_miss",) + worse
        driver._exchange_sweep()
        assert driver.exchanges == 1
        assert hot.exchange_inbox == worse
        assert cold.exchange_inbox == better

    def test_exchange_sweep_keeps_points_when_cold_already_better(self):
        driver = PopulationCollie(
            "F", temperature_ladder=(2.0, 1.0),
            counters=("qpc_cache_miss",),
        )
        hot, cold = driver._collies[0].search, driver._collies[1].search
        flip = -1.0 if SearchSignal("qpc_cache_miss").lower_is_better else 1.0
        better, worse = ("cold-point", 100.0), ("hot-point", 10.0)
        if flip < 0:
            better, worse = (better[0], 10.0), (worse[0], 100.0)
        hot.exchange_state = ("qpc_cache_miss",) + worse
        cold.exchange_state = ("qpc_cache_miss",) + better
        driver._exchange_sweep()
        assert driver.exchanges == 0
        assert hot.exchange_inbox is None
        assert cold.exchange_inbox is None

    def test_exchange_sweep_skips_incomparable_counters(self):
        driver = PopulationCollie(
            "F", temperature_ladder=(2.0, 1.0),
        )
        hot, cold = driver._collies[0].search, driver._collies[1].search
        hot.exchange_state = ("qpc_cache_miss", "p", 100.0)
        cold.exchange_state = ("rx_icrc_errors", "q", 10.0)
        driver._exchange_sweep()
        assert driver.exchanges == 0
        assert hot.exchange_inbox is None

    def test_exchange_sweep_bubbles_a_point_down_the_ladder(self):
        driver = PopulationCollie(
            "F", temperature_ladder=(4.0, 2.0, 1.0),
            counters=("qpc_cache_miss",),
        )
        searches = [c.search for c in driver._collies]
        flip = -1.0 if SearchSignal("qpc_cache_miss").lower_is_better else 1.0
        values = [300.0, 20.0, 10.0] if flip > 0 else [1.0, 20.0, 30.0]
        for search, value in zip(searches, values):
            search.exchange_state = ("qpc_cache_miss", f"p{value}", value)
        driver._exchange_sweep()
        # The strong hot point swaps into rung 1, then rung 2, in one
        # sweep; each displaced point moves up exactly one rung.
        assert driver.exchanges == 2
        assert searches[2].exchange_inbox == (f"p{values[0]}", values[0])
