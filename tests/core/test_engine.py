"""The workload engine: setup, functional bursts, cost model."""

import numpy as np
import pytest

from repro.core.engine import WorkloadEngine
from repro.core.space import SearchSpace
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import (
    Colocation,
    Direction,
    SGLayout,
    WorkloadDescriptor,
)
from repro.verbs.constants import Opcode, QPType


@pytest.fixture
def engine(subsystem_f):
    return WorkloadEngine(subsystem_f)


class TestFunctionalBurst:
    @pytest.mark.parametrize(
        "qp_type,opcode",
        [
            (QPType.RC, Opcode.WRITE),
            (QPType.RC, Opcode.READ),
            (QPType.RC, Opcode.SEND),
            (QPType.UC, Opcode.WRITE),
            (QPType.UC, Opcode.SEND),
            (QPType.UD, Opcode.SEND),
        ],
    )
    def test_every_transport_opcode_combination_runs(
        self, engine, qp_type, opcode
    ):
        workload = WorkloadDescriptor(
            qp_type=qp_type, opcode=opcode, mtu=2048,
            msg_sizes_bytes=(1024, 512, 2048, 64)
            if qp_type is QPType.UD else (4096, 512, 65536, 64),
            wqe_batch=4, sge_per_wqe=2, num_qps=8,
        )
        footprint = engine.functional_burst(workload)
        assert footprint.functional_messages > 0
        assert footprint.qps_created <= 8  # scaled down

    def test_mixed_sg_layout_runs(self, engine):
        workload = WorkloadDescriptor(
            sge_per_wqe=3, sg_layout=SGLayout.MIXED,
            msg_sizes_bytes=(128, 65536, 1024),
        )
        assert engine.functional_burst(workload).functional_messages > 0

    def test_gpu_placement_runs_on_gpu_hosts(self, engine):
        workload = WorkloadDescriptor(src_device="gpu0", dst_device="gpu0")
        engine.functional_burst(workload)

    def test_unknown_placement_fails(self, subsystem_h):
        engine = WorkloadEngine(subsystem_h)
        with pytest.raises(Exception):
            engine.functional_burst(WorkloadDescriptor(src_device="gpu0"))

    def test_random_space_points_are_functionally_legal(self, engine, rng):
        """Any coerced search point must survive the verbs layer."""
        space = SearchSpace.for_subsystem(engine.subsystem)
        for _ in range(25):
            engine.functional_burst(space.random(rng))


class TestMeasure:
    def test_measure_returns_measurement(self, engine, rng):
        measurement = engine.measure(WorkloadDescriptor(), rng=rng)
        assert measurement.subsystem_name == "F"
        assert measurement.directions[0].achieved_msgs_per_sec > 0

    def test_measure_with_functional_check(self, engine, rng):
        measurement = engine.measure(
            WorkloadDescriptor(num_qps=2), rng=rng, functional_check=True
        )
        assert measurement.directions[0].wire_gbps > 0


class TestCostModel:
    def test_setup_grows_with_qps_and_mrs(self, engine):
        base = engine.setup_seconds(WorkloadDescriptor())
        many_qps = engine.setup_seconds(WorkloadDescriptor(num_qps=8192))
        many_mrs = engine.setup_seconds(
            WorkloadDescriptor(num_qps=128, mrs_per_qp=1024)
        )
        assert many_qps > base
        assert many_mrs > base

    def test_bidirectional_doubles_qp_cost(self, engine):
        uni = engine.setup_seconds(WorkloadDescriptor(num_qps=4096))
        bi = engine.setup_seconds(
            WorkloadDescriptor(num_qps=4096,
                               direction=Direction.BIDIRECTIONAL)
        )
        assert bi > uni

    def test_total_cost_stays_in_paper_range(self, engine):
        total = engine.setup_seconds(
            WorkloadDescriptor(num_qps=16384, mrs_per_qp=8)
        ) + engine.measurement_seconds()
        assert total <= 60.0

    def test_loopback_workload_cost(self, engine):
        cost = engine.setup_seconds(
            WorkloadDescriptor(colocation=Colocation.MIXED_LOOPBACK)
        )
        assert cost >= 12.0
