"""MFS soundness against the real model: skips never cover healthy space.

The search's correctness hinges on one property: any point matching an
extracted MFS would itself have been classified anomalous.  These tests
extract MFSes from randomly found anomalies on the actual subsystems and
then sample points inside each MFS's region, checking the monitor agrees.
"""

import numpy as np
import pytest

from repro.core.mfs import MFSExtractor
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem


def build_oracle(subsystem):
    model = SteadyStateModel(subsystem, noise=0.0)
    monitor = AnomalyMonitor(subsystem)
    rng = np.random.default_rng(0)

    def classify(workload):
        return monitor.classify(model.evaluate(workload, rng)).symptom

    return classify


@pytest.mark.parametrize("letter", ["F", "H"])
class TestSkipSoundness:
    WITNESSES = 6
    SAMPLES_PER_MFS = 120

    def test_sampled_mfs_points_are_anomalous(self, letter):
        subsystem = get_subsystem(letter)
        space = SearchSpace.for_subsystem(subsystem)
        classify = build_oracle(subsystem)
        rng = np.random.default_rng(77)

        extracted = []
        attempts = 0
        while len(extracted) < self.WITNESSES and attempts < 500:
            attempts += 1
            witness = space.random(rng)
            symptom = classify(witness)
            if symptom == "healthy":
                continue
            extractor = MFSExtractor(space, classify)
            mfs = extractor.construct(witness, symptom, known=extracted)
            if mfs is not None:
                extracted.append(mfs)
        assert extracted, "no anomalies found to extract from"

        false_skips = 0
        covered = 0
        for _ in range(self.SAMPLES_PER_MFS * len(extracted)):
            probe = space.random(rng)
            for mfs in extracted:
                if mfs.matches(probe):
                    covered += 1
                    if classify(probe) == "healthy":
                        false_skips += 1
                    break
        # Sound to within noise: out of every matched sample, (almost)
        # none may be healthy.  A tiny tolerance covers interval
        # interpolation across untested ladder gaps.
        assert covered > 0
        assert false_skips <= max(1, covered // 50), (
            f"{false_skips}/{covered} matched samples were healthy"
        )

    def test_witnesses_match_their_own_mfs(self, letter):
        subsystem = get_subsystem(letter)
        space = SearchSpace.for_subsystem(subsystem)
        classify = build_oracle(subsystem)
        rng = np.random.default_rng(13)
        checked = 0
        for _ in range(300):
            witness = space.random(rng)
            symptom = classify(witness)
            if symptom == "healthy":
                continue
            mfs = MFSExtractor(space, classify).construct(witness, symptom)
            if mfs is None:
                continue
            # The reduced witness is the stored one; it must match.
            assert mfs.matches(mfs.witness)
            checked += 1
            if checked >= 4:
                break
        assert checked >= 2
