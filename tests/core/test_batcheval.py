"""Batched vectorized evaluation (S31): the bit-identity contract.

The batched engine's entire value rests on one promise: with a known
point set, ``evaluate_many`` is *bit-identical* to the scalar loop —
measurements, counters, fired rules, features, sample streams, and the
caller's RNG (draw count, order, final state).  These tests pin that
promise property-style across all eight subsystems, then pin every
wired consumer (MFS ladders and box validation, the Perftest sweep,
random search, Collie end to end) against its scalar twin.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.serialize import mfs_to_dict, workload_to_dict
from repro.baselines.perftest import PerftestGenerator
from repro.baselines.random_search import RandomSearch
from repro.cluster.clock import SimulatedClock
from repro.cluster.testbed import Testbed
from repro.core import Collie, EvalCache
from repro.core.batcheval import BatchEvaluator
from repro.core.mfs import MFSExtractor
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.model import SteadyStateModel, solve_batch
from repro.hardware.subsystems import get_subsystem
from repro.obs.metrics import MetricsRegistry
from repro.workloads.appendix import APPENDIX_SETTINGS

LETTERS = "ABCDEFGH"

letters = st.sampled_from(LETTERS)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_points(letter, seed, count):
    """Random batch with duplicates mixed in (the dedup-relevant shape)."""
    space = SearchSpace.for_subsystem(get_subsystem(letter))
    rng = np.random.default_rng(seed)
    points = [space.random(rng) for _ in range(count)]
    # Repeat a prefix so the batch always contains exact duplicates.
    return points + points[: max(1, count // 3)]


def assert_measurements_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.workload == b.workload
        assert a.subsystem_name == b.subsystem_name
        assert list(a.counters.items()) == list(b.counters.items())
        assert a.samples == b.samples
        assert a.directions == b.directions
        assert a.fired == b.fired
        assert list(a.features.items()) == list(b.features.items())
        assert a.latency == b.latency


class TestEvaluateManyBitIdentity:
    """evaluate_many == the scalar loop, RNG stream included."""

    @given(letter=letters, seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_bit_identical_to_scalar_loop(self, letter, seed):
        subsystem = get_subsystem(letter)
        points = random_points(letter, seed, 8)
        scalar_rng = np.random.default_rng(seed)
        scalar = [
            SteadyStateModel(subsystem).evaluate(p, scalar_rng)
            for p in points
        ]
        batched_rng = np.random.default_rng(seed)
        batched = BatchEvaluator(SteadyStateModel(subsystem)).evaluate_many(
            points, rng=batched_rng
        )
        assert_measurements_equal(scalar, batched)
        assert scalar_rng.bit_generator.state == batched_rng.bit_generator.state

    @given(letter=letters, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_cache_backed_batches_stay_identical(self, letter, seed):
        subsystem = get_subsystem(letter)
        points = random_points(letter, seed, 6)
        scalar_rng = np.random.default_rng(seed)
        scalar = [
            SteadyStateModel(subsystem).evaluate(p, scalar_rng)
            for p in points
        ]
        cache = EvalCache()
        evaluator = BatchEvaluator(SteadyStateModel(subsystem, cache=cache))
        cold_rng = np.random.default_rng(seed)
        cold = evaluator.evaluate_many(points, rng=cold_rng)
        warm_rng = np.random.default_rng(seed)
        warm = evaluator.evaluate_many(points, rng=warm_rng)
        assert_measurements_equal(scalar, cold)
        assert_measurements_equal(scalar, warm)
        assert scalar_rng.bit_generator.state == warm_rng.bit_generator.state
        assert len(cache) == len({str(workload_to_dict(p)) for p in points})

    def test_solve_batch_matches_scalar_solver(self):
        for letter in LETTERS:
            subsystem = get_subsystem(letter)
            model = SteadyStateModel(subsystem)
            points = random_points(letter, seed=7, count=5)
            batched = solve_batch(subsystem, points)
            for point, solve in zip(points, batched):
                scalar = model._solve(point, phase="search")
                assert solve.ideal_counters == scalar.ideal_counters
                assert solve.directions == scalar.directions
                assert solve.fired == scalar.fired
                assert solve.features == scalar.features

    def test_disabled_evaluator_routes_scalar(self):
        subsystem = get_subsystem("F")
        points = random_points("F", seed=1, count=4)
        metrics = MetricsRegistry()
        evaluator = BatchEvaluator(
            SteadyStateModel(subsystem), metrics=metrics, enabled=False
        )
        scalar_rng = np.random.default_rng(1)
        scalar = [
            SteadyStateModel(subsystem).evaluate(p, scalar_rng)
            for p in points
        ]
        rng = np.random.default_rng(1)
        assert_measurements_equal(
            scalar, evaluator.evaluate_many(points, rng=rng)
        )
        assert metrics.value("batcheval.points", mode="scalar") == len(points)
        assert metrics.value("batcheval.points", mode="vectorized") == 0.0


class TestBulkCacheApi:
    """get_many/put_many/peek_many: one fingerprint, exact statistics."""

    def _solves(self, subsystem, points):
        return solve_batch(subsystem, points)

    def test_get_many_counts_like_scalar_lookups(self):
        subsystem = get_subsystem("F")
        points = random_points("F", seed=3, count=4)
        unique = points[: len(set(map(str, points)))]
        cache = EvalCache()
        cache.put_many(subsystem, unique[:2], self._solves(subsystem, unique[:2]))
        got = cache.get_many(subsystem, unique, phase="search")
        assert [s is not None for s in got[:2]] == [True, True]
        assert all(s is None for s in got[2:])
        assert cache.hits == 2
        assert cache.misses == len(unique) - 2
        stats = cache.phase_stats()["search"]
        assert stats.hits == 2 and stats.misses == len(unique) - 2

    def test_peek_many_is_statless(self):
        subsystem = get_subsystem("F")
        points = random_points("F", seed=4, count=3)
        cache = EvalCache()
        cache.put_many(subsystem, points[:1], self._solves(subsystem, points[:1]))
        present = cache.peek_many(subsystem, points)
        assert present[0] is True
        assert cache.hits == 0 and cache.misses == 0
        assert cache.phase_stats() == {}
        # peek agrees with contains
        for point, hit in zip(points, present):
            assert hit == cache.contains(subsystem, point)

    def test_get_many_fires_observer_per_point_in_order(self):
        subsystem = get_subsystem("F")
        points = random_points("F", seed=5, count=3)[:3]
        cache = EvalCache()
        cache.put_many(subsystem, points[:1], self._solves(subsystem, points[:1]))
        events = []
        cache.observer = lambda phase, hit: events.append((phase, hit))
        cache.get_many(subsystem, points, phase="mfs")
        assert events == [("mfs", True), ("mfs", False), ("mfs", False)]

    def test_put_many_roundtrips_through_export_import(self):
        subsystem = get_subsystem("G")
        points = random_points("G", seed=6, count=3)
        cache = EvalCache()
        cache.put_many(subsystem, points, self._solves(subsystem, points))
        clone = EvalCache()
        clone.import_entries(cache.export_entries())
        got = clone.get_many(subsystem, points)
        direct = cache.get_many(subsystem, points)
        for a, b in zip(got, direct):
            assert a is not None and b is not None
            assert a.ideal_counters == b.ideal_counters
            assert a.directions == b.directions
            assert a.fired == b.fired
            assert a.features == b.features


class TestMFSPresolve:
    """Presolved MFS extraction == scalar extraction, probe for probe."""

    def _extract(self, batch, cache):
        setting = next(s for s in APPENDIX_SETTINGS if s.subsystem == "H")
        subsystem = get_subsystem("H")
        space = SearchSpace.for_subsystem(subsystem)
        monitor = AnomalyMonitor(subsystem)
        testbed = Testbed(
            subsystem, clock=SimulatedClock(), cache=cache, batch=batch
        )
        rng = np.random.default_rng(0)

        def probe(candidate):
            result = testbed.run(candidate, rng=rng, phase="mfs")
            return monitor.classify(result.measurement).symptom

        presolve = (
            (lambda pts: testbed.presolve(pts, phase="mfs"))
            if batch else None
        )
        extractor = MFSExtractor(space, probe, presolve=presolve)
        mfs = extractor.construct(
            setting.workload, setting.expected_symptom, at_seconds=0.0
        )
        return mfs, extractor.experiments, testbed, rng

    def test_presolved_extraction_matches_scalar(self):
        scalar_mfs, scalar_probes, scalar_testbed, scalar_rng = self._extract(
            batch=False, cache=None
        )
        cache = EvalCache()
        batched_mfs, batched_probes, batched_testbed, batched_rng = (
            self._extract(batch=True, cache=cache)
        )
        assert scalar_mfs is not None
        assert mfs_to_dict(batched_mfs) == mfs_to_dict(scalar_mfs)
        assert batched_probes == scalar_probes
        assert batched_testbed.clock.now == scalar_testbed.clock.now
        assert (
            scalar_rng.bit_generator.state == batched_rng.bit_generator.state
        )
        assert len(cache) > 0
        # The ladder presolve deduplicates and back-fills: the scalar
        # replay over it must be mostly hits.
        stats = cache.phase_stats()["mfs"]
        assert stats.hits > stats.misses


class TestWiredConsumers:
    """Every batched call site against its scalar twin."""

    def test_perftest_sweep_batched_equals_scalar(self):
        scalar = PerftestGenerator("C", batch=False)
        batched = PerftestGenerator("C", batch=True)
        found_scalar = scalar.sweep(seed=0, limit=260)
        found_batched = batched.sweep(seed=0, limit=260, batch_size=64)
        assert found_scalar == found_batched
        assert scalar.testbed.clock.now == batched.testbed.clock.now
        assert (
            scalar.testbed.experiments_run == batched.testbed.experiments_run
        )

    def test_perftest_batch_size_one_is_the_scalar_path(self):
        generator = PerftestGenerator("C", batch=True)
        baseline = PerftestGenerator("C", batch=False)
        assert generator.sweep(seed=0, limit=40, batch_size=1) \
            == baseline.sweep(seed=0, limit=40)

    @staticmethod
    def _event_key(event):
        return (
            event.time_seconds,
            event.symptom,
            event.tags,
            workload_to_dict(event.workload),
            sorted(event.counters.items()),
        )

    def test_random_search_batch_flag_is_transparent(self):
        on = RandomSearch("F", budget_hours=0.05, seed=9, batch=True).run()
        off = RandomSearch("F", budget_hours=0.05, seed=9, batch=False).run()
        assert [self._event_key(e) for e in on.events] \
            == [self._event_key(e) for e in off.events]

    def test_random_search_batch_probes_deterministic(self):
        def run():
            return RandomSearch(
                "F", budget_hours=0.05, seed=9,
                batch=True, batch_probes=True, cache=EvalCache(),
            ).run()

        first, second = run(), run()
        assert [self._event_key(e) for e in first.events] \
            == [self._event_key(e) for e in second.events]

    def test_collie_batch_on_off_identical(self):
        def report_key(report):
            return (
                [self._event_key(e) for e in report.events],
                [mfs_to_dict(m) for m in report.anomalies],
                report.experiments,
                report.skipped_points,
                report.elapsed_seconds,
                report.counter_ranking,
            )

        on = Collie.for_subsystem(
            "H", budget_hours=0.12, seed=3, cache=EvalCache(), batch=True
        ).run()
        off = Collie.for_subsystem(
            "H", budget_hours=0.12, seed=3, batch=False
        ).run()
        assert report_key(on) == report_key(off)

    def test_batched_run_reports_vectorized_metrics(self):
        metrics = MetricsRegistry()
        testbed = Testbed(
            "F", clock=SimulatedClock(), cache=EvalCache(),
            metrics=metrics, batch=True,
        )
        space = SearchSpace.for_subsystem(testbed.subsystem)
        rng = np.random.default_rng(0)
        points = [space.random(rng) for _ in range(6)] * 2
        testbed.run_many(points, rng=rng)
        assert metrics.value("batcheval.points", mode="vectorized") \
            == len(points)
        batch_sizes = metrics.histogram("batcheval.batch_size", phase="search")
        assert batch_sizes.count == 1 and batch_sizes.maximum == 6.0
        # One per-point-seconds observation per evaluate_many call.
        assert metrics.histogram(
            "batcheval.point_seconds", phase="search"
        ).count == 1
