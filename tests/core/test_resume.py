"""Journal-backed checkpoint/resume: kill anywhere, restart, same bits.

The crash-tolerance contract: a campaign journal's valid prefix is
enough to resume from *any* interruption point, and the resumed
campaign's final reports are byte-identical to an uninterrupted run.
The sweep below kills a recorded campaign at every journal-record
boundary (plus a torn final line) and pins exactly that.
"""

import json

import pytest

from repro.analysis.campaign import (
    completed_runs_from_journal,
    run_campaign,
)
from repro.analysis.serialize import report_to_dict
from repro.core.evalcache import EvalCache
from repro.obs import (
    VERIFY_INCOMPLETE,
    VERIFY_OK,
    FlightRecorder,
    RunJournal,
    journal_summary,
    read_journal,
    read_journal_prefix,
    reports_from_journal,
    verify_journal,
)

HOURS = 0.25
SEEDS = (1, 2, 3)


def campaign(**kwargs):
    return run_campaign(
        "collie", "H", seeds=SEEDS, budget_hours=HOURS, **kwargs
    )


@pytest.fixture(scope="module")
def full(tmp_path_factory):
    """One uninterrupted recorded campaign: (result, journal path)."""
    path = tmp_path_factory.mktemp("resume") / "full.jsonl"
    recorder = FlightRecorder(journal=RunJournal(path))
    result = campaign(recorder=recorder)
    recorder.close()
    return result, path


def report_bytes(reports):
    """Canonical serialization — the byte-identity the suite pins."""
    return json.dumps(
        [report_to_dict(report) for report in reports], sort_keys=True
    ).encode()


class TestResumeAtEveryBoundary:
    def test_killed_anywhere_resumes_bit_identically(self, full, tmp_path):
        result, path = full
        lines = path.read_text().splitlines()
        reference = report_bytes(result.reports)
        prefix_path = tmp_path / "interrupted.jsonl"
        replayed_counts = set()
        for boundary in range(len(lines) + 1):
            prefix_path.write_text(
                "".join(line + "\n" for line in lines[:boundary])
            )
            resumed = campaign(resume_from=str(prefix_path))
            assert resumed.reports == result.reports, (
                f"reports diverged resuming from boundary {boundary}"
            )
            assert report_bytes(resumed.reports) == reference, (
                f"serialization diverged at boundary {boundary}"
            )
            expected_replayed = tuple(sorted(
                completed_runs_from_journal(
                    read_journal_prefix(prefix_path)[0]
                )
            ))
            assert resumed.resumed_seeds == expected_replayed
            replayed_counts.add(len(resumed.resumed_seeds))
        # The sweep really exercised every resume shape: nothing done,
        # each partial prefix, and the everything-already-done case.
        assert replayed_counts == {0, 1, 2, 3}

    def test_torn_final_line_is_tolerated(self, full, tmp_path):
        result, path = full
        lines = path.read_text().splitlines()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(
            "".join(line + "\n" for line in lines[: len(lines) // 2])
            + '{"v":2,"t":"experi'
        )
        resumed = campaign(resume_from=str(torn))
        assert resumed.reports == result.reports
        assert report_bytes(resumed.reports) == report_bytes(result.reports)

    def test_midfile_corruption_is_rejected(self, full, tmp_path):
        _, path = full
        lines = path.read_text().splitlines()
        lines[3] = "{not json at all"
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(ValueError, match="line 4"):
            campaign(resume_from=str(corrupt))


class TestResumedJournal:
    @pytest.fixture(scope="class")
    def resumed(self, full, tmp_path_factory):
        """Interrupt mid-third-run, resume with a fresh recorder."""
        _, path = full
        records = read_journal(path)
        lines = path.read_text().splitlines()
        run_ends = [
            i for i, r in enumerate(records) if r["t"] == "run_end"
        ]
        boundary = run_ends[1] + 3  # inside the third run's body
        base = tmp_path_factory.mktemp("resumed")
        interrupted = base / "interrupted.jsonl"
        interrupted.write_text(
            "".join(line + "\n" for line in lines[:boundary])
        )
        resumed_path = base / "resumed.jsonl"
        recorder = FlightRecorder(journal=RunJournal(resumed_path))
        result = campaign(
            resume_from=str(interrupted), recorder=recorder
        )
        recorder.close()
        return result, interrupted, resumed_path

    def test_interrupted_journal_verifies_incomplete(self, resumed):
        _, interrupted, _ = resumed
        verdict, messages = verify_journal(interrupted)
        assert verdict == VERIFY_INCOMPLETE
        assert any("crashed" in m for m in messages)

    def test_resumed_journal_is_complete_and_verifies_ok(self, resumed):
        result, _, resumed_path = resumed
        assert result.resumed_seeds == (1, 2)
        verdict, messages = verify_journal(resumed_path)
        assert verdict == VERIFY_OK, messages
        summary = journal_summary(read_journal(resumed_path))
        assert summary["complete_runs"] == len(SEEDS)
        assert summary["crashed_runs"] == 0

    def test_resumed_journal_rerenders_the_full_campaign(
        self, resumed, full
    ):
        _, _, resumed_path = resumed
        _, full_path = full
        assert reports_from_journal(resumed_path) == (
            reports_from_journal(full_path)
        )


class TestWarmCache:
    def test_resumed_run_replays_over_cache_hits(self, full):
        """A resume warm-started from the crashed run's cache store
        re-evaluates nothing: the recomputed seed's hit-rate is 1.0,
        at least the completed prefix's own rate."""
        result, _ = full
        store = EvalCache()
        prefix = campaign(cache=store)
        assert prefix.reports == result.reports  # cache changes nothing
        prefix_rate = store.hit_rate
        hits_before, misses_before = store.hits, store.misses
        resumed = campaign(
            resume_from={1: prefix.reports[0], 2: prefix.reports[1]},
            cache=store,
        )
        assert resumed.reports == result.reports
        new_hits = store.hits - hits_before
        new_misses = store.misses - misses_before
        assert new_hits > 0
        resumed_rate = new_hits / (new_hits + new_misses)
        assert resumed_rate == 1.0
        assert resumed_rate >= prefix_rate

    def test_cold_resume_still_matches(self, full):
        result, _ = full
        cold = EvalCache()
        resumed = campaign(
            resume_from={1: result.reports[0]}, cache=cold
        )
        assert resumed.reports == result.reports
        assert resumed.resumed_seeds == (1,)
