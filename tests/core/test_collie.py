"""Collie end-to-end: orchestration, reports, developer workflows."""

import numpy as np
import pytest

from repro.core import Collie
from repro.core.space import SearchSpace
from repro.hardware.counters import DIAGNOSTIC_COUNTERS
from repro.verbs.constants import Opcode, QPType


@pytest.fixture(scope="module")
def short_report():
    return Collie.for_subsystem("F", seed=5, budget_hours=2.0).run()


class TestConfiguration:
    def test_invalid_counter_mode(self):
        with pytest.raises(ValueError):
            Collie.for_subsystem("F", counter_mode="magic")

    def test_perf_mode_uses_throughput_counters(self):
        collie = Collie.for_subsystem("F", counter_mode="perf")
        assert set(collie._candidate_counters()) <= {
            "tx_bytes_per_sec", "rx_bytes_per_sec",
            "tx_packets_per_sec", "rx_packets_per_sec",
        }

    def test_diag_mode_uses_the_nine(self):
        collie = Collie.for_subsystem("F", counter_mode="diag")
        assert collie._candidate_counters() == DIAGNOSTIC_COUNTERS


class TestRun:
    def test_budget_respected(self, short_report):
        assert short_report.elapsed_seconds <= 2.0 * 3600 + 60

    def test_finds_easy_anomalies_fast(self, short_report):
        """Half the space is anomalous; two hours must find several."""
        assert len(short_report.anomalies) >= 3
        assert len(short_report.found_tags()) >= 3

    def test_counter_ranking_covers_probed_counters(self, short_report):
        assert set(short_report.counter_ranking) <= set(DIAGNOSTIC_COUNTERS)
        assert short_report.counter_ranking  # non-empty

    def test_first_hit_times_only_counts_anomalous_events(self, short_report):
        hits = short_report.first_hit_times()
        for tag, seconds in hits.items():
            assert 0 <= seconds <= short_report.elapsed_seconds

    def test_mfs_probe_budget_is_accounted(self, short_report):
        assert short_report.experiments == len(short_report.events)

    def test_summary_mentions_subsystem_and_count(self, short_report):
        text = short_report.summary()
        assert "subsystem F" in text
        assert f"{len(short_report.anomalies)} anomalies" in text

    def test_determinism(self):
        a = Collie.for_subsystem("F", seed=9, budget_hours=0.5).run()
        b = Collie.for_subsystem("F", seed=9, budget_hours=0.5).run()
        assert a.found_tags() == b.found_tags()
        assert a.experiments == b.experiments


class TestDeveloperWorkflows:
    def test_diagnose_reuses_the_completed_campaign(self):
        collie = Collie.for_subsystem("H", seed=6, budget_hours=1.5)
        report = collie.run()
        experiments_after_run = report.experiments
        witness = report.anomalies[0].witness if report.anomalies else None
        if witness is not None:
            matched = collie.diagnose(witness)
            assert matched is not None
        # diagnose must not have launched a second campaign
        assert collie.last_report.experiments == experiments_after_run

    def test_check_restricted_space_returns_anomaly_list(self):
        collie = Collie.for_subsystem("H", seed=6, budget_hours=1.0)
        anomalies = collie.check_restricted_space()
        assert anomalies is collie.last_report.anomalies


class TestRestrictedSpace:
    def test_restricted_space_limits_findings(self):
        """§7.3: developers restrict the space to their app's workloads."""
        space = SearchSpace.for_subsystem(
            "F", qp_types=(QPType.RC,), opcodes=(Opcode.WRITE,),
        )
        collie = Collie.for_subsystem(
            "F", space=space, seed=2, budget_hours=1.5
        )
        report = collie.run()
        for event in report.events:
            assert event.workload.qp_type is QPType.RC
