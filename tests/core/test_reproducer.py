"""Vendor reproduction recipes."""

import pytest

from repro.core.reproducer import (
    appendix_paragraph,
    engine_command,
    recipe,
    verbs_program,
)
from repro.hardware.workload import Colocation, SGLayout, WorkloadDescriptor
from repro.verbs.constants import Opcode, QPType
from repro.workloads.appendix import setting


class TestAppendixParagraph:
    def test_matches_paper_prose_shape(self):
        """Setting #1's paragraph must read like the paper's own."""
        text = appendix_paragraph(setting(1).workload)
        assert "There are 1 connections of UD QP using SEND/RECV" in text
        assert "work queue of length 256" in text
        assert "The MTU is 2KB." in text
        assert "sending 64 requests in a batch" in text
        assert "fixed size of 2KB" in text

    def test_mixed_pattern_rendered_as_list(self):
        text = appendix_paragraph(setting(9).workload)
        assert "the pattern is [128B, 64KB, 1KB]" in text
        assert "for each direction" in text

    def test_loopback_and_placement_notes(self):
        text = appendix_paragraph(setting(13).workload)
        assert "co-located" in text
        gpu = appendix_paragraph(setting(12).workload)
        assert "gpu0" in gpu

    def test_duty_cycle_note(self):
        text = appendix_paragraph(WorkloadDescriptor(duty_cycle=0.75))
        assert "idles 25%" in text


class TestEngineCommand:
    def test_one_flag_per_dimension(self):
        command = engine_command(setting(10).workload)
        assert "--qp-type rc" in command
        assert "--opcode write" in command
        assert "--qp-num 320" in command
        assert "--batch 64" in command
        assert "--request-sizes 65536,128,128,128" in command
        assert "--bidirectional" in command

    def test_optional_flags_only_when_relevant(self):
        plain = engine_command(WorkloadDescriptor())
        assert "--bidirectional" not in plain
        assert "--with-loopback" not in plain
        loop = engine_command(
            WorkloadDescriptor(colocation=Colocation.MIXED_LOOPBACK)
        )
        assert "--with-loopback" in loop

    def test_sg_layout_flag(self):
        mixed = engine_command(
            WorkloadDescriptor(sge_per_wqe=3, sg_layout=SGLayout.MIXED,
                               msg_sizes_bytes=(65536,))
        )
        assert "--sg-layout mixed" in mixed


class TestVerbsProgram:
    def test_program_reflects_transport_and_caps(self):
        program = verbs_program(setting(5).workload)
        assert "IBV_QPT_RC" in program
        assert "max_send_wr = 1024" in program
        assert "IBV_MTU_1024" in program
        assert "ibv_post_recv" in program  # SEND needs pre-posted receives

    def test_one_sided_program_posts_no_receives(self):
        program = verbs_program(setting(10).workload)
        assert "ibv_post_recv" not in program

    def test_mr_loop_count(self):
        program = verbs_program(setting(8).workload)
        assert "m < 1024" in program  # 1024 MRs per QP


class TestRecipe:
    def test_recipe_combines_all_three_forms(self):
        text = recipe(setting(4).workload, title="Anomaly #4")
        assert "Reproduction recipe: Anomaly #4" in text
        assert "Traffic engine invocation" in text
        assert "Verbs skeleton" in text

    @pytest.mark.parametrize("number", range(1, 19))
    def test_every_appendix_setting_renders(self, number):
        text = recipe(setting(number).workload)
        assert len(text) > 200


class TestReproduceRoundTrip:
    """Search → MFS → replay: anomalies must survive the round trip."""

    @pytest.mark.parametrize("letter", list("ABCDEFGH"))
    def test_every_quick_search_anomaly_reproduces(self, letter):
        """Each subsystem's quick-budget anomalies re-trigger their
        symptom when the MFS witness is replayed on a fresh testbed —
        the canary's hard reproduction invariant, per subsystem."""
        from repro.core import Collie
        from repro.core.reproducer import reproduce_mfs

        report = Collie.for_subsystem(
            letter, budget_hours=0.5, seed=1
        ).run()
        assert report.anomalies, f"subsystem {letter} found nothing"
        for mfs in report.anomalies:
            result = reproduce_mfs(mfs, letter)
            assert result.reproduced, (
                f"subsystem {letter}: {result.describe()}"
            )
            assert result.expected_symptom in result.observed_symptoms

    def test_reproduction_result_describes_failure(self):
        from repro.core.reproducer import ReproductionResult

        result = ReproductionResult(
            expected_symptom="pause frame",
            observed_symptoms=("healthy", "healthy"),
            reproduced=False,
        )
        text = result.describe()
        assert "pause frame" in text and "healthy" in text

    def test_reproduce_rejects_zero_attempts(self):
        from repro.core.reproducer import reproduce
        from repro.workloads.appendix import setting

        with pytest.raises(ValueError):
            reproduce(setting(1).workload, "A", "pause frame", attempts=0)
