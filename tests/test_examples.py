"""Every example script runs to completion and prints its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_verbs_tour(self):
        out = run_example("verbs_tour.py")
        assert "WRITE: remote buffer now holds" in out
        assert "UD:    datagram delivered" in out

    def test_quickstart_short_budget(self):
        out = run_example("quickstart.py", "H", "1")
        assert "Searching subsystem H" in out
        assert "anomaly 1:" in out

    def test_appendix_replay(self):
        out = run_example("appendix_replay.py")
        assert "18/18 published trigger settings reproduced" in out

    def test_rpc_library_design(self):
        out = run_example("rpc_library_design.py")
        assert "ANOMALY" in out
        assert "Both suggested designs are clean" in out

    def test_dml_debugging(self):
        out = run_example("dml_debugging.py")
        assert "matches this MFS" in out
        assert "bypassed" in out

    def test_isolation_study(self):
        out = run_example("isolation_study.py")
        assert "isolation held" in out
        assert "sensitivity of mtu" in out

    def test_traffic_trace(self):
        out = run_example("traffic_trace.py")
        assert "deliver" in out and "complete" in out

    def test_fleet_search_small(self):
        out = run_example("fleet_search.py", "H", "2")
        assert "machines" in out
        assert "Fleet (9 machines) anomaly set:" in out
