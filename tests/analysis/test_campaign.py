"""Campaign orchestration."""

import pytest

from repro.analysis.campaign import APPROACHES, compare, run_campaign


class TestRunCampaign:
    def test_unknown_approach_rejected(self):
        with pytest.raises(KeyError, match="choose from"):
            run_campaign("quantum-annealing")

    def test_registry_covers_the_figure_variants(self):
        assert {"random", "bayesopt", "bayesopt+mfs", "sa-perf",
                "sa-diag", "collie-perf", "collie"} <= set(APPROACHES)

    def test_campaign_aggregation(self):
        result = run_campaign(
            "random", subsystem="H", seeds=(1, 2), budget_hours=1.0
        )
        assert result.seeds == 2
        assert result.mean_found() >= 1
        assert result.union_tags() >= set(result.per_seed_hits()[0])

    def test_custom_factory(self):
        calls = []

        def factory(subsystem, hours, seed):
            calls.append((subsystem, hours, seed))
            return run_campaign(
                "random", subsystem, (seed,), hours
            ).reports[0]

        run_campaign("custom", "H", seeds=(7,), budget_hours=0.5,
                     factory=factory)
        assert calls == [("H", 0.5, 7)]

    def test_series_feeds_figures(self):
        result = run_campaign(
            "collie", subsystem="H", seeds=(1,), budget_hours=1.0
        )
        series = result.series(max_anomalies=5)
        assert series.approach == "collie"
        assert len(series.mean_hours) == 5


class TestCompare:
    def test_one_series_per_approach(self):
        series = compare(
            ("random", "collie"), subsystem="H", seeds=(1,),
            budget_hours=1.0, max_anomalies=5,
        )
        assert [s.approach for s in series] == ["random", "collie"]
