"""Figure series assembly: time-to-find curves and counter traces."""

import math

import pytest

from repro.analysis.figures import (
    CounterTrace,
    counter_trace,
    time_to_find_series,
)
from repro.analysis.render import render_counter_trace, render_time_to_find
from repro.core.annealing import TraceEvent
from repro.hardware.workload import WorkloadDescriptor


def hits(**tag_hours):
    return {tag: hours * 3600.0 for tag, hours in tag_hours.items()}


class TestTimeToFind:
    def test_mean_and_support(self):
        series = time_to_find_series(
            "collie",
            [hits(A1=1, A2=3), hits(A1=2, A2=4, A3=9)],
            max_anomalies=3,
        )
        assert series.mean_hours[0] == pytest.approx(1.5)
        assert series.mean_hours[1] == pytest.approx(3.5)
        assert series.support == (2, 2, 1)
        assert series.mean_hours[2] == pytest.approx(9.0)

    def test_kth_time_uses_sorted_discovery_order(self):
        series = time_to_find_series(
            "x", [hits(B=5, A=1)], max_anomalies=2
        )
        assert series.mean_hours[0] == pytest.approx(1.0)
        assert series.mean_hours[1] == pytest.approx(5.0)

    def test_unreached_depth_is_nan_with_zero_support(self):
        series = time_to_find_series("x", [hits(A=1)], max_anomalies=2)
        assert series.support[1] == 0
        assert math.isnan(series.mean_hours[1])

    def test_anomalies_found_majority_rule(self):
        series = time_to_find_series(
            "x",
            [hits(A=1, B=2), hits(A=1, B=2), hits(A=1)],
            max_anomalies=3,
        )
        assert series.anomalies_found == 2

    def test_render_produces_one_row_per_k(self):
        series = time_to_find_series("x", [hits(A=1, B=2)], max_anomalies=2)
        text = render_time_to_find([series])
        assert len(text.splitlines()) == 4  # header + rule + 2 rows


def event(hours, value, counter="c", anomaly=None):
    return TraceEvent(
        time_seconds=hours * 3600.0,
        counter=counter,
        counter_value=value,
        symptom="healthy",
        tags=(),
        workload=WorkloadDescriptor(),
        kind="search",
        new_anomaly_index=anomaly,
    )


class TestCounterTrace:
    def test_normalisation_by_max(self):
        trace = counter_trace("x", [event(1, 50), event(2, 100)], "c")
        assert max(trace.normalised_values) == pytest.approx(1.0)
        assert trace.normalised_values[0] == pytest.approx(0.5)

    def test_filters_by_counter(self):
        events = [event(1, 5, counter="c"), event(2, 9, counter="other")]
        trace = counter_trace("x", events, "c")
        assert len(trace.hours) == 1

    def test_anomaly_marks(self):
        events = [event(1, 5), event(2, 9, anomaly=0), event(3, 2, anomaly=1)]
        trace = counter_trace("x", events, "c")
        assert trace.anomaly_marks == (2.0, 3.0)

    def test_empty_trace(self):
        trace = counter_trace("x", [], "c")
        assert trace.hours == ()
        assert trace.bucketed() == []

    def test_bucketing_covers_span(self):
        trace = counter_trace("x", [event(h, h) for h in range(1, 11)], "c")
        buckets = trace.bucketed(5)
        assert len(buckets) == 5
        assert buckets[-1][1] == pytest.approx(1.0)  # max at the end

    def test_render_sparkline(self):
        trace = counter_trace(
            "collie", [event(1, 5), event(2, 9, anomaly=0)], "c"
        )
        text = render_counter_trace(trace, width=20)
        assert "X" in text
        assert "collie / c" in text
