"""Campaign diffing across a vendor fix."""

import pytest

from repro.analysis.regression import diff_anomaly_sets
from repro.core import Collie
from repro.core.mfs import (
    IntervalCondition,
    MembershipCondition,
    MinimalFeatureSet,
)
from repro.hardware.fixes import apply_fixes
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import Opcode, QPType


def region(symptom="pause frame", qp_type="UD", low=256, witness=None):
    witness = witness or WorkloadDescriptor(
        qp_type=QPType(qp_type), opcode=Opcode.SEND,
        wq_depth=max(int(low), 16), msg_sizes_bytes=(512,),
    )
    return MinimalFeatureSet(
        symptom=symptom,
        witness=witness,
        memberships=(MembershipCondition("qp_type", (qp_type,)),),
        intervals=(IntervalCondition("wq_depth", low, None),),
    )


class TestDiffMechanics:
    def test_identical_sets_all_persist(self):
        a, b = region(), region()
        diff = diff_anomaly_sets([a], [b])
        assert len(diff.persisting) == 1
        assert not diff.resolved and not diff.appeared

    def test_missing_region_is_resolved(self):
        diff = diff_anomaly_sets([region()], [])
        assert len(diff.resolved) == 1
        assert diff.is_clean_fix

    def test_new_region_appears(self):
        diff = diff_anomaly_sets([], [region()])
        assert len(diff.appeared) == 1
        assert not diff.is_clean_fix

    def test_symptom_class_separates_regions(self):
        before = region(symptom="pause frame")
        after = region(symptom="low throughput")
        diff = diff_anomaly_sets([before], [after])
        assert diff.resolved == [before]
        assert diff.appeared == [after]

    def test_summary_mentions_counts(self):
        diff = diff_anomaly_sets([region()], [])
        assert "1 resolved" in diff.summary()


class TestAcrossARealFix:
    """End to end: search H, apply the register fixes, search again."""

    @pytest.fixture(scope="class")
    def campaign_diff(self):
        before = Collie.for_subsystem("H", seed=3, budget_hours=4.0).run()
        fixed = apply_fixes(get_subsystem("H"), ["A17", "A18"])
        after = Collie(fixed, seed=3, budget_hours=4.0).run()
        return before, after, diff_anomaly_sets(
            before.anomalies, after.anomalies
        )

    def test_something_was_found_both_times(self, campaign_diff):
        before, after, _ = campaign_diff
        assert before.anomalies and after.anomalies

    def test_fixed_tags_disappear_from_the_after_run(self, campaign_diff):
        _, after, _ = campaign_diff
        assert not {"A17", "A18"} & set(after.found_tags())

    def test_diff_reports_resolutions_without_false_fixes(self, campaign_diff):
        before, after, diff = campaign_diff
        resolved_or_persisting = len(diff.resolved) + len(diff.persisting)
        assert resolved_or_persisting == len(before.anomalies)
        # The UD anomaly (A15, unfixed) must persist through the diff.
        persisting_tags = set()
        for match in diff.persisting:
            persisting_tags.update(
                t for t in after.found_tags()
            )
        assert "A15" in after.found_tags()