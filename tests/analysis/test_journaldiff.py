"""Cross-run regression diffing and the observatory CLI surfaces."""

import json

import pytest

from repro.analysis.journaldiff import (
    DEFAULT_TOLERANCE,
    describe_unknown_kinds,
    diff_journals,
    journal_metrics,
    latency_metrics,
    render_diff,
    unknown_record_kinds,
)
from repro.cli import main
from repro.obs import read_journal

BUDGET_HOURS = 1.0
SEED = 2


@pytest.fixture(scope="module")
def journal_path(tmp_path_factory):
    """One fully observed search journal (coverage + spans + SA)."""
    path = tmp_path_factory.mktemp("diff") / "run.jsonl"
    code = main([
        "search", "H", "--hours", str(BUDGET_HOURS), "--seed", str(SEED),
        "--journal", str(path), "--coverage", "--profile",
    ])
    assert code == 0
    return path


def doctor(records, *, drop_anomalies=False, slow_ttfa=False):
    """A tampered copy of a journal's records."""
    doctored = []
    first_anomalous_seen = False
    for record in records:
        record = dict(record)
        if drop_anomalies:
            if record["t"] == "anomaly":
                continue
            if record["t"] == "run_end":
                record["anomalies"] = 0
            if record["t"] == "experiment":
                record["symptom"] = "healthy"
        if slow_ttfa and record["t"] == "experiment":
            if record["symptom"] != "healthy" and not first_anomalous_seen:
                first_anomalous_seen = True
                record["time_seconds"] = record["time_seconds"] * 2.0
        doctored.append(record)
    return doctored


class TestDiffJournals:
    def test_self_diff_is_clean(self, journal_path):
        records = read_journal(journal_path)
        result = diff_journals(records, records)
        assert result.ok
        assert result.regressions == []
        for entry in result.entries:
            if entry.gated:
                assert entry.baseline == entry.candidate

    def test_dropped_anomaly_regresses(self, journal_path):
        records = read_journal(journal_path)
        result = diff_journals(records, doctor(records, drop_anomalies=True))
        assert not result.ok
        assert "anomalies" in [e.metric for e in result.regressions]

    def test_slower_ttfa_regresses(self, journal_path):
        records = read_journal(journal_path)
        result = diff_journals(records, doctor(records, slow_ttfa=True))
        assert not result.ok
        regressed = [e.metric for e in result.regressions]
        assert "time_to_first_anomaly_seconds" in regressed

    def test_tolerance_forgives_small_drift(self, journal_path):
        records = read_journal(journal_path)
        candidate = []
        for record in records:
            record = dict(record)
            if record["t"] == "experiment":
                record["time_seconds"] = record["time_seconds"] * 1.01
            candidate.append(record)
        result = diff_journals(records, candidate, tolerance=0.05)
        ttfa = [
            e for e in result.entries
            if e.metric == "time_to_first_anomaly_seconds"
        ][0]
        assert not ttfa.regressed

    def test_metrics_report_the_run_shape(self, journal_path):
        records = read_journal(journal_path)
        metrics = journal_metrics(records)
        assert metrics["anomalies"] >= 1
        assert metrics["experiments"] > 0
        assert 0.0 < metrics["coverage_fraction"] <= 1.0
        assert metrics["time_to_first_anomaly_seconds"] is not None
        assert metrics["span_self_seconds"]

    def test_render_names_the_verdict(self, journal_path):
        records = read_journal(journal_path)
        clean = render_diff(diff_journals(records, records))
        assert "no regressions" in clean
        broken = render_diff(
            diff_journals(records, doctor(records, drop_anomalies=True))
        )
        assert "REGRESSION" in broken and "anomalies" in broken
        assert DEFAULT_TOLERANCE == 0.05


class TestUnknownKinds:
    def test_known_kinds_pass_silently(self, journal_path):
        records = read_journal(journal_path)
        assert unknown_record_kinds(records) == {}
        assert describe_unknown_kinds(records) == []

    def test_unknown_kinds_counted_and_described(self):
        records = [
            {"t": "experiment", "symptom": "healthy"},
            {"t": "flux_capacitor"},
            {"t": "flux_capacitor"},
            {"t": "gc_pause"},
        ]
        assert unknown_record_kinds(records) == {
            "flux_capacitor": 2, "gc_pause": 1,
        }
        assert describe_unknown_kinds(records) == [
            "unknown record kind skipped: flux_capacitor (n=2)",
            "unknown record kind skipped: gc_pause (n=1)",
        ]


class TestLatencyMetrics:
    def _latency(self, p99, inflation):
        return {
            "t": "latency", "time_seconds": 0.0, "p50_us": 1.0,
            "p90_us": 2.0, "p99_us": p99, "mean_us": 1.0,
            "baseline_us": 1.0, "inflation": inflation,
            "components": {}, "tags": [],
        }

    def test_absent_stream_reports_none(self):
        metrics = latency_metrics([{"t": "experiment"}])
        assert metrics == {
            "latency_records": 0,
            "latency_p99_us_median": None,
            "latency_inflation_max": None,
        }

    def test_median_and_worst_inflation(self):
        records = [
            self._latency(10.0, 1.0),
            self._latency(30.0, 5.5),
            self._latency(20.0, 2.0),
        ]
        metrics = latency_metrics(records)
        assert metrics["latency_records"] == 3
        assert metrics["latency_p99_us_median"] == 20.0
        assert metrics["latency_inflation_max"] == 5.5

    def test_journal_metrics_carry_the_latency_family(self, journal_path):
        metrics = journal_metrics(read_journal(journal_path))
        assert metrics["latency_records"] > 0
        assert metrics["latency_p99_us_median"] is not None
        assert metrics["latency_inflation_max"] is not None


class TestDiffCLI:
    def test_self_diff_exits_zero(self, journal_path, capsys):
        code = main([
            "journal", "diff", str(journal_path), str(journal_path),
        ])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_doctored_journal_exits_nonzero(
        self, journal_path, tmp_path, capsys
    ):
        doctored_path = tmp_path / "doctored.jsonl"
        with open(doctored_path, "w") as handle:
            for record in doctor(
                read_journal(journal_path), drop_anomalies=True
            ):
                handle.write(json.dumps(record) + "\n")
        code = main([
            "journal", "diff", str(journal_path), str(doctored_path),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "anomalies" in out

    def test_unreadable_journal_exits_two(self, journal_path, tmp_path):
        missing = tmp_path / "missing.jsonl"
        code = main(["journal", "diff", str(journal_path), str(missing)])
        assert code == 2

    @pytest.mark.parametrize("empty_side", ("baseline", "candidate"))
    def test_empty_journal_exits_two(
        self, journal_path, tmp_path, empty_side, capsys
    ):
        """A zero-record journal is unreadable input, not a clean diff.

        Regression: an empty *candidate* used to produce bogus -100%
        regressions (exit 1), and an empty *baseline* a silent
        'no regressions' pass (exit 0) — the dangerous ordering.
        """
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        order = (
            [str(empty), str(journal_path)]
            if empty_side == "baseline"
            else [str(journal_path), str(empty)]
        )
        code = main(["journal", "diff", *order])
        assert code == 2
        err = capsys.readouterr().err
        assert "no records" in err and str(empty) in err

    @pytest.mark.parametrize("empty_side", ("baseline", "candidate"))
    def test_truncated_to_zero_records_exits_two(
        self, journal_path, tmp_path, empty_side
    ):
        """A journal torn mid-first-line parses to zero records."""
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"v": 3, "t": "run_sta')  # no newline: torn tail
        order = (
            [str(torn), str(journal_path)]
            if empty_side == "baseline"
            else [str(journal_path), str(torn)]
        )
        assert main(["journal", "diff", *order]) == 2

    def test_tolerance_flag_parses(self, journal_path, capsys):
        code = main([
            "journal", "diff", str(journal_path), str(journal_path),
            "--baseline-tolerance", "0.2",
        ])
        assert code == 0
        assert "20%" in capsys.readouterr().out


class TestObservatoryCLI:
    def test_report_json_is_machine_readable(self, journal_path, capsys):
        code = main(["report", str(journal_path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["runs"] == 1
        assert payload["metrics"]["anomalies"] >= 1
        assert payload["runs"][0]["subsystem"] == "H"

    def test_coverage_command_renders_tables(self, journal_path, capsys):
        code = main(["coverage", str(journal_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload-space coverage" in out
        assert "touched" in out

    def test_profile_command_exports_a_valid_trace(
        self, journal_path, tmp_path, capsys
    ):
        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        code = main([
            "profile", str(journal_path), "--trace-out", str(trace_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "account for 100.0%" in out
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        assert trace["traceEvents"]

    def test_profile_without_spans_warns(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        code = main([
            "search", "H", "--hours", "0.3", "--seed", "3",
            "--journal", str(path),
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["profile", str(path)]) == 1
