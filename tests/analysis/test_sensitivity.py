"""Sensitivity profiles around anomalous workloads."""

import pytest

from repro.analysis.sensitivity import SensitivityAnalyzer
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import setting


@pytest.fixture(scope="module")
def analyzer():
    return SensitivityAnalyzer(get_subsystem("F"))


class TestProfile:
    def test_rejects_unknown_dimension(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.profile(setting(1).workload, "qp_type")

    def test_mtu_profile_of_anomaly_3_shows_the_boundary(self, analyzer):
        """#3 is MTU-gated: small MTUs pause, large ones are healthy."""
        profile = analyzer.profile(setting(3).workload, "mtu")
        assert profile.boundary is not None
        healthy_value, anomalous_value = profile.boundary
        assert anomalous_value <= 1024 < healthy_value <= 4096
        assert 1024.0 in profile.anomalous_values
        assert 4096.0 not in profile.anomalous_values

    def test_batch_profile_of_anomaly_1(self, analyzer):
        """#1 needs a large posting batch; the profile localises it."""
        profile = analyzer.profile(setting(1).workload, "wqe_batch")
        assert 64.0 in profile.anomalous_values
        assert 1.0 not in profile.anomalous_values

    def test_flat_dimension_has_no_boundary(self, analyzer):
        profile = analyzer.profile(setting(1).workload, "mrs_per_qp")
        assert profile.boundary is None

    def test_points_cover_the_ladder(self, analyzer):
        profile = analyzer.profile(setting(3).workload, "mtu")
        assert [p.value for p in profile.points] == [
            256.0, 512.0, 1024.0, 2048.0, 4096.0,
        ]

    def test_render_marks_anomalous_rows(self, analyzer):
        text = analyzer.profile(setting(3).workload, "mtu").render()
        assert "sensitivity of mtu" in text
        assert "!" in text

    def test_profile_all_returns_many_dimensions(self, analyzer):
        profiles = analyzer.profile_all(setting(1).workload)
        names = {p.dimension for p in profiles}
        assert {"mtu", "num_qps", "wqe_batch", "wq_depth"} <= names
