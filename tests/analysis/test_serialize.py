"""Report/MFS/workload JSON round-trips."""

import json

import pytest

from repro.analysis.serialize import (
    FORMAT_VERSION,
    load_anomalies,
    mfs_from_dict,
    mfs_to_dict,
    report_to_dict,
    save_report,
    workload_from_dict,
    workload_to_dict,
)
from repro.core import Collie
from repro.core.mfs import (
    IntervalCondition,
    MembershipCondition,
    MinimalFeatureSet,
)
from repro.hardware.workload import (
    Colocation,
    Direction,
    SGLayout,
    WorkloadDescriptor,
)
from repro.verbs.constants import Opcode, QPType


def sample_workload():
    return WorkloadDescriptor(
        qp_type=QPType.UD,
        opcode=Opcode.SEND,
        direction=Direction.BIDIRECTIONAL,
        colocation=Colocation.MIXED_LOOPBACK,
        mtu=2048,
        num_qps=37,
        wqe_batch=5,
        sge_per_wqe=3,
        sg_layout=SGLayout.MIXED,
        wq_depth=333,
        msg_sizes_bytes=(64, 2048, 777),
        mrs_per_qp=9,
        mr_bytes=12345,
        src_device="numa1",
        dst_device="numa0",
        duty_cycle=0.5,
    )


class TestWorkloadRoundTrip:
    def test_roundtrip_is_identity(self):
        original = sample_workload()
        assert workload_from_dict(workload_to_dict(original)) == original

    def test_dict_is_json_compatible(self):
        json.dumps(workload_to_dict(sample_workload()))

    def test_missing_new_fields_default(self):
        data = workload_to_dict(WorkloadDescriptor())
        data.pop("sg_layout")
        data.pop("duty_cycle")
        workload = workload_from_dict(data)
        assert workload.sg_layout is SGLayout.EVEN
        assert workload.duty_cycle == 1.0


class TestMFSRoundTrip:
    def make_mfs(self):
        return MinimalFeatureSet(
            symptom="pause frame",
            witness=sample_workload(),
            intervals=(IntervalCondition("num_qps", 16.0, None),),
            memberships=(MembershipCondition("qp_type", ("UD",)),),
            requires_mix=True,
            found_at_seconds=1234.5,
            probe_experiments=42,
        )

    def test_roundtrip_preserves_matching(self):
        original = self.make_mfs()
        restored = mfs_from_dict(mfs_to_dict(original))
        assert restored == original
        probe = WorkloadDescriptor(
            qp_type=QPType.UD, opcode=Opcode.SEND, num_qps=64, mtu=2048,
            msg_sizes_bytes=(128, 2048),
        )
        assert original.matches(probe) == restored.matches(probe)


class TestReportPersistence:
    @pytest.fixture(scope="class")
    def report(self):
        return Collie.for_subsystem("H", seed=1, budget_hours=1.0).run()

    def test_report_to_dict_fields(self, report):
        data = report_to_dict(report)
        assert data["format_version"] == FORMAT_VERSION
        assert data["subsystem"] == "H"
        assert data["experiments"] == report.experiments
        assert len(data["anomalies"]) == len(report.anomalies)
        json.dumps(data)

    def test_save_and_load_anomalies(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, str(path))
        anomalies = load_anomalies(str(path))
        assert len(anomalies) == len(report.anomalies)
        for restored, original in zip(anomalies, report.anomalies):
            assert restored.describe() == original.describe()

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "anomalies": []}))
        with pytest.raises(ValueError, match="format"):
            load_anomalies(str(path))
