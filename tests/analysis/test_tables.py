"""Table rendering for the benchmark harness."""

from repro.analysis.render import render_table
from repro.analysis.tables import TABLE2_COLUMNS, table1_rows, table2_rows


class TestTable1:
    def test_eight_rows_in_order(self):
        rows = table1_rows()
        assert [r["Type"] for r in rows] == list("ABCDEFGH")

    def test_columns_match_paper(self):
        for row in table1_rows():
            assert set(row) == {
                "Type", "RNIC", "Speed", "CPU", "PCIe", "NPS", "Memory",
                "GPU", "BIOS", "Kernel",
            }

    def test_distinctive_cells(self):
        rows = {r["Type"]: r for r in table1_rows()}
        assert rows["A"]["Speed"] == "25 Gbps"
        assert rows["G"]["NPS"] == 2
        assert rows["H"]["RNIC"].startswith("P2100G")


class TestTable2:
    def test_eighteen_rows_ordered(self):
        rows = table2_rows()
        assert len(rows) == 18
        assert [r["#"] for r in rows] == [f"A{i}" for i in range(1, 19)]

    def test_found_flag(self):
        rows = table2_rows(found_tags=["A1", "A13"])
        by_tag = {r["#"]: r for r in rows}
        assert by_tag["A1"]["Found"] == "yes"
        assert by_tag["A2"]["Found"] == "no"
        assert table2_rows()[0]["Found"] == "n/a"

    def test_symptom_column_matches_catalog(self):
        by_tag = {r["#"]: r for r in table2_rows()}
        assert by_tag["A2"]["Symptom"] == "low throughput"
        assert by_tag["A10"]["Symptom"] == "pause frame"

    def test_rnic_column_splits_f_and_h(self):
        rows = table2_rows()
        assert all(r["RNIC"] == "CX-6" for r in rows[:13])
        assert all(r["RNIC"] == "P2100" for r in rows[13:])


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table([{"a": 1, "bb": "xy"}, {"a": 100, "bb": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_empty_table(self):
        assert render_table([]) == "(empty table)"

    def test_column_subset(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_table2_renders(self):
        text = render_table(table2_rows(), columns=TABLE2_COLUMNS)
        assert "A18" in text
