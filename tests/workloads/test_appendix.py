"""The 18 Appendix A trigger settings reproduce their published anomaly.

This is the central fidelity test of the reproduction: every simplified
concrete setting from the paper's appendix must trigger its Table 2 row's
anomaly with the published symptom, and near-miss variants must not.
"""

import numpy as np
import pytest

from repro.core.monitor import AnomalyMonitor
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import (
    APPENDIX_SETTINGS,
    setting,
    settings_for_subsystem,
)


def classify(s):
    subsystem = get_subsystem(s.subsystem)
    measurement = SteadyStateModel(subsystem, noise=0.0).evaluate(
        s.workload, np.random.default_rng(0)
    )
    verdict = AnomalyMonitor(subsystem).classify(measurement)
    return measurement, verdict


class TestCatalog:
    def test_eighteen_settings(self):
        assert len(APPENDIX_SETTINGS) == 18
        assert sorted(s.number for s in APPENDIX_SETTINGS) == list(range(1, 19))

    def test_thirteen_on_f_five_on_h(self):
        assert len(settings_for_subsystem("F")) == 13
        assert len(settings_for_subsystem("H")) == 5

    def test_fifteen_new_three_old(self):
        """The paper: 15 new anomalies, 3 known before Collie."""
        assert sum(1 for s in APPENDIX_SETTINGS if s.is_new) == 15
        old = {s.expected_tag for s in APPENDIX_SETTINGS if not s.is_new}
        assert old == {"A9", "A12", "A13"}

    def test_lookup(self):
        assert setting(4).expected_tag == "A4"
        with pytest.raises(KeyError):
            setting(19)

    def test_numbering_swap_between_appendix_and_table2(self):
        """Appendix #7 is the QP trigger -> Table 2 row 8, and vice versa."""
        assert setting(7).expected_tag == "A8"
        assert setting(7).workload.num_qps == 480
        assert setting(8).expected_tag == "A7"
        assert setting(8).workload.total_mrs == 24 * 1024


@pytest.mark.parametrize(
    "s", APPENDIX_SETTINGS, ids=[f"setting{s.number}" for s in APPENDIX_SETTINGS]
)
class TestEverySettingTriggers:
    def test_expected_tag_fires(self, s):
        measurement, _ = classify(s)
        assert s.expected_tag in measurement.tags

    def test_symptom_matches_table2(self, s):
        _, verdict = classify(s)
        assert verdict.symptom == s.expected_symptom


def classify_variant(number, **changes):
    """Classify an appendix setting with one condition broken."""
    import dataclasses

    s = setting(number)
    varied = dataclasses.replace(s, workload=s.workload.replace(**changes))
    return classify(varied)[1]


class TestNearMisses:
    """Breaking one published condition defuses the anomaly."""

    def test_a1_small_batch_is_healthy(self):
        assert classify_variant(1, wqe_batch=8).symptom == "healthy"

    def test_a1_shallow_wq_is_healthy(self):
        assert classify_variant(1, wq_depth=64).symptom == "healthy"

    def test_a2_large_batch_changes_symptom_not_health(self):
        # batch >= 64 with a long WQ flips #2's silent slowdown into
        # #1's pause storm (the paper presents them as siblings).
        verdict = classify_variant(2, wqe_batch=64)
        assert verdict.symptom == "pause frame"

    def test_a3_large_mtu_is_healthy(self):
        assert classify_variant(3, mtu=4096).symptom == "healthy"

    def test_a4_short_sg_list_is_healthy(self):
        assert classify_variant(4, sge_per_wqe=2).symptom == "healthy"

    def test_a7_few_mrs_is_healthy(self):
        assert classify_variant(8, mrs_per_qp=8).symptom == "healthy"

    def test_a8_deep_wq_is_healthy(self):
        assert classify_variant(7, wq_depth=128).symptom == "healthy"

    def test_a9_even_layout_is_healthy(self):
        from repro.hardware.workload import SGLayout

        assert classify_variant(
            9, sg_layout=SGLayout.EVEN
        ).symptom == "healthy"

    def test_a11_same_socket_is_healthy(self):
        assert classify_variant(11, dst_device="numa0").symptom == "healthy"

    def test_a13_remote_only_is_healthy(self):
        from repro.hardware.workload import Colocation

        assert classify_variant(
            13, colocation=Colocation.REMOTE_ONLY
        ).symptom == "healthy"

    def test_a15_shallow_wq_is_healthy(self):
        assert classify_variant(15, wq_depth=16).symptom == "healthy"

    def test_a18_large_messages_are_healthy(self):
        verdict = classify_variant(
            18, msg_sizes_bytes=(256 * 1024,), mr_bytes=1024 * 1024
        )
        assert verdict.symptom == "healthy"
