"""§7.3 application traffic models hit the documented anomalies."""

import numpy as np
import pytest

from repro.core.monitor import AnomalyMonitor
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.applications import (
    dml_byteps_fixed_workload,
    dml_byteps_workload,
    farm_style_workload,
    fasst_style_workload,
    herd_style_workload,
    rpc_library_control_workload,
    rpc_library_space,
    rpc_library_workload,
)
from repro.verbs.constants import Opcode, QPType


def classify_on(letter, workload):
    subsystem = get_subsystem(letter)
    measurement = SteadyStateModel(subsystem, noise=0.0).evaluate(
        workload, np.random.default_rng(0)
    )
    return measurement, AnomalyMonitor(subsystem).classify(measurement)


class TestRPCLibrary:
    def test_throughput_tuned_read_path_hits_anomaly_4(self):
        """§7.3 suggestion (1): READ + large batch + long SG list lands
        in anomaly #4's region on the 200G subsystems."""
        measurement, verdict = classify_on("F", rpc_library_workload())
        assert verdict.is_anomalous
        assert "A4" in measurement.tags

    def test_write_based_data_path_avoids_it(self):
        """Collie's suggested mitigation: batch WRITEs instead."""
        _, verdict = classify_on("F", rpc_library_workload(use_read=False))
        assert verdict.symptom == "healthy"

    def test_deep_control_receive_queue_hits_anomaly_5(self):
        """§7.3 suggestion (2): deep RQs for small control SENDs."""
        measurement, verdict = classify_on(
            "F", rpc_library_control_workload()
        )
        assert "A5" in measurement.tags

    def test_careful_queue_depth_avoids_it(self):
        _, verdict = classify_on(
            "F", rpc_library_control_workload(recv_queue_depth=128)
        )
        assert verdict.symptom == "healthy"

    def test_restricted_space_is_rc_only(self):
        space = rpc_library_space("B")
        assert space.qp_types == (QPType.RC,)
        assert Opcode.READ in space.opcodes


class TestDMLFramework:
    def test_byteps_pattern_hits_anomaly_9_on_e(self):
        """§7.3 case 2: the tensor+metadata SG mix on subsystem E."""
        measurement, verdict = classify_on("E", dml_byteps_workload())
        assert verdict.symptom == "pause frame"
        assert "A9" in measurement.tags

    def test_mfs_guided_fix_restores_health(self):
        _, verdict = classify_on("E", dml_byteps_fixed_workload())
        assert verdict.symptom == "healthy"

    def test_same_pattern_is_fine_on_relaxed_ordering_hosts(self):
        """The root cause is PCIe strict ordering; subsystem B (Intel,
        relaxed ordering honoured) digests the same traffic."""
        _, verdict = classify_on("B", dml_byteps_workload())
        assert verdict.symptom == "healthy"


class TestPublishedDesignPoints:
    """§9: every published design choice is anomalous *somewhere*."""

    def test_herd_hits_the_ud_anomalies_on_cx6_200(self):
        measurement, verdict = classify_on("F", herd_style_workload())
        assert verdict.is_anomalous
        assert set(measurement.tags) & {"A1", "A2"}

    def test_herd_hits_the_p2100_rx_wqe_cache(self):
        measurement, verdict = classify_on("H", herd_style_workload())
        assert "A15" in measurement.tags

    def test_farm_reads_hit_anomaly_3_at_small_mtu(self):
        measurement, verdict = classify_on("F", farm_style_workload())
        assert "A3" in measurement.tags

    def test_fasst_clean_on_cx6_but_not_p2100(self):
        _, on_f = classify_on("F", fasst_style_workload())
        _, on_h = classify_on("H", fasst_style_workload())
        assert on_f.symptom == "healthy"
        assert on_h.symptom == "pause frame"

    def test_every_design_is_clean_somewhere(self):
        for build in (herd_style_workload, farm_style_workload,
                      fasst_style_workload):
            verdicts = [
                classify_on(letter, build())[1].symptom
                for letter in ("B", "F", "H")
            ]
            assert "healthy" in verdicts
