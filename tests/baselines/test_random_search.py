"""The random fuzzing baseline."""

import pytest

from repro.baselines import RandomSearch


@pytest.fixture(scope="module")
def short_run():
    return RandomSearch("F", budget_hours=2.0, seed=11).run()


class TestRandomSearch:
    def test_budget_respected(self, short_run):
        assert short_run.elapsed_seconds <= 2.0 * 3600 + 60

    def test_finds_the_easy_anomalies(self, short_run):
        """Half of F's space is anomalous: two hours must hit several."""
        assert len(short_run.found_tags()) >= 3

    def test_event_log_is_complete(self, short_run):
        assert short_run.experiments == len(short_run.events)
        assert all(e.kind == "search" for e in short_run.events)

    def test_first_hit_times_are_ordered_subset(self, short_run):
        hits = short_run.first_hit_times()
        for seconds in hits.values():
            assert 0 < seconds <= short_run.elapsed_seconds

    def test_determinism(self):
        a = RandomSearch("F", budget_hours=0.3, seed=7).run()
        b = RandomSearch("F", budget_hours=0.3, seed=7).run()
        assert a.found_tags() == b.found_tags()

    def test_different_seeds_differ(self):
        a = RandomSearch("F", budget_hours=0.3, seed=1).run()
        b = RandomSearch("F", budget_hours=0.3, seed=2).run()
        assert [e.workload for e in a.events][:5] != (
            [e.workload for e in b.events][:5]
        )

    def test_random_misses_the_hard_anomalies(self):
        """§5: 'random inputs can only find few anomalies' — the
        conditions-heavy rows of Table 2 stay out of reach."""
        run = RandomSearch("F", budget_hours=10.0, seed=3).run()
        hard = {"A4", "A5", "A6", "A7", "A8"}
        assert len(hard & set(run.found_tags())) <= 1
