"""Bayesian Optimization baseline: GP correctness and the search loop."""

import numpy as np
import pytest

from repro.baselines.bayesopt import (
    BayesOptSearch,
    GaussianProcess,
    encode_workload,
    encode_workload_modern,
    expected_improvement,
)
from repro.hardware.workload import Direction, WorkloadDescriptor
from repro.verbs.constants import Opcode, QPType


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        x = rng.random((20, 3))
        y = np.sin(x.sum(axis=1)) * 5
        gp = GaussianProcess(noise=1e-6)
        gp.fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=0.05)
        assert (std < 0.2).all()

    def test_uncertainty_grows_away_from_data(self):
        gp = GaussianProcess()
        gp.fit(np.zeros((5, 2)), np.arange(5.0))
        _, near = gp.predict(np.zeros((1, 2)))
        _, far = gp.predict(np.full((1, 2), 10.0))
        assert far[0] > near[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 2)))


class TestExpectedImprovement:
    def test_zero_std_no_improvement(self):
        ei = expected_improvement(
            np.array([1.0]), np.array([1e-12]), best=2.0
        )
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_higher_mean_higher_ei(self):
        ei = expected_improvement(
            np.array([1.0, 3.0]), np.array([0.5, 0.5]), best=2.0
        )
        assert ei[1] > ei[0]

    def test_uncertainty_adds_ei_below_best(self):
        ei = expected_improvement(
            np.array([1.0, 1.0]), np.array([0.01, 2.0]), best=2.0
        )
        assert ei[1] > ei[0]


class TestEncoding:
    def test_encoding_is_deterministic_and_bounded(self):
        w = WorkloadDescriptor(num_qps=512, mtu=4096,
                               msg_sizes_bytes=(128, 65536))
        a, b = encode_workload(w), encode_workload(w)
        assert np.array_equal(a, b)
        assert (a >= 0).all() and (a <= 1.5).all()

    def test_distinct_workloads_encode_differently(self):
        a = encode_workload(WorkloadDescriptor(num_qps=8))
        b = encode_workload(WorkloadDescriptor(num_qps=8192))
        assert not np.array_equal(a, b)

    def test_paper_encoding_is_ordinal(self):
        """The ref-[31]-faithful encoding treats transports as ordinals
        on one continuous axis — the representation pathology §7.2's BO
        result stems from."""
        rc = encode_workload(WorkloadDescriptor(qp_type=QPType.RC))
        uc = encode_workload(
            WorkloadDescriptor(qp_type=QPType.UC, opcode=Opcode.WRITE)
        )
        ud = encode_workload(
            WorkloadDescriptor(qp_type=QPType.UD, opcode=Opcode.SEND,
                               msg_sizes_bytes=(512,))
        )
        assert rc[0] < uc[0] < ud[0]  # artificial ordering, one axis

    def test_paper_encoding_compresses_raw_ladders(self):
        low = encode_workload(WorkloadDescriptor(num_qps=1))
        mid = encode_workload(WorkloadDescriptor(num_qps=128))
        # 1 and 128 QPs are nearly indistinguishable on a raw-linear axis.
        assert abs(mid[7] - low[7]) < 0.01

    def test_modern_encoding_onehot(self):
        rc = encode_workload_modern(WorkloadDescriptor(qp_type=QPType.RC))
        ud = encode_workload_modern(
            WorkloadDescriptor(qp_type=QPType.UD, opcode=Opcode.SEND,
                               msg_sizes_bytes=(512,))
        )
        assert rc[0] == 1.0 and rc[2] == 0.0
        assert ud[0] == 0.0 and ud[2] == 1.0

    def test_direction_bit(self):
        bi = encode_workload_modern(
            WorkloadDescriptor(direction=Direction.BIDIRECTIONAL)
        )
        uni = encode_workload_modern(WorkloadDescriptor())
        assert bi[6] == 1.0 and uni[6] == 0.0

    def test_encoding_choice_validated(self):
        with pytest.raises(ValueError):
            BayesOptSearch("F", encoding="quantum")


class TestSearchLoop:
    def test_short_run_produces_report(self):
        report = BayesOptSearch("F", budget_hours=1.0, seed=3).run()
        assert report.name == "bayesopt"
        assert report.experiments > 10
        assert report.elapsed_seconds <= 1.0 * 3600 + 60

    def test_finds_easy_anomalies(self):
        report = BayesOptSearch("F", budget_hours=2.0, seed=4).run()
        assert len(report.found_tags()) >= 2

    def test_no_mfs_variant(self):
        report = BayesOptSearch(
            "F", budget_hours=0.5, seed=5, use_mfs=False
        ).run()
        assert report.name == "bayesopt-nomfs"
        assert all(e.kind != "mfs" for e in report.events)
