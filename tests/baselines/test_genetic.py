"""The genetic-algorithm baseline (§8 extension)."""

import numpy as np
import pytest

from repro.baselines.genetic import GeneticSearch
from repro.core.space import SearchSpace
from repro.hardware.subsystems import get_subsystem


class TestConfiguration:
    def test_population_validation(self):
        with pytest.raises(ValueError):
            GeneticSearch("F", population=2)

    def test_tournament_validation(self):
        with pytest.raises(ValueError):
            GeneticSearch("F", population=8, tournament=9)


class TestGenetics:
    def test_crossover_mixes_parents(self):
        search = GeneticSearch("F", seed=3)
        space = SearchSpace.for_subsystem(get_subsystem("F"))
        rng = np.random.default_rng(0)
        mother, father = space.random(rng), space.random(rng)
        child = search._crossover(mother, father)
        parent_values = {
            dim: {getattr(mother, dim), getattr(father, dim)}
            for dim in ("mtu", "num_qps", "wqe_batch", "wq_depth")
        }
        for dim, values in parent_values.items():
            assert getattr(child, dim) in values

    def test_crossover_output_is_valid(self):
        from repro.verbs.constants import SUPPORTED_OPCODES

        search = GeneticSearch("F", seed=4)
        space = search.space
        rng = np.random.default_rng(1)
        for _ in range(50):
            child = search._crossover(space.random(rng), space.random(rng))
            assert child.opcode in SUPPORTED_OPCODES[child.qp_type]

    def test_tournament_prefers_fitter(self):
        search = GeneticSearch("F", seed=5, population=8, tournament=8)
        space = search.space
        rng = np.random.default_rng(2)
        individuals = [space.random(rng) for _ in range(8)]
        scored = [(float(i), ind) for i, ind in enumerate(individuals)]
        assert search._select(scored) is individuals[-1]


class TestRun:
    @pytest.fixture(scope="class")
    def report(self):
        return GeneticSearch("H", seed=2, budget_hours=2.0).run()

    def test_budget_respected(self, report):
        assert report.elapsed_seconds <= 2.0 * 3600 + 60

    def test_finds_easy_anomalies(self, report):
        assert len(report.found_tags()) >= 2

    def test_events_have_genetic_name(self, report):
        assert report.name == "genetic"
        assert report.experiments == len(report.events)

    def test_determinism(self):
        a = GeneticSearch("H", seed=9, budget_hours=0.5).run()
        b = GeneticSearch("H", seed=9, budget_hours=0.5).run()
        assert a.found_tags() == b.found_tags()
