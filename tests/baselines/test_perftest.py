"""The Perftest-style generator and the §7.1 reproducibility claim."""

import pytest

from repro.baselines.perftest import PerftestGenerator
from repro.verbs.constants import Opcode, QPType


@pytest.fixture(scope="module")
def generator():
    return PerftestGenerator("F")


class TestExpressibleSpace:
    def test_all_workloads_are_perftest_shaped(self, generator):
        for workload in generator.workloads():
            assert workload.wqe_batch == 1  # no batching flag
            assert workload.sge_per_wqe == 1  # single-SGE WRs
            assert len(set(workload.msg_sizes_bytes)) == 1  # fixed size
            assert workload.mrs_per_qp == 1  # one buffer

    def test_transport_validity_respected(self, generator):
        for workload in generator.workloads():
            if workload.qp_type is QPType.UD:
                assert workload.opcode is Opcode.SEND
                assert workload.max_msg_bytes <= workload.mtu
            if workload.qp_type is QPType.UC:
                assert workload.opcode is not Opcode.READ

    def test_space_is_a_few_thousand_points(self, generator):
        count = sum(1 for _ in generator.workloads())
        assert 1000 < count < 20000


class TestSweep:
    def test_limit_bounds_experiments(self, generator):
        found = generator.sweep(limit=50)
        assert generator.testbed.experiments_run == 50
        assert isinstance(found, dict)

    @pytest.mark.slow
    def test_paper_claim_only_a_handful_reproducible(self):
        """§7.1: only 4 of the 18 anomalies were reproducible with
        existing workload generators, 'with very careful parameter
        tuning'.  Our perftest model reaches a similarly small subset."""
        found_f = set(PerftestGenerator("F").sweep())
        found_h = set(PerftestGenerator("H").sweep())
        reachable = found_f | found_h
        assert 2 <= len(reachable) <= 6
        # The batching/SG-list anomalies are structurally out of reach.
        assert not reachable & {"A1", "A4", "A5", "A9", "A10", "A14",
                                "A16", "A18"}
