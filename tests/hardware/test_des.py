"""Discrete-event engine and flow simulation."""

import numpy as np
import pytest

from repro.hardware.des.engine import EventScheduler
from repro.hardware.des.flowsim import FlowParameters, FlowSimulation
from repro.hardware.des.validate import validate_measurement
from repro.hardware.model import SteadyStateModel
from repro.hardware.pfc import steady_state_pause_ratio
from repro.hardware.subsystems import get_subsystem


class TestEventScheduler:
    def test_events_execute_in_time_order(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule(3.0, lambda: log.append("c"))
        scheduler.schedule(1.0, lambda: log.append("a"))
        scheduler.schedule(2.0, lambda: log.append("b"))
        scheduler.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_are_fifo(self):
        scheduler = EventScheduler()
        log = []
        for name in "abc":
            scheduler.schedule(1.0, lambda n=name: log.append(n))
        scheduler.run()
        assert log == ["a", "b", "c"]

    def test_now_advances_with_execution(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(5.0, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_cancellation(self):
        scheduler = EventScheduler()
        log = []
        handle = scheduler.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        scheduler.run()
        assert log == []
        assert scheduler.executed == 0

    def test_run_until_stops_at_deadline(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule(1.0, lambda: log.append(1))
        scheduler.schedule(10.0, lambda: log.append(10))
        scheduler.run_until(5.0)
        assert log == [1]
        assert scheduler.now == 5.0
        assert scheduler.pending == 1

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                scheduler.schedule(1.0, lambda: chain(n + 1))

        scheduler.schedule(0.0, lambda: chain(0))
        scheduler.run()
        assert log == [0, 1, 2, 3]
        assert scheduler.now == 3.0

    def test_runaway_guard(self):
        scheduler = EventScheduler()

        def forever():
            scheduler.schedule(0.0, forever)

        scheduler.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            scheduler.run(max_events=100)


class TestFlowParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowParameters(injection_pps=0, service_pps=1)
        with pytest.raises(ValueError):
            FlowParameters(injection_pps=1, service_pps=1,
                           xoff_fraction=0.2, xon_fraction=0.5)

    def test_threshold_geometry(self):
        params = FlowParameters(injection_pps=1e6, service_pps=1e6)
        assert params.xon_bytes < params.xoff_bytes < params.buffer_bytes


class TestFlowSimulation:
    def run_flow(self, injection, service, duration=2.0, **kwargs):
        params = FlowParameters(
            injection_pps=injection, service_pps=service, **kwargs
        )
        return FlowSimulation(params).run(duration)

    def test_underloaded_flow_never_pauses(self):
        result = self.run_flow(injection=1e6, service=2e6)
        assert result.pause_ratio == 0.0
        assert result.pause_frames == 0
        assert result.achieved_pps == pytest.approx(1e6, rel=0.05)

    @pytest.mark.parametrize("ratio", [0.3, 0.5, 0.8])
    def test_overloaded_flow_matches_closed_form(self, ratio):
        """Emergent pause duty cycle == 1 - service/injection."""
        injection = 2e6
        service = injection * ratio
        result = self.run_flow(injection, service, duration=4.0)
        expected = steady_state_pause_ratio(injection, service)
        assert result.pause_ratio == pytest.approx(expected, abs=0.04)
        assert result.achieved_pps == pytest.approx(service, rel=0.06)

    def test_losslessness(self):
        result = self.run_flow(injection=4e6, service=1e6)
        params = FlowParameters(injection_pps=4e6, service_pps=1e6)
        assert result.max_occupancy_bytes <= params.buffer_bytes

    def test_pause_frames_counted(self):
        result = self.run_flow(injection=2e6, service=1e6)
        assert result.pause_frames >= 1

    def test_zero_service_stalls_after_buffer_fills(self):
        result = self.run_flow(injection=1e6, service=0.0, duration=1.0)
        assert result.pause_ratio > 0.9
        assert result.delivered_packets == 0

    def test_duration_validation(self):
        sim = FlowSimulation(FlowParameters(injection_pps=1e6,
                                            service_pps=1e6))
        with pytest.raises(ValueError):
            sim.run(0)

    def test_determinism(self):
        a = self.run_flow(2e6, 1.3e6)
        b = self.run_flow(2e6, 1.3e6)
        assert a.delivered_packets == b.delivered_packets
        assert a.pause_seconds == b.pause_seconds


class TestCrossValidation:
    @pytest.mark.parametrize("setting_number", [1, 3, 9, 15, 18])
    def test_pause_anomalies_agree_with_analytic_model(self, setting_number):
        from repro.workloads.appendix import setting

        s = setting(setting_number)
        subsystem = get_subsystem(s.subsystem)
        measurement = SteadyStateModel(subsystem, noise=0.0).evaluate(
            s.workload, np.random.default_rng(0)
        )
        for result in validate_measurement(measurement):
            assert result.agrees, (
                f"setting {setting_number} {result.direction}: analytic "
                f"pause {result.analytic_pause_ratio:.3f} vs simulated "
                f"{result.simulated_pause_ratio:.3f}"
            )

    def test_healthy_workload_agrees(self):
        from repro.hardware.workload import WorkloadDescriptor

        subsystem = get_subsystem("F")
        measurement = SteadyStateModel(subsystem, noise=0.0).evaluate(
            WorkloadDescriptor(), np.random.default_rng(0)
        )
        (result,) = validate_measurement(measurement)
        assert result.simulated_pause_ratio == 0.0
        assert result.agrees
