"""PFC: the closed-form pause duty cycle vs an event-level queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.pfc import (
    PAUSE_RATIO_THRESHOLD,
    PFCIngressQueue,
    pause_frames_per_second,
    steady_state_pause_ratio,
)


class TestSteadyStatePauseRatio:
    def test_no_pause_when_service_keeps_up(self):
        assert steady_state_pause_ratio(100, 100) == 0.0
        assert steady_state_pause_ratio(100, 150) == 0.0

    def test_half_service_pauses_half_the_time(self):
        assert steady_state_pause_ratio(100, 50) == pytest.approx(0.5)

    def test_degenerate_inputs(self):
        assert steady_state_pause_ratio(0, 10) == 0.0
        assert steady_state_pause_ratio(10, 0) == 1.0

    @given(
        arrival=st.floats(min_value=0.001, max_value=1e12),
        service=st.floats(min_value=0.0, max_value=1e12),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, arrival, service):
        ratio = steady_state_pause_ratio(arrival, service)
        assert 0.0 <= ratio <= 1.0

    @given(
        arrival=st.floats(min_value=1.0, max_value=1e9),
        s1=st.floats(min_value=0.0, max_value=1e9),
        s2=st.floats(min_value=0.0, max_value=1e9),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_service(self, arrival, s1, s2):
        low, high = sorted((s1, s2))
        assert steady_state_pause_ratio(arrival, high) <= (
            steady_state_pause_ratio(arrival, low)
        )

    def test_threshold_matches_paper(self):
        assert PAUSE_RATIO_THRESHOLD == 0.001


class TestPauseFrameRate:
    def test_zero_ratio_means_no_frames(self):
        assert pause_frames_per_second(0.0, 100.0) == 0.0

    def test_faster_links_need_more_frames(self):
        slow = pause_frames_per_second(0.1, 25.0)
        fast = pause_frames_per_second(0.1, 200.0)
        assert fast > slow


class TestIngressQueueSimulation:
    def make_queue(self):
        return PFCIngressQueue(
            capacity_bytes=100_000, xoff_bytes=60_000, xon_bytes=20_000
        )

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PFCIngressQueue(capacity_bytes=10, xoff_bytes=20, xon_bytes=5)
        with pytest.raises(ValueError):
            PFCIngressQueue(capacity_bytes=100, xoff_bytes=50, xon_bytes=60)

    def test_underloaded_queue_never_pauses(self):
        queue = self.make_queue()
        for _ in range(1000):
            queue.tick(arriving_bytes=500, draining_bytes=800)
        assert queue.pause_ratio == 0.0

    def test_overloaded_queue_matches_closed_form(self):
        """Event-level duty cycle converges to 1 - service/arrival."""
        queue = self.make_queue()
        arrival, service = 1000, 600
        for _ in range(200_000):
            queue.tick(arriving_bytes=arrival, draining_bytes=service)
        expected = steady_state_pause_ratio(arrival, service)
        assert queue.pause_ratio == pytest.approx(expected, abs=0.02)

    def test_losslessness_invariant(self):
        """The queue never overflows its capacity (PFC's purpose)."""
        queue = self.make_queue()
        for _ in range(50_000):
            queue.tick(arriving_bytes=5_000, draining_bytes=100)
        assert queue.occupancy <= queue.capacity_bytes

    def test_hysteresis_produces_transitions(self):
        queue = self.make_queue()
        for _ in range(10_000):
            queue.tick(arriving_bytes=1500, draining_bytes=1000)
        assert queue.pause_transitions >= 2
