"""Counter definitions and the vendor monitor's sampling."""

import numpy as np
import pytest

from repro.hardware.counters import (
    ALL_COUNTERS,
    DIAGNOSTIC_COUNTERS,
    MINIMIZED_COUNTERS,
    PERFORMANCE_COUNTERS,
    VendorMonitor,
    average_counters,
    is_diagnostic,
    is_performance,
)


class TestCounterSets:
    def test_exactly_nine_diagnostic_counters(self):
        """§7.2: "Our vendors provide us with 9 diagnostic counters"."""
        assert len(DIAGNOSTIC_COUNTERS) == 9

    def test_families_are_disjoint_and_cover_all(self):
        assert not set(DIAGNOSTIC_COUNTERS) & set(PERFORMANCE_COUNTERS)
        assert set(ALL_COUNTERS) == (
            set(DIAGNOSTIC_COUNTERS) | set(PERFORMANCE_COUNTERS)
        )

    def test_classifiers(self):
        assert is_diagnostic("rx_wqe_cache_miss")
        assert is_performance("tx_bytes_per_sec")
        assert not is_diagnostic("tx_bytes_per_sec")

    def test_minimized_set_is_throughput_only(self):
        assert MINIMIZED_COUNTERS <= set(PERFORMANCE_COUNTERS)
        assert "pause_duration_us_per_sec" not in MINIMIZED_COUNTERS


class TestVendorMonitor:
    def test_noise_validation(self):
        with pytest.raises(ValueError):
            VendorMonitor(np.random.default_rng(0), noise=-0.1)

    def test_noiseless_sampling_is_exact(self):
        monitor = VendorMonitor(np.random.default_rng(0), noise=0.0)
        sample = monitor.sample({"tx_bytes_per_sec": 123.0}, second=0)
        assert sample["tx_bytes_per_sec"] == 123.0
        assert sample.get("rx_wqe_cache_miss") == 0.0

    def test_noise_perturbs_but_stays_close(self):
        monitor = VendorMonitor(np.random.default_rng(0), noise=0.02)
        values = [
            monitor.sample({"tx_bytes_per_sec": 1e9}, second=i)[
                "tx_bytes_per_sec"
            ]
            for i in range(200)
        ]
        assert np.std(values) / np.mean(values) == pytest.approx(0.02, abs=0.01)
        assert all(v >= 0 for v in values)

    def test_zero_values_stay_zero(self):
        monitor = VendorMonitor(np.random.default_rng(0), noise=0.5)
        sample = monitor.sample({}, second=0)
        assert all(sample.get(name) == 0.0 for name in ALL_COUNTERS)

    def test_sample_window_length_and_seconds(self):
        monitor = VendorMonitor(np.random.default_rng(0))
        window = monitor.sample_window({"tx_bytes_per_sec": 1.0}, 4,
                                       start_second=10)
        assert [s.second for s in window] == [10, 11, 12, 13]


class TestAveraging:
    def test_average_of_empty_is_zero(self):
        averaged = average_counters([])
        assert averaged["tx_bytes_per_sec"] == 0.0

    def test_average_matches_mean(self):
        monitor = VendorMonitor(np.random.default_rng(0), noise=0.0)
        samples = monitor.sample_window({"qpc_cache_miss": 7.0}, 4)
        assert average_counters(samples)["qpc_cache_miss"] == pytest.approx(7.0)
