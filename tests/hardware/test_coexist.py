"""Co-existence / performance-isolation model (§7.4)."""

import pytest

from repro.hardware.coexist import CoexistenceModel
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import Opcode


@pytest.fixture
def model(subsystem_f):
    return CoexistenceModel(subsystem_f)


def small_message_victim():
    """A cache-sensitive tenant: small unbatched writes."""
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=64, wqe_batch=1,
        msg_sizes_bytes=(512,), mtu=1024,
    )


def cache_thrashing_aggressor():
    """Stays inside its bandwidth share but floods the QPC/MTT caches."""
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=4096, mrs_per_qp=32,
        msg_sizes_bytes=(512,), mtu=1024, wqe_batch=1,
    )


def polite_aggressor():
    """Few connections, big messages: no opaque-resource pressure."""
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=4, msg_sizes_bytes=(1048576,), mtu=4096,
    )


class TestValidation:
    def test_share_bounds(self, model):
        with pytest.raises(ValueError):
            model.evaluate(
                small_message_victim(), polite_aggressor(), victim_share=0.0
            )


class TestBandwidthIsolation:
    def test_polite_neighbour_leaves_fair_share_intact(self, model):
        result = model.evaluate(
            small_message_victim(), polite_aggressor(), victim_share=0.5
        )
        assert result.interference_factor >= 0.95

    def test_fair_share_scales_with_allocation(self, model):
        half = model.evaluate(
            small_message_victim(), polite_aggressor(), victim_share=0.5
        )
        assert half.fair_share_gbps == pytest.approx(
            half.alone_gbps * 0.5
        )


class TestOpaqueResourceLeak:
    def test_cache_thrashing_neighbour_breaks_isolation(self, model):
        """§7.4's claim: bandwidth isolation does not protect against a
        tenant that floods the connection/translation caches."""
        result = model.evaluate(
            small_message_victim(), cache_thrashing_aggressor(),
            victim_share=0.5,
        )
        assert result.interference_factor < 0.7

    def test_leak_needs_exposed_victims(self, model):
        """Large-message victims hide the misses behind the pipeline."""
        bulky_victim = WorkloadDescriptor(
            opcode=Opcode.WRITE, num_qps=8, msg_sizes_bytes=(1048576,),
            mtu=4096, wqe_batch=16,
        )
        result = model.evaluate(
            bulky_victim, cache_thrashing_aggressor(), victim_share=0.5
        )
        assert result.interference_factor > 0.8

    def test_interference_monotone_in_aggressor_scale(self, model):
        small = cache_thrashing_aggressor().replace(num_qps=512, mrs_per_qp=2)
        big = cache_thrashing_aggressor()
        mild = model.evaluate(small_message_victim(), small, victim_share=0.5)
        severe = model.evaluate(small_message_victim(), big, victim_share=0.5)
        assert severe.interference_factor <= mild.interference_factor

    def test_recv_wqe_cache_leak_for_send_victims(self, model):
        send_victim = WorkloadDescriptor(
            opcode=Opcode.SEND, num_qps=16, wq_depth=128,
            msg_sizes_bytes=(1024,), mtu=1024, wqe_batch=1,
        )
        recv_flooder = WorkloadDescriptor(
            opcode=Opcode.SEND, num_qps=512, wq_depth=2048,
            msg_sizes_bytes=(1024,), mtu=1024,
        )
        result = model.evaluate(send_victim, recv_flooder, victim_share=0.5)
        assert result.interference_factor < 0.9


class TestUndefinedInterference:
    """Zero fair share yields the NaN sentinel, not a crash or a 0."""

    def _result_with_alone_rate(self, subsystem_f, share, alone_scale):
        import dataclasses

        import numpy as np

        from repro.hardware.coexist import CoexistenceResult
        from repro.hardware.model import SteadyStateModel

        rng = np.random.default_rng(0)
        model = SteadyStateModel(subsystem_f, noise=0.0)
        measurement = model.evaluate(small_message_victim(), rng)
        alone = dataclasses.replace(
            measurement,
            directions=tuple(
                dataclasses.replace(
                    d,
                    wire_bytes_per_sec=d.wire_bytes_per_sec * alone_scale,
                )
                for d in measurement.directions
            ),
        )
        return CoexistenceResult(
            victim_alone=alone,
            victim_shared=measurement,
            aggressor=polite_aggressor(),
            bandwidth_share=share,
        )

    def test_zero_alone_rate_is_nan(self, subsystem_f):
        import math

        result = self._result_with_alone_rate(
            subsystem_f, share=0.5, alone_scale=0.0
        )
        assert result.fair_share_gbps == 0.0
        assert math.isnan(result.interference_factor)

    def test_zero_share_is_nan(self, subsystem_f):
        import math

        result = self._result_with_alone_rate(
            subsystem_f, share=0.0, alone_scale=1.0
        )
        assert math.isnan(result.interference_factor)

    def test_sentinel_is_the_module_constant(self, subsystem_f):
        import math

        from repro.hardware.coexist import UNDEFINED_INTERFERENCE

        assert math.isnan(UNDEFINED_INTERFERENCE)
        result = self._result_with_alone_rate(
            subsystem_f, share=0.0, alone_scale=0.0
        )
        assert math.isnan(result.interference_factor)

    def test_positive_fair_share_stays_finite(self, subsystem_f):
        import math

        result = self._result_with_alone_rate(
            subsystem_f, share=0.25, alone_scale=1.0
        )
        assert math.isfinite(result.interference_factor)
        assert result.interference_factor == pytest.approx(1.0)


class TestDegradeCoherence:
    """_degrade rebuilds every observable field, not just throughput."""

    @pytest.fixture
    def solo(self, subsystem_f):
        import numpy as np

        from repro.hardware.model import SteadyStateModel

        return SteadyStateModel(subsystem_f, noise=0.0).evaluate(
            small_message_victim(), np.random.default_rng(1)
        )

    def test_directions_and_counters_cohere(self, solo):
        from repro.hardware.coexist import _degrade

        degraded = _degrade(solo, 0.5)
        fwd = degraded.directions[0]
        assert fwd.wire_gbps == pytest.approx(
            0.5 * solo.directions[0].wire_gbps
        )
        # Ideal counters (noise=0) must be re-synthesized from the
        # contended directions, not carried over at solo values.
        assert degraded.counters["tx_bytes_per_sec"] == pytest.approx(
            fwd.wire_bytes_per_sec
        )
        assert degraded.counters[
            "pause_duration_us_per_sec"
        ] == pytest.approx(degraded.pause_ratio * 1e6)

    def test_samples_follow_the_counters(self, solo):
        from repro.hardware.coexist import _degrade

        degraded = _degrade(solo, 0.5)
        assert len(degraded.samples) == len(solo.samples)
        for sample in degraded.samples:
            assert sample.get("tx_bytes_per_sec") == pytest.approx(
                degraded.counters["tx_bytes_per_sec"]
            )

    def test_latency_rederived_with_subsystem(self, solo, subsystem_f):
        from repro.hardware.coexist import _degrade

        assert solo.latency is not None
        carried = _degrade(solo, 0.5)
        rederived = _degrade(solo, 0.5, subsystem=subsystem_f)
        # Without the subsystem the profile is carried through; with it
        # the profile is rebuilt from the contended directions.  Either
        # way it is never silently dropped.
        assert carried.latency is solo.latency
        assert rederived.latency is not None
        assert rederived.latency is not solo.latency

    def test_degrade_preserves_ground_truth_fields(self, solo):
        from repro.hardware.coexist import _degrade

        degraded = _degrade(solo, 0.5)
        assert degraded.workload == solo.workload
        assert degraded.subsystem_name == solo.subsystem_name
        assert degraded.fired == solo.fired
        assert degraded.features == solo.features

    def test_factor_one_is_identity(self, solo):
        from repro.hardware.coexist import _degrade

        same = _degrade(solo, 1.0)
        assert same.directions == solo.directions
        assert same.counters == pytest.approx(solo.counters)
