"""Co-existence / performance-isolation model (§7.4)."""

import pytest

from repro.hardware.coexist import CoexistenceModel
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import Opcode


@pytest.fixture
def model(subsystem_f):
    return CoexistenceModel(subsystem_f)


def small_message_victim():
    """A cache-sensitive tenant: small unbatched writes."""
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=64, wqe_batch=1,
        msg_sizes_bytes=(512,), mtu=1024,
    )


def cache_thrashing_aggressor():
    """Stays inside its bandwidth share but floods the QPC/MTT caches."""
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=4096, mrs_per_qp=32,
        msg_sizes_bytes=(512,), mtu=1024, wqe_batch=1,
    )


def polite_aggressor():
    """Few connections, big messages: no opaque-resource pressure."""
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=4, msg_sizes_bytes=(1048576,), mtu=4096,
    )


class TestValidation:
    def test_share_bounds(self, model):
        with pytest.raises(ValueError):
            model.evaluate(
                small_message_victim(), polite_aggressor(), victim_share=0.0
            )


class TestBandwidthIsolation:
    def test_polite_neighbour_leaves_fair_share_intact(self, model):
        result = model.evaluate(
            small_message_victim(), polite_aggressor(), victim_share=0.5
        )
        assert result.interference_factor >= 0.95

    def test_fair_share_scales_with_allocation(self, model):
        half = model.evaluate(
            small_message_victim(), polite_aggressor(), victim_share=0.5
        )
        assert half.fair_share_gbps == pytest.approx(
            half.alone_gbps * 0.5
        )


class TestOpaqueResourceLeak:
    def test_cache_thrashing_neighbour_breaks_isolation(self, model):
        """§7.4's claim: bandwidth isolation does not protect against a
        tenant that floods the connection/translation caches."""
        result = model.evaluate(
            small_message_victim(), cache_thrashing_aggressor(),
            victim_share=0.5,
        )
        assert result.interference_factor < 0.7

    def test_leak_needs_exposed_victims(self, model):
        """Large-message victims hide the misses behind the pipeline."""
        bulky_victim = WorkloadDescriptor(
            opcode=Opcode.WRITE, num_qps=8, msg_sizes_bytes=(1048576,),
            mtu=4096, wqe_batch=16,
        )
        result = model.evaluate(
            bulky_victim, cache_thrashing_aggressor(), victim_share=0.5
        )
        assert result.interference_factor > 0.8

    def test_interference_monotone_in_aggressor_scale(self, model):
        small = cache_thrashing_aggressor().replace(num_qps=512, mrs_per_qp=2)
        big = cache_thrashing_aggressor()
        mild = model.evaluate(small_message_victim(), small, victim_share=0.5)
        severe = model.evaluate(small_message_victim(), big, victim_share=0.5)
        assert severe.interference_factor <= mild.interference_factor

    def test_recv_wqe_cache_leak_for_send_victims(self, model):
        send_victim = WorkloadDescriptor(
            opcode=Opcode.SEND, num_qps=16, wq_depth=128,
            msg_sizes_bytes=(1024,), mtu=1024, wqe_batch=1,
        )
        recv_flooder = WorkloadDescriptor(
            opcode=Opcode.SEND, num_qps=512, wq_depth=2048,
            msg_sizes_bytes=(1024,), mtu=1024,
        )
        result = model.evaluate(send_victim, recv_flooder, victim_share=0.5)
        assert result.interference_factor < 0.9
