"""Cache models: exact LRU vs the closed-form steady-state estimate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.caches import LRUCache, pressure_score, steady_state_miss_rate


class TestLRUCache:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_hit_after_insert(self):
        cache = LRUCache(4)
        assert not cache.access("a")  # miss inserts
        assert cache.access("a")

    def test_eviction_is_lru_order(self):
        cache = LRUCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refreshes a; b is now LRU
        cache.access("c")  # evicts b
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_never_exceeds_capacity(self):
        cache = LRUCache(8)
        for key in range(100):
            cache.access(key)
        assert len(cache) == 8

    @given(
        capacity=st.integers(min_value=1, max_value=64),
        keys=st.lists(st.integers(min_value=0, max_value=100), max_size=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_property(self, capacity, keys):
        cache = LRUCache(capacity)
        for key in keys:
            cache.access(key)
        assert len(cache) <= capacity
        assert cache.hits + cache.misses == len(keys)
        assert cache.evictions == max(0, cache.misses - min(capacity,
                                      cache.misses))
        # distinct keys beyond capacity must have caused evictions
        assert cache.evictions >= max(0, cache.misses - capacity)

    def test_access_many_counts_misses(self):
        cache = LRUCache(4)
        assert cache.access_many(range(6)) == 6
        assert cache.access_many([4, 5]) == 0

    def test_reset_stats(self):
        cache = LRUCache(2)
        cache.access("x")
        cache.reset_stats()
        assert cache.hits == cache.misses == cache.evictions == 0


class TestSteadyStateMissRate:
    def test_fits_entirely_no_misses(self):
        assert steady_state_miss_rate(100, 100) == 0.0
        assert steady_state_miss_rate(50, 100) == 0.0

    def test_double_working_set_half_misses(self):
        assert steady_state_miss_rate(200, 100) == pytest.approx(0.5)

    def test_degenerate_inputs(self):
        assert steady_state_miss_rate(0, 100) == 0.0
        assert steady_state_miss_rate(100, 0) == 1.0

    def test_matches_lru_on_uniform_trace(self):
        """The closed form tracks the exact simulator within a few %."""
        rng = np.random.default_rng(3)
        capacity, working_set, accesses = 128, 512, 40_000
        cache = LRUCache(capacity)
        cache.access_many(rng.integers(0, working_set, accesses))
        cache.reset_stats()
        cache.access_many(rng.integers(0, working_set, accesses))
        predicted = steady_state_miss_rate(working_set, capacity)
        assert cache.miss_rate == pytest.approx(predicted, abs=0.05)

    @given(
        working_set=st.integers(min_value=1, max_value=10_000),
        capacity=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded_and_monotone(self, working_set, capacity):
        rate = steady_state_miss_rate(working_set, capacity)
        assert 0.0 <= rate < 1.0
        # more capacity never hurts
        assert steady_state_miss_rate(working_set, capacity + 1) <= rate


class TestPressureScore:
    def test_zero_capacity_is_full_pressure(self):
        assert pressure_score(10, 0) == 1.0

    def test_rises_before_overflow(self):
        """Unlike the miss rate, pressure is already visible below
        capacity — that is the search gradient's whole point."""
        assert pressure_score(50, 100) > 0.0
        assert steady_state_miss_rate(50, 100) == 0.0

    @given(
        a=st.floats(min_value=0, max_value=1e9),
        b=st.floats(min_value=0, max_value=1e9),
        capacity=st.floats(min_value=1, max_value=1e9),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_working_set(self, a, b, capacity):
        low, high = sorted((a, b))
        assert pressure_score(low, capacity) <= pressure_score(high, capacity)

    def test_bounded_below_one(self):
        assert pressure_score(1e12, 1.0) < 1.0
