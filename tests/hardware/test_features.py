"""Feature extraction: the vector quirk gates and counters read."""

import pytest

from repro.hardware.features import extract_features
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import (
    Colocation,
    Direction,
    SGLayout,
    WorkloadDescriptor,
)
from repro.verbs.constants import Opcode, QPType


@pytest.fixture
def f():
    return get_subsystem("F")


class TestTransportFeatures:
    def test_raw_dimensions_pass_through(self, f):
        w = WorkloadDescriptor(num_qps=64, wqe_batch=16, sge_per_wqe=4,
                               wq_depth=256, mtu=2048)
        feats = extract_features(w, f)
        assert feats["num_qps"] == 64
        assert feats["wqe_batch"] == 16
        assert feats["sge_per_wqe"] == 4
        assert feats["wq_depth"] == 256
        assert feats["mtu"] == 2048
        assert feats["qp_type"] == "RC"
        assert feats["opcode"] == "WRITE"

    def test_bidirectional_doubles_qp_working_set(self, f):
        uni = extract_features(WorkloadDescriptor(num_qps=100), f)
        bi = extract_features(
            WorkloadDescriptor(num_qps=100,
                               direction=Direction.BIDIRECTIONAL), f,
        )
        assert uni["total_qps"] == 100
        assert bi["total_qps"] == 200
        assert bi["bidirectional"] == 1.0


class TestCacheFeatures:
    def test_rxq_features_zero_for_one_sided_ops(self, f):
        w = WorkloadDescriptor(opcode=Opcode.WRITE, num_qps=1024, wq_depth=4096)
        feats = extract_features(w, f)
        assert feats["rxq_capacity_miss"] == 0.0
        assert feats["rxq_burst_miss"] == 0.0

    def test_rxq_capacity_miss_for_send(self, f):
        w = WorkloadDescriptor(
            opcode=Opcode.SEND, num_qps=16, wq_depth=1024, mtu=1024,
            msg_sizes_bytes=(1024,),
        )
        feats = extract_features(w, f)
        total = f.rnic.rx_wqe_cache.total_entries
        assert feats["rxq_capacity_miss"] == pytest.approx(
            1 - total / (16 * 1024)
        )

    def test_rxq_burst_miss_requires_deep_wq(self, f):
        per_qp = f.rnic.rx_wqe_cache.per_qp_entries
        shallow = WorkloadDescriptor(
            opcode=Opcode.SEND, wq_depth=per_qp, wqe_batch=128,
            msg_sizes_bytes=(1024,),
        )
        deep = shallow.replace(wq_depth=per_qp * 2)
        assert extract_features(shallow, f)["rxq_burst_miss"] == 0.0
        assert extract_features(deep, f)["rxq_burst_miss"] > 0.0

    def test_qpc_and_mtt_misses(self, f):
        w = WorkloadDescriptor(num_qps=512, mrs_per_qp=32)
        feats = extract_features(w, f)
        assert feats["qpc_miss"] == pytest.approx(
            1 - f.rnic.qpc_cache_entries / 512
        )
        assert feats["mtt_miss"] == pytest.approx(
            1 - f.rnic.mtt_cache_entries / (512 * 32)
        )


class TestHostFeatures:
    def test_cross_socket_detection(self, f):
        same = extract_features(WorkloadDescriptor(), f)
        crossed = extract_features(
            WorkloadDescriptor(dst_device="numa1"), f
        )
        assert same["crosses_socket"] == 0.0
        assert crossed["crosses_socket"] == 1.0

    def test_gpu_detection_and_root_complex(self, f):
        # Subsystem F has misconfigured ACSCtl, so GPU paths detour.
        feats = extract_features(WorkloadDescriptor(dst_device="gpu0"), f)
        assert feats["uses_gpu_memory"] == 1.0
        assert feats["via_root_complex"] == 1.0
        assert feats["sink_via_root_complex"] == 1.0

    def test_src_gpu_only_counts_as_sink_when_bidirectional(self, f):
        uni = extract_features(WorkloadDescriptor(src_device="gpu0"), f)
        bi = extract_features(
            WorkloadDescriptor(src_device="gpu0",
                               direction=Direction.BIDIRECTIONAL), f,
        )
        assert uni["sink_via_root_complex"] == 0.0
        assert bi["sink_via_root_complex"] == 1.0

    def test_platform_flags(self, f):
        feats = extract_features(WorkloadDescriptor(), f)
        assert feats["strict_ordering"] == 1.0  # F: no relaxed ordering
        assert feats["weak_cross_socket"] == 1.0
        assert feats["loopback_unlimited"] == 1.0  # CX-6 lacks limiter

    def test_h_platform_flags(self):
        h = get_subsystem("H")
        feats = extract_features(WorkloadDescriptor(), h)
        assert feats["strict_ordering"] == 0.0
        assert feats["weak_cross_socket"] == 0.0
        assert feats["loopback_unlimited"] == 0.0

    def test_loopback_flag(self, f):
        feats = extract_features(
            WorkloadDescriptor(colocation=Colocation.MIXED_LOOPBACK), f
        )
        assert feats["loopback"] == 1.0


class TestPatternFeatures:
    def test_mix_and_fractions(self, f):
        w = WorkloadDescriptor(msg_sizes_bytes=(128, 65536, 1024, 64))
        feats = extract_features(w, f)
        assert feats["mixes_small_and_large"] == 1.0
        assert feats["small_frac"] == pytest.approx(0.75)
        assert feats["large_frac"] == pytest.approx(0.25)

    def test_sg_entry_mix_feature(self, f):
        w = WorkloadDescriptor(
            sge_per_wqe=3, sg_layout=SGLayout.MIXED,
            msg_sizes_bytes=(128, 65536, 1024),
        )
        assert extract_features(w, f)["sg_entry_mix"] == 1.0

    def test_load_aggregates(self, f):
        w = WorkloadDescriptor(
            num_qps=100, wqe_batch=10, msg_sizes_bytes=(512, 65536)
        )
        feats = extract_features(w, f)
        assert feats["short_req_outstanding"] == pytest.approx(500)
        assert feats["wqe_outstanding_bytes"] == 100 * 10 * w.wqe_bytes
