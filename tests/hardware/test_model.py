"""The steady-state model: healthy baselines, monotonicity, counters."""

import numpy as np
import pytest

from repro.core.monitor import AnomalyMonitor
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem, list_subsystems
from repro.hardware.workload import Direction, WorkloadDescriptor
from repro.verbs.constants import Opcode, QPType


def evaluate(subsystem, workload, seed=0, noise=0.0):
    model = SteadyStateModel(subsystem, noise=noise)
    return model.evaluate(workload, np.random.default_rng(seed))


def healthy_workloads():
    return [
        WorkloadDescriptor(),  # plain 64KB WRITE
        WorkloadDescriptor(opcode=Opcode.READ, mtu=4096,
                           msg_sizes_bytes=(1048576,)),
        WorkloadDescriptor(opcode=Opcode.SEND, mtu=4096,
                           msg_sizes_bytes=(16384,)),
        WorkloadDescriptor(qp_type=QPType.UD, opcode=Opcode.SEND, mtu=2048,
                           msg_sizes_bytes=(1024,), wqe_batch=8),
        WorkloadDescriptor(msg_sizes_bytes=(64,), wqe_batch=32, num_qps=16),
        WorkloadDescriptor(direction=Direction.BIDIRECTIONAL, mtu=4096,
                           msg_sizes_bytes=(262144,)),
        WorkloadDescriptor(qp_type=QPType.UC, opcode=Opcode.WRITE,
                           msg_sizes_bytes=(32768,)),
    ]


class TestHealthyBaselines:
    @pytest.mark.parametrize("letter", [s.name for s in list_subsystems()])
    def test_standard_workloads_healthy_everywhere(self, letter):
        subsystem = get_subsystem(letter)
        monitor = AnomalyMonitor(subsystem)
        for workload in healthy_workloads():
            measurement = evaluate(subsystem, workload)
            verdict = monitor.classify(measurement)
            assert verdict.symptom == "healthy", (
                f"{letter}: {workload.summary()} -> {verdict.symptom}"
            )
            assert measurement.tags == ()

    def test_large_writes_reach_line_rate(self, subsystem_f):
        measurement = evaluate(
            subsystem_f, WorkloadDescriptor(mtu=4096, msg_sizes_bytes=(1048576,))
        )
        fwd = measurement.directions[0]
        assert fwd.wire_gbps == pytest.approx(
            subsystem_f.rnic.line_rate_gbps, rel=0.01
        )
        assert measurement.pause_ratio == 0.0

    def test_tiny_messages_reach_packet_rate(self, subsystem_f):
        measurement = evaluate(
            subsystem_f,
            WorkloadDescriptor(
                qp_type=QPType.UD, opcode=Opcode.SEND, mtu=1024,
                msg_sizes_bytes=(64,), wqe_batch=32, num_qps=16,
            ),
        )
        assert measurement.total_packets_per_sec == pytest.approx(
            subsystem_f.rnic.max_pps, rel=0.05
        )


class TestBidirectional:
    def test_both_directions_reported(self, subsystem_f):
        uni = evaluate(subsystem_f, WorkloadDescriptor())
        bi = evaluate(
            subsystem_f,
            WorkloadDescriptor(direction=Direction.BIDIRECTIONAL),
        )
        assert len(uni.directions) == 1
        assert len(bi.directions) == 2
        assert bi.directions[1].name == "rev"

    def test_full_duplex_wire(self, subsystem_f):
        bi = evaluate(
            subsystem_f,
            WorkloadDescriptor(direction=Direction.BIDIRECTIONAL, mtu=4096,
                               msg_sizes_bytes=(1048576,)),
        )
        for direction in bi.directions:
            assert direction.wire_gbps == pytest.approx(200.0, rel=0.02)


class TestMonotonicity:
    def test_throughput_never_negative_and_bounded_by_wire(self, subsystem_f):
        rng = np.random.default_rng(0)
        from repro.core.space import SearchSpace

        space = SearchSpace.for_subsystem(subsystem_f)
        for _ in range(100):
            workload = space.random(rng)
            measurement = evaluate(subsystem_f, workload)
            for d in measurement.directions:
                assert d.achieved_msgs_per_sec >= 0
                assert d.wire_gbps <= subsystem_f.rnic.line_rate_gbps * 1.01
                assert 0.0 <= d.pause_ratio <= 1.0

    def test_pause_implies_injection_exceeds_service(self, subsystem_f):
        from repro.workloads.appendix import setting

        measurement = evaluate(subsystem_f, setting(1).workload)
        fwd = measurement.directions[0]
        assert fwd.pause_ratio > 0
        assert fwd.injection_msgs_per_sec > fwd.achieved_msgs_per_sec


class TestCounters:
    def test_counter_samples_average(self, subsystem_f):
        measurement = SteadyStateModel(subsystem_f, noise=0.02).evaluate(
            WorkloadDescriptor(), np.random.default_rng(1), sample_seconds=4
        )
        assert len(measurement.samples) == 4
        values = [s.get("tx_bytes_per_sec") for s in measurement.samples]
        assert measurement.counters["tx_bytes_per_sec"] == pytest.approx(
            np.mean(values)
        )

    def test_pause_counter_reflects_ratio(self, subsystem_f):
        from repro.workloads.appendix import setting

        measurement = evaluate(subsystem_f, setting(1).workload)
        assert measurement.counters["pause_duration_us_per_sec"] == (
            pytest.approx(measurement.pause_ratio * 1e6, rel=0.05)
        )

    def test_diag_pressure_grows_with_queue_depth(self, subsystem_f):
        def rx_wqe_counter(wq_depth):
            w = WorkloadDescriptor(
                opcode=Opcode.SEND, num_qps=16, wq_depth=wq_depth, mtu=4096,
                msg_sizes_bytes=(4096,),
            )
            return evaluate(subsystem_f, w).counters["rx_wqe_cache_miss"]

        assert rx_wqe_counter(1024) > rx_wqe_counter(64)

    def test_qpc_counter_grows_with_qps(self, subsystem_f):
        def qpc_counter(qps):
            w = WorkloadDescriptor(num_qps=qps, msg_sizes_bytes=(512,))
            return evaluate(subsystem_f, w).counters["qpc_cache_miss"]

        assert qpc_counter(1024) > qpc_counter(8)

    def test_fired_rules_spike_their_counter(self, subsystem_f):
        from repro.workloads.appendix import setting

        anomalous = evaluate(subsystem_f, setting(1).workload)
        baseline = evaluate(
            subsystem_f,
            setting(1).workload.replace(wq_depth=64, wqe_batch=8),
        )
        assert anomalous.counters["rx_wqe_cache_miss"] > (
            baseline.counters["rx_wqe_cache_miss"]
        )


class TestValidation:
    def test_unknown_memory_device_rejected(self, subsystem_h):
        model = SteadyStateModel(subsystem_h)
        with pytest.raises(ValueError, match="gpu0"):
            model.evaluate(WorkloadDescriptor(dst_device="gpu0"))
