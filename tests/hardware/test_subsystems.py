"""Table 1 presets and part profiles."""

import pytest

from repro.hardware import parts
from repro.hardware.subsystems import (
    SUBSYSTEMS,
    get_subsystem,
    list_subsystems,
)


class TestPresets:
    def test_all_eight_letters_exist(self):
        assert sorted(SUBSYSTEMS) == list("ABCDEFGH")

    def test_lookup_is_case_insensitive(self):
        assert get_subsystem("f") is get_subsystem("F")

    def test_unknown_letter_raises(self):
        with pytest.raises(KeyError):
            get_subsystem("Z")

    def test_list_is_table_order(self):
        assert [s.name for s in list_subsystems()] == list("ABCDEFGH")

    def test_speeds_match_table1(self):
        speeds = {s.name: s.rnic.line_rate_gbps for s in list_subsystems()}
        assert speeds == {
            "A": 25, "B": 100, "C": 100, "D": 100,
            "E": 200, "F": 200, "G": 200, "H": 100,
        }

    def test_pcie_generations_match_table1(self):
        for letter in "ABCDH":
            assert get_subsystem(letter).pcie.gen == 3
        for letter in "EFG":
            assert get_subsystem(letter).pcie.gen == 4

    def test_gpus_match_table1(self):
        assert get_subsystem("C").gpu == "V100"
        assert get_subsystem("E").gpu == "A100"
        assert get_subsystem("F").gpu == "A100"
        assert get_subsystem("H").gpu is None

    def test_g_runs_nps2(self):
        g = get_subsystem("G")
        assert g.nps == 2
        assert len([d for d in g.topology.memory_devices
                    if d.kind == "dram"]) == 4

    def test_describe_row_has_table1_columns(self):
        row = get_subsystem("A").describe_row()
        assert row["Type"] == "A"
        assert row["Speed"] == "25 Gbps"
        assert row["BIOS"] == "INSYDE"
        assert set(row) == {
            "Type", "RNIC", "Speed", "CPU", "PCIe", "NPS", "Memory",
            "GPU", "BIOS", "Kernel",
        }


class TestQuirkTables:
    def test_f_carries_all_thirteen_cx6_tags(self):
        tags = {rule.tag for rule in get_subsystem("F").rnic.rules}
        assert tags == {f"A{i}" for i in range(1, 14)}

    def test_h_carries_the_five_p2100_tags(self):
        tags = {rule.tag for rule in get_subsystem("H").rnic.rules}
        assert tags == {f"A{i}" for i in range(14, 19)}

    def test_100g_parts_carry_generation_independent_subset(self):
        tags = {rule.tag for rule in get_subsystem("D").rnic.rules}
        assert tags < {f"A{i}" for i in range(1, 14)}
        assert "A13" in tags  # loopback incast is generation-independent
        assert "A3" not in tags  # 200G-datapath quirks stay on the 200G part

    def test_rule_sides_match_table2_symptoms(self):
        """Every rule's side yields the Table 2 symptom for its row."""
        from repro.workloads.appendix import APPENDIX_SETTINGS

        expected = {s.expected_tag: s.expected_symptom
                    for s in APPENDIX_SETTINGS}
        for subsystem in list_subsystems():
            for rule in subsystem.rnic.rules:
                assert rule.symptom == expected[rule.tag]


class TestProfiles:
    def test_pattern_length_follows_pu_geometry(self):
        assert parts.connectx6_200().pattern_length == 8
        assert parts.p2100g().pattern_length == 4

    def test_wire_payload_cap_accounts_for_headers(self):
        profile = parts.connectx6_200()
        assert profile.wire_payload_cap_bytes_per_sec(4096) < (
            profile.line_rate_bytes_per_sec
        )
        assert profile.wire_payload_cap_bytes_per_sec(4096) > (
            profile.wire_payload_cap_bytes_per_sec(256)
        )

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            parts.RNICProfile(name="x", line_rate_gbps=0, max_pps=1)
