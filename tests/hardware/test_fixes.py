"""Vendor fixes: the paper's "7 of them are already fixed"."""

import numpy as np
import pytest

from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.fixes import (
    FIXES,
    UNFIXED_TAGS,
    apply_fixes,
    apply_policy,
    fixed_subsystem,
)
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import APPENDIX_SETTINGS


def classify_on(subsystem, workload):
    measurement = SteadyStateModel(subsystem, noise=0.0).evaluate(
        workload, np.random.default_rng(0)
    )
    return measurement, AnomalyMonitor(subsystem).classify(measurement)


class TestRegistry:
    def test_exactly_seven_fixes(self):
        assert len(FIXES) == 7
        assert len(UNFIXED_TAGS) == 11

    def test_fixed_set_matches_appendix(self):
        assert set(FIXES) == {"A3", "A9", "A10", "A11", "A12", "A17", "A18"}

    def test_unknown_tag_rejected(self):
        with pytest.raises(KeyError):
            apply_fixes(get_subsystem("F"), ["A1"])


class TestHardwareFixes:
    @pytest.mark.parametrize("tag", ["A9", "A10", "A11", "A12"])
    def test_fixed_f_no_longer_triggers(self, tag):
        setting = next(
            s for s in APPENDIX_SETTINGS if s.expected_tag == tag
        )
        fixed = apply_fixes(get_subsystem("F"), [tag])
        measurement, verdict = classify_on(fixed, setting.workload)
        assert tag not in measurement.tags
        # #12's trigger workload also sits in #9's region; applying only
        # the #12 fix leaves that co-trigger in place.
        if not measurement.tags:
            assert verdict.symptom == "healthy"

    @pytest.mark.parametrize("tag", ["A17", "A18"])
    def test_register_fixes_on_h(self, tag):
        setting = next(
            s for s in APPENDIX_SETTINGS if s.expected_tag == tag
        )
        fixed = apply_fixes(get_subsystem("H"), [tag])
        measurement, verdict = classify_on(fixed, setting.workload)
        assert verdict.symptom == "healthy"

    def test_unfixed_anomalies_persist_after_all_fixes(self):
        fixed_f = fixed_subsystem("F")
        fixed_h = fixed_subsystem("H")
        for s in APPENDIX_SETTINGS:
            if s.expected_tag not in UNFIXED_TAGS:
                continue
            subsystem = fixed_f if s.subsystem == "F" else fixed_h
            measurement, verdict = classify_on(subsystem, s.workload)
            assert s.expected_tag in measurement.tags, s.expected_tag
            assert verdict.is_anomalous

    def test_fixes_do_not_break_healthy_traffic(self):
        from repro.hardware.workload import WorkloadDescriptor

        _, verdict = classify_on(fixed_subsystem("F"), WorkloadDescriptor())
        assert verdict.symptom == "healthy"


class TestPolicyFix:
    def test_mtu_policy_removes_small_mtus_from_the_space(self):
        space = apply_policy(SearchSpace.for_subsystem(get_subsystem("F")))
        assert all(mtu >= 2048 for mtu in space.mtus)

    def test_a3_unreachable_under_the_policy(self, rng):
        space = apply_policy(SearchSpace.for_subsystem(get_subsystem("F")))
        subsystem = get_subsystem("F")
        model = SteadyStateModel(subsystem, noise=0.0)
        for _ in range(300):
            measurement = model.evaluate(space.random(rng), rng)
            assert "A3" not in measurement.tags
