"""Model-wide invariants over randomly sampled workloads (all subsystems)."""

import numpy as np
import pytest

from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem, list_subsystems


@pytest.mark.parametrize("letter", [s.name for s in list_subsystems()])
class TestInvariantsEverywhere:
    """Sampled sweeps per subsystem; cheap enough to run in CI."""

    SAMPLES = 150

    def _sweep(self, letter):
        subsystem = get_subsystem(letter)
        space = SearchSpace.for_subsystem(subsystem)
        model = SteadyStateModel(subsystem, noise=0.0)
        monitor = AnomalyMonitor(subsystem)
        rng = np.random.default_rng(1234)
        for _ in range(self.SAMPLES):
            workload = space.random(rng)
            measurement = model.evaluate(workload, rng)
            yield workload, measurement, monitor.classify(measurement)

    def test_rates_bounded_by_physics(self, letter):
        subsystem = get_subsystem(letter)
        line = subsystem.rnic.line_rate_gbps
        for _, measurement, _ in self._sweep(letter):
            for direction in measurement.directions:
                assert 0 <= direction.achieved_msgs_per_sec
                assert direction.wire_gbps <= line * 1.001
                assert direction.goodput_gbps <= direction.wire_gbps
                assert 0.0 <= direction.pause_ratio <= 1.0
                assert (
                    direction.achieved_msgs_per_sec
                    <= direction.injection_msgs_per_sec
                )

    def test_counters_are_finite_and_non_negative(self, letter):
        for _, measurement, _ in self._sweep(letter):
            for name, value in measurement.counters.items():
                assert np.isfinite(value), name
                assert value >= 0.0, name

    def test_anomalies_are_documented(self, letter):
        """Anomalous points carry a quirk-rule tag — the model never
        produces mystery anomalies (rare spec-boundary knife edges are
        tolerated at <1%).  Latency-inflation verdicts are documented by
        the latency-quirk table (L-tags) rather than the Table 2 rows."""
        untagged = 0
        anomalous = 0
        for _, measurement, verdict in self._sweep(letter):
            if verdict.is_anomalous:
                anomalous += 1
                documented = bool(measurement.tags) or bool(
                    measurement.latency is not None
                    and measurement.latency.tags
                )
                if not documented:
                    untagged += 1
        assert untagged <= max(1, self.SAMPLES // 100)

    def test_latency_trigger_only_fires_on_latency_quirks(self, letter):
        """The generic (rule-free) stall tail is analytically bounded
        under the trigger multiple: a latency-inflation verdict always
        has a fired latency rule behind it."""
        for _, measurement, verdict in self._sweep(letter):
            if verdict.symptom == "latency inflation":
                assert measurement.latency.tags

    def test_pause_implies_rx_side_rule_or_boundary(self, letter):
        """Pause anomalies come from receiver-side effects."""
        for _, measurement, verdict in self._sweep(letter):
            if verdict.symptom == "pause frame" and measurement.fired:
                assert any(f.rule.side == "rx" for f in measurement.fired)

    def test_symptoms_follow_dominant_rule_side(self, letter):
        """A workload firing only tx-side rules never shows pauses."""
        for _, measurement, verdict in self._sweep(letter):
            if measurement.fired and all(
                f.rule.side == "tx" for f in measurement.fired
            ):
                assert measurement.pause_ratio == 0.0


class TestDeterminism:
    def test_noiseless_model_is_pure(self):
        subsystem = get_subsystem("F")
        space = SearchSpace.for_subsystem(subsystem)
        model = SteadyStateModel(subsystem, noise=0.0)
        rng = np.random.default_rng(9)
        workload = space.random(rng)
        a = model.evaluate(workload, np.random.default_rng(0))
        b = model.evaluate(workload, np.random.default_rng(1))
        assert a.counters == b.counters
        assert a.tags == b.tags

    def test_noise_only_perturbs_samples_not_rates(self):
        subsystem = get_subsystem("F")
        model = SteadyStateModel(subsystem, noise=0.05)
        from repro.hardware.workload import WorkloadDescriptor

        a = model.evaluate(WorkloadDescriptor(), np.random.default_rng(0))
        b = model.evaluate(WorkloadDescriptor(), np.random.default_rng(7))
        assert a.directions == b.directions
        assert a.counters != b.counters
