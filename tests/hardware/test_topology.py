"""Host topology: DMA paths and placement semantics."""

import math

import pytest

from repro.hardware.topology import (
    HostTopology,
    MemoryDevice,
    dual_socket_host,
)


class TestDualSocketBuilder:
    def test_numa_nodes_split_across_sockets(self):
        host = dual_socket_host("h", numa_per_socket=2)
        assert host.device("numa0").socket == 0
        assert host.device("numa1").socket == 0
        assert host.device("numa2").socket == 1
        assert host.device("numa3").socket == 1

    def test_gpus_live_on_rnic_socket(self):
        host = dual_socket_host("h", gpus=2)
        assert host.device("gpu0").socket == 0
        assert host.device("gpu1").kind == "gpu"

    def test_device_names_cover_everything(self):
        host = dual_socket_host("h", gpus=1)
        assert host.device_names() == ["numa0", "numa1", "gpu0"]


class TestLookup:
    def test_unknown_device_raises_with_available_list(self):
        host = dual_socket_host("h")
        with pytest.raises(KeyError, match="numa0"):
            host.device("gpu7")

    def test_has_device(self):
        host = dual_socket_host("h", gpus=1)
        assert host.has_device("gpu0")
        assert not host.has_device("gpu1")

    def test_has_gpu(self):
        assert dual_socket_host("h", gpus=1).has_gpu()
        assert not dual_socket_host("h").has_gpu()


class TestDMAPaths:
    def test_local_dram_is_cheapest(self):
        host = dual_socket_host("h")
        path = host.dma_path("numa0")
        assert not path.crosses_socket
        assert not path.via_root_complex
        assert math.isinf(path.bandwidth_gbps)

    def test_cross_socket_adds_latency_and_caps_bandwidth(self):
        host = dual_socket_host("h")
        local = host.dma_path("numa0")
        remote = host.dma_path("numa1")
        assert remote.crosses_socket
        assert remote.latency_ns > local.latency_ns
        assert remote.bandwidth_gbps == host.smp_bandwidth_gbps

    def test_gpu_same_bridge_with_correct_acs_is_direct(self):
        host = dual_socket_host("h", gpus=1, gpu_same_bridge=True,
                                acsctl_correct=True)
        path = host.dma_path("gpu0")
        assert not path.via_root_complex

    def test_gpu_with_misconfigured_acs_detours(self):
        host = dual_socket_host("h", gpus=1, acsctl_correct=False)
        path = host.dma_path("gpu0")
        assert path.via_root_complex
        assert path.latency_ns > host.dma_path("numa0").latency_ns

    def test_gpu_on_other_bridge_detours_even_with_correct_acs(self):
        host = HostTopology(
            name="h",
            memory_devices=(
                MemoryDevice("numa0", "dram", 0),
                MemoryDevice("gpu0", "gpu", 0, same_bridge_as_rnic=False),
            ),
        )
        assert host.dma_path("gpu0").via_root_complex
