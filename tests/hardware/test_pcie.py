"""PCIe link arithmetic."""

import pytest

from repro.hardware.pcie import (
    TLP_HEADER_BYTES,
    PCIeLink,
)


class TestLinkRates:
    def test_gen3_x16_raw_rate(self):
        link = PCIeLink(gen=3, lanes=16)
        assert link.raw_gbps == pytest.approx(8 * 16 * 128 / 130)

    def test_gen4_doubles_gen3(self):
        gen3 = PCIeLink(gen=3, lanes=16)
        gen4 = PCIeLink(gen=4, lanes=16)
        assert gen4.raw_gbps == pytest.approx(2 * gen3.raw_gbps)

    def test_effective_below_raw(self):
        link = PCIeLink(gen=4, lanes=16)
        assert link.effective_gbps < link.raw_gbps
        assert link.effective_bytes_per_sec == pytest.approx(
            link.effective_gbps * 1e9 / 8
        )

    def test_lane_scaling(self):
        assert PCIeLink(gen=3, lanes=8).raw_gbps == pytest.approx(
            PCIeLink(gen=3, lanes=16).raw_gbps / 2
        )


class TestValidation:
    def test_unknown_generation_rejected(self):
        with pytest.raises(ValueError):
            PCIeLink(gen=7)

    def test_invalid_lane_count_rejected(self):
        with pytest.raises(ValueError):
            PCIeLink(lanes=12)


class TestTransferBytes:
    def test_zero_payload_is_free(self):
        assert PCIeLink().transfer_bytes(0) == 0

    def test_single_tlp(self):
        link = PCIeLink(max_payload_bytes=512)
        assert link.transfer_bytes(100) == 100 + TLP_HEADER_BYTES

    def test_multi_tlp_overhead(self):
        link = PCIeLink(max_payload_bytes=512)
        assert link.transfer_bytes(1024) == 1024 + 2 * TLP_HEADER_BYTES
        assert link.transfer_bytes(1025) == 1025 + 3 * TLP_HEADER_BYTES


class TestDescribe:
    def test_table1_format(self):
        assert PCIeLink(gen=3, lanes=16).describe() == "3.0 x16"
        assert PCIeLink(gen=4, lanes=16).describe() == "4.0 x16"
