"""Gate matching and anomaly-rule effect arithmetic."""

import pytest

from repro.hardware.rules import (
    AnomalyRule,
    Gate,
    LatencyRule,
    fired_latency_rules,
    fired_rules,
)


def rule(gate=None, **kwargs):
    defaults = dict(
        tag="T1", title="test", root_cause="test",
        gate=gate or Gate(bounds={"x": (1, None)}), side="rx",
    )
    defaults.update(kwargs)
    return AnomalyRule(**defaults)


class TestGate:
    def test_vacuous_gate_rejected(self):
        with pytest.raises(ValueError):
            Gate()

    def test_vacuous_bound_rejected(self):
        with pytest.raises(ValueError):
            Gate(bounds={"x": (None, None)})

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Gate(bounds={"x": (5, 3)})

    def test_inclusive_bounds(self):
        gate = Gate(bounds={"x": (2, 4)})
        assert gate.matches({"x": 2})
        assert gate.matches({"x": 4})
        assert not gate.matches({"x": 1.99})
        assert not gate.matches({"x": 4.01})

    def test_one_sided_bounds(self):
        assert Gate(bounds={"x": (None, 10)}).matches({"x": -100})
        assert Gate(bounds={"x": (10, None)}).matches({"x": 1e9})

    def test_missing_feature_never_matches(self):
        assert not Gate(bounds={"x": (1, None)}).matches({})

    def test_categorical_membership(self):
        gate = Gate(isin={"qp_type": ("RC", "UC")})
        assert gate.matches({"qp_type": "RC"})
        assert not gate.matches({"qp_type": "UD"})
        assert not gate.matches({})

    def test_conjunction_of_conditions(self):
        gate = Gate(bounds={"x": (1, None)}, isin={"k": ("a",)})
        assert gate.matches({"x": 5, "k": "a"})
        assert not gate.matches({"x": 5, "k": "b"})
        assert not gate.matches({"x": 0, "k": "a"})


class TestAnomalyRule:
    def test_side_validation(self):
        with pytest.raises(ValueError):
            rule(side="both")

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            rule(factor=0.0)
        with pytest.raises(ValueError):
            rule(factor=1.5)

    def test_symptom_follows_side(self):
        assert rule(side="rx").symptom == "pause frame"
        assert rule(side="tx").symptom == "low throughput"

    def test_constant_factor(self):
        assert rule(factor=0.4).effect_factor({"x": 100}) == 0.4

    def test_scaled_factor_degrades_with_feature(self):
        r = rule(scale_feature="miss", scale_coeff=0.8, floor=0.1)
        assert r.effect_factor({"miss": 0.0}) == 1.0
        assert r.effect_factor({"miss": 0.5}) == pytest.approx(0.6)
        assert r.effect_factor({"miss": 10.0}) == 0.1  # floored


class TestFiredRules:
    def test_only_matching_rules_fire(self):
        rules = (
            rule(tag="LOW", gate=Gate(bounds={"x": (None, 5)})),
            rule(tag="HIGH", gate=Gate(bounds={"x": (5, None)})),
        )
        fired = fired_rules(rules, {"x": 10})
        assert [f.tag for f in fired] == ["HIGH"]

    def test_fired_rule_resolves_factor(self):
        r = rule(scale_feature="m", scale_coeff=0.5)
        fired = fired_rules((r,), {"x": 2, "m": 1.0})
        assert fired[0].factor == pytest.approx(0.5)


def latency_rule(gate=None, **kwargs):
    defaults = dict(
        tag="L9", title="test stall", root_cause="test",
        gate=gate or Gate(bounds={"x": (1, None)}), stall_us=40.0,
    )
    defaults.update(kwargs)
    return LatencyRule(**defaults)


class TestLatencyRule:
    def test_stall_must_be_positive(self):
        with pytest.raises(ValueError):
            latency_rule(stall_us=0.0)
        with pytest.raises(ValueError):
            latency_rule(stall_us=-1.0)

    def test_symptom_is_the_latency_class(self):
        assert latency_rule().symptom == "latency inflation"

    def test_constant_stall(self):
        assert latency_rule().stall({"x": 100}) == 40.0

    def test_scaled_stall_grows_with_feature(self):
        r = latency_rule(scale_feature="mtt_miss")
        assert r.stall({"mtt_miss": 0.5}) == pytest.approx(20.0)
        assert r.stall({"mtt_miss": 0.0}) == 0.0
        # A missing scale feature contributes nothing rather than raising.
        assert r.stall({}) == 0.0

    def test_fired_latency_rules_keep_table_order(self):
        first = latency_rule(tag="L8", gate=Gate(bounds={"x": (0, None)}))
        second = latency_rule(
            tag="L9", gate=Gate(bounds={"x": (5, None)}),
            scale_feature="m",
        )
        gated_out = latency_rule(tag="L10", gate=Gate(bounds={"y": (1, None)}))
        fired = fired_latency_rules(
            (first, second, gated_out), {"x": 10, "m": 2.0}
        )
        assert [(r.tag, stall) for r, stall in fired] \
            == [("L8", 40.0), ("L9", 80.0)]
