"""Workload descriptor validation and derived statistics."""

import pytest

from repro.hardware.workload import (
    Colocation,
    Direction,
    SGLayout,
    WorkloadDescriptor,
)
from repro.verbs.constants import Opcode, QPType


class TestValidation:
    def test_default_is_valid(self):
        WorkloadDescriptor()

    def test_ud_rejects_read(self):
        with pytest.raises(ValueError):
            WorkloadDescriptor(qp_type=QPType.UD, opcode=Opcode.READ)

    def test_uc_rejects_read(self):
        with pytest.raises(ValueError):
            WorkloadDescriptor(qp_type=QPType.UC, opcode=Opcode.READ)

    def test_ud_messages_bounded_by_mtu(self):
        with pytest.raises(ValueError):
            WorkloadDescriptor(
                qp_type=QPType.UD, opcode=Opcode.SEND, mtu=1024,
                msg_sizes_bytes=(2048,),
            )

    def test_rejects_empty_pattern(self):
        with pytest.raises(ValueError):
            WorkloadDescriptor(msg_sizes_bytes=())

    def test_rejects_nonstandard_mtu(self):
        with pytest.raises(ValueError):
            WorkloadDescriptor(mtu=1500)

    @pytest.mark.parametrize(
        "field", ["num_qps", "wqe_batch", "sge_per_wqe", "wq_depth",
                  "mrs_per_qp", "mr_bytes"],
    )
    def test_rejects_non_positive_counts(self, field):
        with pytest.raises(ValueError):
            WorkloadDescriptor(**{field: 0})


class TestMessageStatistics:
    def workload(self, sizes=(128, 65536, 1024), mtu=1024):
        return WorkloadDescriptor(msg_sizes_bytes=sizes, mtu=mtu)

    def test_avg_min_max(self):
        w = self.workload()
        assert w.min_msg_bytes == 128
        assert w.max_msg_bytes == 65536
        assert w.avg_msg_bytes == pytest.approx((128 + 65536 + 1024) / 3)

    def test_mix_detection(self):
        assert self.workload().mixes_small_and_large
        assert not self.workload(sizes=(2048, 4096)).mixes_small_and_large
        assert not self.workload(sizes=(64, 128)).mixes_small_and_large

    def test_fractions(self):
        w = self.workload()
        assert w.small_message_fraction == pytest.approx(2 / 3)
        assert w.large_message_fraction == pytest.approx(1 / 3)

    def test_packets_per_message(self):
        w = self.workload(sizes=(1024, 2048), mtu=1024)
        assert w.packets_per_message(1024) == 1
        assert w.packets_per_message(2048) == 2
        assert w.packets_per_message() == pytest.approx(1.5)
        assert w.packets_per_message(1) == 1  # sub-MTU still one packet


class TestDerivedProperties:
    def test_total_counts(self):
        w = WorkloadDescriptor(num_qps=10, mrs_per_qp=5, wq_depth=64)
        assert w.total_mrs == 50
        assert w.total_outstanding_recv_wqes == 640

    def test_wqe_bytes_grow_with_sge(self):
        w1 = WorkloadDescriptor(sge_per_wqe=1)
        w8 = WorkloadDescriptor(sge_per_wqe=8)
        assert w8.wqe_bytes > w1.wqe_bytes

    def test_recv_wqes_only_for_send(self):
        assert WorkloadDescriptor(opcode=Opcode.SEND).uses_recv_wqes
        assert not WorkloadDescriptor(opcode=Opcode.WRITE).uses_recv_wqes
        assert not WorkloadDescriptor(opcode=Opcode.READ).uses_recv_wqes

    def test_direction_and_loopback_flags(self):
        bi = WorkloadDescriptor(direction=Direction.BIDIRECTIONAL)
        assert bi.is_bidirectional
        loop = WorkloadDescriptor(colocation=Colocation.MIXED_LOOPBACK)
        assert loop.has_loopback

    def test_sg_entry_mix_needs_layout_sge_and_size(self):
        base = dict(sge_per_wqe=3, msg_sizes_bytes=(65536,))
        assert WorkloadDescriptor(sg_layout=SGLayout.MIXED, **base).sg_entry_mix
        assert not WorkloadDescriptor(sg_layout=SGLayout.EVEN, **base).sg_entry_mix
        small = WorkloadDescriptor(
            sg_layout=SGLayout.MIXED, sge_per_wqe=3, msg_sizes_bytes=(4096,)
        )
        assert not small.sg_entry_mix

    def test_replace_returns_modified_copy(self):
        w = WorkloadDescriptor()
        w2 = w.replace(num_qps=99)
        assert w2.num_qps == 99 and w.num_qps == 8
        assert w2 is not w

    def test_summary_is_single_line(self):
        summary = WorkloadDescriptor().summary()
        assert "\n" not in summary
        assert "RC WRITE" in summary
