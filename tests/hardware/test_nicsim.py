"""Mechanistic receive-path simulation vs the quirk-rule severities."""

import pytest

from repro.hardware.des.nicsim import (
    RxPipelineParameters,
    RxPipelineSimulation,
)
from repro.hardware.subsystems import get_subsystem


def run_pipeline(num_qps=1, wq_depth=256, batch=64, cache=8192, window=32,
                 messages=50_000):
    params = RxPipelineParameters(
        num_qps=num_qps,
        wq_depth=wq_depth,
        sender_batch=batch,
        cache_entries=cache,
        prefetch_window=window,
    )
    return RxPipelineSimulation(params).run(messages)


class TestValidation:
    def test_parameters_positive(self):
        with pytest.raises(ValueError):
            RxPipelineParameters(num_qps=0, wq_depth=1, sender_batch=1,
                                 cache_entries=1, prefetch_window=1)

    def test_messages_positive(self):
        sim = RxPipelineSimulation(
            RxPipelineParameters(num_qps=1, wq_depth=8, sender_batch=1,
                                 cache_entries=64, prefetch_window=8)
        )
        with pytest.raises(ValueError):
            sim.run(0)


class TestHealthyRegimes:
    def test_working_set_inside_cache_is_miss_free(self):
        """Below capacity, the receive engine never stalls — the quirk
        gates' zero point."""
        result = run_pipeline(num_qps=4, wq_depth=256, batch=8)
        assert result.miss_rate == 0.0

    def test_healthy_regime_sustains_arrival_rate(self):
        result = run_pipeline(num_qps=4, wq_depth=64, batch=8)
        assert result.pause_ratio_against(1e9 / 80.0) == pytest.approx(
            0.0, abs=0.02
        )


class TestCapacityPathEmerges:
    """The capacity mechanism behind anomalies #2/#15/#17, derived."""

    def test_threshold_sits_exactly_at_cache_capacity(self):
        """The rule gates use ``num_qps × wq_depth`` vs cache entries;
        the exact LRU confirms that is the right predicate."""
        inside = run_pipeline(num_qps=8, wq_depth=64, batch=8, cache=1024)
        outside = run_pipeline(num_qps=32, wq_depth=64, batch=8, cache=1024)
        assert inside.miss_rate == 0.0
        assert outside.miss_rate > 0.02

    def test_emergent_pause_matches_rule_severity_regime(self):
        """Above capacity the prefetcher bounds stalls at one per window,
        which at line rate is a 20-25% pause duty cycle — the same
        regime the A15/A17 rule factors (0.55-0.6 service) encode."""
        profile = get_subsystem("H").rnic
        result = run_pipeline(
            num_qps=32, wq_depth=512, batch=8,
            cache=profile.rx_wqe_cache.total_entries,
            window=profile.rx_wqe_cache.prefetch_window,
        )
        pause = result.pause_ratio_against(1e9 / 80.0)
        assert 0.1 < pause < 0.7

    def test_miss_rate_bounded_by_prefetch_window(self):
        """A sane prefetcher caps the damage at ~1 miss per window."""
        result = run_pipeline(num_qps=32, wq_depth=512, batch=8,
                              cache=1024, window=32)
        assert result.miss_rate <= 1 / 32 + 0.01

    def test_prefetch_window_response_is_u_shaped(self):
        """Wider windows amortise fetches — until the QPs' combined
        prefetch footprint overruns the cache and prefetches evict each
        other (over-aggressive prefetch thrash, a real NIC failure
        mode).  The sweet spot sits where num_qps × window ≈ capacity."""
        narrow = run_pipeline(num_qps=32, wq_depth=512, batch=8,
                              cache=1024, window=8)
        sweet = run_pipeline(num_qps=32, wq_depth=512, batch=8,
                             cache=1024, window=32)
        oversized = run_pipeline(num_qps=32, wq_depth=512, batch=8,
                                 cache=1024, window=128)
        assert sweet.miss_rate < narrow.miss_rate
        assert sweet.miss_rate < oversized.miss_rate

    def test_busy_time_grows_with_misses(self):
        clean = run_pipeline(num_qps=4, wq_depth=64, batch=8, cache=1024)
        dirty = run_pipeline(num_qps=32, wq_depth=512, batch=8, cache=1024)
        assert dirty.service_rate_msgs_per_sec < (
            clean.service_rate_msgs_per_sec
        )
