"""Property suite for the co-run (isolation) datapath.

Pins the three invariants the adversarial-neighbor domain is built on,
across every Table 1 subsystem:

* **fair-share protection** — at ``victim_share=1.0`` an attacker that
  adds zero opaque-resource pressure (no extra cache misses, no newly
  fired quirk rules) cannot move the victim off its fair share:
  ``interference_factor`` is exactly 1.0;
* **monotonicity** — growing the attacker's cache working set never
  *improves* the victim: interference is non-increasing in attacker
  QP count and MR count;
* **bit-identity** — the co-run seam is invisible when no victim is
  pinned: measurements, the RNG stream and recorded journals are
  byte-identical to the solo path.
"""

import json

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.testbed import Testbed
from repro.core.collie import Collie
from repro.hardware.coexist import (
    CoexistenceModel,
    CoRunModel,
    contend_direction,
    joint_occupancy_features,
)
from repro.hardware.features import extract_features
from repro.hardware.model import SteadyStateModel
from repro.hardware.rules import fired_rules
from repro.hardware.subsystems import get_subsystem, list_subsystems
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import Opcode

LETTERS = [s.name for s in list_subsystems()]


def victims():
    """Modest victims: small enough to leave cache headroom everywhere."""
    return st.builds(
        WorkloadDescriptor,
        opcode=st.sampled_from([Opcode.WRITE, Opcode.SEND]),
        num_qps=st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
        wqe_batch=st.sampled_from([1, 2, 4]),
        wq_depth=st.sampled_from([16, 64]),
        msg_sizes_bytes=st.sampled_from([(256,), (512,), (4096,)]),
        mtu=st.just(1024),
    )


def small_message_victim() -> WorkloadDescriptor:
    """The fixed monotonicity victim: maximally miss-exposed."""
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=64, wqe_batch=1,
        msg_sizes_bytes=(512,), mtu=1024,
    )


def _polite_attacker(num_qps: int) -> WorkloadDescriptor:
    """Few connections, one MR, huge batched messages: zero pressure."""
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=num_qps, mrs_per_qp=1,
        msg_sizes_bytes=(1048576,), mtu=4096, wqe_batch=16,
    )


def _thrashing_attacker(num_qps: int, mrs_per_qp: int) -> WorkloadDescriptor:
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=num_qps, mrs_per_qp=mrs_per_qp,
        msg_sizes_bytes=(512,), mtu=1024, wqe_batch=1,
    )


@pytest.mark.parametrize("letter", LETTERS)
class TestFairShareProtection:
    """share=1.0 + zero-pressure attacker ⇒ interference exactly 1.0."""

    @given(victim=victims(), attacker_qps=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_zero_pressure_attacker_cannot_interfere(
        self, letter, victim, attacker_qps
    ):
        subsystem = get_subsystem(letter)
        attacker = _polite_attacker(attacker_qps)
        own = extract_features(victim, subsystem)
        joint = joint_occupancy_features(victim, attacker, subsystem, own=own)
        # The property's premise: the attacker adds no opaque pressure.
        assume(joint["qpc_miss"] == own["qpc_miss"])
        assume(joint["mtt_miss"] == own["mtt_miss"])
        if victim.uses_recv_wqes:
            assume(joint["rxq_capacity_miss"] == own["rxq_capacity_miss"])
        own_fired = [f.tag for f in fired_rules(subsystem.rnic.rules, own)]
        joint_fired = [
            f.tag for f in fired_rules(subsystem.rnic.rules, joint)
        ]
        assume(own_fired == joint_fired)
        result = CoexistenceModel(subsystem, noise=0.0).evaluate(
            victim, attacker, victim_share=1.0
        )
        assert result.interference_factor == pytest.approx(1.0, rel=1e-9)

    @given(victim=victims())
    @settings(max_examples=10, deadline=None)
    def test_interference_never_above_one(self, letter, victim):
        """min(1, shared/fair) bounds the factor even at full share."""
        result = CoexistenceModel(get_subsystem(letter), noise=0.0).evaluate(
            victim, _thrashing_attacker(4096, 32), victim_share=1.0
        )
        assert result.interference_factor <= 1.0


@pytest.mark.parametrize("letter", LETTERS)
class TestMonotonicity:
    """Interference is non-increasing in the attacker's working set."""

    SCALES = (1, 4, 16, 64, 256, 1024, 4096)
    MRS = (1, 4, 32)

    @given(
        pair=st.tuples(
            st.sampled_from(SCALES), st.sampled_from(SCALES)
        ),
        mrs=st.sampled_from(MRS),
    )
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_attacker_qps(self, letter, pair, mrs):
        small, big = sorted(pair)
        model = CoexistenceModel(get_subsystem(letter), noise=0.0)
        victim = small_message_victim()
        mild = model.evaluate(
            victim, _thrashing_attacker(small, mrs), victim_share=0.5
        )
        severe = model.evaluate(
            victim, _thrashing_attacker(big, mrs), victim_share=0.5
        )
        assert severe.interference_factor <= (
            mild.interference_factor + 1e-9
        )

    @given(
        qps=st.sampled_from(SCALES),
        pair=st.tuples(st.sampled_from(MRS), st.sampled_from(MRS)),
    )
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_attacker_mrs(self, letter, qps, pair):
        small, big = sorted(pair)
        model = CoexistenceModel(get_subsystem(letter), noise=0.0)
        victim = small_message_victim()
        mild = model.evaluate(
            victim, _thrashing_attacker(qps, small), victim_share=0.5
        )
        severe = model.evaluate(
            victim, _thrashing_attacker(qps, big), victim_share=0.5
        )
        assert severe.interference_factor <= (
            mild.interference_factor + 1e-9
        )


def _measurement_key(measurement):
    """Everything observable about one measurement, exactly."""
    return (
        measurement.workload,
        measurement.subsystem_name,
        tuple(measurement.directions),
        tuple(sorted(measurement.counters.items())),
        tuple(measurement.samples),  # CounterSample defines value equality
        measurement.tags,
    )


class TestNoAttackerBitIdentity:
    """The co-run seam is invisible without a pinned victim."""

    def test_uncontended_direction_is_same_object(self, subsystem_f):
        solve = SteadyStateModel(subsystem_f, noise=0.0)._solve(
            small_message_victim(), phase="test"
        )
        for d in solve.directions:
            assert contend_direction(d, 1.0, 1.0) is d
            assert contend_direction(d, 2.0, 0.6) is d  # ratio >= 1

    def test_testbed_without_victim_is_the_solo_testbed(self, subsystem_f):
        """victim=None leaves measurements and the RNG stream untouched."""
        workloads = [
            small_message_victim(),
            _thrashing_attacker(512, 4),
            _polite_attacker(2),
        ]
        solo = Testbed(subsystem_f, noise=0.02)
        seamed = Testbed(
            subsystem_f, noise=0.02, victim=None, victim_share=0.9
        )
        assert seamed.victim_floor is None
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        for workload in workloads:
            a = solo.run(workload, rng=rng_a)
            b = seamed.run(workload, rng=rng_b)
            assert _measurement_key(a.measurement) == _measurement_key(
                b.measurement
            )
        assert (
            rng_a.bit_generator.state == rng_b.bit_generator.state
        )

    def test_corun_evaluate_consumes_the_solo_rng_stream(self, subsystem_f):
        """A co-run measurement draws exactly the solo noise stream, so
        recorded isolation runs stay lockstep-safe."""
        attacker = _thrashing_attacker(256, 4)
        rng_solo = np.random.default_rng(23)
        rng_corun = np.random.default_rng(23)
        SteadyStateModel(subsystem_f, noise=0.02).evaluate(
            attacker, rng_solo
        )
        CoRunModel(
            subsystem_f, small_message_victim(), 0.5, noise=0.02
        ).evaluate(attacker, rng_corun)
        assert (
            rng_solo.bit_generator.state == rng_corun.bit_generator.state
        )

    @staticmethod
    def _normalize_wall_clock(record):
        """Zero the only nondeterministic journal content: wall-clock
        spans in the run_end metrics snapshot (present on solo main
        too; unrelated to the co-run seam)."""
        if record.get("t") != "run_end":
            return record
        record = dict(record, elapsed_seconds=0.0)
        histograms = record.get("metrics", {}).get("histograms", {})
        for name in list(histograms):
            if "_wall" in name or "_seconds" in name:
                histograms[name] = None
        return record

    def test_solo_journal_bytes_identical_and_isolation_free(self, tmp_path):
        """A search without --victim journals byte-identically whether or
        not the victim parameter is spelled out, and never writes the
        isolation record or the interference field (v5 byte-compat)."""
        from repro.obs.journal import RunJournal
        from repro.obs.recorder import FlightRecorder

        paths = []
        for name, kwargs in (
            ("implicit.jsonl", {}),
            ("explicit.jsonl", {"victim": None, "victim_share": 0.8}),
        ):
            path = tmp_path / name
            journal = RunJournal(path)
            recorder = FlightRecorder(journal=journal)
            Collie(
                get_subsystem("A"), budget_hours=0.1, seed=7,
                recorder=recorder, **kwargs,
            ).run()
            recorder.close()
            paths.append(path)
        first, second = (
            [json.loads(line) for line in p.read_bytes().splitlines()]
            for p in paths
        )
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert self._normalize_wall_clock(a) == (
                self._normalize_wall_clock(b)
            )
        assert all(r["t"] != "isolation" for r in first)
        assert all(
            "interference" not in r
            for r in first if r["t"] == "experiment"
        )
