"""Lossless switch forwarding and pause handling."""

import pytest

from repro.hardware.switch import LosslessSwitch


class TestSwitch:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            LosslessSwitch(0)

    def test_forwards_up_to_line_rate(self):
        switch = LosslessSwitch(100.0)  # 12.5 GB/s
        forwarded = switch.forward("p0", "p1", nbytes=10 ** 12, seconds=1.0)
        assert forwarded == int(12.5e9)

    def test_under_capacity_forwards_everything(self):
        switch = LosslessSwitch(100.0)
        assert switch.forward("p0", "p1", 1000, 1.0) == 1000

    def test_paused_egress_forwards_nothing(self):
        switch = LosslessSwitch(100.0)
        switch.receive_pause("p1", True)
        assert switch.forward("p0", "p1", 1000, 1.0) == 0
        switch.receive_pause("p1", False)
        assert switch.forward("p0", "p1", 1000, 1.0) == 1000

    def test_pause_frames_counted_on_assertion_edges(self):
        switch = LosslessSwitch(100.0)
        switch.receive_pause("p0", True)
        switch.receive_pause("p0", True)  # still asserted: no new frame
        switch.receive_pause("p0", False)
        switch.receive_pause("p0", True)
        assert switch.ports["p0"].received_pause_frames == 2

    def test_byte_accounting(self):
        switch = LosslessSwitch(100.0)
        switch.forward("p0", "p1", 500, 1.0)
        switch.forward("p0", "p1", 700, 1.0)
        assert switch.ports["p1"].forwarded_bytes == 1200

    def test_unknown_port_raises(self):
        switch = LosslessSwitch(100.0)
        with pytest.raises(KeyError):
            switch.forward("p0", "p9", 1, 1.0)

    def test_negative_arguments_rejected(self):
        switch = LosslessSwitch(100.0)
        with pytest.raises(ValueError):
            switch.forward("p0", "p1", -1, 1.0)
