"""The command-line interface."""

import json

import pytest

from repro.analysis.serialize import workload_to_dict
from repro.cli import main
from repro.hardware.workload import WorkloadDescriptor


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CX-5 DX 25G" in out and "P2100G" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "A18" in out and "pause frame" in out


class TestReplay:
    def test_replay_reproduces_everything(self, capsys):
        assert main(["replay"]) == 0
        assert "18/18 reproduced" in capsys.readouterr().out


class TestSearch:
    def test_short_search_prints_summary(self, capsys):
        code = main(["search", "H", "--hours", "1", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "subsystem H" in out

    def test_search_saves_report(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        main(["search", "H", "--hours", "1", "--output", str(path)])
        data = json.loads(path.read_text())
        assert data["subsystem"] == "H"

    def test_invalid_subsystem_rejected(self):
        with pytest.raises(SystemExit):
            main(["search", "Z"])


class TestParallel:
    def test_fleet_search(self, capsys):
        code = main(
            ["parallel", "H", "--machines", "2", "--hours", "1",
             "--seed", "1"]
        )
        assert code == 0
        assert "fleet of 2 machines" in capsys.readouterr().out


class TestDiagnose:
    def test_diagnose_matches_known_anomaly(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        main(["search", "H", "--hours", "2", "--seed", "1",
              "--output", str(report_path)])
        capsys.readouterr()

        # Every extracted anomaly's own witness must diagnose as covered.
        report = json.loads(report_path.read_text())
        assert report["anomalies"], "2h search on H found nothing?"
        workload_path = tmp_path / "workload.json"
        workload_path.write_text(
            json.dumps(report["anomalies"][0]["witness"])
        )
        code = main(["diagnose", str(report_path), str(workload_path)])
        out = capsys.readouterr().out
        assert code == 2
        assert "break one of these conditions" in out

    def test_diagnose_clean_workload(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        main(["search", "H", "--hours", "0.5", "--seed", "1",
              "--output", str(report_path)])
        capsys.readouterr()
        workload_path = tmp_path / "workload.json"
        workload_path.write_text(
            json.dumps(workload_to_dict(WorkloadDescriptor()))
        )
        assert main(["diagnose", str(report_path), str(workload_path)]) == 0
        assert "no known anomaly" in capsys.readouterr().out
