"""The command-line interface."""

import json

import pytest

from repro.analysis.serialize import workload_to_dict
from repro.cli import main
from repro.hardware.workload import WorkloadDescriptor


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CX-5 DX 25G" in out and "P2100G" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "A18" in out and "pause frame" in out


class TestReplay:
    def test_replay_reproduces_everything(self, capsys):
        assert main(["replay"]) == 0
        assert "18/18 reproduced" in capsys.readouterr().out


class TestSearch:
    def test_short_search_prints_summary(self, capsys):
        code = main(["search", "H", "--hours", "1", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "subsystem H" in out

    def test_search_saves_report(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        main(["search", "H", "--hours", "1", "--output", str(path)])
        data = json.loads(path.read_text())
        assert data["subsystem"] == "H"

    def test_invalid_subsystem_rejected(self):
        with pytest.raises(SystemExit):
            main(["search", "Z"])

    def test_search_prints_recipes(self, capsys):
        code = main(["search", "H", "--hours", "1", "--seed", "2",
                     "--recipes"])
        assert code == 0
        out = capsys.readouterr().out
        assert "anomaly 1" in out

    def test_search_with_cache_store(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        code = main(["search", "H", "--hours", "0.3", "--seed", "3",
                     "--cache", str(cache)])
        assert code == 0
        first = capsys.readouterr().out
        assert "cache saved to" in first
        assert cache.exists()
        # Warm rerun reports the warm start and serves hits.
        code = main(["search", "H", "--hours", "0.3", "--seed", "3",
                     "--cache", str(cache)])
        assert code == 0
        second = capsys.readouterr().out
        assert "warm-started" in second
        assert "100.0% hit rate" in second

    def test_search_multi_seed_campaign_with_workers(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        code = main(["search", "H", "--hours", "0.2", "--seed", "1",
                     "--seeds", "3", "--workers", "3",
                     "--cache", str(cache)])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 seeds" in out
        assert "seed 1:" in out and "seed 3:" in out
        assert "3 tasks" in out  # executor stats surfaced

    def test_zero_workers_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["search", "H", "--hours", "0.2", "--seeds", "2",
                  "--workers", "0"])
        assert exc.value.code == 2
        assert "must be >= 1, got 0" in capsys.readouterr().err

    def test_zero_seeds_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["search", "H", "--hours", "0.2", "--seeds", "0"])
        assert exc.value.code == 2
        assert "must be >= 1, got 0" in capsys.readouterr().err

    def test_corrupt_cache_store_rejected_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        with pytest.raises(SystemExit) as exc:
            main(["search", "H", "--hours", "0.2", "--cache", str(bad)])
        assert exc.value.code == 2
        assert "cannot load cache store" in capsys.readouterr().err

    def test_wrong_format_cache_store_rejected_cleanly(
        self, tmp_path, capsys
    ):
        stale = tmp_path / "v99.json"
        stale.write_text(json.dumps({"format_version": 99, "entries": {}}))
        with pytest.raises(SystemExit) as exc:
            main(["search", "H", "--hours", "0.2", "--cache", str(stale)])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "cannot load cache store" in err
        assert "unsupported cache format 99" in err


class TestPopulationSearch:
    def test_chains_prints_population_summary(self, capsys):
        code = main(["search", "H", "--hours", "0.3", "--seed", "2",
                     "--chains", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Population(3 chains) on subsystem H" in out
        assert "chain 0:" in out and "chain 2:" in out

    def test_seeds_delegation_prints_campaign_format(self, capsys):
        code = main(["search", "H", "--hours", "0.3", "--seed", "1",
                     "--seeds", "3"])
        assert code == 0
        out = capsys.readouterr().out
        # Delegated to the population driver, but the printed summary
        # stays in the per-seed campaign format.
        assert "3 seeds" in out
        assert "seed 1:" in out and "seed 3:" in out

    def test_tempering_prints_ladder(self, capsys):
        code = main(["search", "H", "--hours", "0.3", "--seed", "2",
                     "--chains", "2", "--tempering",
                     "--exchange-every", "5"])
        assert code == 0
        assert "tempering ladder" in capsys.readouterr().out

    def test_seeds_and_chains_mutually_exclusive(self, capsys):
        code = main(["search", "H", "--seeds", "2", "--chains", "2"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_tempering_needs_two_chains(self, capsys):
        code = main(["search", "H", "--tempering"])
        assert code == 2
        assert "--chains >= 2" in capsys.readouterr().err

    def test_report_renders_population_journal_runs_complete(
        self, tmp_path, capsys
    ):
        path = tmp_path / "population.jsonl"
        assert main(["search", "H", "--hours", "0.3", "--seed", "2",
                     "--chains", "2", "--journal", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        # Interleaved chain runs demultiplex into complete runs — the
        # per-chain run_end matching must not flag them as crashed.
        assert "2 run(s)" in out
        assert "run 1:" in out and "run 2:" in out
        assert "[CRASHED — partial]" not in out


class TestParallel:
    def test_fleet_search(self, capsys):
        code = main(
            ["parallel", "H", "--machines", "2", "--hours", "1",
             "--seed", "1"]
        )
        assert code == 0
        assert "fleet of 2 machines" in capsys.readouterr().out

    def test_fleet_with_workers_and_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        code = main(
            ["parallel", "H", "--machines", "2", "--hours", "0.3",
             "--seed", "1", "--workers", "2", "--cache", str(cache)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet of 2 machines" in out
        assert "2 tasks" in out
        assert cache.exists()


class TestCampaign:
    def test_campaign_runs_and_reports(self, capsys):
        code = main(["campaign", "random", "--subsystem", "H",
                     "--hours", "0.2", "--seeds", "2", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "random on subsystem H" in out
        assert "2 seeds" in out

    def test_unknown_approach_rejected(self, capsys):
        code = main(["campaign", "gradient-descent"])
        assert code == 2
        assert "unknown approach" in capsys.readouterr().err


class TestStats:
    def test_stats_prints_hit_rates_and_phase_walltime(
        self, tmp_path, capsys
    ):
        cache = tmp_path / "cache.json"
        main(["search", "H", "--hours", "0.3", "--seed", "3",
              "--cache", str(cache)])
        capsys.readouterr()
        code = main(["stats", str(cache)])
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "phase mfs" in out
        assert "s wall" in out

    def test_stats_missing_store_is_graceful(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.json")])
        assert code == 0
        assert "no cache store" in capsys.readouterr().out

    def test_stats_empty_store_is_graceful(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"format_version": 1, "entries": {}}))
        code = main(["stats", str(empty)])
        assert code == 0
        assert "empty" in capsys.readouterr().out

    def test_stats_corrupt_store_is_a_clear_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        code = main(["stats", str(bad)])
        assert code == 1
        assert "cannot read cache store" in capsys.readouterr().err

    def test_stats_multi_file_continues_past_a_bad_store(
        self, tmp_path, capsys
    ):
        """One corrupt store must not hide the good one's statistics."""
        good = tmp_path / "good.json"
        main(["search", "H", "--hours", "0.3", "--seed", "3",
              "--cache", str(good)])
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        capsys.readouterr()
        code = main(["stats", str(bad), str(good)])
        assert code == 1  # worst per-file code
        captured = capsys.readouterr()
        assert "cannot read cache store" in captured.err
        assert str(bad) in captured.err
        assert "hit rate" in captured.out  # the good store still printed

    def test_stats_multi_file_all_good_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        main(["search", "H", "--hours", "0.3", "--seed", "3",
              "--cache", str(good)])
        capsys.readouterr()
        code = main(["stats", str(good), str(good)])
        assert code == 0
        assert capsys.readouterr().out.count("hit rate") == 2


class TestReport:
    def test_search_journal_then_report_roundtrip(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        assert main(["search", "H", "--hours", "1", "--seed", "2",
                     "--journal", str(journal)]) == 0
        search_out = capsys.readouterr().out
        assert "journal saved to" in search_out
        assert journal.exists()

        assert main(["report", str(journal)]) == 0
        report_out = capsys.readouterr().out
        assert "run 1:" in report_out
        # The re-rendered summary matches the live run's summary line.
        summary = next(
            line for line in search_out.splitlines() if "subsystem H" in line
        )
        assert summary in report_out

    def test_report_renders_counter_trace(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        main(["search", "H", "--hours", "0.5", "--seed", "2",
              "--journal", str(journal)])
        capsys.readouterr()
        code = main(["report", str(journal),
                     "--counter", "qpc_cache_miss"])
        assert code == 0
        assert "qpc_cache_miss" in capsys.readouterr().out

    def test_report_exports_trajectory_csv(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        main(["search", "H", "--hours", "0.5", "--seed", "2",
              "--journal", str(journal)])
        capsys.readouterr()
        csv_path = tmp_path / "trace.csv"
        code = main(["report", str(journal),
                     "--counter", "qpc_cache_miss",
                     "--trajectory", str(csv_path)])
        assert code == 0
        assert "counter trajectory" in capsys.readouterr().out
        header, *rows = csv_path.read_text().splitlines()
        assert header == "run,time_seconds,value,kind,symptom"
        assert rows

    def test_report_unknown_counter_fails(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        main(["search", "H", "--hours", "0.3", "--seed", "2",
              "--journal", str(journal)])
        capsys.readouterr()
        code = main(["report", str(journal), "--counter", "no_such"])
        assert code == 1
        assert "never observed" in capsys.readouterr().err

    def test_report_missing_journal_is_a_clear_error(
        self, tmp_path, capsys
    ):
        code = main(["report", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read journal" in capsys.readouterr().err

    def test_report_invalid_journal_is_a_clear_error(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v":99,"t":"warp"}\n')
        code = main(["report", str(bad)])
        assert code == 2
        assert "schema" in capsys.readouterr().err.lower()

    def test_report_multi_journal_continues_past_a_bad_file(
        self, tmp_path, capsys
    ):
        """One unreadable journal must not hide the others' reports."""
        journal = tmp_path / "ok.jsonl"
        assert main(["search", "H", "--hours", "0.3", "--seed", "2",
                     "--journal", str(journal)]) == 0
        missing = tmp_path / "nope.jsonl"
        capsys.readouterr()
        code = main(["report", str(missing), str(journal)])
        assert code == 2  # worst per-file code
        captured = capsys.readouterr()
        assert "cannot read journal" in captured.err
        assert str(missing) in captured.err
        assert "run 1:" in captured.out  # the good journal still rendered

    def test_report_multi_journal_json_emits_an_array(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "ok.jsonl"
        assert main(["search", "H", "--hours", "0.3", "--seed", "2",
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["report", str(journal), str(journal), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2

    def test_report_trajectory_rejects_multiple_journals(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "ok.jsonl"
        assert main(["search", "H", "--hours", "0.3", "--seed", "2",
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        code = main([
            "report", str(journal), str(journal),
            "--counter", "rx_pause_duration",
            "--trajectory", str(tmp_path / "out.csv"),
        ])
        assert code == 2
        assert "--trajectory" in capsys.readouterr().err

    def test_progress_lines_during_search(self, tmp_path, capsys):
        code = main(["search", "H", "--hours", "1", "--seed", "2",
                     "--progress", "50"])
        assert code == 0
        assert "progress:" in capsys.readouterr().out


class TestDiagnose:
    def test_diagnose_matches_known_anomaly(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        main(["search", "H", "--hours", "2", "--seed", "1",
              "--output", str(report_path)])
        capsys.readouterr()

        # Every extracted anomaly's own witness must diagnose as covered.
        report = json.loads(report_path.read_text())
        assert report["anomalies"], "2h search on H found nothing?"
        workload_path = tmp_path / "workload.json"
        workload_path.write_text(
            json.dumps(report["anomalies"][0]["witness"])
        )
        code = main(["diagnose", str(report_path), str(workload_path)])
        out = capsys.readouterr().out
        assert code == 2
        assert "break one of these conditions" in out

    def test_diagnose_clean_workload(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        main(["search", "H", "--hours", "0.5", "--seed", "1",
              "--output", str(report_path)])
        capsys.readouterr()
        workload_path = tmp_path / "workload.json"
        workload_path.write_text(
            json.dumps(workload_to_dict(WorkloadDescriptor()))
        )
        assert main(["diagnose", str(report_path), str(workload_path)]) == 0
        assert "no known anomaly" in capsys.readouterr().out


class TestJournalVerify:
    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        """One complete campaign journal produced through the CLI."""
        path = tmp_path_factory.mktemp("verify") / "campaign.jsonl"
        assert main(["campaign", "collie", "--subsystem", "H",
                     "--seeds", "2", "--hours", "0.3",
                     "--journal", str(path)]) == 0
        return path

    def test_complete_journal_exits_zero(self, journal, capsys):
        assert main(["journal", "verify", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "journal is complete" in out
        assert "complete (exit 0)" in out

    def test_interrupted_journal_exits_one(self, journal, tmp_path, capsys):
        lines = journal.read_text().splitlines()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(
            "\n".join(lines[: len(lines) // 2]) + '\n{"v":2,"t":"exp'
        )
        assert main(["journal", "verify", str(torn)]) == 1
        captured = capsys.readouterr()
        assert "incomplete (resumable)" in captured.out
        assert "truncated tail dropped" in captured.err

    def test_corrupt_journal_exits_two(self, journal, tmp_path, capsys):
        lines = journal.read_text().splitlines()
        lines[1] = "{definitely not json"
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("\n".join(lines) + "\n")
        assert main(["journal", "verify", str(corrupt)]) == 2
        assert "corrupt (exit 2)" in capsys.readouterr().out

    def test_missing_journal_exits_two(self, tmp_path):
        assert main(["journal", "verify",
                     str(tmp_path / "absent.jsonl")]) == 2


class TestCampaignResume:
    ARGS = ["campaign", "collie", "--subsystem", "H", "--seeds", "2",
            "--hours", "0.3"]

    @pytest.fixture(scope="class")
    def interrupted(self, tmp_path_factory):
        """A full journal plus a copy killed inside the second run."""
        from repro.obs import read_journal

        base = tmp_path_factory.mktemp("resume")
        full = base / "full.jsonl"
        assert main(self.ARGS + ["--journal", str(full)]) == 0
        records = read_journal(full)
        lines = full.read_text().splitlines()
        first_end = next(
            i for i, r in enumerate(records) if r["t"] == "run_end"
        )
        torn = base / "interrupted.jsonl"
        torn.write_text(
            "".join(line + "\n" for line in lines[: first_end + 4])
        )
        return full, torn

    def test_resume_completes_and_matches(
        self, interrupted, tmp_path, capsys
    ):
        from repro.obs import reports_from_journal, verify_journal

        full, torn = interrupted
        resumed = tmp_path / "resumed.jsonl"
        code = main(self.ARGS + ["--resume", str(torn),
                                 "--journal", str(resumed)])
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed from" in out
        assert "replayed 1 completed seed(s)" in out
        assert reports_from_journal(resumed) == reports_from_journal(full)
        assert verify_journal(resumed)[0] == 0

    def test_resume_missing_journal_is_an_error(self, tmp_path, capsys):
        code = main(self.ARGS + ["--resume",
                                 str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "cannot read resume journal" in capsys.readouterr().err

    def test_resume_corrupt_journal_is_an_error(
        self, interrupted, tmp_path, capsys
    ):
        full, _ = interrupted
        lines = full.read_text().splitlines()
        lines[0] = "{bad"
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("\n".join(lines) + "\n")
        code = main(self.ARGS + ["--resume", str(corrupt)])
        assert code == 2
        assert "resume journal is corrupt" in capsys.readouterr().err


class TestResilienceFlags:
    def test_campaign_accepts_the_retry_knobs(self, capsys):
        code = main(["campaign", "collie", "--subsystem", "H",
                     "--seeds", "2", "--hours", "0.3", "--retries", "1",
                     "--task-timeout", "60", "--backoff", "0"])
        assert code == 0
        assert "anomalies/seed" in capsys.readouterr().out

    def test_search_accepts_the_retry_knobs(self, capsys):
        code = main(["search", "H", "--hours", "0.5", "--seeds", "2",
                     "--retries", "1"])
        assert code == 0
        assert "subsystem H" in capsys.readouterr().out

    def test_parallel_accepts_the_retry_knobs(self, capsys):
        code = main(["parallel", "H", "--hours", "0.5", "--machines", "2",
                     "--retries", "1"])
        assert code == 0
        assert "machines" in capsys.readouterr().out


class TestStatsOnJournal:
    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("statsj") / "campaign.jsonl"
        assert main(["campaign", "collie", "--subsystem", "H",
                     "--seeds", "2", "--hours", "0.3",
                     "--journal", str(path)]) == 0
        return path

    def test_stats_on_complete_journal(self, journal, capsys):
        assert main(["stats", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "is a run journal" in out
        assert "2 complete run(s)" in out

    def test_stats_on_crashed_journal_exits_one(
        self, journal, tmp_path, capsys
    ):
        lines = journal.read_text().splitlines()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(
            "\n".join(lines[: len(lines) - 3]) + "\n"
        )
        assert main(["stats", str(torn)]) == 1
        captured = capsys.readouterr()
        assert "partial (crashed or in flight)" in captured.err
        assert "campaign --resume" in captured.err


class TestReportResilience:
    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("reportr") / "campaign.jsonl"
        assert main(["campaign", "collie", "--subsystem", "H",
                     "--seeds", "2", "--hours", "0.3",
                     "--journal", str(path)]) == 0
        return path

    def test_truncated_journal_renders_its_prefix(
        self, journal, tmp_path, capsys
    ):
        lines = journal.read_text().splitlines()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(
            "\n".join(lines[: len(lines) - 2]) + '\n{"v":2,"t":"exp'
        )
        assert main(["report", str(torn)]) == 0
        captured = capsys.readouterr()
        assert "rendering the valid prefix" in captured.err
        assert "campaign --resume" in captured.err
        assert "[CRASHED — partial]" in captured.out

    def test_resilience_summary_line(self, journal, tmp_path, capsys):
        annotated = tmp_path / "resilient.jsonl"
        annotated.write_text(
            journal.read_text()
            + json.dumps({"v": 2, "t": "retry", "task": 0, "host": 0,
                          "attempt": 0, "error": "crash",
                          "backoff_seconds": 0.0}) + "\n"
            + json.dumps({"v": 2, "t": "quarantine", "host": 1,
                          "failures": 2, "redistributed": 1}) + "\n"
        )
        assert main(["report", str(annotated)]) == 0
        out = capsys.readouterr().out
        assert "resilience: 1 retried attempt(s), 1 quarantined host(s)" \
            in out


class TestLatencySurfaces:
    """The tail-latency signal's CLI surfaces: search, stats, report."""

    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("latency") / "run.jsonl"
        assert main(["search", "F", "--hours", "0.5", "--seed", "2",
                     "--journal", str(path)]) == 0
        return path

    def test_journal_carries_latency_records(self, journal):
        records = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        assert any(r["t"] == "latency" for r in records)

    def test_no_latency_flag_suppresses_the_stream(
        self, tmp_path, capsys
    ):
        path = tmp_path / "off.jsonl"
        assert main(["search", "F", "--hours", "0.5", "--seed", "2",
                     "--journal", str(path), "--no-latency"]) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert not any(r["t"] == "latency" for r in records)

    def test_report_prints_per_run_latency_line(self, journal, capsys):
        assert main(["report", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "latency p50/p90/p99" in out
        assert "worst inflation" in out

    def test_report_json_metrics_carry_the_latency_family(
        self, journal, capsys
    ):
        assert main(["report", str(journal), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["metrics"]
        assert metrics["latency_records"] > 0
        assert metrics["latency_p99_us_median"] is not None
        assert metrics["latency_inflation_max"] is not None

    def test_stats_prints_latency_next_to_throughput(
        self, journal, capsys
    ):
        assert main(["stats", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "mean tx" in out
        assert "latency p50/p90/p99" in out

    def test_stats_falls_back_without_latency_records(
        self, tmp_path, capsys
    ):
        path = tmp_path / "off.jsonl"
        assert main(["search", "F", "--hours", "0.5", "--seed", "2",
                     "--journal", str(path), "--no-latency"]) == 0
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "latency: - (no latency records)" in out

    def test_coverage_appends_the_latency_panel(self, journal, capsys):
        assert main(["coverage", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "per-WR p99 latency" in out

    def test_journal_diff_warns_about_unknown_kinds(
        self, journal, tmp_path, capsys
    ):
        future = tmp_path / "future.jsonl"
        future.write_text(
            journal.read_text()
            + '{"v": 4, "t": "hologram", "x": 1}\n'
        )
        assert main(["journal", "diff", str(journal), str(future)]) == 0
        err = capsys.readouterr().err
        assert "unknown record kind skipped: hologram (n=1)" in err


class TestTelemetryFlags:
    def test_export_metrics_serves_and_journals_heartbeats(
        self, tmp_path, capsys
    ):
        path = tmp_path / "campaign.jsonl"
        code = main(["campaign", "collie", "--subsystem", "F",
                     "--hours", "0.3", "--seeds", "2", "--seed", "1",
                     "--workers", "2", "--journal", str(path),
                     "--export-metrics", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry: serving http://127.0.0.1:" in out
        assert "/metrics" in out and "/status" in out
        from repro.obs import journal_summary, read_journal

        assert journal_summary(read_journal(path))["heartbeats"] == 2

    def test_journal_flag_alone_writes_no_heartbeats(self, tmp_path, capsys):
        path = tmp_path / "bare.jsonl"
        assert main(["campaign", "collie", "--subsystem", "F",
                     "--hours", "0.3", "--seeds", "2", "--seed", "1",
                     "--workers", "2", "--journal", str(path)]) == 0
        from repro.obs import journal_summary, read_journal

        assert journal_summary(read_journal(path))["heartbeats"] == 0


class TestTop:
    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("top") / "run.jsonl"
        assert main(["search", "F", "--hours", "0.3", "--seed", "2",
                     "--journal", str(path)]) == 0
        return path

    def test_top_once_renders_a_frame(self, journal, capsys):
        capsys.readouterr()  # drop any fixture-time search output
        assert main(["top", str(journal), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top — live campaign telemetry" in out
        assert "experiments" in out
        assert "\x1b" not in out  # --once frames carry no escapes

    def test_top_once_with_baseline_shows_drift(self, journal, capsys):
        assert main(["top", str(journal), "--once",
                     "--baseline", str(journal)]) == 0
        out = capsys.readouterr().out
        assert f"drift vs {journal}" in out
        assert out.count("+0.0% =") == 3  # self-drift is zero

    def test_top_unreadable_baseline_is_a_clear_error(
        self, journal, tmp_path, capsys
    ):
        missing = tmp_path / "gone.jsonl"
        assert main(["top", str(journal), "--once",
                     "--baseline", str(missing)]) == 2
        assert "cannot read baseline journal" in capsys.readouterr().err
