"""Shared fixtures: connected verbs endpoints and subsystem handles."""

import numpy as np
import pytest

from repro.hardware.subsystems import get_subsystem
from repro.verbs import (
    MTU,
    AccessFlags,
    DataPath,
    Device,
    Fabric,
    QPCapabilities,
    QPType,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class ConnectedPair:
    """Two contexts with one connected RC QP pair and registered MRs."""

    def __init__(self, qp_type=QPType.RC, mtu=MTU.MTU_1024, mr_bytes=65536):
        self.fabric = Fabric()
        self.ctx_a = Device("rnic-a").open()
        self.ctx_b = Device("rnic-b").open()
        self.fabric.attach(self.ctx_a)
        self.fabric.attach(self.ctx_b)
        self.pd_a = self.ctx_a.alloc_pd()
        self.pd_b = self.ctx_b.alloc_pd()
        self.cq_a = self.ctx_a.create_cq(1024)
        self.cq_b = self.ctx_b.create_cq(1024)
        cap = QPCapabilities(max_send_wr=256, max_recv_wr=256)
        self.qp_a = self.ctx_a.create_qp(
            self.pd_a, qp_type, self.cq_a, self.cq_a, cap
        )
        self.qp_b = self.ctx_b.create_qp(
            self.pd_b, qp_type, self.cq_b, self.cq_b, cap
        )
        if qp_type is QPType.UD:
            self.fabric.activate_ud(self.qp_a, mtu)
            self.fabric.activate_ud(self.qp_b, mtu)
        else:
            self.fabric.connect(self.qp_a, self.qp_b, mtu)
        self.mr_a = self.pd_a.reg_mr(mr_bytes, AccessFlags.all_remote())
        self.mr_b = self.pd_b.reg_mr(mr_bytes, AccessFlags.all_remote())
        self.datapath = DataPath(self.fabric)


@pytest.fixture
def pair():
    return ConnectedPair()


@pytest.fixture
def ud_pair():
    return ConnectedPair(qp_type=QPType.UD, mtu=MTU.MTU_2048)


@pytest.fixture
def subsystem_f():
    return get_subsystem("F")


@pytest.fixture
def subsystem_h():
    return get_subsystem("H")
