"""Hosts: topology-aware verbs contexts."""

import pytest

from repro.cluster.host import Host
from repro.hardware.topology import dual_socket_host
from repro.verbs.constants import AccessFlags
from repro.verbs.exceptions import MemoryRegistrationError


class TestHost:
    def test_memory_device_queries(self):
        host = Host("h", dual_socket_host("h", gpus=1))
        assert host.has_memory_device("numa0")
        assert host.has_memory_device("gpu0")
        assert not host.has_memory_device("gpu1")
        assert host.memory_devices() == ["numa0", "numa1", "gpu0"]

    def test_reg_mr_validates_placement(self):
        host = Host("h", dual_socket_host("h"))
        pd = host.context.alloc_pd()
        region = pd.reg_mr(4096, AccessFlags.all_remote(), device="numa1")
        assert region.device == "numa1"
        with pytest.raises(MemoryRegistrationError, match="gpu0"):
            pd.reg_mr(4096, device="gpu0")

    def test_context_is_attached_to_host(self):
        host = Host("h", dual_socket_host("h"))
        assert host.context.host is host
