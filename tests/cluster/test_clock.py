"""Simulated clock semantics."""

import pytest

from repro.cluster.clock import SimulatedClock


class TestClock:
    def test_starts_at_zero(self):
        clock = SimulatedClock()
        assert clock.now == 0.0
        assert clock.hours == 0.0

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(100)
        clock.advance(50.5)
        assert clock.now == pytest.approx(150.5)

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            SimulatedClock(0)

    def test_budget_expiry(self):
        clock = SimulatedClock(budget_seconds=100)
        assert not clock.expired
        clock.advance(99)
        assert clock.remaining == pytest.approx(1)
        clock.advance(2)
        assert clock.expired
        assert clock.remaining == 0.0

    def test_unbudgeted_clock_never_expires(self):
        clock = SimulatedClock()
        clock.advance(1e12)
        assert not clock.expired

    def test_hours_conversion(self):
        clock = SimulatedClock()
        clock.advance(7200)
        assert clock.hours == pytest.approx(2.0)
