"""The experiment runner's time accounting (paper: 20-60s/experiment)."""

import numpy as np
import pytest

from repro.cluster.clock import SimulatedClock
from repro.cluster.testbed import Testbed
from repro.core.space import SearchSpace
from repro.hardware.workload import WorkloadDescriptor


class TestTestbed:
    def test_accepts_letter_or_subsystem(self, subsystem_f):
        assert Testbed("F").subsystem.name == "F"
        assert Testbed(subsystem_f).subsystem.name == "F"

    def test_run_charges_the_clock(self):
        clock = SimulatedClock()
        testbed = Testbed("F", clock=clock)
        result = testbed.run(WorkloadDescriptor())
        assert clock.now == pytest.approx(result.total_seconds)
        assert result.started_at == 0.0
        assert result.finished_at == clock.now

    def test_experiment_cost_in_paper_range(self):
        """§5: each experiment takes 20-60 s, scaling with QPs and MRs."""
        testbed = Testbed("F")
        rng = np.random.default_rng(0)
        space = SearchSpace.for_subsystem(testbed.subsystem)
        for _ in range(50):
            result = testbed.run(space.random(rng), rng=rng)
            assert 15.0 <= result.total_seconds <= 60.0

    def test_more_qps_cost_more_setup(self):
        testbed = Testbed("F")
        small = testbed.run(WorkloadDescriptor(num_qps=1))
        large = testbed.run(WorkloadDescriptor(num_qps=8192))
        assert large.setup_seconds > small.setup_seconds

    def test_experiment_counter(self):
        testbed = Testbed("F")
        testbed.run(WorkloadDescriptor())
        testbed.run(WorkloadDescriptor())
        assert testbed.experiments_run == 2

    def test_functional_check_mode_catches_shape_early(self):
        testbed = Testbed("F", functional_check=True)
        result = testbed.run(WorkloadDescriptor(num_qps=2, wqe_batch=4))
        assert result.measurement.directions[0].achieved_msgs_per_sec > 0
