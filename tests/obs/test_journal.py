"""The run journal: round-trip determinism and reconstruction."""

import json

import numpy as np
import pytest

from repro.core import Collie
from repro.obs import (
    FlightRecorder,
    RunJournal,
    journal_summary,
    read_journal,
    reports_from_journal,
    validate_journal,
)

BUDGET_HOURS = 0.5
SEED = 2


def run_search(recorder=None):
    return Collie.for_subsystem(
        "H", budget_hours=BUDGET_HOURS, seed=SEED, recorder=recorder
    ).run()


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded search: (report, journal path)."""
    path = tmp_path_factory.mktemp("journal") / "run.jsonl"
    recorder = FlightRecorder(journal=RunJournal(path))
    report = run_search(recorder)
    recorder.close()
    return report, path


class TestDeterminism:
    def test_recording_does_not_change_the_search(self, recorded):
        reference = run_search(recorder=None)
        report, _ = recorded
        assert report == reference

    def test_journal_is_append_only_valid_ndjson(self, recorded):
        _, path = recorded
        records = read_journal(path)
        assert validate_journal(records) == []


class TestReconstruction:
    def test_report_rerenders_bit_identically(self, recorded):
        report, path = recorded
        (rebuilt,) = reports_from_journal(path)
        assert rebuilt.events == report.events
        assert rebuilt.anomalies == report.anomalies
        assert rebuilt == report

    def test_downstream_analyses_agree(self, recorded):
        report, path = recorded
        (rebuilt,) = reports_from_journal(path)
        assert rebuilt.found_tags() == report.found_tags()
        assert rebuilt.first_hit_times() == report.first_hit_times()
        assert rebuilt.summary() == report.summary()

    def test_crashed_run_reconstructs_from_the_prefix(
        self, recorded, tmp_path
    ):
        report, path = recorded
        lines = [
            line for line in path.read_text().splitlines()
            if json.loads(line)["t"] != "run_end"
        ]
        truncated = tmp_path / "crashed.jsonl"
        truncated.write_text("\n".join(lines) + "\n")
        (rebuilt,) = reports_from_journal(truncated)
        assert rebuilt.events == report.events
        assert rebuilt.anomalies == report.anomalies
        assert rebuilt.experiments == len(report.events)

    def test_summary_counts_the_record_types(self, recorded):
        report, path = recorded
        records = read_journal(path)
        summary = journal_summary(records)
        assert summary["runs"] == 1
        assert summary["experiments"] == len(report.events)
        assert summary["anomalies"] == len(report.anomalies)
        assert summary["records"] == len(records)


class TestRunJournal:
    def test_numpy_scalars_round_trip_exactly(self, tmp_path):
        path = tmp_path / "np.jsonl"
        value = np.float64(0.1) * 3  # not representable exactly
        with RunJournal(path) as journal:
            journal.write({"t": "skip", "time_seconds": value})
        (record,) = read_journal(path)
        assert record["time_seconds"] == float(value)

    def test_write_after_close_raises(self, tmp_path):
        journal = RunJournal(tmp_path / "x.jsonl")
        journal.close()
        with pytest.raises(ValueError):
            journal.write({"t": "skip", "time_seconds": 0.0})

    def test_unserialisable_value_is_a_clear_error(self, tmp_path):
        with RunJournal(tmp_path / "bad.jsonl") as journal:
            with pytest.raises(TypeError, match="not JSON-serialisable"):
                journal.write({"t": "skip", "time_seconds": object()})

    def test_read_journal_reports_the_broken_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"v":1,"t":"skip","time_seconds":0.0}\n{oops\n')
        with pytest.raises(ValueError, match="line 2"):
            read_journal(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('\n{"v":1,"t":"skip","time_seconds":0.0}\n\n')
        assert len(read_journal(path)) == 1
