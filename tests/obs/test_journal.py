"""The run journal: round-trip determinism and reconstruction."""

import json

import numpy as np
import pytest

from repro.core import Collie
from repro.obs import (
    VERIFY_CORRUPT,
    VERIFY_INCOMPLETE,
    VERIFY_OK,
    FlightRecorder,
    RunJournal,
    journal_summary,
    read_journal,
    read_journal_prefix,
    reports_from_journal,
    validate_journal,
    verify_journal,
)

BUDGET_HOURS = 0.5
SEED = 2


def run_search(recorder=None):
    return Collie.for_subsystem(
        "H", budget_hours=BUDGET_HOURS, seed=SEED, recorder=recorder
    ).run()


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded search: (report, journal path)."""
    path = tmp_path_factory.mktemp("journal") / "run.jsonl"
    recorder = FlightRecorder(journal=RunJournal(path))
    report = run_search(recorder)
    recorder.close()
    return report, path


class TestDeterminism:
    def test_recording_does_not_change_the_search(self, recorded):
        reference = run_search(recorder=None)
        report, _ = recorded
        assert report == reference

    def test_journal_is_append_only_valid_ndjson(self, recorded):
        _, path = recorded
        records = read_journal(path)
        assert validate_journal(records) == []


class TestReconstruction:
    def test_report_rerenders_bit_identically(self, recorded):
        report, path = recorded
        (rebuilt,) = reports_from_journal(path)
        assert rebuilt.events == report.events
        assert rebuilt.anomalies == report.anomalies
        assert rebuilt == report

    def test_downstream_analyses_agree(self, recorded):
        report, path = recorded
        (rebuilt,) = reports_from_journal(path)
        assert rebuilt.found_tags() == report.found_tags()
        assert rebuilt.first_hit_times() == report.first_hit_times()
        assert rebuilt.summary() == report.summary()

    def test_crashed_run_reconstructs_from_the_prefix(
        self, recorded, tmp_path
    ):
        report, path = recorded
        lines = [
            line for line in path.read_text().splitlines()
            if json.loads(line)["t"] != "run_end"
        ]
        truncated = tmp_path / "crashed.jsonl"
        truncated.write_text("\n".join(lines) + "\n")
        (rebuilt,) = reports_from_journal(truncated)
        assert rebuilt.events == report.events
        assert rebuilt.anomalies == report.anomalies
        assert rebuilt.experiments == len(report.events)

    def test_summary_counts_the_record_types(self, recorded):
        report, path = recorded
        records = read_journal(path)
        summary = journal_summary(records)
        assert summary["runs"] == 1
        assert summary["experiments"] == len(report.events)
        assert summary["anomalies"] == len(report.anomalies)
        assert summary["records"] == len(records)


class TestRunJournal:
    def test_numpy_scalars_round_trip_exactly(self, tmp_path):
        path = tmp_path / "np.jsonl"
        value = np.float64(0.1) * 3  # not representable exactly
        with RunJournal(path) as journal:
            journal.write({"t": "skip", "time_seconds": value})
        (record,) = read_journal(path)
        assert record["time_seconds"] == float(value)

    def test_write_after_close_raises(self, tmp_path):
        journal = RunJournal(tmp_path / "x.jsonl")
        journal.close()
        with pytest.raises(ValueError):
            journal.write({"t": "skip", "time_seconds": 0.0})

    def test_unserialisable_value_is_a_clear_error(self, tmp_path):
        with RunJournal(tmp_path / "bad.jsonl") as journal:
            with pytest.raises(TypeError, match="not JSON-serialisable"):
                journal.write({"t": "skip", "time_seconds": object()})

    def test_read_journal_reports_the_broken_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"v":1,"t":"skip","time_seconds":0.0}\n{oops\n')
        with pytest.raises(ValueError, match="line 2"):
            read_journal(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('\n{"v":1,"t":"skip","time_seconds":0.0}\n\n')
        assert len(read_journal(path)) == 1


class TestCrashTolerantPrefix:
    GOOD = '{"v":2,"t":"skip","time_seconds":0.0}\n'

    def test_clean_journal_has_no_tail_error(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        path.write_text(self.GOOD * 3)
        records, tail = read_journal_prefix(path)
        assert len(records) == 3
        assert tail is None

    def test_torn_final_line_is_dropped_with_a_message(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(self.GOOD * 2 + '{"v":2,"t":"ski')
        records, tail = read_journal_prefix(path)
        assert len(records) == 2
        assert "line 3" in tail and "truncated tail dropped" in tail

    def test_midfile_corruption_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(self.GOOD + "{oops\n" + self.GOOD)
        with pytest.raises(ValueError, match="line 2"):
            read_journal_prefix(path)

    def test_strict_read_journal_refuses_the_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(self.GOOD + '{"v":2')
        with pytest.raises(ValueError, match="truncated tail"):
            read_journal(path)


class TestSummaryCompleteness:
    @staticmethod
    def _run(seed, *, ended=True):
        records = [
            {"v": 2, "t": "run_start", "subsystem": "H",
             "counter_mode": "diag", "use_mfs": True,
             "budget_hours": 1.0, "seed": seed},
        ]
        if ended:
            records.append({
                "v": 2, "t": "run_end", "experiments": 0, "anomalies": 0,
                "elapsed_seconds": 0.0, "wall_seconds": 0.0, "metrics": {},
            })
        return records

    def test_complete_and_crashed_runs_are_counted(self):
        records = (
            self._run(1) + self._run(2, ended=False) + self._run(3)
        )
        summary = journal_summary(records)
        assert summary["runs"] == 3
        assert summary["complete_runs"] == 2
        assert summary["crashed_runs"] == 1

    def test_resilience_records_are_counted(self):
        records = self._run(1) + [
            {"v": 2, "t": "retry", "task": 0, "host": 0, "attempt": 0,
             "error": "crash", "backoff_seconds": 0.0},
            {"v": 2, "t": "retry", "task": 1, "host": 1, "attempt": 0,
             "error": "hang", "backoff_seconds": 0.5},
            {"v": 2, "t": "quarantine", "host": 1, "failures": 2,
             "redistributed": 3},
        ]
        summary = journal_summary(records)
        assert summary["retries"] == 2
        assert summary["quarantines"] == 1


class TestVerifyJournal:
    def test_recorded_journal_verifies_ok(self, recorded):
        _, path = recorded
        verdict, messages = verify_journal(path)
        assert verdict == VERIFY_OK
        assert any("journal is complete" in m for m in messages)

    def test_crashed_run_verifies_incomplete(self, recorded, tmp_path):
        _, path = recorded
        lines = [
            line for line in path.read_text().splitlines()
            if json.loads(line)["t"] != "run_end"
        ]
        crashed = tmp_path / "crashed.jsonl"
        crashed.write_text("\n".join(lines) + "\n")
        verdict, messages = verify_journal(crashed)
        assert verdict == VERIFY_INCOMPLETE
        assert any("never wrote a run_end" in m for m in messages)

    def test_torn_tail_verifies_incomplete(self, recorded, tmp_path):
        _, path = recorded
        torn = tmp_path / "torn.jsonl"
        torn.write_text(path.read_text() + '{"v":2,"t":"exp')
        verdict, messages = verify_journal(torn)
        assert verdict == VERIFY_INCOMPLETE
        assert any("truncated tail" in m for m in messages)

    def test_corruption_verifies_corrupt(self, recorded, tmp_path):
        _, path = recorded
        lines = path.read_text().splitlines()
        lines[1] = "{nope"
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("\n".join(lines) + "\n")
        verdict, _ = verify_journal(corrupt)
        assert verdict == VERIFY_CORRUPT

    def test_schema_violation_verifies_corrupt(self, tmp_path):
        path = tmp_path / "badschema.jsonl"
        path.write_text('{"v":2,"t":"warp-drive"}\n')
        verdict, messages = verify_journal(path)
        assert verdict == VERIFY_CORRUPT
        assert any("unknown record type" in m for m in messages)

    def test_missing_file_verifies_corrupt(self, tmp_path):
        verdict, messages = verify_journal(tmp_path / "absent.jsonl")
        assert verdict == VERIFY_CORRUPT
        assert any("cannot read journal" in m for m in messages)

    def test_empty_journal_verifies_incomplete(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        verdict, messages = verify_journal(path)
        assert verdict == VERIFY_INCOMPLETE
        assert any("empty" in m for m in messages)
