"""Cross-version journal reads: old journals must keep working.

``tests/obs/fixtures/v1.jsonl`` … ``v6.jsonl`` are committed
older-version forms of real recorded search journals (subsystem F):
v1 predates the resilience records, v2 has ``retry``/``quarantine``
but no observatory ``coverage``/``spans``, v3 has the observatory
records but predates the ``latency`` stream, v5 is a two-chain
population journal (chain stamps + latency records), v6 is an
isolation (adversarial-neighbor) journal with the ``isolation``
preamble and per-experiment ``interference`` stamps, and v7 is a
telemetered two-seed campaign journal carrying live-telemetry
``heartbeat`` records.  Every reader —
validator, report reconstruction, metrics, the canary's invariant
pass — must accept all of them forever: the canary corpus is
committed once and read by every future version of the code.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.journaldiff import diff_journals, journal_metrics
from repro.canary import check_cell
from repro.canary.corpus import CorpusCell
from repro.cli import main
from repro.obs import (
    SUPPORTED_VERSIONS,
    reports_from_records,
    validate_journal,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
FIXTURE_SUBSYSTEM = "F"  # the subsystem the fixture journals recorded


def fixture_records(version: int) -> list:
    path = os.path.join(FIXTURES, f"v{version}.jsonl")
    with open(path) as handle:
        return [json.loads(line) for line in handle]


#: Fixture version → how many search reports its journal reconstructs
#: (v5 is a two-chain population journal, v7 a two-seed campaign; the
#: rest are single runs).
FIXTURE_REPORT_COUNTS = {1: 1, 2: 1, 3: 1, 5: 2, 6: 1, 7: 2}


@pytest.mark.parametrize("version", (1, 2, 3, 5, 6, 7))
class TestOldJournalsStillWork:
    def test_validates_under_current_schema(self, version):
        records = fixture_records(version)
        assert all(r["v"] == version for r in records)
        assert validate_journal(records) == []

    def test_reconstructs_reports(self, version):
        reports = reports_from_records(fixture_records(version))
        assert len(reports) == FIXTURE_REPORT_COUNTS[version]
        for report in reports:
            assert report.subsystem_name == FIXTURE_SUBSYSTEM
            assert report.experiments > 0
            assert len(report.anomalies) >= 1

    def test_feeds_the_metric_pipeline(self, version):
        metrics = journal_metrics(fixture_records(version))
        assert metrics["anomalies"] >= 1
        assert metrics["time_to_first_anomaly_seconds"] is not None
        assert metrics["mfs_shape_counts"]
        # A fixture diffed against itself is exactly clean.
        records = fixture_records(version)
        assert diff_journals(records, records).ok

    def test_renders_through_report_cli(self, version, capsys):
        path = os.path.join(FIXTURES, f"v{version}.jsonl")
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "anomalies" in out

    def test_report_json_roundtrips(self, version, capsys):
        path = os.path.join(FIXTURES, f"v{version}.jsonl")
        assert main(["report", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["anomalies"] >= 1

    def test_passes_the_canary_invariant_pass(self, version):
        """Old journals' anomalies still reproduce on today's testbed."""
        cell = CorpusCell(
            name=f"v{version}-fixture",
            subsystem=FIXTURE_SUBSYSTEM,
            seed=1,
            records=fixture_records(version),
        )
        assert check_cell(cell) == []


class TestIsolationJournalSurfaces:
    """v6-specific read surfaces over the isolation fixture."""

    def test_metrics_have_the_isolation_family(self):
        metrics = journal_metrics(fixture_records(6))
        assert metrics["isolation_experiments"] > 0
        assert 0.0 <= metrics["interference_min"] <= 1.0

    def test_report_names_the_victim(self, capsys):
        path = os.path.join(FIXTURES, "v6.jsonl")
        assert main(["report", path]) == 0
        captured = capsys.readouterr()
        text = captured.out + captured.err
        assert "isolation run: victim" in text
        assert "worst interference" in text

    def test_solo_journals_carry_no_isolation_family(self):
        metrics = journal_metrics(fixture_records(5))
        assert metrics["isolation_experiments"] == 0
        assert metrics["interference_min"] is None


class TestTelemetryJournalSurfaces:
    """v7-specific read surfaces over the telemetered campaign fixture."""

    def test_heartbeats_are_counted_and_fold_into_liveness(self):
        from repro.obs import CampaignAggregator, journal_summary

        records = fixture_records(7)
        assert journal_summary(records)["heartbeats"] == 2
        agg = CampaignAggregator(
            [os.path.join(FIXTURES, "v7.jsonl")]
        )
        agg.refresh()
        snap = agg.snapshot(now=0.0)
        assert snap["totals"]["workers_total"] == 2
        assert snap["totals"]["runs"] == 2

    def test_canonical_form_drops_heartbeats(self):
        from repro.canary.corpus import canonical_journal_bytes

        records = fixture_records(7)
        stripped = [r for r in records if r["t"] != "heartbeat"]
        assert canonical_journal_bytes(records) == canonical_journal_bytes(
            stripped
        )
        assert b"heartbeat" not in canonical_journal_bytes(records)

    def test_gated_metrics_ignore_heartbeats(self):
        records = fixture_records(7)
        stripped = [r for r in records if r["t"] != "heartbeat"]
        assert journal_metrics(records) == journal_metrics(stripped)


class TestPreTelemetryReaderSkipsWithNote:
    """A pre-v7 reader sees ``heartbeat`` as an unknown record kind."""

    def test_skip_is_noted_and_reads_still_work(self, monkeypatch):
        from repro.analysis.journaldiff import describe_unknown_kinds
        from repro.obs import schema

        monkeypatch.delitem(schema.RECORD_FIELDS, "heartbeat")
        records = fixture_records(7)
        assert describe_unknown_kinds(records) == [
            "unknown record kind skipped: heartbeat (n=2)"
        ]
        reports = reports_from_records(records)
        assert len(reports) == 2
        assert diff_journals(records, records).ok


class TestPreIsolationReaderSkipsWithNote:
    """A pre-v6 reader sees ``isolation`` as an unknown record kind.

    Simulated the way the repo's other old-reader tests do: the
    ``isolation`` entry is removed from the live schema table, so every
    skipping surface (report, stats, journal diff, canary check) flows
    through :func:`describe_unknown_kinds` and says what it dropped.
    """

    def test_skip_is_noted_and_reads_still_work(self, monkeypatch):
        from repro.analysis.journaldiff import describe_unknown_kinds
        from repro.obs import schema

        monkeypatch.delitem(schema.RECORD_FIELDS, "isolation")
        records = fixture_records(6)
        assert describe_unknown_kinds(records) == [
            "unknown record kind skipped: isolation (n=1)"
        ]
        # The rest of the journal keeps reading: reports reconstruct
        # and a self-diff is exactly clean.
        reports = reports_from_records(records)
        assert len(reports) == 1
        assert len(reports[0].anomalies) >= 1
        assert diff_journals(records, records).ok

    def test_journal_diff_cli_warns(self, monkeypatch, capsys):
        from repro.obs import schema

        monkeypatch.delitem(schema.RECORD_FIELDS, "isolation")
        path = os.path.join(FIXTURES, "v6.jsonl")
        assert main(["journal", "diff", path, path]) == 0
        err = capsys.readouterr().err
        assert "unknown record kind skipped: isolation (n=1)" in err


class TestVersionStampProperty:
    @given(
        stamps=st.lists(
            st.sampled_from(SUPPORTED_VERSIONS), min_size=1, max_size=10
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_any_supported_stamp_mix_stays_valid(self, stamps):
        """Record versions are independent: any supported mix validates
        and reconstructs identically (readers key on record *type*)."""
        records = fixture_records(1)
        stamped = [
            {**record, "v": stamps[index % len(stamps)]}
            for index, record in enumerate(records)
        ]
        assert validate_journal(stamped) == []
        baseline = journal_metrics(records)
        restamped = journal_metrics(stamped)
        assert restamped == baseline

    @given(version=st.integers(min_value=-3, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_unsupported_versions_are_rejected(self, version):
        records = fixture_records(1)[:3]
        if version in SUPPORTED_VERSIONS:
            return
        stamped = [{**record, "v": version} for record in records]
        errors = validate_journal(stamped)
        assert errors and "unsupported schema version" in errors[0]
