"""Span profiler: nesting, self-time telescoping, trace export."""

import json
import time

from repro.obs import (
    SpanProfiler,
    chrome_trace,
    events_from_records,
    render_span_table,
    validate_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (
    measured_wall_seconds,
    self_times,
    span_totals,
    spans_records,
)
from repro.obs.schema import validate_record


def nested_events():
    profiler = SpanProfiler()
    with profiler.span("search"):
        with profiler.span("rank"):
            time.sleep(0.002)
        for _ in range(3):
            with profiler.span("iteration"):
                with profiler.span("solve"):
                    time.sleep(0.001)
    return profiler.events()


class TestRecording:
    def test_paths_nest_under_the_active_span(self):
        paths = {path for path, _, _ in nested_events()}
        assert paths == {
            "search",
            "search/rank",
            "search/iteration",
            "search/iteration/solve",
        }

    def test_counts_match_the_call_structure(self):
        totals = span_totals(nested_events())
        assert totals["search"]["count"] == 1
        assert totals["search/iteration"]["count"] == 3
        assert totals["search/iteration/solve"]["count"] == 3

    def test_span_observes_into_metrics(self):
        metrics = MetricsRegistry()
        profiler = SpanProfiler(metrics=metrics)
        with profiler.span("solve"):
            pass
        summary = metrics.histogram("span.seconds", span="solve")
        assert summary is not None and summary.count == 1


class TestSelfTimes:
    def test_self_times_telescope_to_the_root_wall_clock(self):
        events = nested_events()
        wall = measured_wall_seconds(events)
        accounted = sum(self_times(events).values())
        # Exact telescoping: every parent's self time is its total
        # minus its direct children, so the sum is the root total.
        assert abs(accounted - wall) < 1e-9
        assert accounted >= 0.95 * wall

    def test_parent_self_excludes_children(self):
        events = nested_events()
        totals = span_totals(events)
        selves = self_times(events)
        iteration = totals["search/iteration"]["total"]
        solve = totals["search/iteration/solve"]["total"]
        assert abs(selves["search/iteration"] - (iteration - solve)) < 1e-9

    def test_table_reports_full_accounting(self):
        table = render_span_table(nested_events())
        assert "search/iteration/solve" in table
        assert "account for 100.0%" in table

    def test_table_handles_no_events(self):
        assert render_span_table([]) == "no spans recorded"


class TestChromeTrace:
    def test_trace_is_schema_valid(self):
        trace = chrome_trace(nested_events())
        assert validate_chrome_trace(trace) == []

    def test_trace_survives_json_round_trip(self):
        trace = chrome_trace(nested_events())
        reparsed = json.loads(json.dumps(trace))
        assert validate_chrome_trace(reparsed) == []
        assert reparsed == trace

    def test_validator_flags_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad = {"traceEvents": [{"name": "", "ph": "B", "ts": -1}]}
        errors = validate_chrome_trace(bad)
        assert any("name" in e for e in errors)
        assert any("ph" in e for e in errors)


class TestJournalRoundTrip:
    def test_spans_records_round_trip(self):
        events = nested_events()
        records = list(spans_records(events, chunk=3))
        assert len(records) > 1  # chunking actually chunked
        assert events_from_records(records) == events

    def test_spans_records_validate_under_schema(self):
        for record in spans_records(nested_events()):
            assert validate_record(dict(record, v=3), 0) == []
