"""The labeled metrics registry."""

import threading

import pytest

from repro.obs.metrics import HistogramSummary, MetricsRegistry, render_key


class TestRenderKey:
    def test_bare_name_without_labels(self):
        assert render_key("search.runs", {}) == "search.runs"

    def test_labels_render_sorted(self):
        key = render_key("x", {"b": 2, "a": 1})
        assert key == "x{a=1,b=2}"


class TestCounters:
    def test_default_increment_is_one(self):
        metrics = MetricsRegistry()
        metrics.counter("hits")
        metrics.counter("hits")
        assert metrics.value("hits") == 2.0

    def test_custom_increment(self):
        metrics = MetricsRegistry()
        metrics.counter("bytes", 512.0)
        metrics.counter("bytes", 256.0)
        assert metrics.value("bytes") == 768.0

    def test_labels_are_distinct_series(self):
        metrics = MetricsRegistry()
        metrics.counter("exp", kind="sa")
        metrics.counter("exp", kind="sa")
        metrics.counter("exp", kind="probe")
        assert metrics.value("exp", kind="sa") == 2.0
        assert metrics.value("exp", kind="probe") == 1.0
        assert metrics.value("exp") == 0.0  # the unlabeled series is unseen


class TestGauges:
    def test_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("temperature", 1.0)
        metrics.gauge("temperature", 0.25)
        assert metrics.value("temperature") == 0.25


class TestHistograms:
    def test_streaming_summary(self):
        metrics = MetricsRegistry()
        for value in (1.0, 2.0, 6.0):
            metrics.observe("delta", value)
        summary = metrics.histogram("delta")
        assert summary.count == 3
        assert summary.total == 9.0
        assert summary.minimum == 1.0
        assert summary.maximum == 6.0
        assert summary.mean == 3.0

    def test_unseen_series_is_empty(self):
        summary = MetricsRegistry().histogram("nope")
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_empty_summary_as_dict_has_finite_bounds(self):
        as_dict = HistogramSummary().as_dict()
        assert as_dict["min"] == 0.0 and as_dict["max"] == 0.0

    def test_histogram_returns_a_copy(self):
        metrics = MetricsRegistry()
        metrics.observe("x", 1.0)
        copy = metrics.histogram("x")
        copy.observe(100.0)
        assert metrics.histogram("x").count == 1


class TestPercentiles:
    def test_as_dict_reports_percentiles(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):
            metrics.observe("latency", float(value))
        summary = metrics.histogram("latency").as_dict()
        for key in ("p50", "p90", "p99"):
            assert key in summary
        assert summary["p50"] <= summary["p90"] <= summary["p99"]
        assert summary["min"] <= summary["p50"] <= summary["max"]

    def test_percentiles_clamp_to_observed_range(self):
        metrics = MetricsRegistry()
        metrics.observe("one", 3.0)
        summary = metrics.histogram("one")
        assert summary.percentile(0.50) == 3.0
        assert summary.percentile(0.99) == 3.0

    def test_empty_summary_percentile_is_zero(self):
        from repro.obs.metrics import HistogramSummary

        assert HistogramSummary().percentile(0.5) == 0.0

    def test_single_bucket_interpolates_instead_of_collapsing(self):
        """Regression: quantiles inside one bucket used to collapse onto
        the bucket's upper bound (25.0 here), making p50 == p90 == p99.
        Linear interpolation between the observed [min, max] resolves
        sub-bucket ranks."""
        metrics = MetricsRegistry()
        for value in range(11, 21):  # all land in the (10, 25] bucket
            metrics.observe("tight", float(value))
        summary = metrics.histogram("tight")
        assert summary.percentile(0.50) == pytest.approx(15.5)
        assert summary.percentile(0.90) == pytest.approx(19.1)
        assert (
            summary.percentile(0.50)
            < summary.percentile(0.90)
            < summary.percentile(0.99)
        )
        assert summary.percentile(0.99) < 25.0  # never the raw bound

    def test_bucket_estimate_is_order_of_magnitude_right(self):
        metrics = MetricsRegistry()
        for _ in range(90):
            metrics.observe("mixed", 0.001)
        for _ in range(10):
            metrics.observe("mixed", 10.0)
        summary = metrics.histogram("mixed")
        assert summary.percentile(0.50) < 0.01
        assert summary.percentile(0.99) >= 1.0

    def test_describe_mentions_p50_and_p99(self):
        metrics = MetricsRegistry()
        metrics.observe("delta", 2.0)
        text = metrics.describe()
        assert "p50=" in text and "p99=" in text


class TestTimer:
    def test_timer_observes_elapsed_seconds(self):
        metrics = MetricsRegistry()
        with metrics.timer("wall", phase="mfs"):
            pass
        summary = metrics.histogram("wall", phase="mfs")
        assert summary.count == 1
        assert summary.minimum >= 0.0


class TestSnapshot:
    def test_snapshot_is_json_shaped(self):
        metrics = MetricsRegistry()
        metrics.counter("runs")
        metrics.gauge("temp", 0.5, stage="late")
        metrics.observe("delta", 2.0)
        snap = metrics.snapshot()
        assert snap["counters"] == {"runs": 1.0}
        assert snap["gauges"] == {"temp{stage=late}": 0.5}
        assert snap["histograms"]["delta"]["count"] == 1

    def test_series_lists_every_rendered_name(self):
        metrics = MetricsRegistry()
        metrics.counter("b")
        metrics.gauge("a", 1.0)
        metrics.observe("c", 1.0, k="v")
        assert list(metrics.series()) == ["a", "b", "c{k=v}"]

    def test_describe_mentions_every_series(self):
        metrics = MetricsRegistry()
        metrics.counter("runs")
        metrics.observe("delta", 2.0)
        text = metrics.describe()
        assert "runs" in text and "delta" in text

    def test_describe_empty_registry(self):
        assert "no metrics" in MetricsRegistry().describe()


class TestThreadSafety:
    def test_concurrent_increments_are_not_lost(self):
        metrics = MetricsRegistry()

        def hammer():
            for _ in range(500):
                metrics.counter("n")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.value("n") == pytest.approx(8 * 500)
