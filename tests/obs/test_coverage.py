"""Workload-space coverage: bucketing, tracking, journal round-trip."""

import numpy as np
import pytest

from repro.core import Collie
from repro.core.space import (
    DIMENSION_GROUPS,
    SearchSpace,
    changed_dimensions,
)
from repro.obs import (
    CoverageTracker,
    FlightRecorder,
    RunJournal,
    coverage_from_records,
    read_journal,
    render_latency_panel,
)
from repro.obs.schema import validate_record

BUDGET_HOURS = 0.5
SEED = 2


class TestBucketing:
    def setup_method(self):
        self.space = SearchSpace()

    def test_groups_cover_every_searched_dimension(self):
        flattened = self.space.coverage_dimensions()
        assert len(flattened) == len(set(flattened))
        for dimensions in DIMENSION_GROUPS.values():
            for dimension in dimensions:
                assert dimension in flattened

    def test_every_dimension_has_buckets(self):
        for dimension in self.space.coverage_dimensions():
            buckets = self.space.dimension_buckets(dimension)
            assert len(buckets) >= 1

    def test_random_points_bucket_onto_known_values(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            workload = self.space.random(rng)
            buckets = self.space.point_buckets(workload)
            for dimension, value in buckets.items():
                assert value in self.space.dimension_buckets(dimension)

    def test_bucket_value_picks_the_point_ladder_rung(self):
        rng = np.random.default_rng(1)
        workload = self.space.random(rng)
        assert self.space.bucket_value("num_qps", workload) == workload.num_qps


class TestChangedDimensions:
    def test_identical_points_change_nothing(self):
        space = SearchSpace()
        workload = space.random(np.random.default_rng(0))
        assert changed_dimensions(workload, workload) == ()

    def test_mutations_report_valid_dimension_labels(self):
        from repro.core.space import (
            CATEGORICAL_DIMENSIONS,
            ORDERED_DIMENSIONS,
            PATTERN_DIMENSION,
        )

        valid = set(ORDERED_DIMENSIONS + CATEGORICAL_DIMENSIONS)
        valid.add(PATTERN_DIMENSION)
        space = SearchSpace()
        rng = np.random.default_rng(3)
        current = space.random(rng)
        moved = 0
        for _ in range(20):
            candidate = space.mutate(current, rng)
            changed = changed_dimensions(current, candidate)
            moved += bool(changed)
            for name in changed:
                assert name in valid
            current = candidate
        # A mutation may occasionally resample the same value, but a
        # run of 20 must move the point most of the time.
        assert moved >= 10


class TestTracker:
    def test_visits_accumulate(self):
        space = SearchSpace()
        tracker = CoverageTracker(space)
        rng = np.random.default_rng(0)
        points = [space.random(rng) for _ in range(25)]
        for point in points:
            tracker.visit(point)
        assert tracker.experiments == 25
        assert tracker.unique_points <= 25
        assert 0.0 < tracker.touched_fraction() <= 1.0

    def test_skips_count_without_experiments(self):
        tracker = CoverageTracker(SearchSpace())
        tracker.skip(None)
        assert tracker.skips == 1
        assert tracker.experiments == 0

    def test_as_record_validates_under_schema(self):
        space = SearchSpace()
        tracker = CoverageTracker(space)
        tracker.visit(space.random(np.random.default_rng(0)))
        record = dict(tracker.as_record(12.5), v=3)
        assert validate_record(record, 0) == []

    def test_render_mentions_every_group(self):
        space = SearchSpace()
        tracker = CoverageTracker(space)
        tracker.visit(space.random(np.random.default_rng(0)))
        text = tracker.render()
        for group in DIMENSION_GROUPS:
            assert group in text
        assert "touched" in text

    def test_for_subsystem_accepts_unknown_letter(self):
        tracker = CoverageTracker.for_subsystem("not-a-letter")
        assert tracker.dimensions


class TestJournalRoundTrip:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("coverage") / "run.jsonl"
        recorder = FlightRecorder(
            journal=RunJournal(path), track_coverage=True
        )
        Collie.for_subsystem(
            "H", budget_hours=BUDGET_HOURS, seed=SEED, recorder=recorder
        ).run()
        live = recorder.coverage
        recorder.close()
        return live, path

    def test_live_and_posthoc_coverage_agree(self, recorded):
        live, path = recorded
        trackers = coverage_from_records(read_journal(path))
        assert len(trackers) == 1
        posthoc = trackers[0]
        assert posthoc.experiments == live.experiments
        assert posthoc.skips == live.skips
        assert posthoc.unique_points == live.unique_points
        assert posthoc.summary() == live.summary()

    def test_journal_contains_coverage_records(self, recorded):
        _, path = recorded
        kinds = [r["t"] for r in read_journal(path)]
        assert "coverage" in kinds


class TestLatencyPanel:
    def _latency(self, p99, inflation=1.0, tags=()):
        return {
            "t": "latency", "time_seconds": 0.0, "p50_us": 1.0,
            "p90_us": 2.0, "p99_us": p99, "mean_us": 1.0,
            "baseline_us": 1.0, "inflation": inflation,
            "components": {}, "tags": list(tags),
        }

    def test_none_without_latency_records(self):
        records = [{"t": "experiment", "symptom": "healthy"}]
        assert render_latency_panel(records) is None
        assert render_latency_panel([]) is None

    def test_buckets_summary_and_quirk_count(self):
        records = [
            self._latency(3.0),
            self._latency(42.0),
            self._latency(55.0, inflation=6.5, tags=("L1",)),
            self._latency(2500.0),
        ]
        panel = render_latency_panel(records)
        assert "4 latency records" in panel
        assert "<10us" in panel and "10-100us" in panel
        assert "1-10ms" in panel
        assert ">=10ms" not in panel  # empty buckets are skipped
        assert "worst inflation 6.50x" in panel
        assert "1 experiment(s) with a fired latency quirk" in panel

    def test_panel_reads_a_real_latency_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(journal=RunJournal(path))
        Collie.for_subsystem(
            "F", budget_hours=0.5, seed=2, recorder=recorder
        ).run()
        recorder.close()
        panel = render_latency_panel(read_journal(path))
        assert panel is not None
        assert "median p99" in panel
