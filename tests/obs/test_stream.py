"""Tail-following a live journal: no record lost, duplicated or torn."""

import json
import threading

import pytest

from repro.obs import FlightRecorder, JournalFollower, RunJournal, follow_journal
from repro.core import Collie


def write_line(handle, record):
    handle.write((json.dumps(record) + "\n").encode("utf-8"))
    handle.flush()


class TestTornTail:
    def test_only_terminated_lines_are_consumed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        follower = JournalFollower(path)
        with open(path, "wb") as handle:
            write_line(handle, {"t": "a", "n": 1})
            handle.write(b'{"t": "b", ')  # torn tail: flushed mid-record
            handle.flush()
            assert follower.poll() == [{"t": "a", "n": 1}]
            assert follower.poll() == []  # tail still pending, not an error
            handle.write(b'"n": 2}\n')
            handle.flush()
        assert follower.poll() == [{"t": "b", "n": 2}]
        assert follower.poll() == []

    def test_mid_record_flush_never_splits_a_record(self, tmp_path):
        """A record flushed byte-by-byte arrives exactly once, intact."""
        path = tmp_path / "run.jsonl"
        payload = (json.dumps({"t": "x", "v": "abc"}) + "\n").encode()
        follower = JournalFollower(path)
        seen = []
        with open(path, "wb") as handle:
            for byte in payload:
                handle.write(bytes([byte]))
                handle.flush()
                seen.extend(follower.poll())
        assert seen == [{"t": "x", "v": "abc"}]

    def test_missing_file_polls_empty(self, tmp_path):
        follower = JournalFollower(tmp_path / "not-yet.jsonl")
        assert follower.poll() == []

    def test_completed_bad_line_is_corruption(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(b'{"t": "ok"}\nnot json at all\n')
        follower = JournalFollower(path)
        with pytest.raises(ValueError, match="corrupt journal line at byte"):
            follower.poll()


class TestResume:
    def test_offset_resumes_without_loss_or_duplication(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with open(path, "wb") as handle:
            for n in range(5):
                write_line(handle, {"n": n})
        first = JournalFollower(path)
        head = first.poll()
        assert [r["n"] for r in head] == [0, 1, 2, 3, 4]
        with open(path, "ab") as handle:
            for n in range(5, 8):
                write_line(handle, {"n": n})
        resumed = JournalFollower(path, offset=first.offset)
        assert [r["n"] for r in resumed.poll()] == [5, 6, 7]
        assert resumed.poll() == []

    def test_polling_is_idempotent_between_writes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with open(path, "wb") as handle:
            write_line(handle, {"n": 0})
        follower = JournalFollower(path)
        assert follower.poll() == [{"n": 0}]
        for _ in range(3):
            assert follower.poll() == []
        assert follower.records_seen == 1


class TestConcurrentWriter:
    TOTAL = 400

    def test_concurrent_appends_arrive_exactly_once_in_order(self, tmp_path):
        """A writer thread appends with adversarial flush splits while the
        follower polls; every record is seen once, in write order."""
        path = tmp_path / "run.jsonl"
        done = threading.Event()

        def writer():
            with open(path, "wb") as handle:
                for n in range(self.TOTAL):
                    payload = (json.dumps({"n": n}) + "\n").encode()
                    # Vary the flush boundary so some polls race a torn
                    # tail, some race a record boundary, some race both.
                    split = n % len(payload)
                    handle.write(payload[:split])
                    handle.flush()
                    handle.write(payload[split:])
                    handle.flush()
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        seen = list(follow_journal(path, poll_interval=0.001, stop=done.is_set))
        thread.join()
        assert [r["n"] for r in seen] == list(range(self.TOTAL))

    def test_follow_stop_after_last_record_drains_fully(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with open(path, "wb") as handle:
            for n in range(4):
                write_line(handle, {"n": n})
        # stop() is already true on entry; the final drain still yields
        # everything that was written before the flag went up.
        seen = list(follow_journal(path, stop=lambda: True))
        assert [r["n"] for r in seen] == [0, 1, 2, 3]


class TestAgainstRealJournal:
    def test_followed_records_equal_post_hoc_read(self, tmp_path):
        from repro.obs import read_journal

        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(journal=RunJournal(path))
        Collie.for_subsystem(
            "H", budget_hours=0.3, seed=3, recorder=recorder
        ).run()
        recorder.close()
        follower = JournalFollower(path)
        assert follower.poll() == read_journal(path)
