"""Journal record schema validation."""

from repro.obs.schema import (
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    validate_journal,
    validate_record,
)


def skip_record(**overrides):
    record = {"v": SCHEMA_VERSION, "t": "skip", "time_seconds": 3.5}
    record.update(overrides)
    return record


class TestValidateRecord:
    def test_valid_record_has_no_errors(self):
        assert validate_record(skip_record()) == []

    def test_non_object_record(self):
        assert "not an object" in validate_record([1, 2, 3])[0]

    def test_wrong_schema_version(self):
        errors = validate_record(skip_record(v=99))
        assert any("unsupported schema version 99" in e for e in errors)

    def test_unknown_record_type(self):
        errors = validate_record(skip_record(t="warp"))
        assert any("unknown record type 'warp'" in e for e in errors)

    def test_missing_field(self):
        record = skip_record()
        del record["time_seconds"]
        errors = validate_record(record)
        assert any("missing field 'time_seconds'" in e for e in errors)

    def test_mistyped_field(self):
        errors = validate_record(skip_record(time_seconds="late"))
        assert any("expected int or float" in e for e in errors)

    def test_bool_does_not_satisfy_an_int_field(self):
        errors = validate_record(skip_record(time_seconds=True))
        assert any("is bool" in e for e in errors)

    def test_bool_fields_accept_bools(self):
        record = {
            "v": SCHEMA_VERSION, "t": "cache", "phase": "mfs", "hit": True,
        }
        assert validate_record(record) == []

    def test_unknown_transition_action(self):
        record = {
            "v": SCHEMA_VERSION, "t": "transition", "time_seconds": 0.0,
            "action": "teleport", "temperature": 1.0, "delta": 0.0,
        }
        errors = validate_record(record)
        assert any("unknown action 'teleport'" in e for e in errors)

    def test_extra_fields_are_forward_compatible(self):
        assert validate_record(skip_record(future_field=1)) == []

    def test_line_number_is_reported(self):
        errors = validate_record(skip_record(v=0), line=7)
        assert errors[0].startswith("line 7: ")


class TestSchemaVersions:
    def test_current_version_is_seven(self):
        assert SCHEMA_VERSION == 7
        assert SUPPORTED_VERSIONS == (1, 2, 3, 4, 5, 6, 7)

    def test_older_journals_still_validate(self):
        for version in (1, 2, 3, 4, 5, 6):
            assert validate_record(skip_record(v=version)) == []

    def test_future_version_rejected(self):
        errors = validate_record(skip_record(v=8))
        assert any("unsupported schema version 8" in e for e in errors)


class TestPopulationRecords:
    def test_chain_stamp_validates_on_any_record(self):
        assert validate_record(skip_record(chain=3)) == []

    def test_chain_stamp_must_be_an_int(self):
        errors = validate_record(skip_record(chain="3"))
        assert any("field 'chain' is str" in e for e in errors)
        errors = validate_record(skip_record(chain=True))
        assert any("field 'chain' is bool" in e for e in errors)

    def test_exchange_transition_action_validates(self):
        record = {
            "v": SCHEMA_VERSION, "t": "transition", "time_seconds": 9.0,
            "action": "exchange", "temperature": 0.5, "delta": 0.0,
            "chain": 1,
        }
        assert validate_record(record) == []


class TestResilienceRecords:
    def test_retry_record_validates(self):
        record = {
            "v": SCHEMA_VERSION, "t": "retry", "task": 4, "host": 1,
            "attempt": 0, "error": "crash", "backoff_seconds": 0.5,
        }
        assert validate_record(record) == []

    def test_retry_record_requires_its_fields(self):
        record = {"v": SCHEMA_VERSION, "t": "retry", "task": 4}
        errors = validate_record(record)
        assert any("missing field 'host'" in e for e in errors)
        assert any("missing field 'error'" in e for e in errors)

    def test_quarantine_record_validates(self):
        record = {
            "v": SCHEMA_VERSION, "t": "quarantine", "host": 2,
            "failures": 3, "redistributed": 5,
        }
        assert validate_record(record) == []

    def test_quarantine_record_types_are_checked(self):
        record = {
            "v": SCHEMA_VERSION, "t": "quarantine", "host": "two",
            "failures": 3, "redistributed": 5,
        }
        errors = validate_record(record)
        assert any("'host'" in e for e in errors)


class TestIsolationRecords:
    """Schema v6: the isolation preamble and the interference stamp."""

    def isolation_record(self, **overrides):
        record = {
            "v": SCHEMA_VERSION, "t": "isolation",
            "victim": {"num_qps": 8}, "victim_share": 0.5,
            "alone_gbps": 25.0, "alone_p99_us": 2.5,
        }
        record.update(overrides)
        return record

    def test_isolation_record_validates(self):
        assert validate_record(self.isolation_record()) == []

    def test_isolation_record_requires_its_fields(self):
        record = self.isolation_record()
        del record["victim"]
        del record["alone_gbps"]
        errors = validate_record(record)
        assert any("missing field 'victim'" in e for e in errors)
        assert any("missing field 'alone_gbps'" in e for e in errors)

    def test_isolation_victim_must_be_an_object(self):
        errors = validate_record(self.isolation_record(victim="qp8"))
        assert any("field 'victim' is str" in e for e in errors)

    def test_experiment_interference_is_optional(self):
        record = {
            "v": SCHEMA_VERSION, "t": "experiment", "time_seconds": 1.0,
            "counter": "c", "counter_value": 0.0, "symptom": "healthy",
            "tags": [], "kind": "probe", "workload": {}, "counters": {},
            "new_anomaly_index": None,
        }
        assert validate_record(record) == []
        assert validate_record({**record, "interference": 0.4}) == []
        errors = validate_record({**record, "interference": "low"})
        assert any("'interference'" in e for e in errors)


class TestValidateJournal:
    def test_empty_journal_is_an_error(self):
        assert validate_journal([]) == ["journal is empty"]

    def test_line_numbers_across_the_journal(self):
        records = [skip_record(), skip_record(time_seconds=None)]
        errors = validate_journal(records)
        assert len(errors) == 1
        assert errors[0].startswith("line 2: ")

    def test_clean_journal_validates(self):
        assert validate_journal([skip_record()] * 3) == []
