"""Flight-recorder progress lines: format pinned, silent when off."""

import logging

from repro.core import Collie
from repro.obs import FlightRecorder

BUDGET_HOURS = 0.5
SEED = 2
PROGRESS_LOGGER = "repro.obs.progress"


def run_search(recorder):
    return Collie.for_subsystem(
        "H", budget_hours=BUDGET_HOURS, seed=SEED, recorder=recorder
    ).run()


class TestProgressLines:
    def test_progress_line_format_is_pinned(self, caplog):
        """Operators (and CI log scrapers) grep for this exact shape."""
        with caplog.at_level(logging.INFO, logger=PROGRESS_LOGGER):
            report = run_search(FlightRecorder(progress_every=5))
        lines = [
            record.getMessage() for record in caplog.records
            if record.name == PROGRESS_LOGGER
        ]
        assert lines, "progress_every=5 must emit progress lines"
        import re

        pattern = re.compile(
            r"^progress: \d+ experiments, \d+ anomalies, \d+ skipped, "
            r"t=\d+\.\d{2} simulated hours$"
        )
        for line in lines:
            assert pattern.match(line), line
        assert len(lines) == report.experiments // 5

    def test_progress_every_zero_emits_nothing(self, caplog):
        with caplog.at_level(logging.INFO, logger=PROGRESS_LOGGER):
            run_search(FlightRecorder(progress_every=0))
        assert not [
            record for record in caplog.records
            if record.name == PROGRESS_LOGGER
        ]

    def test_task_progress_format_is_pinned(self, caplog):
        recorder = FlightRecorder(progress_every=1)
        with caplog.at_level(logging.INFO, logger=PROGRESS_LOGGER):
            recorder.task_progress(2, 8)
        assert [r.getMessage() for r in caplog.records] == [
            "progress: task 2/8 complete"
        ]

    def test_task_progress_silent_when_off(self, caplog):
        recorder = FlightRecorder(progress_every=0)
        with caplog.at_level(logging.INFO, logger=PROGRESS_LOGGER):
            recorder.task_progress(2, 8)
        assert not caplog.records
