"""The observatory's prime directive: observation changes nothing.

A search run with the full observatory enabled (journal + coverage
tracking + span profiler + progress lines) must be bit-identical to an
unobserved run: same SearchReport, same final RNG state, same simulated
clock reading.  Property-tested across all eight Table 1 subsystems.
"""

import os
import tempfile

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Collie
from repro.obs import FlightRecorder, RunJournal, SpanProfiler

BUDGET_HOURS = 0.3


def run_search(letter, seed, recorder):
    collie = Collie.for_subsystem(
        letter, budget_hours=BUDGET_HOURS, seed=seed, recorder=recorder
    )
    report = collie.run()
    return report, collie.rng.bit_generator.state, collie.clock.now


@settings(max_examples=8, deadline=None)
@given(
    letter=st.sampled_from("ABCDEFGH"),
    seed=st.integers(min_value=0, max_value=3),
)
def test_full_observatory_is_invisible_to_the_search(letter, seed):
    reference, rng_state, clock = run_search(letter, seed, None)

    handle, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(handle)
    try:
        recorder = FlightRecorder(
            journal=RunJournal(path),
            progress_every=7,
            track_coverage=True,
        )
        recorder.profiler = SpanProfiler(metrics=recorder.metrics)
        observed, observed_rng, observed_clock = run_search(
            letter, seed, recorder
        )
        recorder.close()
    finally:
        os.unlink(path)

    assert observed == reference
    assert observed_rng == rng_state
    assert observed_clock == clock
    # The observatory actually observed: spans recorded, coverage live.
    assert len(recorder.profiler.events()) > 0
    assert recorder.coverage is not None
    assert recorder.coverage.experiments == reference.experiments
