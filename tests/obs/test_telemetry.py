"""The live telemetry plane: heartbeats, aggregation, export, dashboard.

The plane's one non-negotiable invariant is tested here end to end: a
campaign observed by the follower/aggregator/exporter stack produces a
journal *bit-identical* (in canonical form, heartbeat records excluded)
to an unobserved run — telemetry reads, it never steers.
"""

import gzip
import json
import urllib.error
import urllib.request

import pytest

from repro.analysis.campaign import run_campaign
from repro.canary.corpus import canonical_journal_bytes
from repro.core import Collie
from repro.obs import (
    CampaignAggregator,
    FlightRecorder,
    MetricsRegistry,
    RunJournal,
    TelemetryServer,
    journal_summary,
    load_baseline_metrics,
    read_journal,
    render_dashboard,
    render_prometheus,
    validate_journal,
)

BUDGET_HOURS = 0.3
SEEDS = (1, 2)


def run_recorded_campaign(path, heartbeats=False, progress_every=0):
    recorder = FlightRecorder(
        journal=RunJournal(path),
        heartbeats=heartbeats,
        progress_every=progress_every,
    )
    result = run_campaign(
        "collie", subsystem="F", seeds=SEEDS, budget_hours=BUDGET_HOURS,
        workers=2, recorder=recorder,
    )
    recorder.close()
    return result


@pytest.fixture(scope="module")
def campaign_journals(tmp_path_factory):
    """(bare path, telemetered path): same campaign, with/without beats."""
    base = tmp_path_factory.mktemp("telemetry")
    bare = base / "bare.jsonl"
    telem = base / "telem.jsonl"
    run_recorded_campaign(bare, heartbeats=False)
    run_recorded_campaign(telem, heartbeats=True)
    return bare, telem


class TestHeartbeats:
    def test_bare_run_writes_no_heartbeats(self, campaign_journals):
        bare, _ = campaign_journals
        assert journal_summary(read_journal(bare))["heartbeats"] == 0

    def test_telemetered_run_heartbeats_validate(self, campaign_journals):
        _, telem = campaign_journals
        records = read_journal(telem)
        beats = [r for r in records if r["t"] == "heartbeat"]
        assert len(beats) == len(SEEDS)
        assert validate_journal(records) == []
        # Deterministic worker slots: task order, round-robin.
        assert [b["worker"] for b in beats] == [0, 1]
        assert [b["done"] for b in beats] == [1, 2]
        assert all(b["total"] == len(SEEDS) for b in beats)

    def test_observed_run_is_canonically_bit_identical(
        self, campaign_journals
    ):
        """The acceptance invariant: heartbeats are the only difference,
        and canonical form (wall clock neutralized) erases even that."""
        bare, telem = campaign_journals
        assert canonical_journal_bytes(
            read_journal(bare)
        ) == canonical_journal_bytes(read_journal(telem))

    def test_heartbeat_off_recorder_ignores_calls(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(journal=RunJournal(path))
        recorder.heartbeat(0, 1, 2)
        recorder.close()
        assert read_journal(path) == []

    def test_wall_time_never_enters_the_metrics_registry(
        self, campaign_journals
    ):
        """Heartbeat wall time is an envelope field: no registry series
        (dumped into run_end/snapshot records) may derive from it."""
        _, telem = campaign_journals
        for record in read_journal(telem):
            metrics = record.get("metrics") or {}
            for group in metrics.values():
                if isinstance(group, dict):
                    assert not any("heartbeat" in k for k in group)


class TestAggregator:
    def test_rollup_agrees_with_post_hoc_metrics(self, campaign_journals):
        from repro.analysis.journaldiff import journal_metrics

        _, telem = campaign_journals
        agg = CampaignAggregator([telem])
        agg.refresh()
        snap = agg.snapshot(now=0.0)
        expected = journal_metrics(read_journal(telem))
        totals = snap["totals"]
        assert totals["experiments"] == expected["experiments"]
        assert totals["anomalies"] == expected["anomalies"]
        assert totals["time_to_first_anomaly_seconds"] == (
            expected["time_to_first_anomaly_seconds"]
        )
        assert totals["coverage_fraction"] == expected["coverage_fraction"]
        assert totals["runs"] == len(SEEDS)
        assert totals["complete_runs"] == len(SEEDS)

    def test_liveness_classification(self, campaign_journals):
        _, telem = campaign_journals
        agg = CampaignAggregator([telem], stale_after=30.0)
        agg.refresh()
        beats = [r for r in read_journal(telem) if r["t"] == "heartbeat"]
        latest = max(b["wall_time"] for b in beats)
        fresh = agg.snapshot(now=latest + 1.0)
        assert fresh["totals"]["workers_alive"] == 2
        stale = agg.snapshot(now=latest + 31.0)
        assert stale["totals"]["workers_alive"] == 0
        assert stale["totals"]["workers_total"] == 2
        assert all(not row["alive"] for row in stale["workers"])

    def test_incremental_refresh_matches_one_shot(
        self, tmp_path, campaign_journals
    ):
        """Folding a journal in torn chunks equals folding it at once."""
        _, telem = campaign_journals
        data = telem.read_bytes()
        partial = tmp_path / "partial.jsonl"
        incremental = CampaignAggregator([partial])
        step = max(1, len(data) // 7)  # deliberately tears lines
        for end in range(step, len(data) + step, step):
            partial.write_bytes(data[:end])
            incremental.refresh()
        one_shot = CampaignAggregator([telem])
        one_shot.refresh()
        a, b = incremental.snapshot(now=0.0), one_shot.snapshot(now=0.0)
        a["sources"][0]["path"] = b["sources"][0]["path"] = "x"
        for row in a["workers"] + b["workers"] + list(a["timeline"]) + list(
            b["timeline"]
        ):
            row.pop("source", None)
        assert a == b

    def test_corrupt_source_reports_error_not_crash(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b'{"v":7,"t":"run_start"}\ngarbage\n')
        agg = CampaignAggregator([path])
        agg.refresh()
        snap = agg.snapshot(now=0.0)
        assert "corrupt journal line" in snap["sources"][0]["error"]


class TestPrometheusRendering:
    def test_registry_series_shapes(self):
        registry = MetricsRegistry()
        registry.counter("search.runs")
        registry.gauge("executor.workers", 2)
        for value in (1.0, 2.0, 3.0):
            registry.observe("search.latency_p99_us", value)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_search_runs_total counter" in text
        assert "repro_search_runs_total 1" in text
        assert "repro_executor_workers 2" in text
        assert 'repro_search_latency_p99_us{quantile="0.5"} 1.75' in text
        assert "repro_search_latency_p99_us_count 3" in text
        assert "repro_search_latency_p99_us_sum 6" in text

    def test_labeled_series_survive_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("search.experiments", kind="mfs")
        text = render_prometheus(registry.snapshot())
        assert 'repro_search_experiments_total{kind="mfs"} 1' in text

    def test_campaign_rollups_and_worker_liveness(self, campaign_journals):
        _, telem = campaign_journals
        agg = CampaignAggregator([telem])
        agg.refresh()
        text = render_prometheus({}, agg.snapshot(now=0.0))
        assert "# TYPE repro_campaign_experiments_total counter" in text
        assert "repro_campaign_anomalies_total" in text
        assert "repro_campaign_ttfa_seconds" in text
        assert 'repro_worker_up{source="' in text
        assert 'worker="0"' in text and 'worker="1"' in text

    def test_unknown_totals_are_omitted_not_zeroed(self):
        """An empty aggregate renders no campaign series at all: absent
        data must not masquerade as a zero measurement."""
        assert render_prometheus({}, {"totals": {}, "workers": []}) == ""


class TestTelemetryServer:
    def test_scrape_metrics_and_status_over_http(self, campaign_journals):
        _, telem = campaign_journals
        registry = MetricsRegistry()
        registry.counter("search.runs")
        server = TelemetryServer(
            metrics=registry, aggregator=CampaignAggregator([telem])
        ).start()
        try:
            with urllib.request.urlopen(server.url("/metrics")) as resp:
                assert resp.status == 200
                assert "text/plain" in resp.headers["Content-Type"]
                body = resp.read().decode()
            assert "repro_search_runs_total 1" in body
            assert "repro_campaign_experiments_total" in body
            with urllib.request.urlopen(server.url("/status")) as resp:
                status = json.load(resp)
            assert status["totals"]["runs"] == len(SEEDS)
            assert len(status["workers"]) == 2
        finally:
            server.close()

    def test_unknown_path_is_404(self):
        server = TelemetryServer(metrics=MetricsRegistry()).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url("/nope"))
            assert excinfo.value.code == 404
        finally:
            server.close()

    def test_ephemeral_port_is_reported(self):
        server = TelemetryServer(port=0)
        try:
            assert server.port > 0
            assert str(server.port) in server.url()
        finally:
            server.close()


class TestDashboard:
    def test_frame_renders_all_sections(self, campaign_journals):
        _, telem = campaign_journals
        agg = CampaignAggregator([telem])
        agg.refresh()
        frame = render_dashboard(
            agg.snapshot(now=0.0),
            chains=agg.chain_diagnostics(),
            baseline=load_baseline_metrics(telem),
            baseline_path=str(telem),
        )
        assert "repro top" in frame
        assert "workers (2/2 alive" in frame
        assert "anomaly timeline" in frame
        assert "drift vs" in frame
        # Self-drift is zero on every gated metric.
        assert frame.count("+0.0% =") == 3
        assert "\x1b" not in frame  # frames are escape-free; CLI adds CLEAR

    def test_empty_snapshot_renders(self):
        frame = render_dashboard({"totals": {}})
        assert "experiments" in frame


class TestGzipJournals:
    def test_read_journal_is_gzip_transparent(self, tmp_path):
        records = [{"v": 7, "t": "run_start", "approach": "collie",
                    "subsystem": "F", "budget_hours": 1.0, "seed": 1,
                    "config": {}}]
        plain = tmp_path / "run.jsonl"
        plain.write_text(json.dumps(records[0]) + "\n")
        zipped = tmp_path / "run.sneaky"  # magic bytes, not the suffix
        with gzip.open(zipped, "wt") as handle:
            handle.write(json.dumps(records[0]) + "\n")
        assert read_journal(plain) == records
        assert read_journal(zipped) == records

    def test_baseline_metrics_from_corpus_cell(self, tmp_path):
        """A committed canary corpus cell works directly as a baseline."""
        import glob

        cells = sorted(glob.glob("canary/corpus/*.jsonl.gz"))
        if not cells:
            pytest.skip("no committed corpus in this checkout")
        metrics = load_baseline_metrics(cells[0])
        assert metrics["experiments"] > 0


class TestFinalSnapshot:
    def run_search(self, tmp_path, progress_every):
        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(
            journal=RunJournal(path), progress_every=progress_every
        )
        report = Collie.for_subsystem(
            "H", budget_hours=BUDGET_HOURS, seed=2, recorder=recorder
        ).run()
        recorder.close()
        return report, read_journal(path)

    def test_final_snapshot_lands_at_run_end_totals(self, tmp_path):
        report, records = self.run_search(tmp_path, progress_every=7)
        snapshots = [r for r in records if r["t"] == "snapshot"]
        assert snapshots, "progress_every must journal snapshots"
        assert snapshots[-1]["experiments"] == report.experiments
        (run_end,) = (r for r in records if r["t"] == "run_end")
        assert snapshots[-1]["experiments"] == run_end["experiments"]

    def test_no_duplicate_when_totals_align(self, tmp_path):
        """If the last periodic snapshot already covers the final count,
        run_end must not write a second copy."""
        report, records = self.run_search(tmp_path, progress_every=1)
        snapshots = [r for r in records if r["t"] == "snapshot"]
        assert len(snapshots) == report.experiments

    def test_progress_off_writes_no_snapshots(self, tmp_path):
        _, records = self.run_search(tmp_path, progress_every=0)
        assert not [r for r in records if r["t"] == "snapshot"]
