"""The CLI logging setup: stream routing, idempotence, JSON mode."""

import json
import logging

import pytest

from repro.obs.logging import _HANDLER_TAG, setup_logging


def our_handlers():
    root = logging.getLogger()
    return [h for h in root.handlers if getattr(h, _HANDLER_TAG, False)]


class TestRouting:
    def test_info_goes_to_stdout_only(self, capsys):
        setup_logging("info")
        logging.getLogger("repro.test").info("hello from info")
        captured = capsys.readouterr()
        assert "hello from info" in captured.out
        assert "hello from info" not in captured.err

    def test_warning_goes_to_stderr_only(self, capsys):
        setup_logging("info")
        logging.getLogger("repro.test").warning("watch out")
        captured = capsys.readouterr()
        assert "watch out" in captured.err
        assert "watch out" not in captured.out

    def test_level_threshold_applies(self, capsys):
        setup_logging("warning")
        logging.getLogger("repro.test").info("too quiet")
        captured = capsys.readouterr()
        assert "too quiet" not in captured.out + captured.err

    def test_debug_level_opens_the_floor(self, capsys):
        setup_logging("debug")
        logging.getLogger("repro.test").debug("verbose detail")
        assert "verbose detail" in capsys.readouterr().out


class TestIdempotence:
    def test_repeated_setup_never_stacks_handlers(self):
        setup_logging("info")
        setup_logging("info")
        setup_logging("debug")
        assert len(our_handlers()) == 2

    def test_messages_are_not_duplicated(self, capsys):
        setup_logging("info")
        setup_logging("info")
        logging.getLogger("repro.test").info("once")
        assert capsys.readouterr().out.count("once") == 1

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            setup_logging("chatty")


class TestJsonMode:
    def test_records_render_as_json_lines(self, capsys):
        setup_logging("info", json_format=True)
        logging.getLogger("repro.test").info("structured %d", 7)
        line = capsys.readouterr().out.strip()
        payload = json.loads(line)
        assert payload == {
            "level": "info", "logger": "repro.test", "msg": "structured 7",
        }

    def test_exceptions_are_inlined(self, capsys):
        setup_logging("info", json_format=True)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logging.getLogger("repro.test").error("failed", exc_info=True)
        payload = json.loads(capsys.readouterr().err.strip())
        assert payload["level"] == "error"
        assert "boom" in payload["exc"]
