"""SA diagnostics: epoch folding, acceptance rates, effectiveness."""

from repro.core import Collie
from repro.obs import (
    FlightRecorder,
    RunJournal,
    acceptance_rate,
    fold_epochs,
    mutation_effectiveness,
    read_journal,
    render_sa_diagnostics,
    time_to_first_anomaly,
    time_to_first_anomaly_by_symptom,
)


def transition(action, temperature, mutated=()):
    return {
        "t": "transition",
        "time_seconds": 0.0,
        "action": action,
        "temperature": temperature,
        "delta": 0.0,
        "mutated": list(mutated),
    }


SYNTHETIC = [
    transition("improve", 1.0, ["mtu"]),
    transition("accept", 1.0, ["num_qps"]),
    transition("reject", 1.0, ["mtu"]),
    transition("reject", 1.0, ["qp_type"]),
    transition("improve", 0.5, ["mtu"]),
    transition("reject", 0.5, ["num_qps"]),
    transition("restart", 1.0),
]


class TestEpochs:
    def test_folds_on_temperature_change(self):
        epochs = fold_epochs(SYNTHETIC)
        assert [e.temperature for e in epochs] == [1.0, 0.5, 1.0]

    def test_epoch_acceptance_rates(self):
        first, second, third = fold_epochs(SYNTHETIC)
        assert first.acceptance_rate == 0.5   # improve+accept out of 4
        assert second.acceptance_rate == 0.5  # improve out of 2
        assert third.acceptance_rate is None  # restart is not a decision

    def test_overall_acceptance_rate(self):
        assert acceptance_rate(SYNTHETIC) == 0.5
        assert acceptance_rate([]) is None


class TestEffectiveness:
    def test_per_dimension_counts(self):
        stats = {s.dimension: s for s in mutation_effectiveness(SYNTHETIC)}
        assert stats["mtu"].mutations == 3
        assert stats["mtu"].improvements == 2
        assert stats["mtu"].effectiveness == 2 / 3
        assert stats["qp_type"].improvements == 0

    def test_sorted_most_effective_first(self):
        stats = mutation_effectiveness(SYNTHETIC)
        rates = [s.effectiveness for s in stats]
        assert rates == sorted(rates, reverse=True)


class TestTimeToFirstAnomaly:
    def test_first_anomalous_experiment_wins(self):
        records = [
            {"t": "experiment", "time_seconds": 10.0, "symptom": "healthy"},
            {"t": "experiment", "time_seconds": 20.0, "symptom": "pfc_storm"},
            {"t": "experiment", "time_seconds": 30.0, "symptom": "pfc_storm"},
        ]
        assert time_to_first_anomaly(records) == 20.0

    def test_none_when_never_anomalous(self):
        records = [
            {"t": "experiment", "time_seconds": 10.0, "symptom": "healthy"},
        ]
        assert time_to_first_anomaly(records) is None

    def test_split_by_symptom_keeps_first_hit_each(self):
        records = [
            {"t": "experiment", "time_seconds": 10.0, "symptom": "healthy"},
            {"t": "experiment", "time_seconds": 20.0,
             "symptom": "pause frame"},
            {"t": "experiment", "time_seconds": 25.0,
             "symptom": "latency inflation"},
            {"t": "experiment", "time_seconds": 30.0,
             "symptom": "pause frame"},
        ]
        by_symptom = time_to_first_anomaly_by_symptom(records)
        assert by_symptom == {
            "pause frame": 20.0, "latency inflation": 25.0,
        }
        # Sorted by first-hit time, not alphabetically.
        assert list(by_symptom) == ["pause frame", "latency inflation"]

    def test_split_is_empty_when_never_anomalous(self):
        assert time_to_first_anomaly_by_symptom([]) == {}


class TestRender:
    def test_renders_synthetic_records(self):
        text = render_sa_diagnostics(SYNTHETIC)
        assert "acceptance" in text
        assert "mtu" in text

    def test_renders_without_transitions(self):
        assert "no transition records" in render_sa_diagnostics([])

    def test_renders_a_real_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(journal=RunJournal(path))
        Collie.for_subsystem(
            "H", budget_hours=1.0, seed=2, recorder=recorder
        ).run()
        recorder.close()
        records = read_journal(path)
        text = render_sa_diagnostics(records)
        assert "acceptance" in text
