"""SA diagnostics: epoch folding, acceptance rates, effectiveness."""

from repro.core import Collie
from repro.obs import (
    FlightRecorder,
    RunJournal,
    acceptance_rate,
    fold_epochs,
    mutation_effectiveness,
    per_chain_diagnostics,
    read_journal,
    render_sa_diagnostics,
    split_by_chain,
    time_to_first_anomaly,
    time_to_first_anomaly_by_symptom,
)


def transition(action, temperature, mutated=(), chain=None):
    record = {
        "t": "transition",
        "time_seconds": 0.0,
        "action": action,
        "temperature": temperature,
        "delta": 0.0,
        "mutated": list(mutated),
    }
    if chain is not None:
        record["chain"] = chain
    return record


SYNTHETIC = [
    transition("improve", 1.0, ["mtu"]),
    transition("accept", 1.0, ["num_qps"]),
    transition("reject", 1.0, ["mtu"]),
    transition("reject", 1.0, ["qp_type"]),
    transition("improve", 0.5, ["mtu"]),
    transition("reject", 0.5, ["num_qps"]),
    transition("restart", 1.0),
]


class TestEpochs:
    def test_folds_on_temperature_change(self):
        epochs = fold_epochs(SYNTHETIC)
        assert [e.temperature for e in epochs] == [1.0, 0.5, 1.0]

    def test_epoch_acceptance_rates(self):
        first, second, third = fold_epochs(SYNTHETIC)
        assert first.acceptance_rate == 0.5   # improve+accept out of 4
        assert second.acceptance_rate == 0.5  # improve out of 2
        assert third.acceptance_rate is None  # restart is not a decision

    def test_overall_acceptance_rate(self):
        assert acceptance_rate(SYNTHETIC) == 0.5
        assert acceptance_rate([]) is None


class TestEffectiveness:
    def test_per_dimension_counts(self):
        stats = {s.dimension: s for s in mutation_effectiveness(SYNTHETIC)}
        assert stats["mtu"].mutations == 3
        assert stats["mtu"].improvements == 2
        assert stats["mtu"].effectiveness == 2 / 3
        assert stats["qp_type"].improvements == 0

    def test_sorted_most_effective_first(self):
        stats = mutation_effectiveness(SYNTHETIC)
        rates = [s.effectiveness for s in stats]
        assert rates == sorted(rates, reverse=True)


class TestTimeToFirstAnomaly:
    def test_first_anomalous_experiment_wins(self):
        records = [
            {"t": "experiment", "time_seconds": 10.0, "symptom": "healthy"},
            {"t": "experiment", "time_seconds": 20.0, "symptom": "pfc_storm"},
            {"t": "experiment", "time_seconds": 30.0, "symptom": "pfc_storm"},
        ]
        assert time_to_first_anomaly(records) == 20.0

    def test_none_when_never_anomalous(self):
        records = [
            {"t": "experiment", "time_seconds": 10.0, "symptom": "healthy"},
        ]
        assert time_to_first_anomaly(records) is None

    def test_split_by_symptom_keeps_first_hit_each(self):
        records = [
            {"t": "experiment", "time_seconds": 10.0, "symptom": "healthy"},
            {"t": "experiment", "time_seconds": 20.0,
             "symptom": "pause frame"},
            {"t": "experiment", "time_seconds": 25.0,
             "symptom": "latency inflation"},
            {"t": "experiment", "time_seconds": 30.0,
             "symptom": "pause frame"},
        ]
        by_symptom = time_to_first_anomaly_by_symptom(records)
        assert by_symptom == {
            "pause frame": 20.0, "latency inflation": 25.0,
        }
        # Sorted by first-hit time, not alphabetically.
        assert list(by_symptom) == ["pause frame", "latency inflation"]

    def test_split_is_empty_when_never_anomalous(self):
        assert time_to_first_anomaly_by_symptom([]) == {}


# An interleaved tempering journal: chain 0 anneals the hot rung
# (t0=1.0), chain 1 the cold rung (t0=0.5); chain 1 adopts one replica
# exchange and finds an anomaly.
POPULATION = [
    transition("improve", 1.0, ["mtu"], chain=0),
    transition("reject", 0.5, ["num_qps"], chain=1),
    transition("reject", 1.0, ["mtu"], chain=0),
    transition("accept", 0.5, ["mtu"], chain=1),
    transition("exchange", 0.5, chain=1),
    transition("improve", 0.25, ["num_qps"], chain=1),
    {"t": "experiment", "time_seconds": 40.0, "symptom": "pfc_storm",
     "chain": 1},
]


class TestPerChainSplit:
    def test_split_keys_in_first_appearance_order(self):
        streams = split_by_chain(POPULATION)
        assert list(streams) == [0, 1]
        assert len(streams[0]) == 2
        assert len(streams[1]) == 5

    def test_unstamped_journal_folds_into_one_stream(self):
        streams = split_by_chain(SYNTHETIC)
        assert list(streams) == [None]
        assert streams[None] == SYNTHETIC

    def test_per_chain_acceptance_and_exchanges(self):
        by_chain = {d.chain: d for d in per_chain_diagnostics(POPULATION)}
        assert by_chain[0].acceptance == 0.5   # improve out of 2
        assert by_chain[0].exchanges == 0
        assert by_chain[1].acceptance == 2 / 3  # accept+improve out of 3
        assert by_chain[1].exchanges == 1

    def test_t0_identifies_the_ladder_rung(self):
        by_chain = {d.chain: d for d in per_chain_diagnostics(POPULATION)}
        assert by_chain[0].t0 == 1.0
        assert by_chain[1].t0 == 0.5

    def test_ttfa_is_attributed_to_the_finding_chain(self):
        by_chain = {d.chain: d for d in per_chain_diagnostics(POPULATION)}
        assert by_chain[0].ttfa is None
        assert by_chain[1].ttfa == 40.0

    def test_best_dimension_is_per_chain(self):
        by_chain = {d.chain: d for d in per_chain_diagnostics(POPULATION)}
        assert by_chain[0].best_dimension == "mtu"

    def test_unstamped_fallback_matches_whole_journal_folds(self):
        (entry,) = per_chain_diagnostics(SYNTHETIC)
        assert entry.chain is None
        assert entry.acceptance == acceptance_rate(SYNTHETIC)
        assert entry.t0 == 1.0
        assert entry.exchanges == 0

    def test_exchange_transitions_fold_into_epochs(self):
        epochs = fold_epochs(POPULATION)
        assert sum(e.exchange for e in epochs) == 1
        # exchange is a schedule event, not a Metropolis decision.
        records = [transition("exchange", 0.5, chain=1)]
        (epoch,) = fold_epochs(records)
        assert epoch.decisions == 0
        assert acceptance_rate(records) is None


class TestRender:
    def test_renders_synthetic_records(self):
        text = render_sa_diagnostics(SYNTHETIC)
        assert "acceptance" in text
        assert "mtu" in text

    def test_renders_without_transitions(self):
        assert "no transition records" in render_sa_diagnostics([])

    def test_renders_per_chain_split_for_population_journals(self):
        text = render_sa_diagnostics(POPULATION)
        assert "per-chain split:" in text
        assert "best dimension" in text

    def test_legacy_journals_render_without_chain_section(self):
        assert "per-chain split" not in render_sa_diagnostics(SYNTHETIC)

    def test_renders_a_real_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(journal=RunJournal(path))
        Collie.for_subsystem(
            "H", budget_hours=1.0, seed=2, recorder=recorder
        ).run()
        recorder.close()
        records = read_journal(path)
        text = render_sa_diagnostics(records)
        assert "acceptance" in text
