"""Memory regions: registration, bounds, access rights, byte movement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verbs.constants import AccessFlags
from repro.verbs.exceptions import AccessViolationError, MemoryRegistrationError
from repro.verbs.memory import (
    MAX_MR_BYTES,
    PAGE_BYTES,
    MemoryAllocator,
    MemoryRegion,
    MemoryRegionTable,
)


def region(length=4096, access=AccessFlags.all_remote(), addr=0x1000_0000):
    return MemoryRegion(addr=addr, length=length, lkey=1, rkey=2, access=access)


class TestAllocator:
    def test_addresses_never_overlap(self):
        alloc = MemoryAllocator()
        spans = [(alloc.allocate(n), n) for n in (4096, 1, 123456, 4096)]
        spans.sort()
        for (a, n), (b, _) in zip(spans, spans[1:]):
            assert a + n <= b

    def test_allocations_are_page_aligned_by_default(self):
        alloc = MemoryAllocator()
        for _ in range(5):
            assert alloc.allocate(100) % PAGE_BYTES == 0

    def test_zero_length_rejected(self):
        with pytest.raises(MemoryRegistrationError):
            MemoryAllocator().allocate(0)


class TestMemoryRegion:
    def test_rejects_non_positive_length(self):
        with pytest.raises(MemoryRegistrationError):
            region(length=0)

    def test_rejects_over_pinning_limit(self):
        with pytest.raises(MemoryRegistrationError):
            region(length=MAX_MR_BYTES + 1)

    def test_page_count_rounds_up(self):
        assert region(length=1).page_count == 1
        assert region(length=PAGE_BYTES).page_count == 1
        assert region(length=PAGE_BYTES + 1).page_count == 2

    def test_contains_boundaries(self):
        r = region(length=4096)
        assert r.contains(r.addr, 4096)
        assert r.contains(r.end - 1, 1)
        assert not r.contains(r.addr - 1, 1)
        assert not r.contains(r.addr, 4097)

    def test_check_access_rejects_out_of_bounds(self):
        r = region(length=4096)
        with pytest.raises(AccessViolationError):
            r.check_access(r.addr + 4000, 200, AccessFlags.NONE)

    def test_check_access_rejects_missing_permission(self):
        r = region(access=AccessFlags.LOCAL_WRITE)
        with pytest.raises(AccessViolationError):
            r.check_access(r.addr, 16, AccessFlags.REMOTE_WRITE)

    def test_check_access_allows_zero_length_anywhere_inside(self):
        r = region(length=4096)
        r.check_access(r.addr + 100, 0, AccessFlags.NONE)

    def test_check_access_rejects_negative_length(self):
        r = region()
        with pytest.raises(AccessViolationError):
            r.check_access(r.addr, -1, AccessFlags.NONE)

    def test_write_read_roundtrip(self):
        r = region()
        r.write(r.addr + 17, b"payload bytes")
        assert r.read(r.addr + 17, 13) == b"payload bytes"

    @given(
        offset=st.integers(min_value=0, max_value=3000),
        data=st.binary(min_size=1, max_size=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, offset, data):
        r = region(length=4096)
        r.write(r.addr + offset, data)
        assert r.read(r.addr + offset, len(data)) == data

    def test_huge_region_backed_by_wraparound_buffer(self):
        r = region(length=1 << 30)  # 1 GiB registration, small backing
        r.write(r.addr + (1 << 29), b"far")
        assert r.read(r.addr + (1 << 29), 3) == b"far"


class TestRegionTable:
    def test_lookup_by_keys(self):
        table = MemoryRegionTable()
        r = region()
        table.add(r)
        assert table.by_lkey(r.lkey) is r
        assert table.by_rkey(r.rkey) is r
        assert table.by_lkey(999) is None

    def test_lookup_local_unknown_key(self):
        table = MemoryRegionTable()
        with pytest.raises(AccessViolationError):
            table.lookup_local(5, 0, 1, AccessFlags.NONE)

    def test_remove(self):
        table = MemoryRegionTable()
        r = region()
        table.add(r)
        table.remove(r)
        assert len(table) == 0
        assert table.by_rkey(r.rkey) is None

    def test_total_pages_sums_regions(self):
        table = MemoryRegionTable()
        table.add(region(length=PAGE_BYTES, addr=0x1000))
        table.add(
            MemoryRegion(
                addr=0x100000, length=3 * PAGE_BYTES, lkey=9, rkey=10,
                access=AccessFlags.NONE,
            )
        )
        assert table.total_pages == 4
