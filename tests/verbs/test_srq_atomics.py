"""Shared receive queues, atomics and inline sends."""

import pytest

from repro.verbs import QPCapabilities, SRQAttributes
from repro.verbs.constants import (
    AccessFlags,
    Opcode,
    QPState,
    QPType,
    SendFlags,
    WCOpcode,
    WCStatus,
)
from repro.verbs.exceptions import (
    InvalidStateError,
    QPCapacityError,
    VerbsError,
    WorkRequestError,
)
from repro.verbs.wr import RecvWorkRequest, ScatterGatherEntry, SendWorkRequest

from tests.conftest import ConnectedPair


def sg(mr, offset=0, length=64):
    return ScatterGatherEntry(addr=mr.addr + offset, length=length, lkey=mr.lkey)


class TestSRQObject:
    def test_attrs_validation(self):
        with pytest.raises(ValueError):
            SRQAttributes(max_wr=0)
        with pytest.raises(ValueError):
            SRQAttributes(max_wr=8, srq_limit=9)

    def test_post_and_take_are_fifo(self, pair):
        srq = pair.ctx_b.create_srq(SRQAttributes(max_wr=4))
        first = RecvWorkRequest(sg_list=[sg(pair.mr_b, length=8)])
        second = RecvWorkRequest(sg_list=[sg(pair.mr_b, 8, 8)])
        srq.post_recv(first)
        srq.post_recv(second)
        assert srq.take() is first
        assert srq.take() is second
        assert srq.take() is None

    def test_capacity_enforced(self, pair):
        srq = pair.ctx_b.create_srq(SRQAttributes(max_wr=1))
        srq.post_recv(RecvWorkRequest(sg_list=[]))
        with pytest.raises(QPCapacityError):
            srq.post_recv(RecvWorkRequest(sg_list=[]))

    def test_sge_cap_enforced(self, pair):
        srq = pair.ctx_b.create_srq(SRQAttributes(max_wr=8, max_sge=1))
        with pytest.raises(WorkRequestError):
            srq.post_recv(
                RecvWorkRequest(sg_list=[sg(pair.mr_b)] * 2)
            )

    def test_limit_watermark(self, pair):
        srq = pair.ctx_b.create_srq(SRQAttributes(max_wr=8, srq_limit=2))
        assert srq.below_limit
        srq.post_recv(RecvWorkRequest(sg_list=[]))
        srq.post_recv(RecvWorkRequest(sg_list=[]))
        assert not srq.below_limit


class TestSRQIntegration:
    def make_srq_pair(self):
        pair = ConnectedPair()
        # Fresh QP pair, with the B side drawing receives from an SRQ.
        srq = pair.ctx_b.create_srq(SRQAttributes(max_wr=64))
        qp_a = pair.ctx_a.create_qp(
            pair.pd_a, QPType.RC, pair.cq_a, pair.cq_a, QPCapabilities()
        )
        qp_b = pair.ctx_b.create_qp(
            pair.pd_b, QPType.RC, pair.cq_b, pair.cq_b,
            QPCapabilities(), srq=srq,
        )
        pair.fabric.connect(qp_a, qp_b)
        pair.qp_a = qp_a
        return pair, srq, qp_b

    def test_send_consumes_from_srq(self):
        pair, srq, qp_b = self.make_srq_pair()
        srq.post_recv(RecvWorkRequest(sg_list=[sg(pair.mr_b, length=64)]))
        pair.mr_a.write(pair.mr_a.addr, b"via-srq")
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND,
                            sg_list=[sg(pair.mr_a, length=7)])
        )
        pair.datapath.process(pair.qp_a)
        assert srq.consumed == 1
        assert pair.mr_b.read(pair.mr_b.addr, 7) == b"via-srq"
        assert pair.cq_b.poll_one().ok

    def test_post_recv_on_srq_qp_is_illegal(self):
        pair, srq, qp_b = self.make_srq_pair()
        with pytest.raises(InvalidStateError, match="SRQ"):
            qp_b.post_recv(RecvWorkRequest(sg_list=[]))

    def test_empty_srq_is_rnr(self):
        pair, srq, qp_b = self.make_srq_pair()
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a)])
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_a.poll_one().status is WCStatus.RNR_RETRY_EXC_ERR

    def test_foreign_srq_rejected(self, pair):
        srq = pair.ctx_a.create_srq()
        with pytest.raises(VerbsError, match="different context"):
            pair.ctx_b.create_qp(
                pair.pd_b, QPType.RC, pair.cq_b, pair.cq_b,
                QPCapabilities(), srq=srq,
            )

    def test_attached_qp_count(self):
        pair, srq, qp_b = self.make_srq_pair()
        assert srq.attached_qps == 1


class TestAtomics:
    def test_fetch_add_returns_original_and_updates_remote(self, pair):
        pair.mr_b.write(pair.mr_b.addr, (41).to_bytes(8, "little"))
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.FETCH_ADD,
                sg_list=[sg(pair.mr_a, length=8)],
                remote_addr=pair.mr_b.addr,
                rkey=pair.mr_b.rkey,
                compare_add=1,
            )
        )
        pair.datapath.process(pair.qp_a)
        wc = pair.cq_a.poll_one()
        assert wc.ok and wc.opcode is WCOpcode.FETCH_ADD
        assert int.from_bytes(pair.mr_b.read(pair.mr_b.addr, 8), "little") == 42
        assert int.from_bytes(pair.mr_a.read(pair.mr_a.addr, 8), "little") == 41

    def test_cmp_swap_swaps_only_on_match(self, pair):
        pair.mr_b.write(pair.mr_b.addr, (7).to_bytes(8, "little"))
        for compare, expected_after in ((9, 7), (7, 99)):
            pair.qp_a.post_send(
                SendWorkRequest(
                    opcode=Opcode.CMP_SWAP,
                    sg_list=[sg(pair.mr_a, length=8)],
                    remote_addr=pair.mr_b.addr,
                    rkey=pair.mr_b.rkey,
                    compare_add=compare,
                    swap=99,
                )
            )
            pair.datapath.process(pair.qp_a)
            assert pair.cq_a.poll_one().ok
            value = int.from_bytes(pair.mr_b.read(pair.mr_b.addr, 8), "little")
            assert value == expected_after

    def test_fetch_add_wraps_at_64_bits(self, pair):
        pair.mr_b.write(pair.mr_b.addr, ((1 << 64) - 1).to_bytes(8, "little"))
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.FETCH_ADD,
                sg_list=[sg(pair.mr_a, length=8)],
                remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
                compare_add=2,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert int.from_bytes(pair.mr_b.read(pair.mr_b.addr, 8), "little") == 1

    def test_atomic_requires_eight_bytes(self, pair):
        with pytest.raises(WorkRequestError):
            SendWorkRequest(
                opcode=Opcode.FETCH_ADD,
                sg_list=[sg(pair.mr_a, length=4)],
                remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
            )

    def test_atomic_requires_remote_atomic_permission(self):
        pair = ConnectedPair()
        restricted = pair.pd_b.reg_mr(
            4096, AccessFlags.REMOTE_WRITE | AccessFlags.LOCAL_WRITE
        )
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.FETCH_ADD,
                sg_list=[sg(pair.mr_a, length=8)],
                remote_addr=restricted.addr, rkey=restricted.rkey,
                compare_add=1,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_a.poll_one().status is WCStatus.REM_ACCESS_ERR
        assert pair.qp_a.state is QPState.ERR

    def test_atomics_are_rc_only(self):
        pair = ConnectedPair(qp_type=QPType.UC)
        with pytest.raises(WorkRequestError):
            pair.qp_a.post_send(
                SendWorkRequest(
                    opcode=Opcode.FETCH_ADD,
                    sg_list=[sg(pair.mr_a, length=8)],
                    remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
                )
            )


class TestInline:
    def make_inline_pair(self):
        pair = ConnectedPair()
        qp = pair.ctx_a.create_qp(
            pair.pd_a, QPType.RC, pair.cq_a, pair.cq_a,
            QPCapabilities(max_inline_data=64),
        )
        qp_b = pair.ctx_b.create_qp(
            pair.pd_b, QPType.RC, pair.cq_b, pair.cq_b, QPCapabilities()
        )
        pair.fabric.connect(qp, qp_b)
        return pair, qp, qp_b

    def test_inline_write_carries_payload_without_lkey(self):
        pair, qp, _ = self.make_inline_pair()
        qp.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[],
                remote_addr=pair.mr_b.addr,
                rkey=pair.mr_b.rkey,
                send_flags=SendFlags.SIGNALED | SendFlags.INLINE,
                inline_payload=b"inline!",
            )
        )
        pair.datapath.process(qp)
        assert pair.mr_b.read(pair.mr_b.addr, 7) == b"inline!"

    def test_inline_size_cap_enforced(self):
        pair, qp, _ = self.make_inline_pair()
        with pytest.raises(WorkRequestError, match="max_inline_data"):
            qp.post_send(
                SendWorkRequest(
                    opcode=Opcode.WRITE,
                    sg_list=[],
                    remote_addr=pair.mr_b.addr,
                    rkey=pair.mr_b.rkey,
                    send_flags=SendFlags.SIGNALED | SendFlags.INLINE,
                    inline_payload=b"x" * 65,
                )
            )

    def test_inline_payload_requires_flag(self, pair):
        with pytest.raises(WorkRequestError, match="INLINE"):
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[],
                remote_addr=pair.mr_b.addr,
                rkey=pair.mr_b.rkey,
                inline_payload=b"x",
            )

    def test_atomics_cannot_be_inline(self, pair):
        with pytest.raises(WorkRequestError, match="inline"):
            SendWorkRequest(
                opcode=Opcode.FETCH_ADD,
                sg_list=[sg(pair.mr_a, length=8)],
                remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
                send_flags=SendFlags.SIGNALED | SendFlags.INLINE,
            )
