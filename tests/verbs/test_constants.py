"""Enumeration semantics the rest of the stack relies on."""

import pytest

from repro.verbs.constants import (
    ACK_WIRE_BYTES,
    GRH_BYTES,
    MTU,
    QP_TRANSITIONS,
    ROCE_HEADER_BYTES,
    SUPPORTED_OPCODES,
    AccessFlags,
    Opcode,
    QPState,
    QPType,
)


class TestOpcodes:
    def test_one_sided_classification(self):
        assert Opcode.WRITE.is_one_sided
        assert Opcode.READ.is_one_sided
        assert not Opcode.SEND.is_one_sided

    def test_only_send_consumes_recv_wqe(self):
        assert Opcode.SEND.consumes_remote_recv_wqe
        assert not Opcode.WRITE.consumes_remote_recv_wqe
        assert not Opcode.READ.consumes_remote_recv_wqe

    def test_transport_opcode_matrix(self):
        assert SUPPORTED_OPCODES[QPType.RC] == (
            Opcode.SEND, Opcode.WRITE, Opcode.READ,
            Opcode.FETCH_ADD, Opcode.CMP_SWAP,
        )
        assert Opcode.READ not in SUPPORTED_OPCODES[QPType.UC]
        assert Opcode.FETCH_ADD not in SUPPORTED_OPCODES[QPType.UC]
        assert SUPPORTED_OPCODES[QPType.UD] == (Opcode.SEND,)

    def test_atomic_classification(self):
        assert Opcode.FETCH_ADD.is_atomic and Opcode.CMP_SWAP.is_atomic
        assert Opcode.FETCH_ADD.is_one_sided
        assert not Opcode.WRITE.is_atomic


class TestStateMachineTable:
    def test_reset_only_reaches_init(self):
        assert QP_TRANSITIONS[QPState.RESET] == (QPState.INIT,)

    def test_err_is_terminal_in_table(self):
        assert QP_TRANSITIONS[QPState.ERR] == ()

    def test_rtr_reaches_rts(self):
        assert QPState.RTS in QP_TRANSITIONS[QPState.RTR]

    def test_every_state_has_an_entry(self):
        for state in QPState:
            assert state in QP_TRANSITIONS


class TestMTU:
    @pytest.mark.parametrize("value", [256, 512, 1024, 2048, 4096])
    def test_from_bytes_roundtrip(self, value):
        assert int(MTU.from_bytes(value)) == value

    @pytest.mark.parametrize("value", [0, 100, 1500, 9000])
    def test_from_bytes_rejects_nonstandard(self, value):
        with pytest.raises(ValueError):
            MTU.from_bytes(value)


class TestWireConstants:
    def test_grh_is_forty_bytes(self):
        assert GRH_BYTES == 40

    def test_roce_header_covers_eth_ip_udp_bth(self):
        # 14 + 20 + 8 + 12 at minimum, plus trailers and gap.
        assert ROCE_HEADER_BYTES >= 54
        assert ACK_WIRE_BYTES > ROCE_HEADER_BYTES


class TestAccessFlags:
    def test_all_remote_includes_each_right(self):
        flags = AccessFlags.all_remote()
        assert flags & AccessFlags.LOCAL_WRITE
        assert flags & AccessFlags.REMOTE_WRITE
        assert flags & AccessFlags.REMOTE_READ

    def test_none_is_falsy(self):
        assert not AccessFlags.NONE
