"""Functional byte movement: the datapath executed against the fabric."""

import pytest

from repro.verbs import QPCapabilities
from repro.verbs.constants import (
    GRH_BYTES,
    AccessFlags,
    Opcode,
    QPState,
    QPType,
    SendFlags,
    WCOpcode,
    WCStatus,
)
from repro.verbs.wr import RecvWorkRequest, ScatterGatherEntry, SendWorkRequest

from tests.conftest import ConnectedPair


def sg(mr, offset=0, length=64):
    return ScatterGatherEntry(addr=mr.addr + offset, length=length, lkey=mr.lkey)


class TestWrite:
    def test_write_moves_bytes(self, pair):
        pair.mr_a.write(pair.mr_a.addr, b"0123456789")
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[sg(pair.mr_a, length=10)],
                remote_addr=pair.mr_b.addr + 5,
                rkey=pair.mr_b.rkey,
            )
        )
        assert pair.datapath.process(pair.qp_a) == 1
        assert pair.mr_b.read(pair.mr_b.addr + 5, 10) == b"0123456789"

    def test_write_generates_no_receiver_completion(self, pair):
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[sg(pair.mr_a)],
                remote_addr=pair.mr_b.addr,
                rkey=pair.mr_b.rkey,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_b.poll() == []
        assert pair.cq_a.poll_one().opcode is WCOpcode.RDMA_WRITE

    def test_write_beyond_region_fails_with_rem_access(self, pair):
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[sg(pair.mr_a, length=64)],
                remote_addr=pair.mr_b.end - 8,
                rkey=pair.mr_b.rkey,
            )
        )
        pair.datapath.process(pair.qp_a)
        wc = pair.cq_a.poll_one()
        assert wc.status is WCStatus.REM_ACCESS_ERR
        assert pair.qp_a.state is QPState.ERR

    def test_write_with_wrong_rkey_fails(self, pair):
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[sg(pair.mr_a)],
                remote_addr=pair.mr_b.addr,
                rkey=0xDEAD,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_a.poll_one().status is WCStatus.REM_ACCESS_ERR


class TestRead:
    def test_read_pulls_remote_bytes(self, pair):
        pair.mr_b.write(pair.mr_b.addr + 100, b"remote-data")
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.READ,
                sg_list=[sg(pair.mr_a, offset=200, length=11)],
                remote_addr=pair.mr_b.addr + 100,
                rkey=pair.mr_b.rkey,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.mr_a.read(pair.mr_a.addr + 200, 11) == b"remote-data"
        assert pair.cq_a.poll_one().opcode is WCOpcode.RDMA_READ

    def test_read_scatter_across_entries(self, pair):
        pair.mr_b.write(pair.mr_b.addr, b"abcdef")
        entries = [
            sg(pair.mr_a, offset=0, length=2),
            sg(pair.mr_a, offset=512, length=4),
        ]
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.READ,
                sg_list=entries,
                remote_addr=pair.mr_b.addr,
                rkey=pair.mr_b.rkey,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.mr_a.read(pair.mr_a.addr, 2) == b"ab"
        assert pair.mr_a.read(pair.mr_a.addr + 512, 4) == b"cdef"


class TestSendRecv:
    def test_send_consumes_recv_and_completes_both_sides(self, pair):
        pair.mr_a.write(pair.mr_a.addr, b"ping")
        pair.qp_b.post_recv(
            RecvWorkRequest(sg_list=[sg(pair.mr_b, length=64)])
        )
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a, length=4)])
        )
        pair.datapath.process(pair.qp_a)
        recv_wc = pair.cq_b.poll_one()
        assert recv_wc.opcode is WCOpcode.RECV
        assert recv_wc.byte_len == 4
        assert pair.mr_b.read(pair.mr_b.addr, 4) == b"ping"
        assert pair.qp_b.recv_queue_depth == 0

    def test_rc_send_without_recv_errors_the_qp(self, pair):
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a)])
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_a.poll_one().status is WCStatus.RNR_RETRY_EXC_ERR
        assert pair.qp_a.state is QPState.ERR

    def test_uc_send_without_recv_silently_drops(self):
        pair = ConnectedPair(qp_type=QPType.UC)
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a)])
        )
        pair.datapath.process(pair.qp_a)
        assert pair.datapath.dropped_messages == 1
        assert pair.qp_a.state is QPState.RTS
        assert pair.cq_a.poll_one().status is WCStatus.SUCCESS

    def test_send_overflowing_recv_buffer_is_len_error(self, pair):
        pair.qp_b.post_recv(RecvWorkRequest(sg_list=[sg(pair.mr_b, length=2)]))
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a, length=64)])
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_b.poll_one().status is WCStatus.LOC_LEN_ERR

    def test_unsignaled_send_completes_silently(self, pair):
        pair.qp_b.post_recv(RecvWorkRequest(sg_list=[sg(pair.mr_b, length=64)]))
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.SEND,
                sg_list=[sg(pair.mr_a, length=8)],
                send_flags=SendFlags.NONE,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_a.poll() == []  # no sender CQE
        assert pair.cq_b.poll_one() is not None  # receiver still completes


class TestUD:
    def test_grh_prepended_to_ud_delivery(self, ud_pair):
        ud_pair.mr_a.write(ud_pair.mr_a.addr, b"datagram")
        ud_pair.qp_b.post_recv(
            RecvWorkRequest(sg_list=[sg(ud_pair.mr_b, length=128)])
        )
        ud_pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.SEND,
                sg_list=[sg(ud_pair.mr_a, length=8)],
                ah=ud_pair.qp_b.qp_num,
            )
        )
        ud_pair.datapath.process(ud_pair.qp_a)
        wc = ud_pair.cq_b.poll_one()
        assert wc.byte_len == 8 + GRH_BYTES
        payload = ud_pair.mr_b.read(ud_pair.mr_b.addr + GRH_BYTES, 8)
        assert payload == b"datagram"

    def test_ud_send_without_recv_drops(self, ud_pair):
        ud_pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.SEND,
                sg_list=[sg(ud_pair.mr_a, length=8)],
                ah=ud_pair.qp_b.qp_num,
            )
        )
        ud_pair.datapath.process(ud_pair.qp_a)
        assert ud_pair.datapath.dropped_messages == 1


class TestProcessAll:
    def test_round_robin_drains_both_senders(self, pair):
        for _ in range(3):
            pair.qp_a.post_send(
                SendWorkRequest(
                    opcode=Opcode.WRITE, sg_list=[sg(pair.mr_a)],
                    remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
                )
            )
            pair.qp_b.post_send(
                SendWorkRequest(
                    opcode=Opcode.WRITE, sg_list=[sg(pair.mr_b)],
                    remote_addr=pair.mr_a.addr, rkey=pair.mr_a.rkey,
                )
            )
        executed = pair.datapath.process_all([pair.qp_a, pair.qp_b])
        assert executed == 6
        assert pair.qp_a.send_queue_depth == 0
        assert pair.qp_b.send_queue_depth == 0
