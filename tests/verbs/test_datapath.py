"""Functional byte movement: the datapath executed against the fabric."""

import pytest

from repro.verbs import QPCapabilities
from repro.verbs.constants import (
    GRH_BYTES,
    AccessFlags,
    Opcode,
    QPState,
    QPType,
    SendFlags,
    WCOpcode,
    WCStatus,
)
from repro.verbs.wr import RecvWorkRequest, ScatterGatherEntry, SendWorkRequest

from tests.conftest import ConnectedPair


def sg(mr, offset=0, length=64):
    return ScatterGatherEntry(addr=mr.addr + offset, length=length, lkey=mr.lkey)


class TestWrite:
    def test_write_moves_bytes(self, pair):
        pair.mr_a.write(pair.mr_a.addr, b"0123456789")
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[sg(pair.mr_a, length=10)],
                remote_addr=pair.mr_b.addr + 5,
                rkey=pair.mr_b.rkey,
            )
        )
        assert pair.datapath.process(pair.qp_a) == 1
        assert pair.mr_b.read(pair.mr_b.addr + 5, 10) == b"0123456789"

    def test_write_generates_no_receiver_completion(self, pair):
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[sg(pair.mr_a)],
                remote_addr=pair.mr_b.addr,
                rkey=pair.mr_b.rkey,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_b.poll() == []
        assert pair.cq_a.poll_one().opcode is WCOpcode.RDMA_WRITE

    def test_write_beyond_region_fails_with_rem_access(self, pair):
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[sg(pair.mr_a, length=64)],
                remote_addr=pair.mr_b.end - 8,
                rkey=pair.mr_b.rkey,
            )
        )
        pair.datapath.process(pair.qp_a)
        wc = pair.cq_a.poll_one()
        assert wc.status is WCStatus.REM_ACCESS_ERR
        assert pair.qp_a.state is QPState.ERR

    def test_write_with_wrong_rkey_fails(self, pair):
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[sg(pair.mr_a)],
                remote_addr=pair.mr_b.addr,
                rkey=0xDEAD,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_a.poll_one().status is WCStatus.REM_ACCESS_ERR


class TestRead:
    def test_read_pulls_remote_bytes(self, pair):
        pair.mr_b.write(pair.mr_b.addr + 100, b"remote-data")
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.READ,
                sg_list=[sg(pair.mr_a, offset=200, length=11)],
                remote_addr=pair.mr_b.addr + 100,
                rkey=pair.mr_b.rkey,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.mr_a.read(pair.mr_a.addr + 200, 11) == b"remote-data"
        assert pair.cq_a.poll_one().opcode is WCOpcode.RDMA_READ

    def test_read_scatter_across_entries(self, pair):
        pair.mr_b.write(pair.mr_b.addr, b"abcdef")
        entries = [
            sg(pair.mr_a, offset=0, length=2),
            sg(pair.mr_a, offset=512, length=4),
        ]
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.READ,
                sg_list=entries,
                remote_addr=pair.mr_b.addr,
                rkey=pair.mr_b.rkey,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.mr_a.read(pair.mr_a.addr, 2) == b"ab"
        assert pair.mr_a.read(pair.mr_a.addr + 512, 4) == b"cdef"


class TestSendRecv:
    def test_send_consumes_recv_and_completes_both_sides(self, pair):
        pair.mr_a.write(pair.mr_a.addr, b"ping")
        pair.qp_b.post_recv(
            RecvWorkRequest(sg_list=[sg(pair.mr_b, length=64)])
        )
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a, length=4)])
        )
        pair.datapath.process(pair.qp_a)
        recv_wc = pair.cq_b.poll_one()
        assert recv_wc.opcode is WCOpcode.RECV
        assert recv_wc.byte_len == 4
        assert pair.mr_b.read(pair.mr_b.addr, 4) == b"ping"
        assert pair.qp_b.recv_queue_depth == 0

    def test_rc_send_without_recv_errors_the_qp(self, pair):
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a)])
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_a.poll_one().status is WCStatus.RNR_RETRY_EXC_ERR
        assert pair.qp_a.state is QPState.ERR

    def test_uc_send_without_recv_silently_drops(self):
        pair = ConnectedPair(qp_type=QPType.UC)
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a)])
        )
        pair.datapath.process(pair.qp_a)
        assert pair.datapath.dropped_messages == 1
        assert pair.qp_a.state is QPState.RTS
        assert pair.cq_a.poll_one().status is WCStatus.SUCCESS

    def test_send_overflowing_recv_buffer_is_len_error(self, pair):
        pair.qp_b.post_recv(RecvWorkRequest(sg_list=[sg(pair.mr_b, length=2)]))
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a, length=64)])
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_b.poll_one().status is WCStatus.LOC_LEN_ERR

    def test_unsignaled_send_completes_silently(self, pair):
        pair.qp_b.post_recv(RecvWorkRequest(sg_list=[sg(pair.mr_b, length=64)]))
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.SEND,
                sg_list=[sg(pair.mr_a, length=8)],
                send_flags=SendFlags.NONE,
            )
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_a.poll() == []  # no sender CQE
        assert pair.cq_b.poll_one() is not None  # receiver still completes


class TestUD:
    def test_grh_prepended_to_ud_delivery(self, ud_pair):
        ud_pair.mr_a.write(ud_pair.mr_a.addr, b"datagram")
        ud_pair.qp_b.post_recv(
            RecvWorkRequest(sg_list=[sg(ud_pair.mr_b, length=128)])
        )
        ud_pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.SEND,
                sg_list=[sg(ud_pair.mr_a, length=8)],
                ah=ud_pair.qp_b.qp_num,
            )
        )
        ud_pair.datapath.process(ud_pair.qp_a)
        wc = ud_pair.cq_b.poll_one()
        assert wc.byte_len == 8 + GRH_BYTES
        payload = ud_pair.mr_b.read(ud_pair.mr_b.addr + GRH_BYTES, 8)
        assert payload == b"datagram"

    def test_ud_send_without_recv_drops(self, ud_pair):
        ud_pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.SEND,
                sg_list=[sg(ud_pair.mr_a, length=8)],
                ah=ud_pair.qp_b.qp_num,
            )
        )
        ud_pair.datapath.process(ud_pair.qp_a)
        assert ud_pair.datapath.dropped_messages == 1


class TestProcessAll:
    def test_round_robin_drains_both_senders(self, pair):
        for _ in range(3):
            pair.qp_a.post_send(
                SendWorkRequest(
                    opcode=Opcode.WRITE, sg_list=[sg(pair.mr_a)],
                    remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
                )
            )
            pair.qp_b.post_send(
                SendWorkRequest(
                    opcode=Opcode.WRITE, sg_list=[sg(pair.mr_b)],
                    remote_addr=pair.mr_a.addr, rkey=pair.mr_a.rkey,
                )
            )
        executed = pair.datapath.process_all([pair.qp_a, pair.qp_b])
        assert executed == 6
        assert pair.qp_a.send_queue_depth == 0
        assert pair.qp_b.send_queue_depth == 0


class TestLatencyAttribution:
    """Per-CQE completion latency: deterministic, queueing-inclusive."""

    def _write(self, pair, length=64):
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE, sg_list=[sg(pair.mr_a, length=length)],
                remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
            )
        )

    def test_single_wqe_latency_is_tick_plus_payload(self, pair):
        from repro.verbs.datapath import US_PER_KB, WQE_TICK_US

        self._write(pair, length=1024)
        pair.datapath.process(pair.qp_a)
        wc = pair.cq_a.poll_one()
        assert wc.latency_us == pytest.approx(WQE_TICK_US + US_PER_KB)

    def test_same_qp_wqes_queue_behind_each_other(self, pair):
        """Head-of-line blocking is visible: each completion's latency
        includes the service time of everything posted before it."""
        for _ in range(3):
            self._write(pair, length=1024)
        pair.datapath.process(pair.qp_a)
        latencies = [wc.latency_us for wc in pair.cq_a.poll()]
        assert len(latencies) == 3
        assert latencies == sorted(latencies)
        assert latencies[1] == pytest.approx(2 * latencies[0])
        assert latencies[2] == pytest.approx(3 * latencies[0])

    def test_distinct_qps_have_independent_clocks(self, pair):
        self._write(pair, length=1024)
        self._write(pair, length=1024)
        pair.qp_b.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE, sg_list=[sg(pair.mr_b, length=1024)],
                remote_addr=pair.mr_a.addr, rkey=pair.mr_a.rkey,
            )
        )
        pair.datapath.process(pair.qp_a)
        pair.datapath.process(pair.qp_b)
        a_latencies = [wc.latency_us for wc in pair.cq_a.poll()]
        b_latency = pair.cq_b.poll_one().latency_us
        # qp_b's first WQE is not delayed by qp_a's queue.
        assert b_latency == pytest.approx(a_latencies[0])
        assert a_latencies[1] > b_latency

    def test_receiver_completion_carries_the_same_stamp(self, pair):
        pair.qp_b.post_recv(
            RecvWorkRequest(sg_list=[sg(pair.mr_b, length=64)])
        )
        pair.qp_a.post_send(
            SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a)])
        )
        pair.datapath.process(pair.qp_a)
        assert pair.cq_a.poll_one().latency_us \
            == pair.cq_b.poll_one().latency_us

    def test_attribution_is_deterministic(self, pair):
        pair2 = ConnectedPair()
        for p in (pair, pair2):
            for length in (64, 512, 64):
                p.qp_a.post_send(
                    SendWorkRequest(
                        opcode=Opcode.WRITE,
                        sg_list=[sg(p.mr_a, length=length)],
                        remote_addr=p.mr_b.addr, rkey=p.mr_b.rkey,
                    )
                )
            p.datapath.process(p.qp_a)
        assert [wc.latency_us for wc in pair.cq_a.poll()] \
            == [wc.latency_us for wc in pair2.cq_a.poll()]
