"""Fabric: connection bootstrap and destination resolution."""

import pytest

from repro.verbs import Device, Fabric, QPCapabilities
from repro.verbs.constants import MTU, QPState, QPType
from repro.verbs.exceptions import AddressHandleError, InvalidStateError


def two_contexts():
    fabric = Fabric()
    ctx_a, ctx_b = Device("a").open(), Device("b").open()
    fabric.attach(ctx_a)
    fabric.attach(ctx_b)
    return fabric, ctx_a, ctx_b


def qp_on(ctx, qp_type=QPType.RC):
    pd = ctx.alloc_pd()
    cq = ctx.create_cq(16)
    return ctx.create_qp(pd, qp_type, cq, cq, QPCapabilities())


class TestConnect:
    def test_connect_brings_both_to_rts(self):
        fabric, ctx_a, ctx_b = two_contexts()
        qp_a, qp_b = qp_on(ctx_a), qp_on(ctx_b)
        fabric.connect(qp_a, qp_b, MTU.MTU_4096)
        assert qp_a.state is QPState.RTS and qp_b.state is QPState.RTS
        assert qp_a.dest_qp_num == qp_b.qp_num
        assert qp_b.dest_qp_num == qp_a.qp_num
        assert int(qp_a.path_mtu) == 4096

    def test_connect_rejects_mismatched_transports(self):
        fabric, ctx_a, ctx_b = two_contexts()
        with pytest.raises(InvalidStateError):
            fabric.connect(qp_on(ctx_a, QPType.RC), qp_on(ctx_b, QPType.UC))

    def test_connect_rejects_ud(self):
        fabric, ctx_a, ctx_b = two_contexts()
        with pytest.raises(InvalidStateError):
            fabric.connect(
                qp_on(ctx_a, QPType.UD), qp_on(ctx_b, QPType.UD)
            )

    def test_activate_ud(self):
        fabric, ctx_a, _ = two_contexts()
        qp = qp_on(ctx_a, QPType.UD)
        fabric.activate_ud(qp, MTU.MTU_2048)
        assert qp.state is QPState.RTS

    def test_activate_ud_rejects_connected_transports(self):
        fabric, ctx_a, _ = two_contexts()
        with pytest.raises(InvalidStateError):
            fabric.activate_ud(qp_on(ctx_a, QPType.RC))


class TestResolution:
    def test_resolve_finds_qps_on_any_context(self):
        fabric, ctx_a, ctx_b = two_contexts()
        qp_b = qp_on(ctx_b)
        assert fabric.resolve(qp_b.qp_num) is qp_b
        assert fabric.resolve(0xFFFF_FFFF) is None

    def test_destination_of_connected_qp(self):
        fabric, ctx_a, ctx_b = two_contexts()
        qp_a, qp_b = qp_on(ctx_a), qp_on(ctx_b)
        fabric.connect(qp_a, qp_b)
        assert fabric.destination_of(qp_a, None) is qp_b

    def test_destination_of_unconnected_qp_raises(self):
        fabric, ctx_a, _ = two_contexts()
        with pytest.raises(InvalidStateError):
            fabric.destination_of(qp_on(ctx_a), None)

    def test_ud_destination_requires_handle(self):
        fabric, ctx_a, ctx_b = two_contexts()
        qp_a = qp_on(ctx_a, QPType.UD)
        fabric.activate_ud(qp_a)
        with pytest.raises(AddressHandleError):
            fabric.destination_of(qp_a, None)
        with pytest.raises(AddressHandleError):
            fabric.destination_of(qp_a, 0xFFFF)
