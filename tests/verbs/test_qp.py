"""Queue-pair state machine and posting validation."""

import pytest

from repro.verbs import Device, QPCapabilities
from repro.verbs.constants import MTU, Opcode, QPState, QPType, SendFlags
from repro.verbs.exceptions import (
    AddressHandleError,
    InvalidStateError,
    QPCapacityError,
    WorkRequestError,
)
from repro.verbs.qp import QPAttributes
from repro.verbs.wr import RecvWorkRequest, ScatterGatherEntry, SendWorkRequest


def make_qp(qp_type=QPType.RC, cap=None):
    ctx = Device().open()
    pd = ctx.alloc_pd()
    cq = ctx.create_cq(64)
    return ctx.create_qp(pd, qp_type, cq, cq, cap or QPCapabilities())


def to_rts(qp, mtu=MTU.MTU_1024):
    qp.modify(QPAttributes(state=QPState.INIT))
    qp.modify(
        QPAttributes(state=QPState.RTR, path_mtu=mtu, dest_qp_num=0xBEEF)
    )
    qp.modify(QPAttributes(state=QPState.RTS))


def send_wr(opcode=Opcode.SEND, length=64, **kwargs):
    sg = [ScatterGatherEntry(addr=0x1000, length=length, lkey=1)]
    return SendWorkRequest(opcode=opcode, sg_list=sg, **kwargs)


class TestStateMachine:
    def test_fresh_qp_is_reset(self):
        assert make_qp().state is QPState.RESET

    def test_full_walk_to_rts(self):
        qp = make_qp()
        to_rts(qp)
        assert qp.state is QPState.RTS
        assert qp.dest_qp_num == 0xBEEF
        assert int(qp.path_mtu) == 1024

    def test_reset_to_rtr_is_illegal(self):
        qp = make_qp()
        with pytest.raises(InvalidStateError):
            qp.modify(QPAttributes(state=QPState.RTR, dest_qp_num=1))

    def test_rc_needs_destination_for_rtr(self):
        qp = make_qp()
        qp.modify(QPAttributes(state=QPState.INIT))
        with pytest.raises(InvalidStateError):
            qp.modify(QPAttributes(state=QPState.RTR))

    def test_ud_reaches_rtr_without_destination(self):
        qp = make_qp(QPType.UD)
        qp.modify(QPAttributes(state=QPState.INIT))
        qp.modify(QPAttributes(state=QPState.RTR))
        assert qp.state is QPState.RTR

    def test_any_state_reaches_err(self):
        qp = make_qp()
        qp.modify(QPAttributes(state=QPState.ERR))
        assert qp.state is QPState.ERR

    def test_reset_flushes_queues(self):
        qp = make_qp()
        to_rts(qp)
        qp.post_send(send_wr(opcode=Opcode.SEND))
        qp.modify(QPAttributes(state=QPState.RESET))
        assert qp.send_queue_depth == 0

    def test_err_blocks_further_transitions_except_reset(self):
        qp = make_qp()
        qp.modify(QPAttributes(state=QPState.ERR))
        with pytest.raises(InvalidStateError):
            qp.modify(QPAttributes(state=QPState.INIT))
        qp.modify(QPAttributes(state=QPState.RESET))
        assert qp.state is QPState.RESET


class TestPostSend:
    def test_requires_rts(self):
        qp = make_qp()
        with pytest.raises(InvalidStateError):
            qp.post_send(send_wr())

    def test_opcode_transport_validation(self):
        qp = make_qp(QPType.UC)
        to_rts(qp)
        with pytest.raises(WorkRequestError):
            qp.post_send(send_wr(opcode=Opcode.READ, remote_addr=1, rkey=1))

    def test_sge_cap_enforced(self):
        qp = make_qp(cap=QPCapabilities(max_send_sge=2))
        to_rts(qp)
        sg = [ScatterGatherEntry(0x1000, 8, 1)] * 3
        with pytest.raises(WorkRequestError):
            qp.post_send(SendWorkRequest(opcode=Opcode.SEND, sg_list=sg))

    def test_queue_capacity_enforced(self):
        qp = make_qp(cap=QPCapabilities(max_send_wr=2))
        to_rts(qp)
        qp.post_send(send_wr())
        qp.post_send(send_wr())
        with pytest.raises(QPCapacityError):
            qp.post_send(send_wr())

    def test_ud_requires_address_handle(self):
        qp = make_qp(QPType.UD)
        to_rts(qp)
        with pytest.raises(AddressHandleError):
            qp.post_send(send_wr())

    def test_ud_message_limited_to_mtu(self):
        qp = make_qp(QPType.UD)
        to_rts(qp, mtu=MTU.MTU_256)
        with pytest.raises(WorkRequestError):
            qp.post_send(send_wr(length=257, ah=1))
        qp.post_send(send_wr(length=256, ah=1))

    def test_batch_posting_counts(self):
        qp = make_qp()
        to_rts(qp)
        qp.post_send_batch([send_wr() for _ in range(5)])
        assert qp.posted_sends == 5
        assert qp.send_queue_depth == 5


class TestPostRecv:
    def test_allowed_from_init(self):
        qp = make_qp()
        qp.modify(QPAttributes(state=QPState.INIT))
        qp.post_recv(RecvWorkRequest(sg_list=[ScatterGatherEntry(0x1, 64, 1)]))
        assert qp.recv_queue_depth == 1

    def test_rejected_in_reset(self):
        qp = make_qp()
        with pytest.raises(InvalidStateError):
            qp.post_recv(RecvWorkRequest(sg_list=[]))

    def test_capacity_enforced(self):
        qp = make_qp(cap=QPCapabilities(max_recv_wr=1))
        qp.modify(QPAttributes(state=QPState.INIT))
        qp.post_recv(RecvWorkRequest(sg_list=[]))
        with pytest.raises(QPCapacityError):
            qp.post_recv(RecvWorkRequest(sg_list=[]))

    def test_recv_sge_cap(self):
        qp = make_qp(cap=QPCapabilities(max_recv_sge=1))
        qp.modify(QPAttributes(state=QPState.INIT))
        with pytest.raises(WorkRequestError):
            qp.post_recv(
                RecvWorkRequest(sg_list=[ScatterGatherEntry(0x1, 8, 1)] * 2)
            )


class TestDescribe:
    def test_describe_reports_verbs_shape(self):
        qp = make_qp()
        to_rts(qp)
        info = qp.describe()
        assert info["qp_type"] is QPType.RC
        assert info["path_mtu"] == 1024
        assert info["dest_qp_num"] == 0xBEEF

    def test_capabilities_validate(self):
        with pytest.raises(ValueError):
            QPCapabilities(max_send_wr=0)
