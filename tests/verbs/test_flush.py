"""WQE flushing on the error path (verbs spec §10.3.1)."""

from repro.verbs.constants import Opcode, QPState, WCStatus
from repro.verbs.qp import QPAttributes
from repro.verbs.wr import RecvWorkRequest, ScatterGatherEntry, SendWorkRequest


def sg(mr, length=16):
    return ScatterGatherEntry(addr=mr.addr, length=length, lkey=mr.lkey)


class TestFlushOnError:
    def test_outstanding_sends_flush_with_wr_flush_err(self, pair):
        for _ in range(3):
            pair.qp_a.post_send(
                SendWorkRequest(
                    opcode=Opcode.WRITE, sg_list=[sg(pair.mr_a)],
                    remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
                )
            )
        pair.qp_a.modify(QPAttributes(state=QPState.ERR))
        completions = pair.cq_a.drain()
        assert len(completions) == 3
        assert all(wc.status is WCStatus.WR_FLUSH_ERR for wc in completions)
        assert pair.qp_a.send_queue_depth == 0

    def test_outstanding_recvs_flush(self, pair):
        for _ in range(2):
            pair.qp_b.post_recv(
                RecvWorkRequest(sg_list=[sg(pair.mr_b, 64)])
            )
        pair.qp_b.modify(QPAttributes(state=QPState.ERR))
        completions = pair.cq_b.drain()
        assert len(completions) == 2
        assert all(wc.status is WCStatus.WR_FLUSH_ERR for wc in completions)

    def test_rnr_failure_flushes_queued_successors(self, pair):
        """When a SEND dies on RNR, the WQEs behind it flush — no silent
        loss of posted work (the application sees every wr_id again)."""
        ids = []
        for _ in range(3):
            wr = SendWorkRequest(opcode=Opcode.SEND, sg_list=[sg(pair.mr_a)])
            ids.append(wr.wr_id)
            pair.qp_a.post_send(wr)
        pair.datapath.process(pair.qp_a)
        completions = pair.cq_a.drain()
        assert {wc.wr_id for wc in completions} == set(ids)
        statuses = sorted(wc.status.value for wc in completions)
        assert statuses.count("WR_FLUSH_ERR") == 2
        assert statuses.count("RNR_RETRY_EXC_ERR") == 1

    def test_reset_discards_without_completions(self, pair):
        pair.qp_a.post_send(
            SendWorkRequest(
                opcode=Opcode.WRITE, sg_list=[sg(pair.mr_a)],
                remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
            )
        )
        pair.qp_a.modify(QPAttributes(state=QPState.RESET))
        assert pair.cq_a.drain() == []
        assert pair.qp_a.send_queue_depth == 0
