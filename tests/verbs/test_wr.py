"""Work requests, SG lists and the batching parameterisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verbs.constants import Opcode, SendFlags
from repro.verbs.exceptions import WorkRequestError
from repro.verbs.wr import (
    WQE_BASE_BYTES,
    WQE_SEGMENT_BYTES,
    RecvWorkRequest,
    ScatterGatherEntry,
    SendWorkRequest,
    build_sg_list,
    chunk_message,
    mixed_entry_lengths,
)


def sge(length=64, addr=0x1000, lkey=1):
    return ScatterGatherEntry(addr=addr, length=length, lkey=lkey)


class TestScatterGather:
    def test_negative_length_rejected(self):
        with pytest.raises(WorkRequestError):
            sge(length=-1)

    def test_build_sg_list_lays_entries_consecutively(self):
        entries = build_sg_list([10, 20, 30], base_addr=0x100, lkey=7)
        assert [e.addr for e in entries] == [0x100, 0x10A, 0x11E]
        assert sum(e.length for e in entries) == 60


class TestSendWorkRequest:
    def test_one_sided_requires_remote_addressing(self):
        with pytest.raises(WorkRequestError):
            SendWorkRequest(opcode=Opcode.WRITE, sg_list=[sge()])
        with pytest.raises(WorkRequestError):
            SendWorkRequest(opcode=Opcode.READ, sg_list=[sge()], rkey=3)

    def test_send_needs_no_remote_address(self):
        wr = SendWorkRequest(opcode=Opcode.SEND, sg_list=[sge(10), sge(20)])
        assert wr.byte_length == 30

    def test_wqe_bytes_scale_with_sg_entries(self):
        one = SendWorkRequest(opcode=Opcode.SEND, sg_list=[sge()])
        four = SendWorkRequest(opcode=Opcode.SEND, sg_list=[sge()] * 4)
        assert one.wqe_bytes == WQE_BASE_BYTES + WQE_SEGMENT_BYTES
        assert four.wqe_bytes - one.wqe_bytes == 3 * WQE_SEGMENT_BYTES

    def test_wr_ids_are_unique_by_default(self):
        a = SendWorkRequest(opcode=Opcode.SEND, sg_list=[sge()])
        b = SendWorkRequest(opcode=Opcode.SEND, sg_list=[sge()])
        assert a.wr_id != b.wr_id

    def test_signaled_flag(self):
        signaled = SendWorkRequest(opcode=Opcode.SEND, sg_list=[sge()])
        silent = SendWorkRequest(
            opcode=Opcode.SEND, sg_list=[sge()], send_flags=SendFlags.NONE
        )
        assert signaled.signaled and not silent.signaled


class TestRecvWorkRequest:
    def test_byte_length_and_wqe_bytes(self):
        wr = RecvWorkRequest(sg_list=[sge(100), sge(28)])
        assert wr.byte_length == 128
        assert wr.wqe_bytes == WQE_BASE_BYTES + 2 * WQE_SEGMENT_BYTES


class TestChunkMessage:
    @given(
        total=st.integers(min_value=0, max_value=1 << 20),
        wqes=st.integers(min_value=1, max_value=16),
        sges=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_conservation_and_shape(self, total, wqes, sges):
        chunks = chunk_message(total, wqes, sges)
        assert len(chunks) == wqes
        assert all(len(c) == sges for c in chunks)
        assert sum(sum(c) for c in chunks) == total

    def test_rejects_non_positive_counts(self):
        with pytest.raises(WorkRequestError):
            chunk_message(10, 0, 1)
        with pytest.raises(WorkRequestError):
            chunk_message(10, 1, 0)

    def test_even_split_when_divisible(self):
        assert chunk_message(120, 3, 4) == [[10] * 4] * 3


class TestMixedEntryLengths:
    @given(
        total=st.integers(min_value=1, max_value=1 << 22),
        sges=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_conservation(self, total, sges):
        lengths = mixed_entry_lengths(total, sges)
        assert sum(lengths) == total
        assert len(lengths) == sges

    def test_metadata_plus_tensor_shape(self):
        lengths = mixed_entry_lengths(64 * 1024 + 256, 3)
        assert lengths[0] == lengths[1] <= 1024
        assert lengths[2] > 64 * 1024 - 2048

    def test_single_entry_passthrough(self):
        assert mixed_entry_lengths(500, 1) == [500]

    def test_rejects_non_positive_sge(self):
        with pytest.raises(WorkRequestError):
            mixed_entry_lengths(10, 0)
