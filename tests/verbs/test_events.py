"""Completion channels and the arm/poll/re-arm contract."""

import pytest

from repro.verbs import Device, QPCapabilities
from repro.verbs.constants import AccessFlags, Opcode, QPType
from repro.verbs.events import (
    CompletionChannel,
    create_notifiable_cq,
)
from repro.verbs.exceptions import VerbsError
from repro.verbs.fabric import Fabric
from repro.verbs.datapath import DataPath
from repro.verbs.wr import ScatterGatherEntry, SendWorkRequest


def notifiable_pair():
    fabric = Fabric()
    ctx_a, ctx_b = Device("a").open(), Device("b").open()
    fabric.attach(ctx_a)
    fabric.attach(ctx_b)
    channel = CompletionChannel()
    cq_a = create_notifiable_cq(ctx_a, 64, channel)
    cq_b = ctx_b.create_cq(64)
    pd_a, pd_b = ctx_a.alloc_pd(), ctx_b.alloc_pd()
    qp_a = ctx_a.create_qp(pd_a, QPType.RC, cq_a, cq_a, QPCapabilities())
    qp_b = ctx_b.create_qp(pd_b, QPType.RC, cq_b, cq_b, QPCapabilities())
    fabric.connect(qp_a, qp_b)
    mr_a = pd_a.reg_mr(4096, AccessFlags.all_remote())
    mr_b = pd_b.reg_mr(4096, AccessFlags.all_remote())
    return fabric, channel, cq_a, qp_a, mr_a, mr_b


def write_wr(mr_a, mr_b, length=16):
    return SendWorkRequest(
        opcode=Opcode.WRITE,
        sg_list=[ScatterGatherEntry(mr_a.addr, length, mr_a.lkey)],
        remote_addr=mr_b.addr,
        rkey=mr_b.rkey,
    )


class TestCompletionChannel:
    def test_unarmed_cq_never_notifies(self):
        fabric, channel, cq_a, qp_a, mr_a, mr_b = notifiable_pair()
        qp_a.post_send(write_wr(mr_a, mr_b))
        DataPath(fabric).process(qp_a)
        assert channel.get_event() is None
        assert cq_a.poll_one() is not None  # the CQE is still there

    def test_armed_cq_notifies_exactly_once(self):
        fabric, channel, cq_a, qp_a, mr_a, mr_b = notifiable_pair()
        cq_a.req_notify()
        datapath = DataPath(fabric)
        for _ in range(3):
            qp_a.post_send(write_wr(mr_a, mr_b))
        datapath.process(qp_a)
        assert channel.notifications == 1  # one-shot arming
        assert channel.get_event() is cq_a
        assert channel.get_event() is None

    def test_re_arming_after_event(self):
        fabric, channel, cq_a, qp_a, mr_a, mr_b = notifiable_pair()
        datapath = DataPath(fabric)
        for round_number in range(3):
            cq_a.req_notify()
            qp_a.post_send(write_wr(mr_a, mr_b))
            datapath.process(qp_a)
            assert channel.get_event() is cq_a
            assert len(cq_a.poll()) == 1
        assert channel.notifications == 3

    def test_arm_poll_rearm_race_pattern(self):
        """The canonical race-free loop: after arming, poll once more
        for completions that slipped in before the arm took effect."""
        fabric, channel, cq_a, qp_a, mr_a, mr_b = notifiable_pair()
        datapath = DataPath(fabric)
        qp_a.post_send(write_wr(mr_a, mr_b))
        datapath.process(qp_a)  # completion lands before arming
        cq_a.req_notify()
        leftovers = cq_a.poll()  # the mandatory post-arm poll
        assert len(leftovers) == 1
        assert channel.get_event() is None  # nothing new: no event

    def test_req_notify_without_channel_raises(self):
        ctx = Device().open()
        cq = ctx.create_cq(16)
        with pytest.raises(AttributeError):
            cq.req_notify()  # plain CQs have no notify surface

    def test_notifiable_cq_respects_device_ceiling(self):
        from repro.verbs.device import DeviceAttributes

        ctx = Device(attributes=DeviceAttributes(max_cqe=10)).open()
        with pytest.raises(VerbsError):
            create_notifiable_cq(ctx, 11, CompletionChannel())
