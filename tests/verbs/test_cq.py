"""Completion queue ring semantics."""

import pytest

from repro.verbs.cq import CompletionQueue, WorkCompletion
from repro.verbs.constants import WCOpcode, WCStatus
from repro.verbs.exceptions import CQOverrunError


def wc(wr_id=1, status=WCStatus.SUCCESS):
    return WorkCompletion(
        wr_id=wr_id, status=status, opcode=WCOpcode.SEND, byte_len=0, qp_num=17
    )


class TestCompletionQueue:
    def test_rejects_non_positive_depth(self):
        with pytest.raises(ValueError):
            CompletionQueue(0)

    def test_poll_is_fifo(self):
        cq = CompletionQueue(8)
        for i in range(5):
            cq.push(wc(wr_id=i))
        assert [w.wr_id for w in cq.poll(3)] == [0, 1, 2]
        assert [w.wr_id for w in cq.poll(8)] == [3, 4]

    def test_poll_empty_returns_nothing(self):
        cq = CompletionQueue(4)
        assert cq.poll() == []
        assert cq.poll_one() is None

    def test_poll_non_positive_count(self):
        cq = CompletionQueue(4)
        cq.push(wc())
        assert cq.poll(0) == []
        assert len(cq) == 1

    def test_overrun_raises(self):
        cq = CompletionQueue(2)
        cq.push(wc())
        cq.push(wc())
        with pytest.raises(CQOverrunError):
            cq.push(wc())

    def test_drain_empties_and_returns_all(self):
        cq = CompletionQueue(4)
        for i in range(3):
            cq.push(wc(wr_id=i))
        drained = cq.drain()
        assert [w.wr_id for w in drained] == [0, 1, 2]
        assert len(cq) == 0

    def test_total_completions_is_cumulative(self):
        cq = CompletionQueue(4)
        cq.push(wc())
        cq.poll()
        cq.push(wc())
        assert cq.total_completions == 2

    def test_wc_ok_property(self):
        assert wc().ok
        assert not wc(status=WCStatus.REM_ACCESS_ERR).ok
