"""Stateful property test: the QP lifecycle under arbitrary call orders.

Hypothesis drives a random interleaving of ``modify``/``post``/``process``
calls against a connected QP pair and checks the global invariants the
rest of the stack depends on: queue depths never exceed caps, every
posted signalled WR eventually completes exactly once, completions never
outnumber postings, and illegal calls never corrupt state.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.verbs import (
    AccessFlags,
    DataPath,
    Device,
    Fabric,
    QPCapabilities,
)
from repro.verbs.constants import MTU, Opcode, QPState, QPType
from repro.verbs.exceptions import VerbsError
from repro.verbs.qp import QPAttributes
from repro.verbs.wr import RecvWorkRequest, ScatterGatherEntry, SendWorkRequest

CAP = QPCapabilities(max_send_wr=16, max_recv_wr=16)


class QPLifecycle(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.fabric = Fabric()
        ctx_a, ctx_b = Device("a").open(), Device("b").open()
        self.fabric.attach(ctx_a)
        self.fabric.attach(ctx_b)
        self.pd_a, pd_b = ctx_a.alloc_pd(), ctx_b.alloc_pd()
        self.cq_a = ctx_a.create_cq(4096)
        cq_b = ctx_b.create_cq(4096)
        self.qp = ctx_a.create_qp(self.pd_a, QPType.RC, self.cq_a,
                                  self.cq_a, CAP)
        self.peer = ctx_b.create_qp(pd_b, QPType.RC, cq_b, cq_b, CAP)
        self.mr = self.pd_a.reg_mr(4096, AccessFlags.all_remote())
        self.peer_mr = pd_b.reg_mr(4096, AccessFlags.all_remote())
        self.datapath = DataPath(self.fabric)
        self.posted_signaled = 0
        self.completions_seen = 0

    # -- actions ------------------------------------------------------------

    @rule()
    def connect(self):
        try:
            self.fabric.connect(self.qp, self.peer, MTU.MTU_1024)
        except VerbsError:
            pass  # connecting twice (or from ERR) is legal to attempt

    @rule()
    def error_out(self):
        self.qp.modify(QPAttributes(state=QPState.ERR))
        self.completions_seen += len(self.cq_a.drain())

    @rule()
    def reset(self):
        lost = self.qp.send_queue_depth  # RESET discards silently
        self.qp.modify(QPAttributes(state=QPState.RESET))
        self.posted_signaled -= lost

    @rule(count=st.integers(min_value=1, max_value=4))
    def post_writes(self, count):
        for _ in range(count):
            wr = SendWorkRequest(
                opcode=Opcode.WRITE,
                sg_list=[ScatterGatherEntry(self.mr.addr, 8, self.mr.lkey)],
                remote_addr=self.peer_mr.addr,
                rkey=self.peer_mr.rkey,
            )
            try:
                self.qp.post_send(wr)
                self.posted_signaled += 1
            except VerbsError:
                break  # wrong state or full queue: state must not change

    @rule()
    def post_peer_recv(self):
        try:
            self.peer.post_recv(
                RecvWorkRequest(
                    sg_list=[
                        ScatterGatherEntry(
                            self.peer_mr.addr, 64, self.peer_mr.lkey
                        )
                    ]
                )
            )
        except VerbsError:
            pass

    @precondition(lambda self: self.qp.state is QPState.RTS)
    @rule()
    def process(self):
        self.datapath.process(self.qp)
        self.completions_seen += len(self.cq_a.drain())

    # -- invariants -----------------------------------------------------------

    @invariant()
    def queue_depths_respect_caps(self):
        assert self.qp.send_queue_depth <= CAP.max_send_wr
        assert self.peer.recv_queue_depth <= CAP.max_recv_wr

    @invariant()
    def conservation_of_work(self):
        """Every signalled WR is either still queued or completed exactly
        once (RESET-discarded ones were subtracted at discard time) —
        never duplicated, never lost."""
        assert (
            self.completions_seen + self.qp.send_queue_depth
            == self.posted_signaled
        )

    @invariant()
    def state_is_always_legal(self):
        assert self.qp.state in QPState


QPLifecycle.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestQPLifecycle = QPLifecycle.TestCase
