"""Device/context object creation and capability ceilings."""

import pytest

from repro.verbs import Device, DeviceAttributes, QPCapabilities
from repro.verbs.constants import QPType
from repro.verbs.exceptions import MemoryRegistrationError, VerbsError


class TestContextCreation:
    def test_qp_numbers_unique_across_contexts(self):
        ctx_a = Device("a").open()
        ctx_b = Device("b").open()
        numbers = set()
        for ctx in (ctx_a, ctx_b):
            pd = ctx.alloc_pd()
            cq = ctx.create_cq(16)
            for _ in range(10):
                numbers.add(ctx.create_qp(pd, QPType.RC, cq, cq).qp_num)
        assert len(numbers) == 20

    def test_cq_depth_ceiling(self):
        attrs = DeviceAttributes(max_cqe=100)
        ctx = Device(attributes=attrs).open()
        with pytest.raises(VerbsError):
            ctx.create_cq(101)

    def test_qp_limit(self):
        ctx = Device(attributes=DeviceAttributes(max_qp=2)).open()
        pd = ctx.alloc_pd()
        cq = ctx.create_cq(16)
        ctx.create_qp(pd, QPType.RC, cq, cq)
        ctx.create_qp(pd, QPType.RC, cq, cq)
        with pytest.raises(VerbsError):
            ctx.create_qp(pd, QPType.RC, cq, cq)

    def test_qp_wr_depth_ceiling(self):
        ctx = Device(attributes=DeviceAttributes(max_qp_wr=64)).open()
        pd = ctx.alloc_pd()
        cq = ctx.create_cq(16)
        with pytest.raises(VerbsError):
            ctx.create_qp(pd, QPType.RC, cq, cq, QPCapabilities(max_send_wr=65))

    def test_sge_ceiling(self):
        ctx = Device(attributes=DeviceAttributes(max_sge=4)).open()
        pd = ctx.alloc_pd()
        cq = ctx.create_cq(16)
        with pytest.raises(VerbsError):
            ctx.create_qp(pd, QPType.RC, cq, cq, QPCapabilities(max_send_sge=5))

    def test_destroy_qp_frees_lookup(self):
        ctx = Device().open()
        pd = ctx.alloc_pd()
        cq = ctx.create_cq(16)
        qp = ctx.create_qp(pd, QPType.RC, cq, cq)
        assert ctx.lookup_qp(qp.qp_num) is qp
        ctx.destroy_qp(qp)
        assert ctx.lookup_qp(qp.qp_num) is None

    def test_mr_limit(self):
        ctx = Device(attributes=DeviceAttributes(max_mr=1)).open()
        pd = ctx.alloc_pd()
        pd.reg_mr(4096)
        with pytest.raises(MemoryRegistrationError):
            pd.reg_mr(4096)

    def test_counters_aggregate_over_pds(self):
        ctx = Device().open()
        pd1, pd2 = ctx.alloc_pd(), ctx.alloc_pd()
        pd1.reg_mr(4096)
        pd2.reg_mr(8192)
        assert ctx.mr_count == 2
        assert ctx.pinned_pages == 3
