"""Traffic models of the two §7.3 production applications.

* The **RDMA RPC library**: RC-only (it needs one-sided ops and reliable
  delivery), RDMA WRITE for data in batches, SEND/RECV with a deep receive
  queue for small control messages.
* The **distributed ML framework** (BytePS-based): bidirectional RC with
  long SG lists carrying a tensor plus several small metadata entries —
  the mixed small/large pattern that tripped anomaly #9 in production.
"""

from __future__ import annotations

from repro.hardware.workload import Direction, SGLayout, WorkloadDescriptor
from repro.verbs.constants import Opcode, QPType

KB = 1024
MB = 1024 * 1024


def rpc_library_workload(
    batch_size: int = 64,
    sge_per_wqe: int = 4,
    use_read: bool = True,
    recv_queue_depth: int = 2048,
    num_qps: int = 128,
) -> WorkloadDescriptor:
    """A throughput-tuned configuration of the RPC library's data path.

    With ``use_read=True``, large batches and long SG lists — the natural
    "maximise throughput" choices — this lands squarely in anomaly #4's
    trigger region, which is exactly the design feedback Collie gave the
    library's developers (§7.3).
    """
    return WorkloadDescriptor(
        qp_type=QPType.RC,
        opcode=Opcode.READ if use_read else Opcode.WRITE,
        direction=Direction.BIDIRECTIONAL,
        mtu=4096,
        num_qps=num_qps,
        wqe_batch=batch_size,
        sge_per_wqe=sge_per_wqe,
        wq_depth=recv_queue_depth,
        # RPC requests and responses are small; bulk payloads move
        # separately (that is what suggestion (1) changes to WRITE).
        msg_sizes_bytes=(256, 512, 1 * KB, 512),
        mrs_per_qp=4,
        mr_bytes=1 * MB,
    )


def rpc_library_control_workload(
    recv_queue_depth: int = 2048, num_qps: int = 64
) -> WorkloadDescriptor:
    """The library's small-control-message path: RC SEND, deep RQ.

    Deep receive queues guard against receiver-not-ready errors but, at
    small MTU with batched sends, reach anomaly #5's trigger region —
    Collie's second §7.3 design suggestion.
    """
    return WorkloadDescriptor(
        qp_type=QPType.RC,
        opcode=Opcode.SEND,
        direction=Direction.UNIDIRECTIONAL,
        mtu=1024,
        num_qps=num_qps,
        wqe_batch=64,
        sge_per_wqe=2,
        wq_depth=recv_queue_depth,
        msg_sizes_bytes=(2 * KB, 4 * KB),
        mrs_per_qp=2,
        mr_bytes=64 * KB,
    )


def dml_byteps_workload(
    tensor_bytes: int = 64 * KB,
    meta_bytes: int = 128,
    num_qps: int = 8,
) -> WorkloadDescriptor:
    """The distributed-ML push/pull pattern that hit anomaly #9.

    Each transfer is a WQE whose SG list carries metadata, the tensor,
    and a trailer — a mix of ≤1KB and ≥64KB entries — in both directions
    (workers push gradients while pulling parameters).
    """
    return WorkloadDescriptor(
        qp_type=QPType.RC,
        opcode=Opcode.WRITE,
        direction=Direction.BIDIRECTIONAL,
        mtu=4096,
        num_qps=num_qps,
        wqe_batch=8,
        sge_per_wqe=3,
        sg_layout=SGLayout.MIXED,
        wq_depth=128,
        msg_sizes_bytes=(meta_bytes, tensor_bytes, 1 * KB),
        mrs_per_qp=8,
        mr_bytes=4 * MB,
    )


def dml_byteps_fixed_workload(num_qps: int = 8) -> WorkloadDescriptor:
    """The workload after applying Collie's MFS-guided fix.

    Breaking one MFS condition suffices; the developers stopped packing
    metadata and tensor into one SG list (sge_per_wqe drops below 3) and
    sent metadata in separate small messages.
    """
    return dml_byteps_workload(num_qps=num_qps).replace(
        sge_per_wqe=1, sg_layout=SGLayout.EVEN, msg_sizes_bytes=(64 * KB,)
    )


def herd_style_workload(num_clients: int = 64) -> WorkloadDescriptor:
    """HERD's design point [16]: UD SEND for requests, prioritising RNIC
    scalability over reliability.

    HERD-class RPC keeps many small datagrams in flight with deep
    receive queues — exactly the territory of anomalies #1/#2 (CX-6) and
    #15 (P2100G).
    """
    return WorkloadDescriptor(
        qp_type=QPType.UD,
        opcode=Opcode.SEND,
        mtu=2048,
        num_qps=num_clients,
        wqe_batch=4,
        sge_per_wqe=1,
        wq_depth=1024,
        msg_sizes_bytes=(512, 1 * KB, 256, 1 * KB),
        mrs_per_qp=1,
        mr_bytes=64 * KB,
    )


def farm_style_workload(num_machines: int = 32) -> WorkloadDescriptor:
    """FaRM's design point [4]: RC one-sided READs into remote memory.

    Read-dominated key-value access with modest connection counts; at
    small MTU this is anomaly #3's territory on the 200 Gbps parts.
    """
    return WorkloadDescriptor(
        qp_type=QPType.RC,
        opcode=Opcode.READ,
        mtu=1024,
        num_qps=num_machines,
        wqe_batch=2,
        sge_per_wqe=1,
        wq_depth=128,
        msg_sizes_bytes=(32 * KB, 64 * KB, 16 * KB, 64 * KB),
        mrs_per_qp=8,
        mr_bytes=4 * MB,
    )


def fasst_style_workload(num_machines: int = 128) -> WorkloadDescriptor:
    """FaSST's design point [18]: two-sided UD datagram RPCs at scale."""
    return WorkloadDescriptor(
        qp_type=QPType.UD,
        opcode=Opcode.SEND,
        mtu=4096,
        num_qps=num_machines,
        wqe_batch=16,
        sge_per_wqe=1,
        wq_depth=512,
        msg_sizes_bytes=(256, 512, 256, 512),
        mrs_per_qp=1,
        mr_bytes=64 * KB,
    )


def rpc_library_space(subsystem_letter: str = "B"):
    """The restricted search space the RPC developers gave Collie (§7.3).

    RC-only transport, the opcodes and batching ranges the library's
    design permits.  Returns a :class:`repro.core.space.SearchSpace`;
    imported lazily to keep this module free of a core dependency at
    import time.
    """
    from repro.core.space import SearchSpace

    return SearchSpace.for_subsystem(
        subsystem_letter,
        qp_types=(QPType.RC,),
        opcodes=(Opcode.READ, Opcode.WRITE, Opcode.SEND),
    )
