"""The 18 simplified concrete trigger settings of Appendix A.

Each anomaly in the paper's appendix comes with a "simplified concrete
trigger setting" — exact QP counts, MR sizes, queue depths, batch sizes
and message patterns.  This module transcribes all 18 verbatim into
:class:`~repro.hardware.workload.WorkloadDescriptor` form, with the
subsystem they were reported on and the symptom Table 2 lists.

Note one numbering subtlety: the appendix presents the QP-scalability
anomaly as its #7 and the MR-scalability one as its #8, while Table 2's
rows have them the other way around (row #7 = many MRs, row #8 = many
QPs).  The ``expected_tag`` fields follow **Table 2 row numbers**, so
setting 7 (480 QPs) expects tag ``A8`` and setting 8 (24K MRs) expects
``A7``.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.workload import (
    Colocation,
    Direction,
    SGLayout,
    WorkloadDescriptor,
)
from repro.verbs.constants import Opcode, QPType

KB = 1024
MB = 1024 * 1024


@dataclasses.dataclass(frozen=True)
class AppendixSetting:
    """One concrete trigger setting with its expected outcome."""

    number: int  #: appendix setting number (1–18).
    subsystem: str  #: Table 1 letter it was reported on (F or H).
    workload: WorkloadDescriptor
    expected_tag: str  #: Table 2 row tag the setting must trigger.
    expected_symptom: str  #: ``"pause frame"`` or ``"low throughput"``.
    is_new: bool  #: green rows of Table 2 (new anomalies found by Collie).


def _setting(
    number, subsystem, expected_tag, expected_symptom, is_new, **kwargs
) -> AppendixSetting:
    return AppendixSetting(
        number=number,
        subsystem=subsystem,
        workload=WorkloadDescriptor(**kwargs),
        expected_tag=expected_tag,
        expected_symptom=expected_symptom,
        is_new=is_new,
    )


APPENDIX_SETTINGS: tuple[AppendixSetting, ...] = (
    _setting(
        1, "F", "A1", "pause frame", True,
        qp_type=QPType.UD, opcode=Opcode.SEND, num_qps=1,
        mrs_per_qp=1, mr_bytes=64 * KB, wq_depth=256, mtu=2048,
        wqe_batch=64, sge_per_wqe=1, msg_sizes_bytes=(2 * KB,),
    ),
    _setting(
        2, "F", "A2", "low throughput", True,
        qp_type=QPType.UD, opcode=Opcode.SEND, num_qps=16,
        mrs_per_qp=1, mr_bytes=64 * KB, wq_depth=1024, mtu=1024,
        wqe_batch=4, sge_per_wqe=1, msg_sizes_bytes=(1 * KB,),
    ),
    _setting(
        3, "F", "A3", "pause frame", True,
        qp_type=QPType.RC, opcode=Opcode.READ, num_qps=8,
        mrs_per_qp=1, mr_bytes=4 * MB, wq_depth=128, mtu=1024,
        wqe_batch=1, sge_per_wqe=1, msg_sizes_bytes=(4 * MB,),
    ),
    _setting(
        4, "F", "A4", "pause frame", True,
        qp_type=QPType.RC, opcode=Opcode.READ,
        direction=Direction.BIDIRECTIONAL, num_qps=80,
        mrs_per_qp=1, mr_bytes=64 * KB, wq_depth=128, mtu=4096,
        wqe_batch=128, sge_per_wqe=4, msg_sizes_bytes=(128,),
    ),
    _setting(
        5, "F", "A5", "pause frame", True,
        qp_type=QPType.RC, opcode=Opcode.SEND, num_qps=1,
        mrs_per_qp=1, mr_bytes=64 * KB, wq_depth=1024, mtu=1024,
        wqe_batch=64, sge_per_wqe=2, msg_sizes_bytes=(2 * KB,),
    ),
    _setting(
        6, "F", "A6", "low throughput", True,
        qp_type=QPType.RC, opcode=Opcode.SEND, num_qps=32,
        mrs_per_qp=1, mr_bytes=64 * KB, wq_depth=1024, mtu=1024,
        wqe_batch=8, sge_per_wqe=2, msg_sizes_bytes=(1 * KB,),
    ),
    # Appendix #7 is the QP-scalability trigger -> Table 2 row #8.
    _setting(
        7, "F", "A8", "low throughput", True,
        qp_type=QPType.RC, opcode=Opcode.WRITE, num_qps=480,
        mrs_per_qp=1, mr_bytes=64 * KB, wq_depth=16, mtu=1024,
        wqe_batch=1, sge_per_wqe=1, msg_sizes_bytes=(512,),
    ),
    # Appendix #8 is the MR-scalability trigger -> Table 2 row #7.
    _setting(
        8, "F", "A7", "low throughput", True,
        qp_type=QPType.RC, opcode=Opcode.WRITE, num_qps=24,
        mrs_per_qp=1024, mr_bytes=64 * KB, wq_depth=128, mtu=1024,
        wqe_batch=1, sge_per_wqe=1, msg_sizes_bytes=(512,),
    ),
    _setting(
        9, "F", "A9", "pause frame", False,
        qp_type=QPType.RC, opcode=Opcode.WRITE,
        direction=Direction.BIDIRECTIONAL, num_qps=8,
        mrs_per_qp=1, mr_bytes=4 * MB, wq_depth=128, mtu=4096,
        wqe_batch=8, sge_per_wqe=3, sg_layout=SGLayout.MIXED,
        msg_sizes_bytes=(128, 64 * KB, 1 * KB),
    ),
    _setting(
        10, "F", "A10", "pause frame", True,
        qp_type=QPType.RC, opcode=Opcode.WRITE,
        direction=Direction.BIDIRECTIONAL, num_qps=320,
        mrs_per_qp=1, mr_bytes=64 * KB, wq_depth=128, mtu=1024,
        wqe_batch=64, sge_per_wqe=1,
        msg_sizes_bytes=(64 * KB, 128, 128, 128),
    ),
    _setting(
        11, "F", "A11", "pause frame", True,
        qp_type=QPType.RC, opcode=Opcode.WRITE,
        direction=Direction.BIDIRECTIONAL, num_qps=1,
        mrs_per_qp=32, mr_bytes=4 * MB, wq_depth=128, mtu=4096,
        wqe_batch=16, sge_per_wqe=1, msg_sizes_bytes=(256 * KB,),
        src_device="numa0", dst_device="numa1",
    ),
    _setting(
        12, "F", "A12", "pause frame", False,
        qp_type=QPType.RC, opcode=Opcode.WRITE,
        direction=Direction.BIDIRECTIONAL, num_qps=8,
        mrs_per_qp=1, mr_bytes=4 * MB, wq_depth=128, mtu=4096,
        wqe_batch=8, sge_per_wqe=3, sg_layout=SGLayout.MIXED,
        msg_sizes_bytes=(128, 64 * KB, 1 * KB),
        src_device="gpu0", dst_device="gpu0",
    ),
    _setting(
        13, "F", "A13", "pause frame", False,
        qp_type=QPType.RC, opcode=Opcode.WRITE, num_qps=16,
        mrs_per_qp=32, mr_bytes=4 * MB, wq_depth=128, mtu=4096,
        wqe_batch=16, sge_per_wqe=1, msg_sizes_bytes=(256 * KB,),
        colocation=Colocation.MIXED_LOOPBACK,
    ),
    _setting(
        14, "H", "A14", "low throughput", True,
        qp_type=QPType.RC, opcode=Opcode.WRITE,
        direction=Direction.BIDIRECTIONAL, num_qps=1024,
        mrs_per_qp=82, mr_bytes=256 * KB, wq_depth=128, mtu=4096,
        wqe_batch=1, sge_per_wqe=4, msg_sizes_bytes=(64 * KB,),
    ),
    _setting(
        15, "H", "A15", "pause frame", True,
        qp_type=QPType.UD, opcode=Opcode.SEND, num_qps=32,
        mrs_per_qp=1, mr_bytes=4 * KB, wq_depth=64, mtu=2048,
        wqe_batch=1, sge_per_wqe=1,
        msg_sizes_bytes=(256, 1 * KB, 64, 1 * KB),
    ),
    _setting(
        16, "H", "A16", "pause frame", True,
        qp_type=QPType.RC, opcode=Opcode.READ, num_qps=500,
        mrs_per_qp=1, mr_bytes=256 * KB, wq_depth=128, mtu=1024,
        wqe_batch=8, sge_per_wqe=1, msg_sizes_bytes=(64 * KB,),
    ),
    _setting(
        17, "H", "A17", "pause frame", True,
        qp_type=QPType.RC, opcode=Opcode.SEND, num_qps=80,
        mrs_per_qp=1, mr_bytes=1 * MB, wq_depth=128, mtu=1024,
        wqe_batch=1, sge_per_wqe=1, msg_sizes_bytes=(1 * KB,),
    ),
    _setting(
        18, "H", "A18", "pause frame", True,
        qp_type=QPType.RC, opcode=Opcode.WRITE,
        direction=Direction.BIDIRECTIONAL, num_qps=16,
        mrs_per_qp=1, mr_bytes=12 * KB, wq_depth=64, mtu=1024,
        wqe_batch=16, sge_per_wqe=1, msg_sizes_bytes=(64 * KB,),
    ),
)


def settings_for_subsystem(letter: str) -> list[AppendixSetting]:
    """The appendix settings reported on one subsystem."""
    return [s for s in APPENDIX_SETTINGS if s.subsystem == letter.upper()]


def setting(number: int) -> AppendixSetting:
    """Look up one appendix setting by its number (1–18)."""
    for candidate in APPENDIX_SETTINGS:
        if candidate.number == number:
            return candidate
    raise KeyError(f"no appendix setting #{number}")
