"""Workload catalogs: the Appendix A trigger settings and the §7.3
application traffic models (RPC library, distributed ML)."""

from repro.workloads.appendix import (
    APPENDIX_SETTINGS,
    AppendixSetting,
    settings_for_subsystem,
)
from repro.workloads.applications import (
    dml_byteps_workload,
    rpc_library_space,
    rpc_library_workload,
)

__all__ = [
    "APPENDIX_SETTINGS",
    "AppendixSetting",
    "settings_for_subsystem",
    "dml_byteps_workload",
    "rpc_library_space",
    "rpc_library_workload",
]
