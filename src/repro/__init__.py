"""Reproduction of *Collie: Finding Performance Anomalies in RDMA Subsystems*
(Kong et al., NSDI 2022).

The public API re-exports the pieces a downstream user needs:

* :class:`repro.core.collie.Collie` — the search tool itself;
* :mod:`repro.hardware.subsystems` — the eight testbed presets of Table 1;
* :mod:`repro.core.space` — the four-dimensional workload search space;
* :mod:`repro.verbs` — the software verbs layer workloads are written in.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
