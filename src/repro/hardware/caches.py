"""Cache models for RNIC on-chip SRAM structures.

RNICs cache connection context (QPC), memory-translation entries (MTT) and
prefetched receive WQEs in a small SRAM (paper Fig. 1, circles 5/8).  Two
views are provided:

* :class:`LRUCache` — an exact LRU used by fine-grained simulation and as
  the reference implementation for property tests;
* :func:`steady_state_miss_rate` — the closed-form miss-rate estimate the
  steady-state solver uses, validated against :class:`LRUCache` in the
  test suite.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable


class LRUCache:
    """Exact least-recently-used cache with hit/miss accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def access(self, key: Hashable) -> bool:
        """Touch ``key``; returns True on hit, False on miss (and inserts)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[key] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return False

    def access_many(self, keys: Iterable[Hashable]) -> int:
        """Touch a sequence of keys; returns the number of misses."""
        before = self.misses
        for key in keys:
            self.access(key)
        return self.misses - before

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0


def steady_state_miss_rate(working_set: float, capacity: float) -> float:
    """Closed-form LRU miss rate for uniform-random access.

    With a working set of ``w`` equally likely entries and ``c`` cache
    slots, steady-state LRU keeps an (approximately) uniform random subset
    of size ``min(w, c)`` resident, so the miss probability of the next
    access is ``max(0, 1 - c/w)``.  This matches :class:`LRUCache` measured
    on long uniform traces (see ``tests/hardware/test_caches.py``) and is
    exact in the limits (0 when the set fits, →1 as the set grows).
    """
    if working_set <= 0:
        return 0.0
    if capacity <= 0:
        return 1.0
    return max(0.0, 1.0 - capacity / working_set)


def miss_stall_us(miss_fraction: float, refill_us: float) -> float:
    """Mean per-access stall of a cache path, microseconds.

    Each miss costs one refill round trip (a PCIe read for the RNIC's
    SRAM structures); the steady-state mean stall is simply the miss
    fraction times that round trip.  Kept as a named helper so the
    latency decomposition (docs/MODEL.md) reads in domain terms.
    """
    return max(0.0, miss_fraction) * refill_us


def pressure_score(working_set: float, capacity: float, knee: float = 1.0) -> float:
    """Smooth [0, 1) pressure signal for diagnostic counters.

    Unlike :func:`steady_state_miss_rate`, which is zero until the working
    set exceeds capacity, the pressure score starts rising *before* the
    cache overflows (``knee`` < 1 moves the onset earlier).  This is what
    gives the search algorithm a gradient to climb: the paper's diagnostic
    counters tick up under load well before the anomaly manifests (§7.2).
    """
    if capacity <= 0:
        return 1.0
    x = working_set / (capacity * knee)
    return x / (1.0 + x)
