"""PCIe link model: bandwidth, TLP overheads, latency, ordering.

The RNIC talks to every memory device through PCIe; Neugebauer et al.
(SIGCOMM'18, paper ref [30]) showed the link's *effective* bandwidth after
TLP overheads is what bounds host networking, and several Collie anomalies
(#4, #9, #13) are PCIe-side.  This model prices DMA payload movement, WQE
fetches, doorbells and CQE writes, and carries the relaxed-ordering flag
whose absence triggers anomaly #9 on strict-ordering AMD root complexes.
"""

from __future__ import annotations

import dataclasses

#: Per-generation raw signalling rate per lane in GT/s and encoding
#: efficiency (gen1/2 use 8b/10b, gen3+ 128b/130b).
_GEN_GTS = {1: 2.5, 2: 5.0, 3: 8.0, 4: 16.0, 5: 32.0}
_GEN_ENCODING = {1: 0.8, 2: 0.8, 3: 128 / 130, 4: 128 / 130, 5: 128 / 130}

#: TLP header bytes per transaction (3-4 DW header + framing).
TLP_HEADER_BYTES = 24
#: Doorbell (MMIO write) bytes, charged once per posted batch.
DOORBELL_BYTES = 8
#: CQE DMA write bytes, charged per signaled completion.
CQE_BYTES = 64
#: Bytes fetched on a QPC or MTT cache refill.
CACHE_REFILL_BYTES = 64


@dataclasses.dataclass(frozen=True)
class PCIeLink:
    """One PCIe slot: generation, lane count and payload configuration."""

    gen: int = 3
    lanes: int = 16
    #: MaxPayloadSize; datacenter BIOSes run 512 (256 doubles the TLP
    #: overhead on small DMAs and starves 200 Gbps parts of headroom).
    max_payload_bytes: int = 512
    #: Whether the platform honours relaxed-ordering DMA.  On the paper's
    #: AMD testbeds the RNIC had to be *forced* into relaxed ordering to fix
    #: anomaly #9; ``False`` here means strict ordering applies.
    relaxed_ordering: bool = True
    #: Round-trip time of a DMA read (doorbell-to-data), nanoseconds.
    read_latency_ns: float = 900.0

    def __post_init__(self) -> None:
        if self.gen not in _GEN_GTS:
            raise ValueError(f"unknown PCIe generation {self.gen}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid lane count {self.lanes}")

    @property
    def raw_gbps(self) -> float:
        """Raw link rate after encoding, both directions symmetric."""
        return _GEN_GTS[self.gen] * self.lanes * _GEN_ENCODING[self.gen]

    @property
    def effective_gbps(self) -> float:
        """Usable data bandwidth after TLP header overhead at max payload."""
        payload = self.max_payload_bytes
        return self.raw_gbps * payload / (payload + TLP_HEADER_BYTES)

    @property
    def effective_bytes_per_sec(self) -> float:
        return self.effective_gbps * 1e9 / 8

    @property
    def read_latency_us(self) -> float:
        """DMA read round trip in microseconds (latency-model unit)."""
        return self.read_latency_ns / 1e3

    def transfer_bytes(self, payload_bytes: int) -> int:
        """Bytes on the link to move ``payload_bytes`` of DMA payload.

        Payload is split into max-payload-sized TLPs, each with its header.
        """
        if payload_bytes <= 0:
            return 0
        tlps = -(-payload_bytes // self.max_payload_bytes)
        return payload_bytes + tlps * TLP_HEADER_BYTES

    def transfer_us(self, payload_bytes: int) -> float:
        """Microseconds to move one DMA payload at the effective rate."""
        return (
            self.transfer_bytes(payload_bytes)
            / self.effective_bytes_per_sec
            * 1e6
        )

    def describe(self) -> str:
        """Human-readable slot description, e.g. ``3.0 x16``."""
        return f"{self.gen}.0 x{self.lanes}"
