"""Hardware counters: the search signal Collie drives to extreme regions.

Two families, exactly as the paper distinguishes them (§3, Challenge #2):

* **performance counters** — provided by every commodity RNIC (bits and
  packets per second, pause duration); the search drives them *low*;
* **diagnostic counters** — vendor counters mapped to unexpected internal
  events (cache misses, PCIe backpressure); the search drives them *high*.
  The paper's vendors exposed 9 of them; we expose the same number.

:class:`VendorMonitor` mimics the vendor tooling (NEO-Host et al.): it
samples a subsystem once per simulated second and returns noisy readings.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

#: Performance counters (always available).
PERFORMANCE_COUNTERS = (
    "tx_bytes_per_sec",
    "rx_bytes_per_sec",
    "tx_packets_per_sec",
    "rx_packets_per_sec",
    "pause_duration_us_per_sec",
)

#: The 9 vendor diagnostic counters (§7.2: "Our vendors provide us with 9
#: diagnostic counters").  Names follow the two the paper cites —
#: *Receive WQE Cache Miss* and *PCIe Internal Back Pressure* — plus the
#: remaining mechanisms of Appendix A.
DIAGNOSTIC_COUNTERS = (
    "rx_wqe_cache_miss",
    "qpc_cache_miss",
    "mtt_cache_miss",
    "pcie_internal_backpressure",
    "pcie_ordering_stall",
    "rx_buffer_full_events",
    "internal_incast_events",
    "cross_socket_pressure",
    "tx_wqe_fetch_stall",
)

ALL_COUNTERS = PERFORMANCE_COUNTERS + DIAGNOSTIC_COUNTERS

#: Counters the search should *minimize* (performance) vs *maximize*
#: (diagnostic), per §5.1.
MINIMIZED_COUNTERS = frozenset(
    ("tx_bytes_per_sec", "rx_bytes_per_sec", "tx_packets_per_sec",
     "rx_packets_per_sec")
)


def is_diagnostic(counter: str) -> bool:
    return counter in DIAGNOSTIC_COUNTERS


def is_performance(counter: str) -> bool:
    return counter in PERFORMANCE_COUNTERS


#: Counter name -> column index in a row vector over ``ALL_COUNTERS``.
_COUNTER_COLUMN = {name: i for i, name in enumerate(ALL_COUNTERS)}


class CounterSample:
    """One per-second reading of every counter.

    Both evaluation paths construct samples from a row vector over
    ``ALL_COUNTERS``; the ``values`` mapping materializes lazily from
    it.  Single-counter reads (the monitor's stability check) index the
    row directly — the same float64 payload the dict would hold — so
    the per-second dicts are only built for consumers that want a full
    mapping (tests, user code inspecting a measurement).
    """

    __slots__ = ("second", "_values", "_row")

    def __init__(self, second: int, values=None, row=None) -> None:
        self.second = second
        self._values = values
        self._row = row

    @property
    def values(self) -> Mapping[str, float]:
        if self._values is None:
            self._values = dict(zip(ALL_COUNTERS, self._row.tolist()))
        return self._values

    def __getitem__(self, counter: str) -> float:
        row = self._row
        if row is not None:
            return row[_COUNTER_COLUMN[counter]]
        return self.values[counter]

    def get(self, counter: str, default: float = 0.0) -> float:
        row = self._row
        if row is not None:
            column = _COUNTER_COLUMN.get(counter)
            return row[column] if column is not None else default
        return self.values.get(counter, default)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CounterSample):
            return NotImplemented
        return self.second == other.second and self.values == other.values

    def __repr__(self) -> str:
        return f"CounterSample(second={self.second!r}, values={self.values!r})"


class VendorMonitor:
    """Samples noisy per-second counter readings from ideal counter values.

    The paper's monitors "provide counters every second" and Collie
    averages four fetches per iteration (§6).  Real readings jitter with
    bus traffic; we apply multiplicative Gaussian noise (default 2%) from
    an explicit RNG so experiments are reproducible.
    """

    def __init__(self, rng: np.random.Generator, noise: float = 0.02) -> None:
        if noise < 0:
            raise ValueError(f"noise must be non-negative, got {noise}")
        self._rng = rng
        self._noise = noise

    def sample(self, ideal: Mapping[str, float], second: int) -> CounterSample:
        """Return one noisy sample of the given ideal counter values."""
        return self._sample_rows(ideal, [second])[0]

    def sample_window(
        self, ideal: Mapping[str, float], seconds: int, start_second: int = 0
    ) -> list[CounterSample]:
        """Sample ``seconds`` consecutive per-second readings."""
        return self._sample_rows(
            ideal, range(start_second, start_second + seconds)
        )

    def _sample_rows(self, ideal, seconds_list) -> list[CounterSample]:
        """Sample one reading per requested second, noise batched.

        All the window's noise comes from a single row-major
        ``Generator.normal`` call: numpy fills a batched request from
        the same bit stream as sequential scalar draws (second by
        second, counter by counter), so the readings are bit-identical
        to the one-draw-per-counter formulation while skipping the
        per-call overhead that dominates search wall time.
        """
        seconds_list = list(seconds_list)
        base = np.array(
            [float(ideal.get(name, 0.0)) for name in ALL_COUNTERS]
        )
        rows = np.tile(base, (len(seconds_list), 1))
        if self._noise > 0:
            jitter = base > 0
            active = int(jitter.sum())
            if active:
                draws = self._rng.normal(
                    0.0, self._noise, size=(len(seconds_list), active)
                )
                rows[:, jitter] *= np.maximum(0.0, 1.0 + draws)
        return [
            CounterSample(second=second, row=row)
            for second, row in zip(seconds_list, rows)
        ]


def average_counters(samples: list[CounterSample]) -> dict[str, float]:
    """Mean of each counter across samples (the paper averages 4 fetches).

    One ``mean(axis=0)`` over the window matrix replaces a ``np.mean``
    call per counter; for the 4-sample windows in play the reduction
    order (sequential below numpy's pairwise blocking threshold) — and
    therefore every bit of the result — is unchanged.
    """
    if not samples:
        return {name: 0.0 for name in ALL_COUNTERS}
    rows = [getattr(sample, "_row", None) for sample in samples]
    if any(row is None for row in rows):
        matrix = np.array(
            [[s.get(name) for name in ALL_COUNTERS] for s in samples]
        )
    else:
        matrix = np.stack(rows)
    return dict(zip(ALL_COUNTERS, matrix.mean(axis=0).tolist()))
