"""Declarative anomaly rules: the quirk tables of each RNIC part.

Appendix A of the paper documents 18 anomalies, each a conjunction of
workload features ("Bidirectional RC READ with WQE batch ≥ 32, SG list
≥ 4, ≈160 connections…").  We encode each as an :class:`AnomalyRule`: a
:class:`Gate` over the extracted workload feature vector plus an effect —
a multiplicative capacity factor on the sender (``tx``) or receiver
(``rx``) side.  Receiver-side effects produce PFC pauses (the RX buffer
fills and the NIC pauses the link); sender-side effects produce silent
throughput loss, exactly the two symptom classes of Table 2.

The rules are *ground truth* for the benchmarks: the steady-state model
reports which rules fired (``tags``), letting the evaluation count
distinct anomalies found, while Collie itself never sees the tags — it
only sees counters, like the paper's tool.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Union

import numpy as np

FeatureValue = Union[float, str]


@dataclasses.dataclass(frozen=True)
class Gate:
    """A conjunction of bounds/membership tests over workload features.

    ``bounds`` maps a numeric feature to an inclusive ``(low, high)``
    interval (either side may be ``None``); ``isin`` maps a categorical
    feature to its accepted values.  A gate with no conditions matches
    everything, which no rule should want — the constructor rejects it.
    """

    bounds: Mapping[str, tuple[Optional[float], Optional[float]]] = (
        dataclasses.field(default_factory=dict)
    )
    isin: Mapping[str, tuple[str, ...]] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.bounds and not self.isin:
            raise ValueError("a gate must constrain at least one feature")
        for feature, (low, high) in self.bounds.items():
            if low is None and high is None:
                raise ValueError(f"gate bound on {feature!r} is vacuous")
            if low is not None and high is not None and low > high:
                raise ValueError(
                    f"gate bound on {feature!r} is empty: ({low}, {high})"
                )

    def matches(self, features: Mapping[str, FeatureValue]) -> bool:
        """Whether a feature vector satisfies every condition."""
        for feature, (low, high) in self.bounds.items():
            value = features.get(feature)
            if value is None:
                return False
            value = float(value)
            if low is not None and value < low:
                return False
            if high is not None and value > high:
                return False
        for feature, accepted in self.isin.items():
            if features.get(feature) not in accepted:
                return False
        return True


@dataclasses.dataclass(frozen=True)
class AnomalyRule:
    """One quirk: gate + capacity effect + ground-truth tag.

    ``side`` is ``"rx"`` (receiver can't keep up → PFC pause frames) or
    ``"tx"`` (sender injects slowly → reduced throughput, no pauses).
    ``factor`` multiplies that side's capacity when the gate matches.  If
    ``scale_feature`` is set, the factor instead degrades linearly with
    that feature's value: ``1 - scale_coeff × feature`` (clamped to
    ``[floor, 1]``) — used by the cache-miss anomalies whose severity
    grows with the miss rate.
    """

    tag: str  #: Table 2 anomaly id, e.g. ``"A4"``.
    title: str  #: human-readable one-liner.
    root_cause: str  #: Appendix A root-cause family, e.g. ``"rx_wqe_cache"``.
    gate: Gate
    side: str
    factor: float = 0.5
    scale_feature: Optional[str] = None
    scale_coeff: float = 0.0
    floor: float = 0.05
    #: Diagnostic counter this quirk inflates when it fires.
    counter: str = "pcie_internal_backpressure"

    def __post_init__(self) -> None:
        if self.side not in ("rx", "tx"):
            raise ValueError(f"rule side must be 'rx' or 'tx', got {self.side!r}")
        if not 0 < self.factor <= 1:
            raise ValueError(f"rule factor must be in (0, 1], got {self.factor}")

    @property
    def symptom(self) -> str:
        """Table 2 symptom column for this rule."""
        return "pause frame" if self.side == "rx" else "low throughput"

    def matches(self, features: Mapping[str, FeatureValue]) -> bool:
        return self.gate.matches(features)

    def effect_factor(self, features: Mapping[str, FeatureValue]) -> float:
        """Capacity multiplier when the gate matches."""
        if self.scale_feature is None:
            return self.factor
        value = float(features.get(self.scale_feature, 0.0))
        return max(self.floor, min(1.0, 1.0 - self.scale_coeff * value))


@dataclasses.dataclass(frozen=True)
class LatencyRule:
    """One latency quirk: gate + per-WR stall + ground-truth tag.

    Unlike :class:`AnomalyRule`, a latency rule leaves capacity (and so
    every throughput counter) untouched — the wire stays full — and
    instead lengthens the mean of the exponential per-WR stall tail the
    latency decomposition derives (:func:`repro.hardware.model.derive_latency`).
    That is the anomaly class the paper's two symptoms cannot see: the
    RNIC sustains its message rate while individual WRs crawl through
    serialized context refills or RNR backoff.

    ``stall_us`` is the stall-tail mean added when the gate matches; if
    ``scale_feature`` is set the stall scales linearly with that
    feature's value (used by the cache-thrash quirks whose severity
    grows with the miss rate).  Tags use an ``L`` prefix (``L1``…) so
    ground-truth accounting keeps them distinct from the Table 2 rows.
    """

    tag: str
    title: str
    root_cause: str
    gate: Gate
    stall_us: float
    scale_feature: Optional[str] = None
    #: Diagnostic counter whose gradient leads the search into the gate
    #: (latency rules never inflate counters themselves).
    counter: str = "qpc_cache_miss"

    def __post_init__(self) -> None:
        if self.stall_us <= 0:
            raise ValueError(
                f"latency rule stall must be positive, got {self.stall_us}"
            )

    @property
    def symptom(self) -> str:
        return "latency inflation"

    def matches(self, features: Mapping[str, FeatureValue]) -> bool:
        return self.gate.matches(features)

    def stall(self, features: Mapping[str, FeatureValue]) -> float:
        """Stall-tail mean (µs) contributed when the gate matches."""
        if self.scale_feature is None:
            return self.stall_us
        return self.stall_us * float(features.get(self.scale_feature, 0.0))


def fired_latency_rules(
    rules: tuple[LatencyRule, ...], features: Mapping[str, FeatureValue]
) -> list[tuple[LatencyRule, float]]:
    """Evaluate a latency-rule table; ``(rule, stall_us)`` in table order."""
    fired = []
    for rule in rules:
        if rule.matches(features):
            fired.append((rule, rule.stall(features)))
    return fired


@dataclasses.dataclass(frozen=True)
class FiredRule:
    """A rule that matched a workload, with its resolved factor."""

    rule: AnomalyRule
    factor: float

    @property
    def tag(self) -> str:
        return self.rule.tag


def fired_rules(
    rules: tuple[AnomalyRule, ...], features: Mapping[str, FeatureValue]
) -> list[FiredRule]:
    """Evaluate a rule table against a feature vector."""
    fired = []
    for rule in rules:
        if rule.matches(features):
            fired.append(FiredRule(rule=rule, factor=rule.effect_factor(features)))
    return fired


# -- batched (column-wise) gating ---------------------------------------------


def gate_mask(gate: Gate, columns: Mapping, n: int) -> np.ndarray:
    """Vector :meth:`Gate.matches` over a feature-column matrix."""
    mask = np.ones(n, dtype=bool)
    for feature, (low, high) in gate.bounds.items():
        col = columns.get(feature)
        if col is None:
            return np.zeros(n, dtype=bool)
        if isinstance(col, list):
            col = np.asarray(col, dtype=np.float64)
        if low is not None:
            mask &= col >= low
        if high is not None:
            mask &= col <= high
    for feature, accepted in gate.isin.items():
        col = columns.get(feature)
        if col is None:
            return np.zeros(n, dtype=bool)
        values = col if isinstance(col, list) else col.tolist()
        mask &= np.fromiter(
            (value in accepted for value in values), dtype=bool, count=n
        )
    return mask


def _factor_column(rule: AnomalyRule, columns: Mapping, n: int) -> np.ndarray:
    """Vector :meth:`AnomalyRule.effect_factor`."""
    if rule.scale_feature is None:
        return np.full(n, rule.factor)
    col = columns.get(rule.scale_feature)
    if col is None:
        col = np.zeros(n)
    elif isinstance(col, list):
        col = np.asarray(col, dtype=np.float64)
    return np.maximum(
        rule.floor, np.minimum(1.0, 1.0 - rule.scale_coeff * col)
    )


def batch_fired_rules(
    rules: tuple[AnomalyRule, ...], columns: Mapping, n: int
) -> tuple[list, np.ndarray, np.ndarray]:
    """Evaluate a rule table column-wise over ``n`` points.

    Returns ``(rows, tx_factor, rx_factor)``: ``rows`` holds one
    ``(rule, mask, factors)`` triple per table entry in table order
    (``factors`` is ``None`` when the rule fired nowhere) and the factor
    arrays are per-point products of fired factors by side — multiplied
    in table order, so they match ``math.prod`` over the scalar fired
    list bit-for-bit.
    """
    rows = []
    tx_factor = np.ones(n)
    rx_factor = np.ones(n)
    for rule in rules:
        mask = gate_mask(rule.gate, columns, n)
        if not mask.any():
            rows.append((rule, mask, None))
            continue
        factors = _factor_column(rule, columns, n)
        rows.append((rule, mask, factors))
        target = tx_factor if rule.side == "tx" else rx_factor
        np.multiply(target, np.where(mask, factors, 1.0), out=target)
    return rows, tx_factor, rx_factor


def materialize_fired(rows: list, n: int) -> list[list[FiredRule]]:
    """Per-point fired-rule lists (table order) from batch gate rows."""
    fired: list[list[FiredRule]] = [[] for _ in range(n)]
    for rule, mask, factors in rows:
        if factors is None:
            continue
        values = factors.tolist()
        for index in np.nonzero(mask)[0].tolist():
            fired[index].append(FiredRule(rule=rule, factor=values[index]))
    return fired
