"""The two-port lossless switch connecting the testbed hosts.

The paper deliberately evaluates on the simplest possible network — two
servers, one switch that sustains line rate, no drops (§4) — so the only
PFC sources are the hosts.  This model exists to keep that assumption
explicit and testable: it forwards at line rate, honours pause frames
from either port, and never drops.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class SwitchPort:
    """One switch port with its pause state and byte counters."""

    name: str
    paused: bool = False
    forwarded_bytes: int = 0
    received_pause_frames: int = 0


class LosslessSwitch:
    """Two-port, line-rate, lossless switch.

    ``forward`` moves bytes from one port to the other unless the egress
    port has been paused by the downstream host; there is no buffer model
    because at line rate with no fan-in the switch never queues (the
    paper's assumption that the network itself is congestion-free).
    """

    def __init__(self, line_rate_gbps: float) -> None:
        if line_rate_gbps <= 0:
            raise ValueError("switch line rate must be positive")
        self.line_rate_gbps = line_rate_gbps
        self.ports = {"p0": SwitchPort("p0"), "p1": SwitchPort("p1")}

    def _port(self, name: str) -> SwitchPort:
        if name not in self.ports:
            raise KeyError(f"switch has no port {name!r}")
        return self.ports[name]

    def receive_pause(self, from_port: str, pause: bool) -> None:
        """A host asserts or releases PFC pause toward a port."""
        port = self._port(from_port)
        if pause and not port.paused:
            port.received_pause_frames += 1
        port.paused = pause

    def forward(self, ingress: str, egress: str, nbytes: int, seconds: float) -> int:
        """Forward up to line rate × ``seconds`` bytes; returns forwarded.

        A paused egress forwards nothing (the pause applies to the switch
        queue feeding the host); excess beyond line rate is clipped, never
        dropped — callers model the resulting backlog on their side.
        """
        if nbytes < 0 or seconds < 0:
            raise ValueError("bytes and seconds must be non-negative")
        egress_port = self._port(egress)
        self._port(ingress)
        if egress_port.paused:
            return 0
        capacity = int(self.line_rate_gbps * 1e9 / 8 * seconds)
        forwarded = min(nbytes, capacity)
        egress_port.forwarded_bytes += forwarded
        return forwarded
