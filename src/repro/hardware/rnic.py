"""RNIC models: engine capabilities, on-chip caches and per-part quirks.

Figure 1 of the paper decomposes an RNIC into TX/RX engines, an MMU with a
translation cache, an SRAM cache for per-connection metadata, and packet
buffers.  :class:`RNICProfile` captures the capacity of each of those
components for one part number, plus the *quirk rules* — the declarative
trigger conditions of the Appendix A anomalies — that the steady-state
model applies on top of the generic resource accounting.

The concrete profiles (ConnectX-5/6, P2100G) live in
:mod:`repro.hardware.parts`.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.rules import AnomalyRule, LatencyRule

#: Traversal latency of one packet-engine pipeline stage, nanoseconds.
#: Multiplied by ``pipeline_stages`` it is the fixed on-chip share of a
#: WR's completion latency (the `pipeline` component of the per-WR
#: latency decomposition, docs/MODEL.md).
PIPELINE_STAGE_NS = 250.0


@dataclasses.dataclass(frozen=True)
class RxWqeCacheSpec:
    """The receive-WQE prefetch cache (Appendix A, root cause #1).

    The RX engine prefetches receive WQEs into a small SRAM so it can place
    incoming SENDs without a PCIe round trip.  Two failure paths exist:

    * **capacity**: the total posted receive WQEs across QPs
      (``num_qps × wq_depth``) exceed ``total_entries``;
    * **burst**: a doorbell batch of back-to-back messages overruns the
      per-QP ``prefetch_window`` when the work queue is deeper than the
      ``per_qp_entries`` the cache will pin for one QP.
    """

    total_entries: int
    per_qp_entries: int
    prefetch_window: int

    def capacity_miss(self, outstanding: int) -> float:
        """Steady-state miss fraction of the capacity path."""
        if outstanding <= 0:
            return 0.0
        return max(0.0, 1.0 - self.total_entries / outstanding)

    def burst_miss(self, wq_depth: int, batch: int) -> float:
        """Miss fraction of the burst path (0 while the WQ fits the cache)."""
        if wq_depth <= self.per_qp_entries or batch <= 0:
            return 0.0
        return max(0.0, 1.0 - self.prefetch_window / batch)


@dataclasses.dataclass(frozen=True)
class RNICProfile:
    """Capabilities and microarchitectural parameters of one RNIC model.

    ``line_rate_gbps`` and ``max_pps`` are the two specification ceilings
    Collie's anomaly definition compares against (§3): a healthy workload
    is bottlenecked by one of them.  The cache sizes and the ``rules``
    table drive everything anomalous.
    """

    name: str
    line_rate_gbps: float
    max_pps: float
    #: PUs × pipeline stages bounds the outstanding-request interaction
    #: window; the search space uses the product as its message-pattern
    #: vector length (paper §4, Dimension 4).
    processing_units: int = 2
    pipeline_stages: int = 2
    #: RNIC splits long requests into bursts of this size (HoL avoidance).
    burst_bytes: int = 16 * 1024
    rx_buffer_kb: int = 2048
    tx_buffer_kb: int = 2048
    #: Connection-context (QPC) cache entries — root cause #2, anomaly #8.
    qpc_cache_entries: int = 1 << 16
    #: Memory-translation (MTT) cache entries — root cause #2, anomaly #7.
    mtt_cache_entries: int = 1 << 18
    rx_wqe_cache: RxWqeCacheSpec = RxWqeCacheSpec(
        total_entries=1 << 15, per_qp_entries=1 << 10, prefetch_window=64
    )
    #: RC ACK coalescing: one ACK per this many data packets.
    ack_coalesce: int = 4
    #: Whether the part rate-limits loopback traffic internally; the CX-6
    #: generation does not, which is root cause #6 (anomaly #13).
    loopback_rate_limited: bool = True
    #: Quirk rules: the declarative Appendix A trigger conditions.
    rules: tuple[AnomalyRule, ...] = ()
    #: Latency quirks: capacity-neutral stalls only the per-WR latency
    #: decomposition sees (tags ``L1``…, distinct from Table 2 rows).
    latency_rules: tuple[LatencyRule, ...] = ()

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0 or self.max_pps <= 0:
            raise ValueError("line_rate_gbps and max_pps must be positive")

    @property
    def line_rate_bytes_per_sec(self) -> float:
        return self.line_rate_gbps * 1e9 / 8

    @property
    def pattern_length(self) -> int:
        """Search-space message-vector length: PUs × pipeline stages."""
        return self.processing_units * self.pipeline_stages

    @property
    def pipeline_latency_us(self) -> float:
        """Fixed packet-engine traversal latency per WR, microseconds."""
        return self.pipeline_stages * PIPELINE_STAGE_NS / 1e3

    def wire_payload_cap_bytes_per_sec(self, mtu: int) -> float:
        """Payload bytes/s the wire sustains at a given MTU.

        RoCEv2 headers eat a per-packet share of the line rate; the
        anomaly monitor uses this MTU-aware bound as the bits/s
        expectation (a 256-byte MTU cannot reach nominal line rate and
        that is not an anomaly).
        """
        from repro.verbs.constants import ROCE_HEADER_BYTES

        return self.line_rate_bytes_per_sec * mtu / (mtu + ROCE_HEADER_BYTES)
