"""Co-existing workloads on one subsystem: the isolation domain.

§7.4: "it is possible that a connection with a specific message pattern
affects another connection by triggering cache misses, even when the
bandwidth and other resources are well isolated."  This module evaluates
a *victim* workload sharing an RDMA subsystem with an *aggressor*:

* visible resources are split fairly — each side's wire, packet and PCIe
  budgets are scaled by its share (perfect bandwidth isolation);
* the **opaque** resources are not isolatable: QPC/MTT/receive-WQE cache
  working sets combine, so the victim's miss-dependent behaviour is
  computed against the *joint* occupancy.

The co-run evaluation flows through the real datapath: the victim's
per-direction steady-state solve runs against the joint-occupancy
feature vector (so quirk rules can fire on the combined working sets),
the contention split is side-aware — sender-side QPC/MTT misses slow
injection silently while receive-WQE misses degrade the service rate
and surface as PFC pause, exactly the two Table-2 symptom classes — and
the ideal counters and the per-WR latency profile are synthesized from
the contended directions, so pause ratios, diagnostic counters and p99
inflation all cohere with the degraded rates.

:class:`CoRunModel` packages this as a drop-in
:class:`~repro.hardware.model.SteadyStateModel`: the victim is pinned,
``evaluate(attacker)`` measures the *victim* under that neighbor, and
the searched point (the attacker) rides in ``Measurement.workload`` —
which is what lets the whole SA/MFS/population stack search, minimize
and reproduce adversarial neighbors without modification.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import time
from typing import Optional

import numpy as np

from repro.hardware.caches import steady_state_miss_rate
from repro.hardware.counters import CounterSample
from repro.hardware.features import extract_features
from repro.hardware.model import (
    DirectionRates,
    Measurement,
    SteadyStateModel,
    derive_latency,
    latency_for_solve,
)
from repro.hardware.pfc import steady_state_pause_ratio
from repro.hardware.rules import fired_rules
from repro.hardware.subsystems import Subsystem
from repro.hardware.workload import WorkloadDescriptor

#: Defined sentinel for :attr:`CoexistenceResult.interference_factor`
#: when the victim's fair share is zero (a victim that moves no bytes
#: alone cannot meaningfully be degraded): NaN propagates through
#: arithmetic and fails every ordered comparison, so no threshold test
#: can silently classify an undefined ratio.
UNDEFINED_INTERFERENCE = float("nan")

#: Floor on the miss-contention slowdown: even a maximally adversarial
#: neighbor cannot push a tenant below a tenth of its solo rate through
#: cache pollution alone (the pipeline still makes forward progress
#: between refills).
MIN_CONTENTION_FACTOR = 0.1


@dataclasses.dataclass(frozen=True)
class CoexistenceResult:
    """Victim outcomes, alone vs sharing the subsystem."""

    victim_alone: Measurement
    victim_shared: Measurement
    aggressor: WorkloadDescriptor
    bandwidth_share: float
    #: The aggressor's own co-run measurement (its side of the split,
    #: with the victim as *its* neighbor), carrying the aggressor's
    #: latency profile.  ``None`` when the victim holds the whole
    #: bandwidth (the aggressor has no share to measure against).
    aggressor_shared: Optional[Measurement] = None

    @property
    def alone_gbps(self) -> float:
        return self.victim_alone.directions[0].wire_gbps

    @property
    def shared_gbps(self) -> float:
        return self.victim_shared.directions[0].wire_gbps

    @property
    def fair_share_gbps(self) -> float:
        """What perfect isolation would guarantee the victim."""
        return self.alone_gbps * self.bandwidth_share

    @property
    def interference_factor(self) -> float:
        """Shared throughput relative to the fair bandwidth share.

        1.0 means bandwidth isolation fully protected the victim; below
        1.0 the aggressor stole performance through opaque resources.
        :data:`UNDEFINED_INTERFERENCE` (NaN) when the fair share is
        zero — the ratio has no defined value for a victim that moves
        no bytes even alone.
        """
        if self.fair_share_gbps <= 0:
            return UNDEFINED_INTERFERENCE
        return min(1.0, self.shared_gbps / self.fair_share_gbps)


def _miss_exposure(workload: WorkloadDescriptor) -> float:
    """How much of a cache miss's latency reaches end-to-end throughput.

    Mirrors the Appendix A root-cause-#2 discussion: large requests hide
    misses behind the pipeline; small unbatched requests expose them.
    """
    size_term = 1.0 if workload.avg_msg_bytes <= 1024 else (
        1024.0 / workload.avg_msg_bytes
    )
    batch_term = 2.0 / (1.0 + workload.wqe_batch)
    return min(1.0, size_term * (0.3 + 0.7 * batch_term))


def _scaled_subsystem(subsystem: Subsystem, share: float) -> Subsystem:
    """A subsystem whose bandwidth-like capabilities are one share."""
    rnic = dataclasses.replace(
        subsystem.rnic,
        line_rate_gbps=subsystem.rnic.line_rate_gbps * share,
        max_pps=subsystem.rnic.max_pps * share,
    )
    pcie = dataclasses.replace(subsystem.pcie)  # full-duplex bus: shared
    return dataclasses.replace(subsystem, rnic=rnic, pcie=pcie)


def corun_subsystem(
    subsystem: Subsystem, victim: WorkloadDescriptor, victim_share: float
) -> Subsystem:
    """The victim's bandwidth slice, with a co-run-specific identity.

    The name carries a digest of the pinned victim and the share so the
    :class:`~repro.core.evalcache.EvalCache` fingerprint can never
    collide with a solo evaluation of the same hardware — at
    ``victim_share=1.0`` the scaled parameters are numerically identical
    to the base subsystem while the co-run solve is not.
    """
    from repro.core.evalcache import canonical_point

    scaled = _scaled_subsystem(subsystem, victim_share)
    stamp = hashlib.sha1(
        f"{canonical_point(victim)}|{victim_share!r}".encode()
    ).hexdigest()[:8]
    return dataclasses.replace(
        scaled, name=f"{subsystem.name}+victim:{stamp}"
    )


def joint_occupancy_features(
    primary: WorkloadDescriptor,
    neighbor: WorkloadDescriptor,
    subsystem: Subsystem,
    own: Optional[dict] = None,
) -> dict:
    """Feature vector of ``primary`` under joint cache occupancy.

    Starts from the primary's own solo features on ``subsystem`` and
    replaces the opaque-resource occupancy terms — ``total_qps`` /
    ``qpc_miss``, ``total_mrs`` / ``mtt_miss`` and (for receive-WQE
    consumers) ``rxq_capacity_miss`` — with the combined working sets,
    using the same bidirectional-doubling convention as
    :func:`~repro.hardware.features.extract_features`.  Because quirk
    gates and :func:`~repro.hardware.model.derive_latency` read these
    same keys, joint occupancy propagates into rule firing and the
    victim's latency profile without any special-casing downstream.
    """
    rnic = subsystem.rnic
    features = dict(
        extract_features(primary, subsystem) if own is None else own
    )
    primary_qps = primary.num_qps * (2 if primary.is_bidirectional else 1)
    neighbor_qps = neighbor.num_qps * (2 if neighbor.is_bidirectional else 1)
    joint_qps = primary_qps + neighbor_qps
    joint_mrs = primary.total_mrs + neighbor.total_mrs
    features["total_qps"] = float(joint_qps)
    features["qpc_miss"] = steady_state_miss_rate(
        joint_qps, rnic.qpc_cache_entries
    )
    features["total_mrs"] = float(joint_mrs)
    features["mtt_miss"] = steady_state_miss_rate(
        joint_mrs, rnic.mtt_cache_entries
    )
    if primary.uses_recv_wqes:
        joint_recv = primary.total_outstanding_recv_wqes + (
            neighbor.total_outstanding_recv_wqes
            if neighbor.uses_recv_wqes
            else 0
        )
        features["rxq_capacity_miss"] = rnic.rx_wqe_cache.capacity_miss(
            joint_recv
        )
    return features


def contention_factors(
    primary: WorkloadDescriptor, own: dict, joint: dict
) -> tuple[float, float]:
    """Side-aware slowdown factors from the neighbor's extra misses.

    Sender-side context misses (QPC/MTT refills while issuing WQEs)
    slow *injection* — silent throughput loss; receive-WQE cache misses
    slow the *service* rate — the receiver falls behind the offered
    load and emits PFC pause.  Splitting the exposure this way is what
    lets a co-run reproduce both Table-2 symptom classes for the right
    reasons, and it keeps a solo-healthy victim pause-free under pure
    sender-side contention.
    """
    exposure = _miss_exposure(primary)
    extra_tx = max(0.0, joint["qpc_miss"] - own["qpc_miss"]) + max(
        0.0, joint["mtt_miss"] - own["mtt_miss"]
    )
    tx_factor = max(MIN_CONTENTION_FACTOR, 1.0 - extra_tx * exposure)
    rx_factor = 1.0
    if primary.uses_recv_wqes:
        extra_rx = max(
            0.0, joint["rxq_capacity_miss"] - own["rxq_capacity_miss"]
        )
        rx_factor = max(MIN_CONTENTION_FACTOR, 1.0 - extra_rx * exposure)
    return tx_factor, rx_factor


def contend_direction(
    d: DirectionRates, tx_factor: float, rx_factor: float
) -> DirectionRates:
    """One direction's rates under side-aware contention.

    Injection scales by the sender-side factor, achieved by both; the
    pause ratio is re-derived from the contended rates, so a degraded
    service rate under undiminished offered load prices as pause — and
    an uncontended direction is returned *unchanged* (same object), the
    bit-identity anchor for the no-attacker property.
    """
    ratio = tx_factor * rx_factor
    if ratio >= 1.0:
        return d
    injection = d.injection_msgs_per_sec * tx_factor
    achieved = d.achieved_msgs_per_sec * ratio
    return dataclasses.replace(
        d,
        achieved_msgs_per_sec=achieved,
        injection_msgs_per_sec=injection,
        payload_bytes_per_sec=d.payload_bytes_per_sec * ratio,
        wire_bytes_per_sec=d.wire_bytes_per_sec * ratio,
        packets_per_sec=d.packets_per_sec * ratio,
        pause_ratio=steady_state_pause_ratio(injection, achieved),
    )


def corun_solve(
    model: SteadyStateModel,
    primary: WorkloadDescriptor,
    neighbor: WorkloadDescriptor,
):
    """Deterministic co-run solve of ``primary`` next to ``neighbor``.

    The full datapath of :meth:`SteadyStateModel._solve`, with the
    joint-occupancy feature vector in place of the solo one: rule
    gating, the per-direction steady-state solve, the side-aware
    contention split, and ideal-counter synthesis from the *contended*
    directions (so the sampled pause/throughput counters — what the
    anomaly monitor reads — cohere with the degradation).  Pure
    function of its inputs; consumes no RNG.
    """
    from repro.core.evalcache import CachedSolve

    subsystem = model.subsystem
    own = extract_features(primary, subsystem)
    features = joint_occupancy_features(primary, neighbor, subsystem, own=own)
    fired = tuple(fired_rules(subsystem.rnic.rules, features))
    directions = model._solve_directions(primary, features, fired)
    tx_factor, rx_factor = contention_factors(primary, own, features)
    directions = tuple(
        contend_direction(d, tx_factor, rx_factor) for d in directions
    )
    ideal = model._ideal_counters(primary, features, fired, directions)
    return CachedSolve(
        directions=directions,
        fired=fired,
        features=features,
        ideal_counters=ideal,
    )


@dataclasses.dataclass(frozen=True)
class VictimFloor:
    """Deterministic solo baseline the isolation verdicts compare against.

    Solved noise-free on the *full* subsystem (no RNG is consumed), so
    every chain, worker and reproduction run of a campaign prices the
    same victim against the same floor.
    """

    victim: WorkloadDescriptor
    victim_share: float
    #: The victim's solo forward-direction wire rate on the full part.
    alone_gbps: float
    #: The victim's solo modeled p99 (estimator percentiles, same
    #: machinery as journaled latency summaries).
    alone_p99_us: float

    @property
    def fair_share_gbps(self) -> float:
        """What perfect isolation would guarantee the victim."""
        return self.alone_gbps * self.victim_share


def victim_floor(
    subsystem: Subsystem,
    victim: WorkloadDescriptor,
    victim_share: float,
) -> VictimFloor:
    """Solve the victim's alone-floor on the full subsystem."""
    model = SteadyStateModel(subsystem, noise=0.0)
    solve = model._solve(victim, phase="floor")
    profile = latency_for_solve(subsystem, solve)
    return VictimFloor(
        victim=victim,
        victim_share=victim_share,
        alone_gbps=solve.directions[0].wire_gbps,
        alone_p99_us=profile.summary()["p99_us"],
    )


class CoRunModel(SteadyStateModel):
    """A steady-state model with a pinned victim tenant.

    ``evaluate(attacker)`` runs the co-run datapath and returns the
    *victim's* measurement under that neighbor; the attacker stays in
    ``Measurement.workload`` because it is the searched point — the SA
    mutates it, MFS minimizes it, the journal records it.  The model's
    ``subsystem`` is the victim's bandwidth slice under a derived
    co-run identity (see :func:`corun_subsystem`), which keys the eval
    cache and names the measurements.
    """

    def __init__(
        self,
        subsystem: Subsystem,
        victim: WorkloadDescriptor,
        victim_share: float = 0.5,
        noise: float = 0.02,
        cache=None,
    ) -> None:
        if not 0 < victim_share <= 1:
            raise ValueError("victim_share must lie in (0, 1]")
        super().__init__(
            corun_subsystem(subsystem, victim, victim_share),
            noise=noise,
            cache=cache,
        )
        #: The unscaled hardware both tenants share.
        self.base_subsystem = subsystem
        self.victim = victim
        self.victim_share = victim_share
        #: Solo baseline for victim-degradation verdicts; solving it
        #: also validates the victim against the topology up front.
        self.floor = victim_floor(subsystem, victim, victim_share)

    def _solve(self, workload: WorkloadDescriptor, phase: str):
        """Co-run solve of the pinned victim next to ``workload``."""
        cache = self.cache
        if cache is not None:
            cached = cache.lookup(self.subsystem, workload, phase=phase)
            if cached is not None:
                return cached
        started = time.perf_counter()
        self._validate(workload)
        solve = corun_solve(self, self.victim, workload)
        if cache is not None:
            cache.store(self.subsystem, workload, solve)
            cache.charge("solve", time.perf_counter() - started)
        return solve

    def solve_points(self, workloads: list[WorkloadDescriptor]) -> list:
        """Batch seam: co-run solves for a set of attacker points.

        Each co-run solve is a scalar pass (the victim side is fixed,
        so there is no cross-point arithmetic to vectorize); the batch
        evaluator's dedupe/cache orchestration still applies unchanged.
        """
        return [corun_solve(self, self.victim, w) for w in workloads]


class CoexistenceModel:
    """Evaluates a victim workload next to an aggressor."""

    def __init__(self, subsystem: Subsystem, noise: float = 0.0) -> None:
        self.subsystem = subsystem
        self.model = SteadyStateModel(subsystem, noise=noise)
        self.noise = noise

    def evaluate(
        self,
        victim: WorkloadDescriptor,
        aggressor: WorkloadDescriptor,
        victim_share: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ) -> CoexistenceResult:
        """Victim outcome alone and under co-existence.

        ``victim_share`` is the bandwidth fraction an isolation
        mechanism guarantees the victim; the aggressor is assumed to
        consume the rest.  Both sides of the split run through the full
        co-run datapath (:class:`CoRunModel`): the victim against the
        aggressor on its slice, and — when the aggressor holds any
        share — the aggressor against the victim on the complement, so
        the result carries a coherent latency/PFC profile for each
        tenant.
        """
        if not 0 < victim_share <= 1:
            raise ValueError("victim_share must lie in (0, 1]")
        rng = rng if rng is not None else np.random.default_rng(0)
        alone = self.model.evaluate(victim, rng)
        victim_side = CoRunModel(
            self.subsystem, victim, victim_share, noise=self.noise
        )
        shared = dataclasses.replace(
            victim_side.evaluate(aggressor, rng), workload=victim
        )
        aggressor_shared = None
        if victim_share < 1.0:
            aggressor_side = CoRunModel(
                self.subsystem, aggressor, 1.0 - victim_share, noise=self.noise
            )
            aggressor_shared = dataclasses.replace(
                aggressor_side.evaluate(victim, rng), workload=aggressor
            )
        return CoexistenceResult(
            victim_alone=alone,
            victim_shared=shared,
            aggressor=aggressor,
            bandwidth_share=victim_share,
            aggressor_shared=aggressor_shared,
        )


def _degrade(
    measurement: Measurement,
    factor: float,
    subsystem: Optional[Subsystem] = None,
) -> Measurement:
    """Scale a measurement's achieved rates by an interference factor.

    Sender-side semantics: injection slows with achieved, so the pause
    ratio is re-derived (and numerically preserved for a direction
    whose bottleneck does not move).  The throughput and pause counters
    — and each per-second sample's — are rebuilt from the degraded
    directions rather than left at their undegraded values; diagnostic
    counters keep the solo solve's values (re-synthesizing those needs
    the full solve context — use :func:`corun_solve` for a coherent
    co-run).  With ``subsystem`` given, the latency profile is
    re-derived from the degraded directions too; otherwise the original
    profile is carried through unchanged.
    """
    directions = tuple(
        contend_direction(d, factor, 1.0) for d in measurement.directions
    )
    pause_ratio = max(d.pause_ratio for d in directions)
    fwd = directions[0]
    rev = directions[1] if len(directions) > 1 else None
    degraded_rates = {
        "tx_bytes_per_sec": fwd.wire_bytes_per_sec,
        "rx_bytes_per_sec": rev.wire_bytes_per_sec if rev else 0.0,
        "tx_packets_per_sec": fwd.packets_per_sec,
        "rx_packets_per_sec": rev.packets_per_sec if rev else 0.0,
        "pause_duration_us_per_sec": pause_ratio * 1e6,
    }

    def rescale(values: dict) -> dict:
        rebuilt = dict(values)
        for key, ideal in degraded_rates.items():
            before = measurement.counters.get(key, 0.0)
            observed = rebuilt.get(key, 0.0)
            if before > 0:
                rebuilt[key] = observed * (ideal / before)
            else:
                rebuilt[key] = ideal
        return rebuilt

    samples = [
        CounterSample(s.second, values=rescale(dict(s.values)))
        for s in measurement.samples
    ]
    latency = measurement.latency
    if subsystem is not None:
        latency = derive_latency(subsystem, measurement.features, directions)
    return dataclasses.replace(
        measurement,
        directions=directions,
        samples=samples,
        counters=rescale(measurement.counters),
        latency=latency,
    )
