"""Co-existing workloads on one subsystem: the isolation question.

§7.4: "it is possible that a connection with a specific message pattern
affects another connection by triggering cache misses, even when the
bandwidth and other resources are well isolated."  This module evaluates
a *victim* workload sharing an RDMA subsystem with an *aggressor*:

* visible resources are split fairly — each side's wire, packet and PCIe
  budgets are scaled by its share (perfect bandwidth isolation);
* the **opaque** resources are not isolatable: QPC/MTT/receive-WQE cache
  working sets combine, so the victim's miss-dependent behaviour is
  computed against the *joint* occupancy.

The result quantifies exactly the paper's point: a cache-thrashing
aggressor collapses a victim that keeps well inside its bandwidth share.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.hardware.caches import steady_state_miss_rate
from repro.hardware.model import Measurement, SteadyStateModel
from repro.hardware.subsystems import Subsystem
from repro.hardware.workload import WorkloadDescriptor


@dataclasses.dataclass(frozen=True)
class CoexistenceResult:
    """Victim outcomes, alone vs sharing the subsystem."""

    victim_alone: Measurement
    victim_shared: Measurement
    aggressor: WorkloadDescriptor
    bandwidth_share: float

    @property
    def alone_gbps(self) -> float:
        return self.victim_alone.directions[0].wire_gbps

    @property
    def shared_gbps(self) -> float:
        return self.victim_shared.directions[0].wire_gbps

    @property
    def fair_share_gbps(self) -> float:
        """What perfect isolation would guarantee the victim."""
        return self.alone_gbps * self.bandwidth_share

    @property
    def interference_factor(self) -> float:
        """Shared throughput relative to the fair bandwidth share.

        1.0 means bandwidth isolation fully protected the victim; below
        1.0 the aggressor stole performance through opaque resources.
        """
        if self.fair_share_gbps <= 0:
            return 1.0
        return min(1.0, self.shared_gbps / self.fair_share_gbps)


class CoexistenceModel:
    """Evaluates a victim workload next to an aggressor."""

    def __init__(self, subsystem: Subsystem, noise: float = 0.0) -> None:
        self.subsystem = subsystem
        self.model = SteadyStateModel(subsystem, noise=noise)

    def _combined_cache_features(
        self,
        victim: WorkloadDescriptor,
        aggressor: WorkloadDescriptor,
    ) -> dict:
        """Cache-miss features of the victim under joint occupancy.

        The on-NIC caches see both tenants' working sets; the victim's
        effective miss rates are those of the combined occupancy, which
        is the §7.4 "opaque resource" leak.
        """
        rnic = self.subsystem.rnic
        joint_qps = victim.num_qps + aggressor.num_qps
        joint_mrs = victim.total_mrs + aggressor.total_mrs
        joint_recv = (
            (victim.total_outstanding_recv_wqes if victim.uses_recv_wqes else 0)
            + (
                aggressor.total_outstanding_recv_wqes
                if aggressor.uses_recv_wqes
                else 0
            )
        )
        return {
            "qpc_miss": steady_state_miss_rate(
                joint_qps, rnic.qpc_cache_entries
            ),
            "mtt_miss": steady_state_miss_rate(
                joint_mrs, rnic.mtt_cache_entries
            ),
            "rxq_capacity_miss": rnic.rx_wqe_cache.capacity_miss(joint_recv),
        }

    def evaluate(
        self,
        victim: WorkloadDescriptor,
        aggressor: WorkloadDescriptor,
        victim_share: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ) -> CoexistenceResult:
        """Victim outcome alone and under co-existence.

        ``victim_share`` is the bandwidth fraction an isolation mechanism
        guarantees the victim; the aggressor is assumed to consume the
        rest.  The shared evaluation embeds the victim's workload as-is,
        but with (a) every bandwidth-like budget scaled by the share and
        (b) the cache features replaced by the joint-occupancy values.
        """
        if not 0 < victim_share <= 1:
            raise ValueError("victim_share must lie in (0, 1]")
        rng = rng if rng is not None else np.random.default_rng(0)
        alone = self.model.evaluate(victim, rng)
        shared = self._evaluate_shared(victim, aggressor, victim_share, rng)
        return CoexistenceResult(
            victim_alone=alone,
            victim_shared=shared,
            aggressor=aggressor,
            bandwidth_share=victim_share,
        )

    def _evaluate_shared(self, victim, aggressor, share, rng) -> Measurement:
        # Bandwidth isolation: scale the victim's visible budgets.  The
        # cleanest faithful implementation re-runs the solver against a
        # scaled subsystem profile...
        scaled = _scaled_subsystem(self.subsystem, share)
        model = SteadyStateModel(scaled, noise=self.model.noise)
        measurement = model.evaluate(victim, rng)
        # ...then degrades the victim's achieved rates by the *joint*
        # cache miss exposure the aggressor adds (sender-side slowdown:
        # the same exposure regime as anomalies #7/#8 — small messages,
        # shallow pipelines — is where the leak bites hardest).
        joint = self._combined_cache_features(victim, aggressor)
        own = measurement.features
        extra_miss = max(0.0, joint["qpc_miss"] - own["qpc_miss"]) + max(
            0.0, joint["mtt_miss"] - own["mtt_miss"]
        )
        if victim.uses_recv_wqes:
            extra_miss += max(
                0.0, joint["rxq_capacity_miss"] - own["rxq_capacity_miss"]
            )
        exposure = _miss_exposure(victim)
        factor = max(0.1, 1.0 - extra_miss * exposure)
        return _degrade(measurement, factor)


def _miss_exposure(workload: WorkloadDescriptor) -> float:
    """How much of a cache miss's latency reaches end-to-end throughput.

    Mirrors the Appendix A root-cause-#2 discussion: large requests hide
    misses behind the pipeline; small unbatched requests expose them.
    """
    size_term = 1.0 if workload.avg_msg_bytes <= 1024 else (
        1024.0 / workload.avg_msg_bytes
    )
    batch_term = 2.0 / (1.0 + workload.wqe_batch)
    return min(1.0, size_term * (0.3 + 0.7 * batch_term))


def _scaled_subsystem(subsystem: Subsystem, share: float) -> Subsystem:
    """A subsystem whose bandwidth-like capabilities are one share."""
    rnic = dataclasses.replace(
        subsystem.rnic,
        line_rate_gbps=subsystem.rnic.line_rate_gbps * share,
        max_pps=subsystem.rnic.max_pps * share,
    )
    pcie = dataclasses.replace(subsystem.pcie)  # full-duplex bus: shared
    return dataclasses.replace(subsystem, rnic=rnic, pcie=pcie)


def _degrade(measurement: Measurement, factor: float) -> Measurement:
    """Scale a measurement's achieved rates by an interference factor."""
    directions = tuple(
        dataclasses.replace(
            d,
            achieved_msgs_per_sec=d.achieved_msgs_per_sec * factor,
            payload_bytes_per_sec=d.payload_bytes_per_sec * factor,
            wire_bytes_per_sec=d.wire_bytes_per_sec * factor,
            packets_per_sec=d.packets_per_sec * factor,
        )
        for d in measurement.directions
    )
    return dataclasses.replace(measurement, directions=directions)
