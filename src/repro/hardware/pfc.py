"""Priority-based Flow Control (802.1Qbb) accounting.

RoCEv2 relies on PFC for losslessness: when an ingress buffer passes its
XOFF threshold the receiver pauses the upstream sender.  Collie's first
anomaly condition is *any* sustained pause traffic on an uncongested
two-node network (pause duration ratio above 0.1%, paper §5.2).

Two granularities are provided: :func:`steady_state_pause_ratio` is the
closed-form duty cycle the solver uses, and :class:`PFCIngressQueue` is a
token-level queue used in tests to validate that the closed form matches
an event-by-event simulation.
"""

from __future__ import annotations

import dataclasses

#: The paper's anomaly threshold: transmission paused more than 0.1% of
#: wall time on an uncongested network.
PAUSE_RATIO_THRESHOLD = 0.001

#: Bytes of one PFC pause frame on the wire.
PAUSE_FRAME_BYTES = 64

#: Pause quanta are expressed in units of 512 bit times (802.1Qbb).
QUANTA_BITS = 512


def steady_state_pause_ratio(arrival_rate: float, service_rate: float) -> float:
    """Fraction of time the receiver keeps the sender paused.

    With a finite lossless ingress buffer, a receiver that drains at
    ``service_rate`` while traffic arrives at ``arrival_rate`` must pause
    the link for exactly the excess fraction in steady state:
    ``1 - service/arrival`` (clamped to [0, 1)).  Below capacity, no
    pauses are needed.
    """
    if arrival_rate <= 0:
        return 0.0
    if service_rate >= arrival_rate:
        return 0.0
    if service_rate <= 0:
        return 1.0
    return 1.0 - service_rate / arrival_rate


def pause_stall_us(pause_ratio: float, per_wr_us: float) -> float:
    """Mean extra per-WR stall a PFC pause duty cycle induces.

    A link paused a fraction ``p`` of the time is usable only ``1 - p``
    of it, so the wire time of one WR stretches by ``p / (1 - p)`` on
    average (clamped near full saturation to keep the closed form
    finite).
    """
    p = min(max(pause_ratio, 0.0), 0.99)
    if p <= 0.0:
        return 0.0
    return per_wr_us * p / (1.0 - p)


def pause_frames_per_second(
    pause_ratio: float, line_rate_gbps: float, quanta_per_frame: int = 0xFFFF
) -> float:
    """Estimate the pause-frame rate that sustains a given duty cycle.

    Each frame requests ``quanta_per_frame`` quanta of 512 bit-times, so
    the frame rate needed to keep the link paused ``pause_ratio`` of the
    time scales with the line rate.
    """
    if pause_ratio <= 0:
        return 0.0
    pause_seconds_per_frame = quanta_per_frame * QUANTA_BITS / (line_rate_gbps * 1e9)
    return pause_ratio / pause_seconds_per_frame


@dataclasses.dataclass
class PFCIngressQueue:
    """Event-level lossless ingress queue for validation tests.

    Bytes arrive and drain in discrete ticks; when occupancy crosses
    ``xoff_bytes`` the queue asserts pause until it falls below
    ``xon_bytes``.  The measured pause duty cycle should approach
    :func:`steady_state_pause_ratio` for constant rates.
    """

    capacity_bytes: int
    xoff_bytes: int
    xon_bytes: int
    occupancy: int = 0
    paused: bool = False
    paused_ticks: int = 0
    total_ticks: int = 0
    pause_transitions: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.xon_bytes <= self.xoff_bytes <= self.capacity_bytes:
            raise ValueError(
                "need 0 < xon <= xoff <= capacity, got "
                f"xon={self.xon_bytes} xoff={self.xoff_bytes} "
                f"capacity={self.capacity_bytes}"
            )

    def tick(self, arriving_bytes: int, draining_bytes: int) -> bool:
        """Advance one tick; returns whether the queue is pausing upstream.

        While paused, the upstream sends nothing, so arrivals are
        suppressed; draining continues.
        """
        self.total_ticks += 1
        if not self.paused:
            self.occupancy += arriving_bytes
        self.occupancy = max(0, self.occupancy - draining_bytes)
        if self.occupancy > self.capacity_bytes:
            raise AssertionError(
                "lossless queue overflowed: PFC thresholds misconfigured"
            )
        previously = self.paused
        if self.paused and self.occupancy <= self.xon_bytes:
            self.paused = False
        elif not self.paused and self.occupancy >= self.xoff_bytes:
            self.paused = True
        if self.paused != previously:
            self.pause_transitions += 1
        if self.paused:
            self.paused_ticks += 1
        return self.paused

    @property
    def pause_ratio(self) -> float:
        return self.paused_ticks / self.total_ticks if self.total_ticks else 0.0
