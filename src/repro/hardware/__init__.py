"""Simulated RDMA subsystem hardware.

The paper's substrate is a physical testbed (Table 1); here every component
is a mechanistic model: host topology (:mod:`topology`), PCIe
(:mod:`pcie`), RNIC internals with their caches and engines (:mod:`rnic`,
:mod:`caches`), PFC (:mod:`pfc`), the lossless switch (:mod:`switch`),
hardware counters (:mod:`counters`), the six root-cause bottleneck
mechanisms of Appendix A (:mod:`mechanisms`), and the steady-state solver
that turns a workload descriptor into per-second counter streams
(:mod:`model`).  :mod:`subsystems` provides the eight Table 1 presets A–H.
"""

from repro.hardware.counters import (
    DIAGNOSTIC_COUNTERS,
    PERFORMANCE_COUNTERS,
    CounterSample,
    VendorMonitor,
)
from repro.hardware.model import Measurement, SteadyStateModel
from repro.hardware.pcie import PCIeLink
from repro.hardware.rnic import RNICProfile
from repro.hardware.subsystems import (
    SUBSYSTEMS,
    Subsystem,
    get_subsystem,
    list_subsystems,
)
from repro.hardware.topology import HostTopology, MemoryDevice
from repro.hardware.workload import Colocation, Direction, WorkloadDescriptor

__all__ = [
    "DIAGNOSTIC_COUNTERS",
    "PERFORMANCE_COUNTERS",
    "CounterSample",
    "VendorMonitor",
    "Measurement",
    "SteadyStateModel",
    "PCIeLink",
    "RNICProfile",
    "SUBSYSTEMS",
    "Subsystem",
    "get_subsystem",
    "list_subsystems",
    "HostTopology",
    "MemoryDevice",
    "Colocation",
    "Direction",
    "WorkloadDescriptor",
]
