"""The eight testbed RDMA subsystems of Table 1.

A :class:`Subsystem` bundles an RNIC part, a PCIe slot, a host topology
and the platform flags the quirk gates read (PCIe ordering discipline,
SMP-fabric quality).  Presets A–H mirror Table 1's rows; concrete CPU
names are numbered for confidentiality exactly as the paper does.

Two presets carry the evaluation:

* **F** (200 Gbps CX-6, PCIe 4.0, A100) is the §7.2 subsystem.  To make
  the full Table 2 CX-6 suite reachable on the one subsystem the paper
  evaluates, F folds in the platform quirks the paper attributes to its
  sibling AMD testbeds (strict PCIe ordering for #9, a weak cross-socket
  fabric for #11, misconfigured ACSCtl for #12) — Table 2 presents all 13
  CX-6 anomalies as "found on subsystem F", and this preset makes that
  statement literally true of the simulation.
* **H** (100 Gbps P2100G) hosts anomalies #14–#18.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.hardware import parts
from repro.hardware.pcie import PCIeLink
from repro.hardware.rnic import RNICProfile
from repro.hardware.topology import HostTopology, dual_socket_host


@dataclasses.dataclass(frozen=True)
class Subsystem:
    """One row of Table 1: an RNIC deployed in a concrete server."""

    name: str  #: Table 1 letter, ``A``–``H``.
    rnic: RNICProfile
    pcie: PCIeLink
    topology: HostTopology
    cpu: str
    memory_gb: int
    gpu: Optional[str] = None
    bios: str = "AMI"
    kernel: str = "5.4"
    nps: int = 1  #: NUMA-per-socket BIOS setting (Table 1's NPS column).
    #: Platform flag read by the anomaly-#11 gate: the SMP fabric of this
    #: server handles bidirectional cross-socket DMA poorly.
    weak_cross_socket: bool = False

    def describe_row(self) -> dict:
        """Table 1 row for the benchmark harness."""
        return {
            "Type": self.name,
            "RNIC": self.rnic.name,
            "Speed": f"{int(self.rnic.line_rate_gbps)} Gbps",
            "CPU": self.cpu,
            "PCIe": self.pcie.describe(),
            "NPS": self.nps,
            "Memory": f"{self.memory_gb} GB",
            "GPU": self.gpu or "-",
            "BIOS": self.bios,
            "Kernel": self.kernel,
        }


def _intel_host(name: str, gpus: int = 0, acsctl_correct: bool = True) -> HostTopology:
    return dual_socket_host(name, numa_per_socket=1, gpus=gpus,
                            acsctl_correct=acsctl_correct)


def _build_subsystems() -> dict:
    return {
        "A": Subsystem(
            name="A",
            rnic=parts.connectx5(25.0),
            pcie=PCIeLink(gen=3, lanes=16),
            topology=_intel_host("host-A"),
            cpu="Intel(R) Xeon(R) CPU 1",
            memory_gb=128,
            bios="INSYDE",
            kernel="4.19",
        ),
        "B": Subsystem(
            name="B",
            rnic=parts.connectx5(100.0),
            pcie=PCIeLink(gen=3, lanes=16),
            topology=_intel_host("host-B"),
            cpu="Intel(R) Xeon(R) CPU 2",
            memory_gb=768,
            kernel="4.14",
        ),
        "C": Subsystem(
            name="C",
            rnic=parts.connectx5(100.0),
            pcie=PCIeLink(gen=3, lanes=16),
            topology=_intel_host("host-C", gpus=1),
            cpu="Intel(R) Xeon(R) CPU 2",
            memory_gb=384,
            gpu="V100",
        ),
        "D": Subsystem(
            name="D",
            rnic=parts.connectx6_100(),
            pcie=PCIeLink(gen=3, lanes=16),
            topology=_intel_host("host-D"),
            cpu="Intel(R) Xeon(R) CPU 2",
            memory_gb=768,
            kernel="4.14",
        ),
        "E": Subsystem(
            name="E",
            rnic=parts.connectx6_200(),
            pcie=PCIeLink(gen=4, lanes=16, relaxed_ordering=False),
            topology=dual_socket_host("host-E", gpus=1),
            cpu="AMD EPYC CPU 1",
            memory_gb=2048,
            gpu="A100",
            weak_cross_socket=True,
        ),
        "F": Subsystem(
            name="F",
            rnic=parts.connectx6_200(),
            pcie=PCIeLink(gen=4, lanes=16, relaxed_ordering=False),
            topology=dual_socket_host("host-F", gpus=1, acsctl_correct=False),
            cpu="Intel(R) Xeon(R) CPU 3",
            memory_gb=2048,
            gpu="A100",
            weak_cross_socket=True,
        ),
        "G": Subsystem(
            name="G",
            rnic=parts.connectx6_200(vpi=True),
            pcie=PCIeLink(gen=4, lanes=16, relaxed_ordering=False),
            topology=dual_socket_host("host-G", numa_per_socket=2),
            cpu="AMD EPYC CPU 1",
            memory_gb=2048,
            nps=2,
            weak_cross_socket=True,
        ),
        "H": Subsystem(
            name="H",
            rnic=parts.p2100g(),
            pcie=PCIeLink(gen=3, lanes=16),
            topology=_intel_host("host-H"),
            cpu="Intel(R) Xeon(R) CPU 2",
            memory_gb=384,
        ),
    }


#: The eight Table 1 presets, keyed by letter.
SUBSYSTEMS: dict = _build_subsystems()


def get_subsystem(letter: str) -> Subsystem:
    """Look up a Table 1 subsystem by letter (case-insensitive)."""
    key = letter.upper()
    if key not in SUBSYSTEMS:
        raise KeyError(
            f"unknown subsystem {letter!r}; choose one of "
            f"{sorted(SUBSYSTEMS)}"
        )
    return SUBSYSTEMS[key]


def list_subsystems() -> list:
    """All presets, in Table 1 order."""
    return [SUBSYSTEMS[k] for k in sorted(SUBSYSTEMS)]
