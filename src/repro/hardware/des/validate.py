"""Cross-validation: event-level simulation vs the closed-form solver.

Given a measurement from the steady-state model, rebuild the direction's
injection/service rates, run the event-level flow simulation, and check
that the emergent pause duty cycle and delivered throughput agree with
the closed forms.  This is the repo's answer to "how do you know the
formulas are right": two independent implementations, one analytic and
one mechanistic, must converge.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.des.flowsim import FlowParameters, FlowSimulation
from repro.hardware.model import DirectionRates, Measurement


@dataclasses.dataclass(frozen=True)
class ValidationResult:
    """Analytic vs simulated outcomes for one direction."""

    direction: str
    analytic_pause_ratio: float
    simulated_pause_ratio: float
    analytic_msgs_per_sec: float
    simulated_msgs_per_sec: float
    pause_frames: int

    @property
    def pause_error(self) -> float:
        return abs(self.analytic_pause_ratio - self.simulated_pause_ratio)

    @property
    def throughput_error_fraction(self) -> float:
        if self.analytic_msgs_per_sec <= 0:
            return 0.0
        return (
            abs(self.analytic_msgs_per_sec - self.simulated_msgs_per_sec)
            / self.analytic_msgs_per_sec
        )

    @property
    def agrees(self) -> bool:
        """Within the tolerances granularity effects allow."""
        return self.pause_error <= 0.05 and (
            self.throughput_error_fraction <= 0.08
        )


def _service_rate(direction: DirectionRates) -> float:
    """Reconstruct the receiver's service rate from the solved rates.

    Under pauses the receiver was the bottleneck (service = achieved);
    otherwise service exceeded injection — any headroom reproduces the
    no-pause outcome, so a nominal 25% is used.
    """
    if direction.pause_ratio > 0:
        return direction.achieved_msgs_per_sec
    return direction.injection_msgs_per_sec * 1.25


def flow_parameters_for(
    direction: DirectionRates, measurement: Measurement
) -> FlowParameters:
    """Flow-sim parameters for one solved direction.

    Messages play the role of packets (one event-queue unit each), sized
    at the workload's average message so byte thresholds are realistic.
    """
    avg_msg = max(1, int(measurement.workload.avg_msg_bytes))
    injection = direction.injection_msgs_per_sec
    # Keep event counts bounded: a burst is ~1ms of traffic, at least
    # the posted batch size.
    burst = max(
        measurement.workload.wqe_batch, int(injection * 1e-3) or 1
    )
    # The XOFF/XON hysteresis band must span many bursts, or the
    # overshoot of in-flight bursts past XOFF systematically inflates
    # the measured pause duty cycle relative to the fluid limit.
    buffer_bytes = max(32 * burst * avg_msg, 2 * 1024 * 1024)
    return FlowParameters(
        injection_pps=injection,
        service_pps=_service_rate(direction),
        packet_bytes=avg_msg,
        buffer_bytes=buffer_bytes,
        burst_packets=burst,
    )


def validate_measurement(
    measurement: Measurement, duration: float = 2.0
) -> list[ValidationResult]:
    """Run the event-level check for every direction of a measurement."""
    results = []
    for direction in measurement.directions:
        params = flow_parameters_for(direction, measurement)
        outcome = FlowSimulation(params).run(duration)
        results.append(
            ValidationResult(
                direction=direction.name,
                analytic_pause_ratio=direction.pause_ratio,
                simulated_pause_ratio=outcome.pause_ratio,
                analytic_msgs_per_sec=direction.achieved_msgs_per_sec,
                simulated_msgs_per_sec=outcome.achieved_pps,
                pause_frames=outcome.pause_frames,
            )
        )
    return results
