"""Discrete-event validation engine.

The steady-state solver (:mod:`repro.hardware.model`) computes rates and
pause duty cycles in closed form.  This package provides an independent,
event-level implementation — packets injected, queued, PFC-paused and
served one burst at a time — used to validate the closed forms and to
produce time series (queue occupancy, pause intervals) that a formula
cannot.

* :mod:`engine` — a generic deterministic event scheduler;
* :mod:`flowsim` — sender → lossless ingress queue → receiver with PFC;
* :mod:`validate` — builds a flow simulation from a measurement's rates
  and compares outcomes against the analytic model.
"""

from repro.hardware.des.engine import EventScheduler
from repro.hardware.des.flowsim import FlowSimulation, FlowParameters
from repro.hardware.des.validate import validate_measurement

__all__ = [
    "EventScheduler",
    "FlowSimulation",
    "FlowParameters",
    "validate_measurement",
]
