"""Burst-level RNIC receive-path simulation with an exact WQE cache.

The quirk rules assert, for example, that receivers whose total posted
receive WQEs (``num_qps × wq_depth``) outrun the receive-WQE cache stall
badly enough to pause the link (the capacity path behind anomalies #2,
#15 and #17).  This module *derives* that behaviour instead of asserting
it: arrivals round-robin across QPs in sender batches, each SEND
consumes one receive WQE, WQE lookups go through an exact
:class:`~repro.hardware.caches.LRUCache` with a prefetcher, and every
demand miss costs a PCIe round trip of receive-engine time.  The
emergent service rate — and therefore the pause duty cycle via the
standard PFC loop — can be compared against the closed-form rule
severities: below cache capacity the engine is miss-free; above it the
prefetcher bounds losses at one stall per window, which at line rate is
a 20–25% pause duty cycle — the regime the rules encode.

Scope note: the *burst-timing* sensitivity of anomaly #1 (large posting
batches defeating the prefetcher's latency hiding) needs a queueing
model of concurrent in-flight fetches and stays at the rule level; this
simulation validates the capacity mechanism, where cache geometry alone
decides the outcome.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.caches import LRUCache
from repro.hardware.des.engine import EventScheduler
from repro.hardware.pfc import steady_state_pause_ratio


@dataclasses.dataclass(frozen=True)
class RxPipelineParameters:
    """Receive-path geometry and costs."""

    num_qps: int
    wq_depth: int  #: receive WQEs kept posted per QP.
    sender_batch: int  #: messages posted per doorbell (arrive back-to-back).
    cache_entries: int  #: receive-WQE cache capacity.
    prefetch_window: int  #: WQEs fetched ahead per QP on a miss.
    base_service_ns: float = 80.0  #: per-message cost on a cache hit.
    miss_penalty_ns: float = 900.0  #: PCIe RTT to fetch a missed WQE.
    arrival_interval_ns: float = 80.0  #: per-message wire spacing at rate.

    def __post_init__(self) -> None:
        if min(self.num_qps, self.wq_depth, self.sender_batch,
               self.cache_entries, self.prefetch_window) <= 0:
            raise ValueError("all pipeline parameters must be positive")


@dataclasses.dataclass
class RxPipelineResult:
    """Emergent receive-path behaviour."""

    messages: int
    misses: int
    busy_ns: float
    span_ns: float

    @property
    def miss_rate(self) -> float:
        return self.misses / self.messages if self.messages else 0.0

    @property
    def service_rate_msgs_per_sec(self) -> float:
        """Messages per second the engine can sustain when saturated."""
        if self.busy_ns <= 0:
            return 0.0
        return self.messages / self.busy_ns * 1e9

    def pause_ratio_against(self, arrival_msgs_per_sec: float) -> float:
        """PFC duty cycle when traffic arrives at the given rate."""
        return steady_state_pause_ratio(
            arrival_msgs_per_sec, self.service_rate_msgs_per_sec
        )


class RxPipelineSimulation:
    """Runs the receive engine over a deterministic arrival schedule.

    Arrivals round-robin across QPs in sender batches (QP ``i`` delivers
    its whole batch before QP ``i+1`` — the doorbell-batched pattern).
    Each message consumes the QP's next receive WQE; the WQE must be
    resident in the cache, which prefetches ``prefetch_window`` entries
    ahead for the missing QP and evicts LRU entries.
    """

    def __init__(self, params: RxPipelineParameters) -> None:
        self.params = params
        self.scheduler = EventScheduler()
        self.cache = LRUCache(params.cache_entries)
        #: Next receive-WQE index per QP (consumed in ring order).
        self._next_wqe = [0] * params.num_qps
        self._busy_ns = 0.0
        self._messages = 0
        #: Demand misses only — prefetch fills touch the cache but are
        #: not receive-engine stalls.
        self._demand_misses = 0

        # Warm start: the prefetcher has filled the cache fairly across
        # QPs before traffic begins, as a real NIC's idle prefetch would.
        per_qp = max(1, params.cache_entries // params.num_qps)
        for qp in range(params.num_qps):
            for slot in range(min(per_qp, params.wq_depth)):
                self.cache.access((qp, slot))
        self.cache.reset_stats()

    def _consume(self, qp: int) -> None:
        params = self.params
        slot = self._next_wqe[qp]
        key = (qp, slot % params.wq_depth)
        self._next_wqe[qp] = slot + 1
        if self.cache.access(key):
            self._busy_ns += params.base_service_ns
        else:
            # Miss: fetch this WQE plus the prefetch window behind it.
            self._demand_misses += 1
            self._busy_ns += params.base_service_ns + params.miss_penalty_ns
            for ahead in range(1, params.prefetch_window):
                self.cache.access((qp, (slot + ahead) % params.wq_depth))
        self._messages += 1

    def run(self, messages: int) -> RxPipelineResult:
        """Process ``messages`` arrivals; returns emergent rates."""
        if messages <= 0:
            raise ValueError("messages must be positive")
        params = self.params
        sent = 0
        qp = 0
        while sent < messages:
            for _ in range(params.sender_batch):
                if sent >= messages:
                    break
                self._consume(qp)
                sent += 1
            qp = (qp + 1) % params.num_qps
        span = max(self._busy_ns, sent * params.arrival_interval_ns)
        return RxPipelineResult(
            messages=self._messages,
            misses=self._demand_misses,
            busy_ns=self._busy_ns,
            span_ns=span,
        )
