"""A deterministic discrete-event scheduler.

Minimal by design: a time-ordered heap of events with stable FIFO
ordering for simultaneous events (insertion sequence breaks ties), event
cancellation, and a bounded run loop.  No global state, no wall-clock
dependence — simulations are exactly reproducible.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable, Optional


@dataclasses.dataclass(order=True)
class _Entry:
    time: float
    sequence: int
    callback: Optional[Callable[[], None]] = dataclasses.field(compare=False)

    @property
    def cancelled(self) -> bool:
        return self.callback is None


class EventHandle:
    """Returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry.callback = None

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class EventScheduler:
    """Time-ordered event execution with stable tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.executed = 0

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at ``now + delay``; returns a handle."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        entry = _Entry(self.now + delay, next(self._sequence), callback)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule at an absolute time (must not be in the past)."""
        return self.schedule(time - self.now, callback)

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def step(self) -> bool:
        """Execute the next event; returns False when none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self.now = entry.time
            callback, entry.callback = entry.callback, None
            callback()
            self.executed += 1
            return True
        return False

    def run_until(self, deadline: float, max_events: int = 10_000_000) -> None:
        """Run events with time ≤ deadline (advances ``now`` to deadline)."""
        events = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > deadline:
                break
            if events >= max_events:
                raise RuntimeError(
                    f"event budget exhausted ({max_events}) before "
                    f"t={deadline}; runaway simulation?"
                )
            self.step()
            events += 1
        self.now = max(self.now, deadline)

    def run(self, max_events: int = 10_000_000) -> None:
        """Drain the event heap entirely."""
        events = 0
        while self.step():
            events += 1
            if events >= max_events:
                raise RuntimeError(
                    f"event budget exhausted ({max_events}); "
                    "runaway simulation?"
                )
