"""Event-level flow simulation: sender → PFC ingress queue → receiver.

One traffic direction, at burst granularity: the sender injects bursts
of packets at its injection rate unless paused; bursts land in the
receiver's lossless ingress queue after a serialization delay; the
receiver drains at its service rate.  Crossing the XOFF threshold emits
a pause toward the sender, XON releases it — exactly the 802.1Qbb loop
whose steady-state duty cycle the closed form predicts.

The simulation reports achieved throughput, measured pause duty cycle,
pause-frame count and a queue-occupancy time series.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.des.engine import EventScheduler


@dataclasses.dataclass(frozen=True)
class FlowParameters:
    """Rates and buffer geometry of one simulated direction."""

    injection_pps: float  #: sender's offered packet rate.
    service_pps: float  #: receiver's drain rate.
    packet_bytes: int = 1024
    buffer_bytes: int = 2 * 1024 * 1024
    xoff_fraction: float = 0.6
    xon_fraction: float = 0.2
    #: Packets per simulated burst; larger = fewer events, coarser.
    burst_packets: int = 64
    #: One-way wire latency for a burst, seconds.
    wire_latency: float = 2e-6

    def __post_init__(self) -> None:
        if self.injection_pps <= 0 or self.service_pps < 0:
            raise ValueError("rates must be positive")
        if not 0 < self.xon_fraction < self.xoff_fraction < 1:
            raise ValueError("need 0 < xon < xoff < 1")
        if self.burst_packets <= 0 or self.packet_bytes <= 0:
            raise ValueError("burst and packet sizes must be positive")

    @property
    def xoff_bytes(self) -> float:
        return self.buffer_bytes * self.xoff_fraction

    @property
    def xon_bytes(self) -> float:
        return self.buffer_bytes * self.xon_fraction

    @property
    def burst_bytes(self) -> int:
        return self.burst_packets * self.packet_bytes


@dataclasses.dataclass
class FlowResult:
    """Outcome of one simulated interval."""

    duration: float
    delivered_packets: int
    injected_packets: int
    pause_seconds: float
    pause_frames: int
    max_occupancy_bytes: float
    occupancy_series: list  #: (time, bytes) samples.

    @property
    def achieved_pps(self) -> float:
        return self.delivered_packets / self.duration if self.duration else 0.0

    @property
    def pause_ratio(self) -> float:
        return self.pause_seconds / self.duration if self.duration else 0.0


class FlowSimulation:
    """Runs the sender/queue/receiver loop on an event scheduler."""

    def __init__(self, params: FlowParameters) -> None:
        self.params = params
        self.scheduler = EventScheduler()
        self._occupancy = 0.0
        self._paused = False
        self._pause_started = 0.0
        self._pause_seconds = 0.0
        self._pause_frames = 0
        self._delivered = 0
        self._injected = 0
        self._max_occupancy = 0.0
        self._series: list = []
        self._deadline = 0.0

    # -- sender ----------------------------------------------------------

    def _inject_burst(self) -> None:
        params = self.params
        if self.scheduler.now >= self._deadline:
            return
        if not self._paused:
            self._injected += params.burst_packets
            self.scheduler.schedule(params.wire_latency, self._burst_arrives)
        # Next injection slot regardless of pause state: a paused sender
        # re-checks at its natural cadence (its queue backs up upstream,
        # which we do not model — the paper's senders always have more
        # to send).
        interval = params.burst_packets / params.injection_pps
        self.scheduler.schedule(interval, self._inject_burst)

    # -- queue ----------------------------------------------------------

    def _burst_arrives(self) -> None:
        params = self.params
        self._occupancy += params.burst_bytes
        self._max_occupancy = max(self._max_occupancy, self._occupancy)
        self._sample()
        if not self._paused and self._occupancy >= params.xoff_bytes:
            self._paused = True
            self._pause_frames += 1
            self._pause_started = self.scheduler.now

    # -- receiver ----------------------------------------------------------

    def _service_tick(self) -> None:
        params = self.params
        if self.scheduler.now >= self._deadline:
            return
        if params.service_pps > 0 and self._occupancy > 0:
            drained = min(self._occupancy, params.burst_bytes)
            self._occupancy -= drained
            self._delivered += int(drained / params.packet_bytes)
            self._sample()
            if self._paused and self._occupancy <= params.xon_bytes:
                self._paused = False
                self._pause_seconds += (
                    self.scheduler.now - self._pause_started
                )
        if params.service_pps > 0:
            interval = params.burst_packets / params.service_pps
            self.scheduler.schedule(interval, self._service_tick)

    def _sample(self) -> None:
        if len(self._series) < 50_000:
            self._series.append((self.scheduler.now, self._occupancy))

    # -- run ----------------------------------------------------------

    def run(self, duration: float) -> FlowResult:
        """Simulate ``duration`` seconds of the flow."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self._deadline = duration
        self.scheduler.schedule(0.0, self._inject_burst)
        self.scheduler.schedule(0.0, self._service_tick)
        self.scheduler.run_until(duration)
        if self._paused:
            self._pause_seconds += self.scheduler.now - self._pause_started
            self._paused = False
        return FlowResult(
            duration=duration,
            delivered_packets=self._delivered,
            injected_packets=self._injected,
            pause_seconds=self._pause_seconds,
            pause_frames=self._pause_frames,
            max_occupancy_bytes=self._max_occupancy,
            occupancy_series=self._series,
        )
