"""The hardware-facing workload descriptor.

This is the contract between Collie's search space (:mod:`repro.core.space`)
and the performance model (:mod:`repro.hardware.model`): one value per
search dimension, in verbs terms.  Field names follow Table 2's columns
(Direction, Transport, MTU, WQE, SGE, WQ depth, Message Pattern, # of QPs)
plus the memory-allocation and host-topology dimensions of §4.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Optional

from repro.verbs.constants import SUPPORTED_OPCODES, Opcode, QPType
from repro.verbs.wr import WQE_BASE_BYTES, WQE_SEGMENT_BYTES

#: "Small" and "large" message thresholds used throughout Table 2
#: (``mix of <=1KB & >=64KB``).
SMALL_MESSAGE_BYTES = 1024
LARGE_MESSAGE_BYTES = 64 * 1024


class Direction(enum.Enum):
    """Traffic direction between the two hosts."""

    UNIDIRECTIONAL = "uni"
    BIDIRECTIONAL = "bi"


class SGLayout(enum.Enum):
    """How a request's bytes are spread across its SG entries.

    ``EVEN`` splits the message into equal entries; ``MIXED`` packs one
    large entry alongside small ones (metadata + tensor, the BytePS
    shape) — the within-WQE small/large mix that triggers anomaly #9,
    distinct from the *across-request* mix of anomaly #10.
    """

    EVEN = "even"
    MIXED = "mixed"


class Colocation(enum.Enum):
    """Whether client processes are co-located with the server host.

    ``MIXED_LOOPBACK`` reproduces the anomaly #13 scenario: the receiver
    simultaneously serves loopback traffic from a local worker and network
    traffic from the remote host.
    """

    REMOTE_ONLY = "remote"
    MIXED_LOOPBACK = "mixed_loopback"


@dataclasses.dataclass(frozen=True)
class WorkloadDescriptor:
    """One point of Collie's four-dimensional search space, in verbs terms.

    * Dimension 1 (host topology): ``src_device``, ``dst_device``,
      ``colocation``;
    * Dimension 2 (memory allocation): ``mrs_per_qp``, ``mr_bytes``;
    * Dimension 3 (transport): ``qp_type``, ``opcode``, ``num_qps``,
      ``wqe_batch``, ``sge_per_wqe``, ``wq_depth``, ``direction``, ``mtu``;
    * Dimension 4 (message pattern): ``msg_sizes_bytes`` — the fixed-length
      request vector of §4.
    """

    qp_type: QPType = QPType.RC
    opcode: Opcode = Opcode.WRITE
    direction: Direction = Direction.UNIDIRECTIONAL
    mtu: int = 1024
    num_qps: int = 8
    wqe_batch: int = 1
    sge_per_wqe: int = 1
    wq_depth: int = 128
    msg_sizes_bytes: tuple[int, ...] = (65536,)
    mrs_per_qp: int = 1
    mr_bytes: int = 64 * 1024
    src_device: str = "numa0"
    dst_device: str = "numa0"
    colocation: Colocation = Colocation.REMOTE_ONLY
    sg_layout: SGLayout = SGLayout.EVEN
    #: Fraction of time the sender keeps the pipe full (1.0 = saturating,
    #: the paper's setting).  Lower values model request inter-arrival
    #: gaps — the search-space extension §8 defers; enabled via
    #: ``SearchSpace.for_subsystem(..., duty_cycles=(0.25, 0.5, 1.0))``.
    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.opcode not in SUPPORTED_OPCODES[self.qp_type]:
            raise ValueError(
                f"{self.qp_type.value} does not support {self.opcode.value}"
            )
        if self.num_qps <= 0 or self.wqe_batch <= 0 or self.sge_per_wqe <= 0:
            raise ValueError("num_qps, wqe_batch and sge_per_wqe must be positive")
        if self.wq_depth <= 0 or self.mrs_per_qp <= 0 or self.mr_bytes <= 0:
            raise ValueError("wq_depth, mrs_per_qp and mr_bytes must be positive")
        if not self.msg_sizes_bytes:
            raise ValueError("message pattern must contain at least one request")
        if any(size <= 0 for size in self.msg_sizes_bytes):
            raise ValueError("message sizes must be positive")
        if self.mtu not in (256, 512, 1024, 2048, 4096):
            raise ValueError(f"{self.mtu} is not a valid RDMA path MTU")
        if self.qp_type is QPType.UD and self.max_msg_bytes > self.mtu:
            raise ValueError(
                f"UD messages are limited to one MTU "
                f"({self.max_msg_bytes} > {self.mtu})"
            )
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError(
                f"duty_cycle must lie in (0, 1], got {self.duty_cycle}"
            )

    # -- message-pattern statistics ------------------------------------------

    @property
    def avg_msg_bytes(self) -> float:
        return sum(self.msg_sizes_bytes) / len(self.msg_sizes_bytes)

    @property
    def min_msg_bytes(self) -> int:
        return min(self.msg_sizes_bytes)

    @property
    def max_msg_bytes(self) -> int:
        return max(self.msg_sizes_bytes)

    @property
    def has_small_messages(self) -> bool:
        return self.min_msg_bytes <= SMALL_MESSAGE_BYTES

    @property
    def has_large_messages(self) -> bool:
        return self.max_msg_bytes >= LARGE_MESSAGE_BYTES

    @property
    def mixes_small_and_large(self) -> bool:
        """Table 2's "mix of ≤1KB & ≥64KB" trigger feature (#9, #10)."""
        return self.has_small_messages and self.has_large_messages

    @property
    def small_message_fraction(self) -> float:
        small = sum(1 for s in self.msg_sizes_bytes if s <= SMALL_MESSAGE_BYTES)
        return small / len(self.msg_sizes_bytes)

    @property
    def large_message_fraction(self) -> float:
        large = sum(1 for s in self.msg_sizes_bytes if s >= LARGE_MESSAGE_BYTES)
        return large / len(self.msg_sizes_bytes)

    def packets_per_message(self, size: Optional[int] = None) -> float:
        """Wire packets for one message (averaged over the pattern)."""
        if size is not None:
            return max(1, math.ceil(size / self.mtu))
        return sum(
            max(1, math.ceil(s / self.mtu)) for s in self.msg_sizes_bytes
        ) / len(self.msg_sizes_bytes)

    # -- derived verbs-level quantities ------------------------------------

    @property
    def wqe_bytes(self) -> int:
        """PCIe bytes to fetch one send WQE."""
        return WQE_BASE_BYTES + WQE_SEGMENT_BYTES * self.sge_per_wqe

    @property
    def total_mrs(self) -> int:
        return self.num_qps * self.mrs_per_qp

    @property
    def total_outstanding_recv_wqes(self) -> int:
        """Receive WQEs kept posted across all QPs (the RX-cache working set)."""
        return self.num_qps * self.wq_depth

    @property
    def is_bidirectional(self) -> bool:
        return self.direction is Direction.BIDIRECTIONAL

    @property
    def uses_recv_wqes(self) -> bool:
        """Only SEND consumes responder receive WQEs (2-sided operation)."""
        return self.opcode is Opcode.SEND

    @property
    def has_loopback(self) -> bool:
        return self.colocation is Colocation.MIXED_LOOPBACK

    @property
    def sg_entry_mix(self) -> bool:
        """Whether individual WQEs carry both small and large SG entries.

        Requires a mixed layout, at least two entries to differ, and a
        message large enough that the large entry actually crosses the
        64KB line while the small ones stay under 1KB.
        """
        return (
            self.sg_layout is SGLayout.MIXED
            and self.sge_per_wqe >= 2
            and self.max_msg_bytes >= LARGE_MESSAGE_BYTES
        )

    def replace(self, **changes) -> "WorkloadDescriptor":
        """Return a copy with some fields changed (used by mutation/MFS)."""
        return dataclasses.replace(self, **changes)

    def summary(self) -> str:
        """One-line Table 2-style description."""
        pattern = ",".join(_human_bytes(s) for s in self.msg_sizes_bytes[:6])
        if len(self.msg_sizes_bytes) > 6:
            pattern += ",..."
        direction = "Bi-" if self.is_bidirectional else "Uni"
        return (
            f"{direction} {self.qp_type.value} {self.opcode.value} "
            f"mtu={self.mtu} qps={self.num_qps} wqe={self.wqe_batch} "
            f"sge={self.sge_per_wqe} wq={self.wq_depth} msgs=[{pattern}] "
            f"mrs={self.mrs_per_qp}x{_human_bytes(self.mr_bytes)} "
            f"{self.src_device}->{self.dst_device} {self.colocation.value}"
        )


def _human_bytes(size: int) -> str:
    if size >= 1024 * 1024 and size % (1024 * 1024) == 0:
        return f"{size // (1024 * 1024)}MB"
    if size >= 1024 and size % 1024 == 0:
        return f"{size // 1024}KB"
    return f"{size}B"
