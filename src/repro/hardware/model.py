"""Steady-state performance model of one experiment.

Given a :class:`~repro.hardware.workload.WorkloadDescriptor` and a
:class:`~repro.hardware.subsystems.Subsystem`, the model prices every
resource a message consumes on its way through the subsystem — wire slots,
RNIC packet-processing events, PCIe bytes in each bus direction, DMA-path
bandwidth — takes the binding constraint per traffic direction, applies
the quirk rules (:mod:`repro.hardware.rules`), and converts any
receiver-side shortfall into PFC pause time exactly as a lossless ingress
buffer would (:mod:`repro.hardware.pfc`).

The result is a :class:`Measurement`: noisy per-second counter samples
(what Collie sees) plus ground-truth fields — fired rule tags, ideal
rates — that only the test suite and benchmarks read.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.hardware.caches import miss_stall_us, pressure_score
from repro.hardware.counters import (
    CounterSample,
    VendorMonitor,
    average_counters,
)
from repro.hardware.features import extract_features
from repro.hardware.pcie import CQE_BYTES, DOORBELL_BYTES, TLP_HEADER_BYTES
from repro.hardware.pfc import pause_stall_us, steady_state_pause_ratio
from repro.hardware.rules import FiredRule, fired_latency_rules, fired_rules
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import ROCE_HEADER_BYTES, Opcode, QPType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.evalcache import EvalCache
    from repro.hardware.subsystems import Subsystem


@dataclasses.dataclass(frozen=True)
class DirectionRates:
    """Resolved steady-state rates of one traffic direction."""

    name: str  #: ``fwd`` or ``rev``.
    achieved_msgs_per_sec: float
    injection_msgs_per_sec: float  #: what the sender offers before PFC.
    payload_bytes_per_sec: float
    wire_bytes_per_sec: float
    packets_per_sec: float  #: data + ACK/response packet events.
    pause_ratio: float

    @property
    def wire_gbps(self) -> float:
        return self.wire_bytes_per_sec * 8 / 1e9

    @property
    def goodput_gbps(self) -> float:
        return self.payload_bytes_per_sec * 8 / 1e9


#: Fraction of a cache-refill stall that survives to the completion
#: path.  The packet-engine pipeline overlaps context refills with the
#: WRs already in flight, so in steady state only a sliver of each
#: refill round trip is visible per WR; the regimes where the hiding
#: breaks down are encoded as explicit latency quirks
#: (``RNICProfile.latency_rules``), mirroring how the throughput model
#: keeps its generic accounting conservative and pushes the cliffs into
#: the Appendix A rule tables.  The bound matters: with visibility
#: ``v``, generic inflation is at most ``1 + ln(100)·3.6·v`` (the miss
#: terms sum to ≤ 3.6 refills and the floor always contains the same
#: round trip), which at 0.12 stays below 3 — strictly under the
#: monitor's trigger multiple.  Rule-free workloads therefore can never
#: trip the tail-latency trigger, however hard their caches thrash.
LATENCY_REFILL_VISIBILITY = 0.12

#: Resolution of the deterministic quantile grid a latency profile is
#: summarized through (``LatencyProfile.histogram``).
LATENCY_QUANTILE_POINTS = 128

#: Memoized ``(expo_grid, bucket_bounds)`` arrays of the summary
#: estimator (lazy: ``repro.obs`` must not be imported at module load).
_LATENCY_GRID = None


def _latency_grid():
    global _LATENCY_GRID
    if _LATENCY_GRID is None:
        from repro.obs.metrics import BUCKET_BOUNDS

        points = LATENCY_QUANTILE_POINTS
        expo = -np.log1p(-(np.arange(points) + 0.5) / points)
        _LATENCY_GRID = (
            expo, np.asarray(BUCKET_BOUNDS), expo.tolist(), BUCKET_BOUNDS
        )
    return _LATENCY_GRID


@dataclasses.dataclass(frozen=True)
class LatencyProfile:
    """Analytic per-WR completion-latency distribution of one experiment.

    Derived (:func:`derive_latency`) from the delay components the
    steady-state solve already prices: a *deterministic floor*
    ``base_us`` (wire serialization + packet-engine pipeline + PCIe
    round trips + link queueing) plus an exponential stall tail of mean
    ``tail_mean_us`` (pipeline-damped cache-miss refills, PFC pause
    stretching, and any latency-quirk stalls the part's
    ``latency_rules`` table charges).  The quantile function is
    closed-form::

        latency(q) = base_us + tail_mean_us * -ln(1 - q)

    Consumes no RNG and is a pure function of the solve outputs, so the
    profile is bit-identical between the scalar and batched evaluation
    paths and its presence cannot perturb a search.
    """

    base_us: float  #: deterministic floor (p0 of the distribution).
    tail_mean_us: float  #: mean of the exponential stall tail.
    #: Named per-WR breakdown in microseconds: ``serialization_us``,
    #: ``pipeline_us``, ``pcie_us``, ``queueing_us`` (the floor) and
    #: ``cache_us``, ``pause_us``, ``stall_us`` (the tail).
    components: dict
    #: Ground-truth tags of the latency quirks that fired (``L1``…);
    #: benchmark/test surface only, like ``Measurement.tags``.
    tags: tuple = ()

    @property
    def mean_us(self) -> float:
        return self.base_us + self.tail_mean_us

    def quantile(self, q: float) -> float:
        """Closed-form latency quantile, microseconds."""
        q = min(max(q, 0.0), 1.0 - 1e-12)
        return self.base_us + self.tail_mean_us * -math.log1p(-q)

    def histogram(self):
        """The profile observed into the obs percentile machinery.

        A deterministic mid-point quantile grid feeds a streaming
        :class:`~repro.obs.metrics.HistogramSummary`, so the recorded
        p50/p90/p99 go through exactly the same bucket-interpolation
        estimator every other journaled histogram uses.  The grid is
        bucketed in one vectorized pass: the summary runs once per
        experiment inside the monitor, and a per-point ``observe``
        loop here is what the latency-overhead bench gate caught.
        """
        from repro.obs.metrics import HistogramSummary

        expo, bounds = _latency_grid()[:2]
        values = self.base_us + self.tail_mean_us * expo
        counts = np.bincount(
            np.searchsorted(bounds, values, side="left"),
            minlength=len(bounds) + 1,
        )
        # The quantile function is monotone, so the grid is sorted.
        return HistogramSummary(
            count=len(values),
            total=float(values.sum()),
            minimum=float(values[0]),
            maximum=float(values[-1]),
            bucket_counts=counts.tolist(),
        )

    def summary(self) -> dict:
        """Journal-ready percentile summary (memoized; plain JSON).

        ``baseline_us`` is the workload's own deterministic floor and
        ``inflation`` the p99-over-baseline ratio the anomaly monitor's
        tail-latency trigger compares against its threshold multiple.
        """
        cached = self.__dict__.get("_summary")
        if cached is None:
            p50, p90, p99 = self._estimator_percentiles()
            cached = {
                "p50_us": p50,
                "p90_us": p90,
                "p99_us": p99,
                "mean_us": self.mean_us,
                "baseline_us": self.base_us,
                "inflation": p99 / self.base_us if self.base_us > 0 else 0.0,
                "components": dict(self.components),
                "tags": list(self.tags),
            }
            object.__setattr__(self, "_summary", cached)
        return cached

    def cached_summary(self) -> Optional[dict]:
        """The memoized :meth:`summary`, or ``None`` before first use."""
        return self.__dict__.get("_summary")

    def may_exceed(self, multiple: float) -> bool:
        """Can the estimator's p99 possibly exceed ``multiple`` x floor?

        Conservative O(1) bound: the estimator clamps p99 to the grid
        maximum ``base_us + tail_mean_us * expo[-1]``, so a profile
        whose maximum sits at or under the threshold is healthy without
        building the percentile summary.  The anomaly monitor's hot
        path leans on this — the full estimator only runs for profiles
        near or over the trigger.
        """
        if self.base_us <= 0:
            return False
        return self.may_exceed_value(multiple * self.base_us)

    def may_exceed_value(self, threshold_us: float) -> bool:
        """Can the estimator's p99 possibly exceed ``threshold_us``?

        The absolute-threshold twin of :meth:`may_exceed`, for triggers
        comparing against an *external* floor (the isolation monitor's
        victim alone-p99 rather than this profile's own base).
        """
        maximum = self.base_us + self.tail_mean_us * _latency_grid()[2][-1]
        return maximum > threshold_us

    def _estimator_percentiles(self):
        """p50/p90/p99 of :meth:`histogram`, without building it.

        Bit-identical to ``histogram().percentile(q)`` — same grid,
        same bucketing, same interpolation arithmetic — but touching
        only the handful of buckets the grid actually occupies.  This
        runs once per experiment on the monitor's hot path, which is
        what the latency-overhead bench gates.
        """
        expo, bounds = _latency_grid()[2:]
        base, tail = self.base_us, self.tail_mean_us
        count = LATENCY_QUANTILE_POINTS
        minimum = base + tail * expo[0]
        maximum = base + tail * expo[-1]
        first = bisect.bisect_left(bounds, minimum)
        last = bisect.bisect_left(bounds, maximum)
        # Cumulative grid points at or below each occupied bucket's
        # upper bound (the last occupied bucket absorbs the rest).
        # The grid is monotone, so each bound's rank is found by a
        # binary search resuming from the previous bound's rank.
        cums = []
        lo = 0
        for j in range(first, last):
            bound = bounds[j]
            hi = count
            while lo < hi:
                mid = (lo + hi) // 2
                if base + tail * expo[mid] <= bound:
                    lo = mid + 1
                else:
                    hi = mid
            cums.append(lo)
        cums.append(count)

        def percentile(quantile):
            rank = quantile * count
            cumulative_before = 0
            for offset, cumulative in enumerate(cums):
                bucket_count = cumulative - cumulative_before
                cumulative_before = cumulative
                if cumulative >= rank and bucket_count:
                    index = first + offset
                    upper = (
                        bounds[index] if index < len(bounds) else maximum
                    )
                    lower = bounds[index - 1] if index > 0 else minimum
                    upper = min(upper, maximum)
                    lower = min(max(lower, minimum), upper)
                    position = (rank - (cumulative - bucket_count)) / bucket_count
                    estimate = lower + (upper - lower) * position
                    return min(max(estimate, minimum), maximum)
            return maximum

        return percentile(0.50), percentile(0.90), percentile(0.99)


class LatencySummaryView:
    """Mapping view over :meth:`LatencyProfile.summary`, built lazily.

    Trace events carry this instead of the summary dict so a search
    that nobody journals never pays for percentile summaries nobody
    reads; journal writers subscript the view, which computes (and
    memoizes) the summary on the underlying profile at that point.
    """

    __slots__ = ("profile",)

    def __init__(self, profile: LatencyProfile) -> None:
        self.profile = profile

    def __getitem__(self, key):
        return self.profile.summary()[key]

    def get(self, key, default=None):
        return self.profile.summary().get(key, default)

    def keys(self):
        return self.profile.summary().keys()

    def items(self):
        return self.profile.summary().items()

    def __iter__(self):
        return iter(self.profile.summary())

    def __len__(self):
        return len(self.profile.summary())

    def __eq__(self, other):
        if isinstance(other, LatencySummaryView):
            other = other.profile.summary()
        return self.profile.summary() == other

    def __repr__(self):
        return f"LatencySummaryView({self.profile.summary()!r})"


def latency_for_solve(subsystem: "Subsystem", solve) -> LatencyProfile:
    """:func:`derive_latency` memoized on the (frozen) solve object.

    The profile is a pure function of the solve, so duplicate points
    sharing one cached solve — MFS ladders re-probing a witness, chains
    of a population rediscovering each other's regions — share one
    profile computation too.  Cache-less paths get a fresh solve per
    evaluation and pay full price, exactly as before.
    """
    memo = getattr(solve, "_latency", None)
    if memo is None:
        memo = derive_latency(subsystem, solve.features, solve.directions)
        object.__setattr__(solve, "_latency", memo)
    return memo


def derive_latency(
    subsystem: "Subsystem",
    features: dict,
    directions: tuple[DirectionRates, ...],
) -> LatencyProfile:
    """Per-WR latency decomposition from one solved experiment.

    A pure scalar function of the solve outputs (feature vector and
    per-direction rates) plus subsystem constants: both the scalar and
    the batched evaluation paths call it on bit-identical inputs, so
    the resulting profiles are bit-identical too.  No RNG is consumed.
    See docs/MODEL.md ("Per-WR latency") for the derivation.
    """
    rnic = subsystem.rnic
    pcie = subsystem.pcie
    fwd = directions[0]

    # Deterministic floor: wire serialization of one message, the fixed
    # packet-engine pipeline traversal, the PCIe round trips a WR cannot
    # avoid (WQE fetch + amortized doorbell, payload DMA, and READ's
    # extra request round trip), and M/M/1-style queueing on the shared
    # PCIe link at its current utilization.
    achieved = fwd.achieved_msgs_per_sec
    wire_per_msg = fwd.wire_bytes_per_sec / achieved if achieved > 0 else 0.0
    serialization = wire_per_msg / rnic.line_rate_bytes_per_sec * 1e6
    pipeline = rnic.pipeline_latency_us
    round_trip = pcie.read_latency_us
    transfer = pcie.transfer_us(int(round(features["avg_msg"])))
    is_read = features["opcode"] == "READ"
    pcie_us = (
        round_trip
        + round_trip / features["wqe_batch"]
        + (round_trip if is_read else 0.0)
        + transfer
    )
    bytes_total = sum(d.payload_bytes_per_sec for d in directions)
    utilization = min(0.95, bytes_total / pcie.effective_bytes_per_sec)
    queueing = transfer * utilization / (1.0 - utilization)

    # Stall tail: each QPC/MTT/receive-WQE miss costs a refill round
    # trip, damped by the pipeline's refill hiding (the same smooth
    # pressure terms the diagnostic counters carry, so the tail has a
    # gradient before any quirk fires, but analytically bounded under
    # the monitor's trigger — see LATENCY_REFILL_VISIBILITY), and PFC
    # pause stretches the wire time.
    miss_fraction = (
        features["qpc_miss"]
        + 0.3 * pressure_score(features["total_qps"], rnic.qpc_cache_entries)
        + features["mtt_miss"]
        + 0.3 * pressure_score(features["total_mrs"], rnic.mtt_cache_entries)
        + min(1.0, features["rxq_capacity_miss"] + features["rxq_burst_miss"])
    )
    cache_us = miss_stall_us(
        miss_fraction * LATENCY_REFILL_VISIBILITY, round_trip
    )
    pause_ratio = max(d.pause_ratio for d in directions)
    pause_us = pause_stall_us(pause_ratio, serialization + transfer)

    # Latency quirks: capacity-neutral stalls from the part's
    # ``latency_rules`` table — the regimes where refill hiding breaks
    # down (serialized double refills, RNR backoff storms).  This is the
    # only term that can push the tail past the trigger multiple.
    stall_us = 0.0
    tags = []
    for rule, stall in fired_latency_rules(rnic.latency_rules, features):
        stall_us += stall
        tags.append(rule.tag)

    base = serialization + pipeline + pcie_us + queueing
    tail = cache_us + pause_us + stall_us
    return LatencyProfile(
        base_us=base,
        tail_mean_us=tail,
        components={
            "serialization_us": serialization,
            "pipeline_us": pipeline,
            "pcie_us": pcie_us,
            "queueing_us": queueing,
            "cache_us": cache_us,
            "pause_us": pause_us,
            "stall_us": stall_us,
        },
        tags=tuple(tags),
    )


@dataclasses.dataclass
class Measurement:
    """Everything one experiment produced.

    ``samples``/``counters`` are the observable surface (what the paper's
    monitor fetches from vendor tools); ``directions``, ``fired`` and
    ``features`` are simulation ground truth used by tests and the
    benchmark harness, never by the search itself.
    """

    workload: WorkloadDescriptor
    subsystem_name: str
    samples: list[CounterSample]
    counters: dict
    directions: tuple[DirectionRates, ...]
    fired: tuple[FiredRule, ...]
    features: dict
    #: Analytic per-WR latency distribution (:func:`derive_latency`).
    #: Optional so bare-hands Measurement construction in tests stays valid.
    latency: Optional[LatencyProfile] = None

    @property
    def pause_ratio(self) -> float:
        return max(d.pause_ratio for d in self.directions)

    @property
    def tags(self) -> tuple[str, ...]:
        """Ground-truth anomaly tags active in this experiment."""
        return tuple(sorted({f.tag for f in self.fired}))

    @property
    def total_packets_per_sec(self) -> float:
        return sum(d.packets_per_sec for d in self.directions)

    @property
    def min_direction_wire_gbps(self) -> float:
        return min(d.wire_gbps for d in self.directions)


class SteadyStateModel:
    """Resolves workloads against one subsystem.

    With an :class:`~repro.core.evalcache.EvalCache` attached, the
    deterministic half of each evaluation — feature extraction, rule
    firing, the per-direction solve and the ideal counter synthesis — is
    memoized by canonical workload point.  Observation noise is *never*
    cached: it is re-sampled from the caller's RNG on every call, hit or
    miss, consuming exactly the same draws either way, so attaching a
    cache cannot change any result bit.
    """

    def __init__(
        self,
        subsystem: "Subsystem",
        noise: float = 0.02,
        cache: Optional["EvalCache"] = None,
    ) -> None:
        self.subsystem = subsystem
        self.noise = noise
        self.cache = cache

    # -- public API -----------------------------------------------------------

    def evaluate(
        self,
        workload: WorkloadDescriptor,
        rng: Optional[np.random.Generator] = None,
        sample_seconds: int = 4,
        phase: str = "search",
    ) -> Measurement:
        """Run one experiment and return its measurement.

        ``sample_seconds`` mirrors the paper's monitor, which fetches
        counters four times per iteration and averages (§6).  ``phase``
        attributes the evaluation in the cache's statistics (``probe``,
        ``search``, ``mfs``...).
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        solve = self._solve(workload, phase)
        monitor = VendorMonitor(rng, noise=self.noise)
        samples = monitor.sample_window(solve.ideal_counters, sample_seconds)
        return Measurement(
            workload=workload,
            subsystem_name=self.subsystem.name,
            samples=samples,
            counters=average_counters(samples),
            directions=solve.directions,
            fired=solve.fired,
            features=solve.features,
            latency=latency_for_solve(self.subsystem, solve),
        )

    def evaluate_many(
        self,
        workloads: "list[WorkloadDescriptor]",
        rng: Optional[np.random.Generator] = None,
        sample_seconds: int = 4,
        phase: str = "search",
    ) -> list[Measurement]:
        """Batched :meth:`evaluate` — bit-identical to a scalar loop.

        The deterministic solve runs once per *unique* point as array
        arithmetic; observation noise is still drawn from ``rng`` in the
        exact per-point order of the scalar loop (one flat draw sliced
        per point — provably the same stream).  See
        :mod:`repro.core.batcheval` for the engine.
        """
        from repro.core.batcheval import BatchEvaluator

        return BatchEvaluator(self).evaluate_many(
            workloads, rng=rng, sample_seconds=sample_seconds, phase=phase
        )

    def solve_points(self, workloads: "list[WorkloadDescriptor]") -> list:
        """Deterministic solves for a set of points — the batch seam.

        The batch evaluator calls this instead of reaching for
        :func:`solve_batch` directly, so model subclasses with a
        different datapath (:class:`~repro.hardware.coexist.CoRunModel`)
        plug into batched evaluation by overriding one method.
        Workloads are assumed validated and deduplicated by the caller.
        """
        return solve_batch(self.subsystem, workloads)

    def _solve(self, workload: WorkloadDescriptor, phase: str):
        """Deterministic solve, memoized when a cache is attached."""
        from repro.core.evalcache import CachedSolve

        cache = self.cache
        if cache is not None:
            cached = cache.lookup(self.subsystem, workload, phase=phase)
            if cached is not None:
                return cached
        started = time.perf_counter()
        self._validate(workload)
        features = extract_features(workload, self.subsystem)
        fired = tuple(fired_rules(self.subsystem.rnic.rules, features))
        directions = self._solve_directions(workload, features, fired)
        ideal = self._ideal_counters(workload, features, fired, directions)
        solve = CachedSolve(
            directions=directions,
            fired=fired,
            features=features,
            ideal_counters=ideal,
        )
        if cache is not None:
            cache.store(self.subsystem, workload, solve)
            cache.charge("solve", time.perf_counter() - started)
        return solve

    # -- validation -----------------------------------------------------------

    def _validate(self, workload: WorkloadDescriptor) -> None:
        """Reject workloads that no real testbed could even set up."""
        topo = self.subsystem.topology
        for device in (workload.src_device, workload.dst_device):
            if not topo.has_device(device):
                raise ValueError(
                    f"subsystem {self.subsystem.name} has no memory device "
                    f"{device!r}; available: {topo.device_names()}"
                )

    # -- per-direction solving ---------------------------------------------

    def _solve_directions(
        self,
        workload: WorkloadDescriptor,
        features: dict,
        fired: tuple[FiredRule, ...],
    ) -> tuple[DirectionRates, ...]:
        tx_factor = math.prod(
            f.factor for f in fired if f.rule.side == "tx"
        )
        rx_factor = math.prod(
            f.factor for f in fired if f.rule.side == "rx"
        )
        names_devices = [("fwd", workload.src_device, workload.dst_device)]
        if workload.is_bidirectional:
            names_devices.append(("rev", workload.dst_device, workload.src_device))
        return tuple(
            self._solve_one(workload, features, name, src, dst, tx_factor, rx_factor)
            for name, src, dst in names_devices
        )

    def _solve_one(
        self,
        w: WorkloadDescriptor,
        features: dict,
        name: str,
        src_device: str,
        dst_device: str,
        tx_factor: float,
        rx_factor: float,
    ) -> DirectionRates:
        rnic = self.subsystem.rnic
        pcie = self.subsystem.pcie
        topo = self.subsystem.topology

        payload = w.avg_msg_bytes
        data_pkts = w.packets_per_message()
        wire_per_msg = sum(
            s + w.packets_per_message(s) * ROCE_HEADER_BYTES
            for s in w.msg_sizes_bytes
        ) / len(w.msg_sizes_bytes)
        pkt_events = self._packet_events_per_message(w, data_pkts, rnic.ack_coalesce)

        # WQE issue cost: the initiator fetches its WQEs over PCIe; the
        # doorbell and the batch's TLP header amortise over the batch.
        # Cache-refill and receive-WQE-refetch traffic is deliberately NOT
        # charged here: the RNIC pipeline hides those penalties except in
        # the regimes Appendix A describes, which enter through the quirk
        # rules — keeping the structural accounting conservative ensures a
        # workload is anomalous if and only if a documented rule fires.
        issue_down = (
            w.wqe_bytes + (TLP_HEADER_BYTES + DOORBELL_BYTES) / w.wqe_batch
        )
        payload_down = pcie.transfer_bytes(int(round(payload)))
        payload_up = payload_down

        if w.opcode is Opcode.READ:
            # The data receiver is the initiator: it issues the read WQEs
            # and absorbs the response payload.
            sender_down = payload_down
            sender_up = 0.0
            receiver_down = issue_down
            receiver_up = payload_up + CQE_BYTES
        else:
            sender_down = payload_down + issue_down
            sender_up = CQE_BYTES
            receiver_down = 0.0
            receiver_up = payload_up + (CQE_BYTES if w.uses_recv_wqes else 0.0)

        pcie_budget = pcie.effective_bytes_per_sec
        if w.is_bidirectional:
            # Each NIC plays sender for one direction and receiver for the
            # other, sharing each PCIe bus direction between the two roles.
            cap_down = pcie_budget / max(sender_down + receiver_down, 1e-9)
            cap_up = pcie_budget / max(sender_up + receiver_up, 1e-9)
        else:
            cap_down = pcie_budget / max(sender_down, receiver_down, 1e-9)
            cap_up = pcie_budget / max(sender_up, receiver_up, 1e-9)

        wire_cap = rnic.line_rate_bytes_per_sec / wire_per_msg
        pps_budget = rnic.max_pps / (2 if w.is_bidirectional else 1)
        pps_cap = pps_budget / pkt_events

        src_path = topo.dma_path(src_device)
        dst_path = topo.dma_path(dst_device)
        tx_dma_cap = self._dma_cap(src_path.bandwidth_gbps, payload)
        rx_dma_cap = self._dma_cap(dst_path.bandwidth_gbps, payload)

        sender_pcie_cap = cap_down if w.opcode is Opcode.READ else min(
            cap_down, cap_up
        )
        receiver_pcie_cap = min(cap_down, cap_up)

        # A sender that idles between requests (duty cycle < 1, the §8
        # inter-arrival extension) offers proportionally less load; the
        # receiver-side effects then only manifest when the *offered*
        # rate still exceeds the degraded service rate.
        injection = (
            min(wire_cap, pps_cap, sender_pcie_cap, tx_dma_cap)
            * tx_factor
            * w.duty_cycle
        )
        service = (
            min(pps_cap, receiver_pcie_cap, rx_dma_cap, wire_cap) * rx_factor
        )
        achieved = min(injection, service)
        pause = steady_state_pause_ratio(injection, service)
        return DirectionRates(
            name=name,
            achieved_msgs_per_sec=achieved,
            injection_msgs_per_sec=injection,
            payload_bytes_per_sec=achieved * payload,
            wire_bytes_per_sec=achieved * wire_per_msg,
            packets_per_sec=achieved * pkt_events,
            pause_ratio=pause,
        )

    @staticmethod
    def _dma_cap(bandwidth_gbps: float, payload: float) -> float:
        if math.isinf(bandwidth_gbps):
            return math.inf
        return bandwidth_gbps * 1e9 / 8 / max(payload, 1.0)

    @staticmethod
    def _packet_events_per_message(
        w: WorkloadDescriptor, data_pkts: float, ack_coalesce: int
    ) -> float:
        """Packet-processing events per message, including ACK traffic."""
        if w.qp_type is QPType.RC:
            if w.opcode is Opcode.READ:
                return data_pkts + 1.0  # response packets + read request
            return data_pkts * (1.0 + 1.0 / ack_coalesce)
        return data_pkts

    # -- counters -----------------------------------------------------------

    def _ideal_counters(
        self,
        w: WorkloadDescriptor,
        features: dict,
        fired: tuple[FiredRule, ...],
        directions: tuple[DirectionRates, ...],
    ) -> dict:
        rnic = self.subsystem.rnic
        rxq = rnic.rx_wqe_cache
        fwd = directions[0]
        rev = directions[1] if len(directions) > 1 else None

        msgs_total = sum(d.achieved_msgs_per_sec for d in directions)
        pkts_total = sum(d.packets_per_sec for d in directions)
        bytes_total = sum(d.payload_bytes_per_sec for d in directions)
        pause_ratio = max(d.pause_ratio for d in directions)

        counters: dict = {
            "tx_bytes_per_sec": fwd.wire_bytes_per_sec,
            "rx_bytes_per_sec": rev.wire_bytes_per_sec if rev else 0.0,
            "tx_packets_per_sec": fwd.packets_per_sec,
            "rx_packets_per_sec": rev.packets_per_sec if rev else 0.0,
            "pause_duration_us_per_sec": pause_ratio * 1e6,
        }

        # Diagnostic counters: a smooth pressure term (the gradient the
        # search climbs) plus the realised miss/stall events.
        if w.uses_recv_wqes:
            # Multi-packet SENDs pin their receive WQE across all packets
            # of the message, so mid-size messages at small MTU stress the
            # cache harder than single-packet ones.
            pinning = 1.0 + min(w.packets_per_message(), 8.0) / 4.0
            rx_wqe = (
                min(1.0, features["rxq_capacity_miss"] + features["rxq_burst_miss"])
                + 0.3 * pressure_score(
                    w.total_outstanding_recv_wqes, rxq.total_entries
                )
                + 0.2
                * pressure_score(w.wq_depth, max(rxq.per_qp_entries, 1))
                * (w.wqe_batch / (w.wqe_batch + rxq.prefetch_window))
            ) * msgs_total * pinning
        else:
            rx_wqe = 0.0

        # Context-switch intensity: shallow work queues and unbatched
        # posting force the scheduler to rotate across QPs per request,
        # touching a different QPC each time; deep per-QP bursts keep the
        # context hot.
        switch_intensity = (
            32.0 / (32.0 + w.wq_depth) + 2.0 / (2.0 + w.wqe_batch)
        )
        qpc = (
            features["qpc_miss"]
            + 0.3 * pressure_score(features["total_qps"], rnic.qpc_cache_entries)
        ) * msgs_total * switch_intensity
        mtt = (
            features["mtt_miss"]
            + 0.3 * pressure_score(w.total_mrs, rnic.mtt_cache_entries)
        ) * msgs_total

        mix = features["small_frac"] * features["large_frac"] * 4.0
        ordering = (
            features["strict_ordering"]
            * (0.3 + 0.7 * features["bidirectional"])
            * min(1.0, w.sge_per_wqe / 3.0)
            * (0.3 + 0.7 * features["sg_entry_mix"])
            * (mix + 0.05)
            * pkts_total
            * 0.1
        )

        cross_socket = (
            features["crosses_socket"]
            * (1.0 + features["bidirectional"])
            * (1.0 + features["weak_cross_socket"])
            * bytes_total
            * 1e-5
        )

        incast = features["loopback"] * msgs_total * (
            0.5 if not rnic.loopback_rate_limited else 0.1
        )

        overload = max(
            0.0,
            max(
                (d.injection_msgs_per_sec / d.achieved_msgs_per_sec - 1.0)
                if d.achieved_msgs_per_sec > 0
                else 0.0
                for d in directions
            ),
        )
        read_pressure = (
            (1.0 if w.opcode is Opcode.READ else 0.0)
            * min(1.0, w.packets_per_message() / 16.0)
            * (1024.0 / w.mtu)
        )
        # Short-request storms pressure the shared (not fully
        # bidirectional) packet processor from both sides at once; RC's
        # packet-level ACKs add processing events per request, and the
        # storm only blocks anything when long messages are present.
        rc_ack_load = 1.5 if w.qp_type is QPType.RC else 1.0
        short_pressure = (
            pressure_score(
                features["short_req_outstanding"]
                * (1.0 + features["bidirectional"])
                * rc_ack_load,
                # Knee past the quirk threshold so the gradient survives
                # through the whole approach to the trigger region.
                4 * 12288,
            )
            * (0.4 + 0.6 * min(1.0, 4.0 * features["large_frac"]))
            * rc_ack_load
        )
        rx_buffer = (
            pause_ratio * 10.0
            + min(overload, 10.0)
            + 0.5 * short_pressure
            + 0.3 * read_pressure
        ) * 1e4

        # WQE-fetch pressure doubles for bidirectional traffic (both NICs
        # fetch) and grows for READ (response-tracking state per WQE).
        wqe_pressure_bytes = (
            features["wqe_outstanding_bytes"]
            * (1.0 + features["bidirectional"])
            * (1.5 if w.opcode is Opcode.READ else 1.0)
        )
        tx_wqe_fetch = (
            pressure_score(wqe_pressure_bytes, 256 * 1024)
            + 0.2 * min(1.0, w.sge_per_wqe / 4.0)
        ) * msgs_total * 0.1

        down_util = min(1.0, bytes_total / self.subsystem.pcie.effective_bytes_per_sec)
        backpressure = (down_util ** 2) * 5e3

        counters.update(
            {
                "rx_wqe_cache_miss": rx_wqe,
                "qpc_cache_miss": qpc,
                "mtt_cache_miss": mtt,
                "pcie_ordering_stall": ordering,
                "cross_socket_pressure": cross_socket,
                "internal_incast_events": incast,
                "rx_buffer_full_events": rx_buffer,
                "tx_wqe_fetch_stall": tx_wqe_fetch,
                "pcie_internal_backpressure": backpressure,
            }
        )

        # A fired quirk drives its designated counter to an extreme region
        # (paper §7.2: "most anomalies are found when the diagnostic
        # counter value is high").
        for fired_rule in fired:
            spike = (1.0 - fired_rule.factor) * max(msgs_total, 1.0) * 2.0
            counters[fired_rule.rule.counter] = (
                counters.get(fired_rule.rule.counter, 0.0) + spike
            )
        return counters


# -- batched (column-wise) solving --------------------------------------------


def _pressure_column(working_set, capacity: float, n: int, knee: float = 1.0):
    """Vector :func:`~repro.hardware.caches.pressure_score`."""
    if capacity <= 0:
        return np.ones(n)
    x = working_set / (capacity * knee)
    return x / (1.0 + x)


def solve_batch(subsystem: "Subsystem", workloads: "list[WorkloadDescriptor]"):
    """Vectorized deterministic solve of N workload points.

    The exact computation of :meth:`SteadyStateModel._solve` — feature
    extraction, rule gating, per-direction steady-state solve, ideal
    counter synthesis — restated as float64 column arithmetic.  Every
    step applies the same IEEE operations in the same order as the
    scalar path, so the returned :class:`CachedSolve` entries are
    bit-identical to scalar solves (the one pow-vs-multiply hazard,
    ``down_util ** 2``, is deliberately kept per point).  Workloads are
    assumed validated; callers dedupe and cache around this function
    (:mod:`repro.core.batcheval`).
    """
    from repro.core.evalcache import CachedSolve
    from repro.hardware.features import (
        extract_feature_columns,
        materialize_features,
    )
    from repro.hardware.rules import batch_fired_rules, materialize_fired

    n = len(workloads)
    if n == 0:
        return []
    rnic = subsystem.rnic
    rxq = rnic.rx_wqe_cache
    pcie = subsystem.pcie

    columns, extra = extract_feature_columns(workloads, subsystem)
    rule_rows, tx_factor, rx_factor = batch_fired_rules(
        rnic.rules, columns, n
    )

    bidi = extra["_bidi"]
    is_rc = extra["_is_rc"]
    is_read = extra["_is_read"]
    uses_recv = extra["_uses_recv"]
    wire_per_msg = extra["_wire_per_msg"]
    wqe_bytes = extra["_wqe_bytes"]
    payload = columns["avg_msg"]
    data_pkts = columns["avg_pkts_per_msg"]
    wqe_batch = columns["wqe_batch"]
    duty = columns["duty_cycle"]

    # -- per-direction resource pricing (mirrors _solve_one) ------------------
    issue_down = wqe_bytes + (TLP_HEADER_BYTES + DOORBELL_BYTES) / wqe_batch
    payload_int = np.rint(payload).astype(np.int64)
    mps = pcie.max_payload_bytes
    payload_down = np.where(
        payload_int <= 0,
        np.int64(0),
        payload_int + (-(-payload_int // mps)) * TLP_HEADER_BYTES,
    ).astype(np.float64)
    payload_up = payload_down

    cqe = float(CQE_BYTES)
    sender_down = np.where(is_read, payload_down, payload_down + issue_down)
    sender_up = np.where(is_read, 0.0, cqe)
    receiver_down = np.where(is_read, issue_down, 0.0)
    receiver_up = np.where(
        is_read,
        payload_up + cqe,
        payload_up + np.where(uses_recv, cqe, 0.0),
    )

    budget = pcie.effective_bytes_per_sec
    down_denom = np.where(
        bidi,
        sender_down + receiver_down,
        np.maximum(sender_down, receiver_down),
    )
    up_denom = np.where(
        bidi, sender_up + receiver_up, np.maximum(sender_up, receiver_up)
    )
    cap_down = budget / np.maximum(down_denom, 1e-9)
    cap_up = budget / np.maximum(up_denom, 1e-9)

    wire_cap = rnic.line_rate_bytes_per_sec / wire_per_msg
    pps_budget = np.where(bidi, rnic.max_pps / 2, rnic.max_pps / 1)
    rc_ack_mult = 1.0 + 1.0 / rnic.ack_coalesce
    pkt_events = np.where(
        is_rc & is_read,
        data_pkts + 1.0,
        np.where(is_rc, data_pkts * rc_ack_mult, data_pkts),
    )
    pps_cap = pps_budget / pkt_events

    payload_floor = np.maximum(payload, 1.0)
    src_dma = extra["_src_bw"] * 1e9 / 8 / payload_floor
    dst_dma = extra["_dst_bw"] * 1e9 / 8 / payload_floor

    receiver_pcie_cap = np.minimum(cap_down, cap_up)
    sender_pcie_cap = np.where(is_read, cap_down, receiver_pcie_cap)

    def direction(tx_dma, rx_dma):
        injection = (
            np.minimum(
                np.minimum(np.minimum(wire_cap, pps_cap), sender_pcie_cap),
                tx_dma,
            )
            * tx_factor
            * duty
        )
        service = (
            np.minimum(
                np.minimum(np.minimum(pps_cap, receiver_pcie_cap), rx_dma),
                wire_cap,
            )
            * rx_factor
        )
        achieved = np.minimum(injection, service)
        with np.errstate(divide="ignore", invalid="ignore"):
            starved = 1.0 - service / injection
        pause = np.where(
            injection <= 0.0,
            0.0,
            np.where(
                service >= injection,
                0.0,
                np.where(service <= 0.0, 1.0, starved),
            ),
        )
        return {
            "achieved": achieved,
            "injection": injection,
            "payload": achieved * payload,
            "wire": achieved * wire_per_msg,
            "packets": achieved * pkt_events,
            "pause": pause,
        }

    fwd = direction(src_dma, dst_dma)
    rev = direction(dst_dma, src_dma)  # only consumed where bidi

    # -- counter synthesis (mirrors _ideal_counters) --------------------------
    msgs_total = fwd["achieved"] + np.where(bidi, rev["achieved"], 0.0)
    pkts_total = fwd["packets"] + np.where(bidi, rev["packets"], 0.0)
    bytes_total = fwd["payload"] + np.where(bidi, rev["payload"], 0.0)
    pause_ratio = np.where(
        bidi, np.maximum(fwd["pause"], rev["pause"]), fwd["pause"]
    )

    pinning = 1.0 + np.minimum(data_pkts, 8.0) / 4.0
    total_recv = columns["num_qps"] * columns["wq_depth"]
    rx_wqe = np.where(
        uses_recv,
        (
            np.minimum(
                1.0,
                columns["rxq_capacity_miss"] + columns["rxq_burst_miss"],
            )
            + 0.3 * _pressure_column(total_recv, rxq.total_entries, n)
            + 0.2
            * _pressure_column(
                columns["wq_depth"], max(rxq.per_qp_entries, 1), n
            )
            * (wqe_batch / (wqe_batch + rxq.prefetch_window))
        )
        * msgs_total
        * pinning,
        0.0,
    )

    switch_intensity = (
        32.0 / (32.0 + columns["wq_depth"]) + 2.0 / (2.0 + wqe_batch)
    )
    qpc = (
        columns["qpc_miss"]
        + 0.3
        * _pressure_column(columns["total_qps"], rnic.qpc_cache_entries, n)
    ) * msgs_total * switch_intensity
    mtt = (
        columns["mtt_miss"]
        + 0.3
        * _pressure_column(columns["total_mrs"], rnic.mtt_cache_entries, n)
    ) * msgs_total

    mix = columns["small_frac"] * columns["large_frac"] * 4.0
    ordering = (
        columns["strict_ordering"]
        * (0.3 + 0.7 * columns["bidirectional"])
        * np.minimum(1.0, columns["sge_per_wqe"] / 3.0)
        * (0.3 + 0.7 * columns["sg_entry_mix"])
        * (mix + 0.05)
        * pkts_total
        * 0.1
    )

    cross_socket = (
        columns["crosses_socket"]
        * (1.0 + columns["bidirectional"])
        * (1.0 + columns["weak_cross_socket"])
        * bytes_total
        * 1e-5
    )

    incast = columns["loopback"] * msgs_total * (
        0.5 if not rnic.loopback_rate_limited else 0.1
    )

    with np.errstate(divide="ignore", invalid="ignore"):
        over_fwd = np.where(
            fwd["achieved"] > 0,
            fwd["injection"] / fwd["achieved"] - 1.0,
            0.0,
        )
        over_rev = np.where(
            rev["achieved"] > 0,
            rev["injection"] / rev["achieved"] - 1.0,
            0.0,
        )
    overload = np.maximum(
        0.0, np.where(bidi, np.maximum(over_fwd, over_rev), over_fwd)
    )
    read_pressure = (
        np.where(is_read, 1.0, 0.0)
        * np.minimum(1.0, data_pkts / 16.0)
        * (1024.0 / columns["mtu"])
    )
    rc_ack_load = np.where(is_rc, 1.5, 1.0)
    short_pressure = (
        _pressure_column(
            columns["short_req_outstanding"]
            * (1.0 + columns["bidirectional"])
            * rc_ack_load,
            4 * 12288,
            n,
        )
        * (0.4 + 0.6 * np.minimum(1.0, 4.0 * columns["large_frac"]))
        * rc_ack_load
    )
    rx_buffer = (
        pause_ratio * 10.0
        + np.minimum(overload, 10.0)
        + 0.5 * short_pressure
        + 0.3 * read_pressure
    ) * 1e4

    wqe_pressure_bytes = (
        columns["wqe_outstanding_bytes"]
        * (1.0 + columns["bidirectional"])
        * np.where(is_read, 1.5, 1.0)
    )
    tx_wqe_fetch = (
        _pressure_column(wqe_pressure_bytes, 256 * 1024, n)
        + 0.2 * np.minimum(1.0, columns["sge_per_wqe"] / 4.0)
    ) * msgs_total * 0.1

    down_util = np.minimum(1.0, bytes_total / pcie.effective_bytes_per_sec)
    # Python pow: scalar ``u ** 2`` is not always the same float as a
    # multiply, so this one term stays per point.
    backpressure = [(u ** 2) * 5e3 for u in down_util.tolist()]

    # -- per-point materialization --------------------------------------------
    feature_dicts = materialize_features(columns, n)
    fired_lists = materialize_fired(rule_rows, n)

    bidi_list = bidi.tolist()
    col = {
        "fwd_achieved": fwd["achieved"].tolist(),
        "fwd_injection": fwd["injection"].tolist(),
        "fwd_payload": fwd["payload"].tolist(),
        "fwd_wire": fwd["wire"].tolist(),
        "fwd_packets": fwd["packets"].tolist(),
        "fwd_pause": fwd["pause"].tolist(),
        "rev_achieved": rev["achieved"].tolist(),
        "rev_injection": rev["injection"].tolist(),
        "rev_payload": rev["payload"].tolist(),
        "rev_wire": rev["wire"].tolist(),
        "rev_packets": rev["packets"].tolist(),
        "rev_pause": rev["pause"].tolist(),
        "pause_us": (pause_ratio * 1e6).tolist(),
        "msgs_total": msgs_total.tolist(),
        "rx_wqe": rx_wqe.tolist(),
        "qpc": qpc.tolist(),
        "mtt": mtt.tolist(),
        "ordering": ordering.tolist(),
        "cross_socket": cross_socket.tolist(),
        "incast": incast.tolist(),
        "rx_buffer": rx_buffer.tolist(),
        "tx_wqe_fetch": tx_wqe_fetch.tolist(),
    }

    solves = []
    for i in range(n):
        directions = [
            DirectionRates(
                name="fwd",
                achieved_msgs_per_sec=col["fwd_achieved"][i],
                injection_msgs_per_sec=col["fwd_injection"][i],
                payload_bytes_per_sec=col["fwd_payload"][i],
                wire_bytes_per_sec=col["fwd_wire"][i],
                packets_per_sec=col["fwd_packets"][i],
                pause_ratio=col["fwd_pause"][i],
            )
        ]
        two_sided = bidi_list[i]
        if two_sided:
            directions.append(
                DirectionRates(
                    name="rev",
                    achieved_msgs_per_sec=col["rev_achieved"][i],
                    injection_msgs_per_sec=col["rev_injection"][i],
                    payload_bytes_per_sec=col["rev_payload"][i],
                    wire_bytes_per_sec=col["rev_wire"][i],
                    packets_per_sec=col["rev_packets"][i],
                    pause_ratio=col["rev_pause"][i],
                )
            )
        counters = {
            "tx_bytes_per_sec": col["fwd_wire"][i],
            "rx_bytes_per_sec": col["rev_wire"][i] if two_sided else 0.0,
            "tx_packets_per_sec": col["fwd_packets"][i],
            "rx_packets_per_sec": col["rev_packets"][i] if two_sided else 0.0,
            "pause_duration_us_per_sec": col["pause_us"][i],
            "rx_wqe_cache_miss": col["rx_wqe"][i],
            "qpc_cache_miss": col["qpc"][i],
            "mtt_cache_miss": col["mtt"][i],
            "pcie_ordering_stall": col["ordering"][i],
            "cross_socket_pressure": col["cross_socket"][i],
            "internal_incast_events": col["incast"][i],
            "rx_buffer_full_events": col["rx_buffer"][i],
            "tx_wqe_fetch_stall": col["tx_wqe_fetch"][i],
            "pcie_internal_backpressure": backpressure[i],
        }
        fired = fired_lists[i]
        for fired_rule in fired:
            spike = (
                (1.0 - fired_rule.factor)
                * max(col["msgs_total"][i], 1.0)
                * 2.0
            )
            counters[fired_rule.rule.counter] = (
                counters.get(fired_rule.rule.counter, 0.0) + spike
            )
        solves.append(
            CachedSolve(
                directions=tuple(directions),
                fired=tuple(fired),
                features=feature_dicts[i],
                ideal_counters=counters,
            )
        )
    return solves
