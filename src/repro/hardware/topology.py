"""Host topology: sockets, NUMA nodes, memory devices, and DMA paths.

Dimension 1 of Collie's search space is *where traffic comes from inside a
server* (paper §4): NUMA-affinitive DRAM, DRAM on the other socket, or GPU
memory behind a PCIe bridge.  This module models enough of the server's
interconnect to price each choice: a DMA path has a latency and a bandwidth
ceiling, and flags describing which shared links it crosses.
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class MemoryDevice:
    """One physical memory a workload can register MRs on."""

    name: str  #: e.g. ``numa0``, ``numa1``, ``gpu0``.
    kind: str  #: ``dram`` or ``gpu``.
    socket: int  #: CPU socket the device hangs off.
    #: For GPUs: whether the GPU shares a PCIe bridge with the RNIC
    #: (``nvidia-smi`` PIX/PXB).  DRAM ignores this.
    same_bridge_as_rnic: bool = False


@dataclasses.dataclass(frozen=True)
class DMAPath:
    """Resolved path between the RNIC and a memory device."""

    device: MemoryDevice
    latency_ns: float  #: one-way DMA latency.
    bandwidth_gbps: float  #: ceiling imposed by the narrowest crossed link.
    crosses_socket: bool
    via_root_complex: bool  #: GPU traffic detoured through the root complex.


@dataclasses.dataclass(frozen=True)
class HostTopology:
    """A dual-socket server as seen from its RNIC.

    The RNIC is attached to ``rnic_socket`` (always socket 0 in the Table 1
    testbeds).  ``smp_bandwidth_gbps`` and ``smp_extra_latency_ns`` describe
    the inter-socket fabric (UPI/xGMI); the paper's anomaly #11 lives in
    servers where that fabric handles cross-socket DMA poorly.
    """

    name: str
    memory_devices: tuple[MemoryDevice, ...]
    rnic_socket: int = 0
    local_dma_latency_ns: float = 600.0
    smp_extra_latency_ns: float = 500.0
    smp_bandwidth_gbps: float = 300.0
    gpu_bridge_latency_ns: float = 250.0
    #: Root-complex detour cost when PCIe ACSCtl forces GPU traffic up to
    #: the CPU instead of peer-to-peer through the shared bridge.  The
    #: bandwidth ceiling is kept above any RNIC line rate on purpose: the
    #: *observable* performance effects of the detour are owned by the
    #: quirk rules (anomaly #12), so the structural model never creates
    #: anomalies the rule table does not document.
    root_complex_extra_latency_ns: float = 900.0
    root_complex_bandwidth_gbps: float = 250.0
    #: Whether the PCIe bridges are configured for direct peer-to-peer
    #: (correct ACSCtl).  Misconfiguration is the trigger of anomaly #12.
    acsctl_correct: bool = True

    def device(self, name: str) -> MemoryDevice:
        """Look up a memory device by name."""
        for dev in self.memory_devices:
            if dev.name == name:
                return dev
        raise KeyError(
            f"host {self.name!r} has no memory device {name!r}; "
            f"available: {[d.name for d in self.memory_devices]}"
        )

    def device_names(self) -> list[str]:
        """All placement choices for the search space's topology dimension."""
        return [dev.name for dev in self.memory_devices]

    def has_device(self, name: str) -> bool:
        return any(dev.name == name for dev in self.memory_devices)

    def has_gpu(self) -> bool:
        return any(dev.kind == "gpu" for dev in self.memory_devices)

    def dma_path(self, device_name: str) -> DMAPath:
        """Resolve the DMA path from the RNIC to a memory device."""
        dev = self.device(device_name)
        latency = self.local_dma_latency_ns
        bandwidth = float("inf")
        crosses_socket = dev.socket != self.rnic_socket
        via_root_complex = False
        if crosses_socket:
            latency += self.smp_extra_latency_ns
            bandwidth = min(bandwidth, self.smp_bandwidth_gbps)
        if dev.kind == "gpu":
            latency += self.gpu_bridge_latency_ns
            if not (dev.same_bridge_as_rnic and self.acsctl_correct):
                via_root_complex = True
                latency += self.root_complex_extra_latency_ns
                bandwidth = min(bandwidth, self.root_complex_bandwidth_gbps)
        return DMAPath(
            device=dev,
            latency_ns=latency,
            bandwidth_gbps=bandwidth,
            crosses_socket=crosses_socket,
            via_root_complex=via_root_complex,
        )


def dual_socket_host(
    name: str,
    numa_per_socket: int = 1,
    gpus: int = 0,
    gpu_same_bridge: bool = True,
    acsctl_correct: bool = True,
    smp_bandwidth_gbps: float = 300.0,
    smp_extra_latency_ns: float = 500.0,
) -> HostTopology:
    """Build the standard dual-socket testbed host of Table 1.

    NUMA nodes are named ``numa0..numaN`` interleaved across sockets
    (socket = node index // numa_per_socket); GPUs are ``gpu0..``, all on
    socket 0 (the RNIC socket) like the testbed's A100/V100 machines.
    """
    devices = []
    for node in range(2 * numa_per_socket):
        devices.append(
            MemoryDevice(
                name=f"numa{node}",
                kind="dram",
                socket=node // numa_per_socket,
            )
        )
    for gpu in range(gpus):
        devices.append(
            MemoryDevice(
                name=f"gpu{gpu}",
                kind="gpu",
                socket=0,
                same_bridge_as_rnic=gpu_same_bridge,
            )
        )
    return HostTopology(
        name=name,
        memory_devices=tuple(devices),
        smp_bandwidth_gbps=smp_bandwidth_gbps,
        smp_extra_latency_ns=smp_extra_latency_ns,
        acsctl_correct=acsctl_correct,
    )
