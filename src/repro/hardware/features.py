"""Workload feature extraction for the rule gates and pressure counters.

Turns a :class:`~repro.hardware.workload.WorkloadDescriptor` evaluated on a
concrete subsystem into a flat feature vector: the raw search dimensions,
the derived verbs-level quantities (packets per message, WQE bytes), the
cache-model outputs (miss fractions), and the host/platform flags (strict
PCIe ordering, cross-socket paths).  Both the quirk gates
(:mod:`repro.hardware.rules`) and the diagnostic-counter pressures read
this vector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.caches import steady_state_miss_rate
from repro.hardware.workload import WorkloadDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.subsystems import Subsystem


def extract_features(
    workload: WorkloadDescriptor, subsystem: "Subsystem"
) -> dict:
    """Compute the feature vector of a workload on a subsystem."""
    rnic = subsystem.rnic
    rxq = rnic.rx_wqe_cache
    src_path = subsystem.topology.dma_path(workload.src_device)
    dst_path = subsystem.topology.dma_path(workload.dst_device)

    # Receive-WQE cache paths only exist for 2-sided traffic.
    if workload.uses_recv_wqes:
        rxq_capacity_miss = rxq.capacity_miss(workload.total_outstanding_recv_wqes)
        rxq_burst_miss = rxq.burst_miss(workload.wq_depth, workload.wqe_batch)
    else:
        rxq_capacity_miss = 0.0
        rxq_burst_miss = 0.0

    qps_working_set = workload.num_qps * (2 if workload.is_bidirectional else 1)
    qpc_miss = steady_state_miss_rate(qps_working_set, rnic.qpc_cache_entries)
    mtt_miss = steady_state_miss_rate(workload.total_mrs, rnic.mtt_cache_entries)

    features: dict = {
        # raw transport dimensions
        "qp_type": workload.qp_type.value,
        "opcode": workload.opcode.value,
        "bidirectional": 1.0 if workload.is_bidirectional else 0.0,
        "mtu": float(workload.mtu),
        "num_qps": float(workload.num_qps),
        "total_qps": float(qps_working_set),
        "wqe_batch": float(workload.wqe_batch),
        "sge_per_wqe": float(workload.sge_per_wqe),
        "wq_depth": float(workload.wq_depth),
        # message pattern
        "avg_msg": workload.avg_msg_bytes,
        "min_msg": float(workload.min_msg_bytes),
        "max_msg": float(workload.max_msg_bytes),
        "avg_pkts_per_msg": workload.packets_per_message(),
        "small_frac": workload.small_message_fraction,
        "large_frac": workload.large_message_fraction,
        "mixes_small_and_large": 1.0 if workload.mixes_small_and_large else 0.0,
        "sg_entry_mix": 1.0 if workload.sg_entry_mix else 0.0,
        "sg_layout": workload.sg_layout.value,
        # memory allocation
        "mrs_per_qp": float(workload.mrs_per_qp),
        "total_mrs": float(workload.total_mrs),
        "mr_bytes": float(workload.mr_bytes),
        # derived cache metrics
        "rxq_capacity_miss": rxq_capacity_miss,
        "rxq_burst_miss": rxq_burst_miss,
        "qpc_miss": qpc_miss,
        "mtt_miss": mtt_miss,
        # load-shape aggregates used by the packet-processing quirks
        "short_req_outstanding": (
            workload.num_qps * workload.wqe_batch * workload.small_message_fraction
        ),
        "wqe_outstanding_bytes": float(
            workload.num_qps * workload.wqe_batch * workload.wqe_bytes
        ),
        # host topology and platform flags
        "src_device": workload.src_device,
        "dst_device": workload.dst_device,
        "crosses_socket": 1.0
        if (src_path.crosses_socket or dst_path.crosses_socket)
        else 0.0,
        "via_root_complex": 1.0
        if (src_path.via_root_complex or dst_path.via_root_complex)
        else 0.0,
        # The data *sink* sits behind a root-complex detour: the forward
        # direction's destination always counts; with bidirectional
        # traffic the source memory is the reverse direction's sink.
        "sink_via_root_complex": 1.0
        if (
            dst_path.via_root_complex
            or (workload.is_bidirectional and src_path.via_root_complex)
        )
        else 0.0,
        "uses_gpu_memory": 1.0
        if (src_path.device.kind == "gpu" or dst_path.device.kind == "gpu")
        else 0.0,
        "loopback": 1.0 if workload.has_loopback else 0.0,
        "duty_cycle": workload.duty_cycle,
        "strict_ordering": 0.0 if subsystem.pcie.relaxed_ordering else 1.0,
        "weak_cross_socket": 1.0 if subsystem.weak_cross_socket else 0.0,
        "loopback_unlimited": 0.0 if rnic.loopback_rate_limited else 1.0,
    }
    return features
