"""Workload feature extraction for the rule gates and pressure counters.

Turns a :class:`~repro.hardware.workload.WorkloadDescriptor` evaluated on a
concrete subsystem into a flat feature vector: the raw search dimensions,
the derived verbs-level quantities (packets per message, WQE bytes), the
cache-model outputs (miss fractions), and the host/platform flags (strict
PCIe ordering, cross-socket paths).  Both the quirk gates
(:mod:`repro.hardware.rules`) and the diagnostic-counter pressures read
this vector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.hardware.caches import steady_state_miss_rate
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import ROCE_HEADER_BYTES, Opcode, QPType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.subsystems import Subsystem


def extract_features(
    workload: WorkloadDescriptor, subsystem: "Subsystem"
) -> dict:
    """Compute the feature vector of a workload on a subsystem."""
    rnic = subsystem.rnic
    rxq = rnic.rx_wqe_cache
    src_path = subsystem.topology.dma_path(workload.src_device)
    dst_path = subsystem.topology.dma_path(workload.dst_device)

    # Receive-WQE cache paths only exist for 2-sided traffic.
    if workload.uses_recv_wqes:
        rxq_capacity_miss = rxq.capacity_miss(workload.total_outstanding_recv_wqes)
        rxq_burst_miss = rxq.burst_miss(workload.wq_depth, workload.wqe_batch)
    else:
        rxq_capacity_miss = 0.0
        rxq_burst_miss = 0.0

    qps_working_set = workload.num_qps * (2 if workload.is_bidirectional else 1)
    qpc_miss = steady_state_miss_rate(qps_working_set, rnic.qpc_cache_entries)
    mtt_miss = steady_state_miss_rate(workload.total_mrs, rnic.mtt_cache_entries)

    features: dict = {
        # raw transport dimensions
        "qp_type": workload.qp_type.value,
        "opcode": workload.opcode.value,
        "bidirectional": 1.0 if workload.is_bidirectional else 0.0,
        "mtu": float(workload.mtu),
        "num_qps": float(workload.num_qps),
        "total_qps": float(qps_working_set),
        "wqe_batch": float(workload.wqe_batch),
        "sge_per_wqe": float(workload.sge_per_wqe),
        "wq_depth": float(workload.wq_depth),
        # message pattern
        "avg_msg": workload.avg_msg_bytes,
        "min_msg": float(workload.min_msg_bytes),
        "max_msg": float(workload.max_msg_bytes),
        "avg_pkts_per_msg": workload.packets_per_message(),
        "small_frac": workload.small_message_fraction,
        "large_frac": workload.large_message_fraction,
        "mixes_small_and_large": 1.0 if workload.mixes_small_and_large else 0.0,
        "sg_entry_mix": 1.0 if workload.sg_entry_mix else 0.0,
        "sg_layout": workload.sg_layout.value,
        # memory allocation
        "mrs_per_qp": float(workload.mrs_per_qp),
        "total_mrs": float(workload.total_mrs),
        "mr_bytes": float(workload.mr_bytes),
        # derived cache metrics
        "rxq_capacity_miss": rxq_capacity_miss,
        "rxq_burst_miss": rxq_burst_miss,
        "qpc_miss": qpc_miss,
        "mtt_miss": mtt_miss,
        # load-shape aggregates used by the packet-processing quirks
        "short_req_outstanding": (
            workload.num_qps * workload.wqe_batch * workload.small_message_fraction
        ),
        "wqe_outstanding_bytes": float(
            workload.num_qps * workload.wqe_batch * workload.wqe_bytes
        ),
        # host topology and platform flags
        "src_device": workload.src_device,
        "dst_device": workload.dst_device,
        "crosses_socket": 1.0
        if (src_path.crosses_socket or dst_path.crosses_socket)
        else 0.0,
        "via_root_complex": 1.0
        if (src_path.via_root_complex or dst_path.via_root_complex)
        else 0.0,
        # The data *sink* sits behind a root-complex detour: the forward
        # direction's destination always counts; with bidirectional
        # traffic the source memory is the reverse direction's sink.
        "sink_via_root_complex": 1.0
        if (
            dst_path.via_root_complex
            or (workload.is_bidirectional and src_path.via_root_complex)
        )
        else 0.0,
        "uses_gpu_memory": 1.0
        if (src_path.device.kind == "gpu" or dst_path.device.kind == "gpu")
        else 0.0,
        "loopback": 1.0 if workload.has_loopback else 0.0,
        "duty_cycle": workload.duty_cycle,
        "strict_ordering": 0.0 if subsystem.pcie.relaxed_ordering else 1.0,
        "weak_cross_socket": 1.0 if subsystem.weak_cross_socket else 0.0,
        "loopback_unlimited": 0.0 if rnic.loopback_rate_limited else 1.0,
    }
    return features


# -- batched (column-wise) extraction -----------------------------------------


def _miss_column(working_set: np.ndarray, capacity: int) -> np.ndarray:
    """Vector :func:`steady_state_miss_rate` for a scalar capacity."""
    if capacity <= 0:
        return np.where(working_set > 0.0, 1.0, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        rate = np.maximum(0.0, 1.0 - capacity / working_set)
    return np.where(working_set > 0.0, rate, 0.0)


def extract_feature_columns(
    workloads: Sequence[WorkloadDescriptor], subsystem: "Subsystem"
) -> tuple[dict, dict]:
    """Column-wise :func:`extract_features` over a batch of workloads.

    Returns ``(columns, extra)``: ``columns`` maps each feature name to a
    float64 array (or a list of strings for categorical features) in the
    exact key order of the scalar feature dict, and ``extra`` carries the
    ``_``-prefixed solver inputs (boolean masks, wire bytes per message,
    DMA bandwidths) that the batched steady-state solve needs but that
    are not features.  Every arithmetic step mirrors the scalar path
    operation-for-operation so materialized rows are bit-identical.
    """
    rnic = subsystem.rnic
    rxq = rnic.rx_wqe_cache
    topology = subsystem.topology
    n = len(workloads)
    paths: dict = {}

    def path_of(device: str):
        cached = paths.get(device)
        if cached is None:
            cached = topology.dma_path(device)
            paths[device] = cached
        return cached

    qp_type = [w.qp_type.value for w in workloads]
    opcode = [w.opcode.value for w in workloads]
    sg_layout = [w.sg_layout.value for w in workloads]
    src_device = [w.src_device for w in workloads]
    dst_device = [w.dst_device for w in workloads]

    bidi = np.array([w.is_bidirectional for w in workloads], dtype=bool)
    is_rc = np.array([w.qp_type == QPType.RC for w in workloads], dtype=bool)
    is_read = np.array([w.opcode == Opcode.READ for w in workloads], dtype=bool)
    uses_recv = np.array([w.uses_recv_wqes for w in workloads], dtype=bool)
    loopback = np.array([w.has_loopback for w in workloads], dtype=bool)

    mtu = np.array([w.mtu for w in workloads], dtype=np.float64)
    num_qps = np.array([w.num_qps for w in workloads], dtype=np.float64)
    wqe_batch = np.array([w.wqe_batch for w in workloads], dtype=np.float64)
    sge = np.array([w.sge_per_wqe for w in workloads], dtype=np.float64)
    wq_depth = np.array([w.wq_depth for w in workloads], dtype=np.float64)
    mrs_per_qp = np.array([w.mrs_per_qp for w in workloads], dtype=np.float64)
    total_mrs = np.array([w.total_mrs for w in workloads], dtype=np.float64)
    mr_bytes = np.array([w.mr_bytes for w in workloads], dtype=np.float64)
    duty = np.array([w.duty_cycle for w in workloads], dtype=np.float64)
    wqe_bytes = np.array([w.wqe_bytes for w in workloads], dtype=np.float64)
    total_recv = np.array(
        [w.total_outstanding_recv_wqes for w in workloads], dtype=np.float64
    )

    # Message-pattern aggregates come from the same per-point property
    # code as the scalar path (tuple sums and divisions, not re-derived
    # array math) so the floats match bit-for-bit; they depend only on
    # (msg sizes, MTU), which batches of related points mostly share, so
    # the rows are memoized by that key.
    pattern_memo: dict = {}
    pattern_rows = []
    for w in workloads:
        key = (w.msg_sizes_bytes, w.mtu)
        row = pattern_memo.get(key)
        if row is None:
            row = (
                w.avg_msg_bytes,
                float(w.min_msg_bytes),
                float(w.max_msg_bytes),
                w.packets_per_message(),
                w.small_message_fraction,
                w.large_message_fraction,
                w.mixes_small_and_large,
                sum(
                    s + w.packets_per_message(s) * ROCE_HEADER_BYTES
                    for s in w.msg_sizes_bytes
                )
                / len(w.msg_sizes_bytes),
            )
            pattern_memo[key] = row
        pattern_rows.append(row)
    (
        avg_list, min_list, max_list, pkts_list,
        small_list, large_list, mixes_list, wire_list,
    ) = zip(*pattern_rows)
    avg_msg = np.array(avg_list, dtype=np.float64)
    min_msg = np.array(min_list, dtype=np.float64)
    max_msg = np.array(max_list, dtype=np.float64)
    avg_pkts = np.array(pkts_list, dtype=np.float64)
    small_frac = np.array(small_list, dtype=np.float64)
    large_frac = np.array(large_list, dtype=np.float64)
    mixes = np.array(mixes_list, dtype=bool)
    sg_mix = np.array([w.sg_entry_mix for w in workloads], dtype=bool)
    wire_per_msg = np.array(wire_list, dtype=np.float64)

    src_paths = [path_of(d) for d in src_device]
    dst_paths = [path_of(d) for d in dst_device]
    crosses = np.array(
        [s.crosses_socket or d.crosses_socket
         for s, d in zip(src_paths, dst_paths)],
        dtype=bool,
    )
    via_rc = np.array(
        [s.via_root_complex or d.via_root_complex
         for s, d in zip(src_paths, dst_paths)],
        dtype=bool,
    )
    sink_via_rc = np.array(
        [
            d.via_root_complex or (b and s.via_root_complex)
            for s, d, b in zip(src_paths, dst_paths, bidi.tolist())
        ],
        dtype=bool,
    )
    uses_gpu = np.array(
        [s.device.kind == "gpu" or d.device.kind == "gpu"
         for s, d in zip(src_paths, dst_paths)],
        dtype=bool,
    )
    src_bw = np.array(
        [p.bandwidth_gbps for p in src_paths], dtype=np.float64
    )
    dst_bw = np.array(
        [p.bandwidth_gbps for p in dst_paths], dtype=np.float64
    )

    total_qps = np.where(bidi, num_qps * 2.0, num_qps)
    rxq_capacity_miss = np.where(
        uses_recv & (total_recv > 0.0),
        np.maximum(0.0, 1.0 - rxq.total_entries / np.maximum(total_recv, 1.0)),
        0.0,
    )
    rxq_burst_miss = np.where(
        uses_recv & (wq_depth > rxq.per_qp_entries) & (wqe_batch > 0.0),
        np.maximum(
            0.0, 1.0 - rxq.prefetch_window / np.maximum(wqe_batch, 1.0)
        ),
        0.0,
    )
    qpc_miss = _miss_column(total_qps, rnic.qpc_cache_entries)
    mtt_miss = _miss_column(total_mrs, rnic.mtt_cache_entries)

    columns: dict = {
        "qp_type": qp_type,
        "opcode": opcode,
        "bidirectional": np.where(bidi, 1.0, 0.0),
        "mtu": mtu,
        "num_qps": num_qps,
        "total_qps": total_qps,
        "wqe_batch": wqe_batch,
        "sge_per_wqe": sge,
        "wq_depth": wq_depth,
        "avg_msg": avg_msg,
        "min_msg": min_msg,
        "max_msg": max_msg,
        "avg_pkts_per_msg": avg_pkts,
        "small_frac": small_frac,
        "large_frac": large_frac,
        "mixes_small_and_large": np.where(mixes, 1.0, 0.0),
        "sg_entry_mix": np.where(sg_mix, 1.0, 0.0),
        "sg_layout": sg_layout,
        "mrs_per_qp": mrs_per_qp,
        "total_mrs": total_mrs,
        "mr_bytes": mr_bytes,
        "rxq_capacity_miss": rxq_capacity_miss,
        "rxq_burst_miss": rxq_burst_miss,
        "qpc_miss": qpc_miss,
        "mtt_miss": mtt_miss,
        "short_req_outstanding": num_qps * wqe_batch * small_frac,
        "wqe_outstanding_bytes": num_qps * wqe_batch * wqe_bytes,
        "src_device": src_device,
        "dst_device": dst_device,
        "crosses_socket": np.where(crosses, 1.0, 0.0),
        "via_root_complex": np.where(via_rc, 1.0, 0.0),
        "sink_via_root_complex": np.where(sink_via_rc, 1.0, 0.0),
        "uses_gpu_memory": np.where(uses_gpu, 1.0, 0.0),
        "loopback": np.where(loopback, 1.0, 0.0),
        "duty_cycle": duty,
        "strict_ordering": np.full(
            n, 0.0 if subsystem.pcie.relaxed_ordering else 1.0
        ),
        "weak_cross_socket": np.full(
            n, 1.0 if subsystem.weak_cross_socket else 0.0
        ),
        "loopback_unlimited": np.full(
            n, 0.0 if rnic.loopback_rate_limited else 1.0
        ),
    }
    extra = {
        "_bidi": bidi,
        "_is_rc": is_rc,
        "_is_read": is_read,
        "_uses_recv": uses_recv,
        "_wire_per_msg": wire_per_msg,
        "_wqe_bytes": wqe_bytes,
        "_src_bw": src_bw,
        "_dst_bw": dst_bw,
    }
    return columns, extra


def materialize_features(columns: dict, n: int) -> list[dict]:
    """Per-point feature dicts from columns, in scalar key order.

    ``.tolist()`` converts every float64 cell to a Python float, so the
    dicts are JSON-serialisable and compare equal (``==`` and ``repr``)
    to scalar :func:`extract_features` output.
    """
    items = [
        (name, col if isinstance(col, list) else col.tolist())
        for name, col in columns.items()
    ]
    return [{name: col[i] for name, col in items} for i in range(n)]
