"""Vendor fixes and operator mitigations for the 18 anomalies.

The paper reports that 7 of the 18 anomalies were already fixed when it
went to press — by firmware upgrades, register configuration, PCIe
platform settings, or deployment policy (Appendix A's per-anomaly
"solutions").  This module models each fix so the evaluation can verify
both directions: a fixed subsystem no longer triggers its anomaly, and
the 11 unfixed anomalies persist.

Fix kinds:

* ``firmware``  — the vendor removed the quirk (the rule disappears):
  #10 ("announce it fixed in their upcoming firmware release"),
  #17/#18 ("configure some specific registers of the RNIC");
* ``platform``  — a host/PCIe setting changes: #9 (RNIC forced into
  relaxed ordering), #11 (2×100G NICs, one per socket — modelled as a
  sound cross-socket fabric), #12 (correct PCIe ACSCtl);
* ``policy``    — a deployment rule constrains workloads: #3 (cluster
  MTU raised from 1500 to 4200).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.core.space import SearchSpace
from repro.hardware.subsystems import Subsystem, get_subsystem


@dataclasses.dataclass(frozen=True)
class Fix:
    """One vendor fix or operator mitigation."""

    tag: str
    kind: str  #: ``firmware``, ``platform`` or ``policy``.
    description: str

    def __post_init__(self) -> None:
        if self.kind not in ("firmware", "platform", "policy"):
            raise ValueError(f"unknown fix kind {self.kind!r}")


#: The paper's seven applied fixes, keyed by Table 2 tag.
FIXES: dict = {
    "A3": Fix("A3", "policy",
              "deployment MTU raised 1500 -> 4200 (4096 for RDMA)"),
    "A9": Fix("A9", "platform",
              "RNIC configured as forced relaxed-ordering PCIe device"),
    "A10": Fix("A10", "firmware",
               "vendor firmware release fixes the packet processor"),
    "A11": Fix("A11", "platform",
               "2x100G NICs, one per socket: no cross-socket DMA"),
    "A12": Fix("A12", "platform", "correct PCIe ACSCtl bridge configuration"),
    "A17": Fix("A17", "firmware", "vendor-specified RNIC register settings"),
    "A18": Fix("A18", "firmware", "vendor-specified RNIC register settings"),
}

#: Rows the paper reports as still unfixed.
UNFIXED_TAGS = tuple(
    f"A{i}" for i in range(1, 19) if f"A{i}" not in FIXES
)


def apply_fixes(
    subsystem: Subsystem, tags: Iterable[str] = tuple(FIXES)
) -> Subsystem:
    """A subsystem with the given fixes applied.

    Firmware fixes remove the quirk rule from the RNIC; platform fixes
    flip the corresponding host/PCIe flag (which disarms the gate).
    Policy fixes do not change hardware — see :func:`apply_policy`.
    """
    tags = set(tags)
    unknown = tags - set(FIXES)
    if unknown:
        raise KeyError(f"no documented fix for {sorted(unknown)}")

    rnic = subsystem.rnic
    firmware_removed = {
        tag for tag in tags if FIXES[tag].kind == "firmware"
    }
    if firmware_removed:
        rnic = dataclasses.replace(
            rnic,
            rules=tuple(
                rule for rule in rnic.rules
                if rule.tag not in firmware_removed
            ),
        )

    pcie = subsystem.pcie
    topology = subsystem.topology
    weak_cross_socket = subsystem.weak_cross_socket
    if "A9" in tags:
        pcie = dataclasses.replace(pcie, relaxed_ordering=True)
    if "A11" in tags:
        weak_cross_socket = False
    if "A12" in tags:
        topology = dataclasses.replace(topology, acsctl_correct=True)

    return dataclasses.replace(
        subsystem,
        rnic=rnic,
        pcie=pcie,
        topology=topology,
        weak_cross_socket=weak_cross_socket,
    )


def apply_policy(space: SearchSpace, tags: Iterable[str] = ("A3",)) -> SearchSpace:
    """A search space restricted by the policy fixes.

    The #3 mitigation is a deployment rule, not a hardware change: the
    cluster's MTU is raised so the small-MTU READ regime cannot occur.
    """
    tags = set(tags)
    if "A3" in tags:
        mtus = tuple(m for m in space.mtus if m >= 2048)
        space = dataclasses.replace(space, mtus=mtus)
    return space


def fixed_subsystem(letter: str) -> Subsystem:
    """A Table 1 preset with every applicable hardware fix applied."""
    subsystem = get_subsystem(letter)
    applicable = [
        tag for tag, fix in FIXES.items()
        if fix.kind != "policy"
        and any(rule.tag == tag for rule in subsystem.rnic.rules)
    ]
    # Platform fixes apply even when the rule lives on the RNIC table
    # but is platform-gated.
    return apply_fixes(subsystem, applicable)
