"""Concrete RNIC parts: ConnectX-5/6 and the Broadcom P2100G.

Each part couples capability numbers (line rate, message rate, cache
sizes) with its quirk-rule table — the declarative encoding of the
Appendix A anomaly triggers.  Tags ``A1``–``A18`` follow Table 2's row
numbers.  Where Table 2 and the Appendix's simplified concrete settings
disagree on a threshold, the gate follows the concrete setting so the
replay benchmark reproduces every published trigger (the paper itself
notes "it is possible to find milder or stricter conditions").

The absolute capability numbers are scaled-down relative to the silicon
(a simulated part, not a spec sheet); the *relationships* that matter to
the paper — which workloads hit which bottleneck first, and who pauses —
are preserved.
"""

from __future__ import annotations

from repro.hardware.rnic import RNICProfile, RxWqeCacheSpec
from repro.hardware.rules import AnomalyRule, Gate, LatencyRule

# Shorthand for bound construction: (low, None) / (None, high) intervals.


def _cx6_200_rules() -> tuple[AnomalyRule, ...]:
    """Quirk table of the 200 Gbps ConnectX-6 (subsystems E/F/G)."""
    return (
        AnomalyRule(
            tag="A1",
            title="UD SEND, large WQE batch + long WQ overruns the RX WQE "
            "prefetcher",
            root_cause="rx_wqe_cache",
            gate=Gate(
                bounds={"rxq_burst_miss": (0.45, None)},
                isin={"qp_type": ("UD",), "opcode": ("SEND",)},
            ),
            side="rx",
            factor=0.78,
            counter="rx_wqe_cache_miss",
        ),
        AnomalyRule(
            tag="A2",
            title="UD SEND, small batch + long WQ + small messages exhaust "
            "the RX WQE cache (silent slowdown)",
            root_cause="rx_wqe_cache",
            gate=Gate(
                bounds={
                    "rxq_capacity_miss": (0.45, None),
                    "wqe_batch": (None, 8),
                    "wq_depth": (1024, None),
                    "avg_msg": (None, 1024),
                },
                isin={"qp_type": ("UD",), "opcode": ("SEND",)},
            ),
            side="tx",
            factor=0.70,
            counter="rx_wqe_cache_miss",
        ),
        AnomalyRule(
            tag="A3",
            title="RC READ with large messages at small MTU hits the packet "
            "processing bottleneck",
            root_cause="packet_processing",
            gate=Gate(
                bounds={"mtu": (None, 1024), "avg_msg": (16384, None)},
                isin={"qp_type": ("RC",), "opcode": ("READ",)},
            ),
            side="rx",
            factor=0.45,
            counter="rx_buffer_full_events",
        ),
        AnomalyRule(
            tag="A4",
            title="Bidirectional RC READ, large WQE batch + long SG list + "
            "many connections overload WQE fetch",
            root_cause="wqe_fetch",
            gate=Gate(
                bounds={
                    "bidirectional": (1, 1),
                    "wqe_batch": (32, None),
                    "sge_per_wqe": (4, None),
                    "total_qps": (160, None),
                    "avg_msg": (None, 1024),
                },
                isin={"qp_type": ("RC",), "opcode": ("READ",)},
            ),
            side="rx",
            factor=0.65,
            counter="tx_wqe_fetch_stall",
        ),
        AnomalyRule(
            tag="A5",
            title="RC SEND, small MTU + large batch + long WQ + 2-8 packet "
            "messages overrun the RX WQE prefetcher",
            root_cause="rx_wqe_cache",
            gate=Gate(
                bounds={
                    "rxq_burst_miss": (0.45, None),
                    "mtu": (None, 1024),
                    "wq_depth": (1024, None),
                    "avg_pkts_per_msg": (2, 8),
                    "avg_msg": (None, 8192),
                },
                isin={"qp_type": ("RC",), "opcode": ("SEND",)},
            ),
            side="rx",
            factor=0.75,
            counter="rx_wqe_cache_miss",
        ),
        AnomalyRule(
            tag="A6",
            title="RC SEND, small MTU + small batch + multi-SGE + long WQ + "
            "small messages exhaust the RX WQE cache (silent slowdown)",
            root_cause="rx_wqe_cache",
            gate=Gate(
                bounds={
                    "rxq_capacity_miss": (0.70, None),
                    "mtu": (None, 1024),
                    "wqe_batch": (None, 16),
                    "sge_per_wqe": (2, None),
                    "avg_msg": (None, 1024),
                },
                isin={"qp_type": ("RC",), "opcode": ("SEND",)},
            ),
            side="tx",
            factor=0.70,
            counter="rx_wqe_cache_miss",
        ),
        AnomalyRule(
            tag="A7",
            title="RC WRITE over ≥~12K MRs with small unbatched messages "
            "thrashes the MTT cache",
            root_cause="icm_cache",
            gate=Gate(
                bounds={
                    "mtt_miss": (1 / 3, None),
                    "wqe_batch": (None, 2),
                    "avg_msg": (None, 1024),
                },
                isin={"qp_type": ("RC",), "opcode": ("WRITE",)},
            ),
            side="tx",
            factor=0.6,
            scale_feature="mtt_miss",
            scale_coeff=0.8,
            counter="mtt_cache_miss",
        ),
        AnomalyRule(
            tag="A8",
            title="RC WRITE over ≥~500 QPs with shallow WQs and small "
            "unbatched messages thrashes the QPC cache",
            root_cause="icm_cache",
            gate=Gate(
                bounds={
                    "qpc_miss": (0.4, None),
                    "wq_depth": (None, 16),
                    "wqe_batch": (None, 2),
                    "avg_msg": (None, 1024),
                },
                isin={"qp_type": ("RC",), "opcode": ("WRITE",)},
            ),
            side="tx",
            factor=0.6,
            scale_feature="qpc_miss",
            scale_coeff=0.7,
            counter="qpc_cache_miss",
        ),
        AnomalyRule(
            tag="A9",
            title="Bidirectional mixed small/large SG traffic stalls strict-"
            "ordering PCIe root complexes",
            root_cause="pcie_ordering",
            gate=Gate(
                bounds={
                    "bidirectional": (1, 1),
                    "sge_per_wqe": (3, None),
                    "sg_entry_mix": (1, 1),
                    "mixes_small_and_large": (1, 1),
                    "strict_ordering": (1, 1),
                },
            ),
            side="rx",
            factor=0.30,
            counter="pcie_ordering_stall",
        ),
        AnomalyRule(
            tag="A10",
            title="Bidirectional RC WRITE, large batches of short requests "
            "mixed with long ones saturate the shared packet processor",
            root_cause="packet_processing",
            gate=Gate(
                bounds={
                    "bidirectional": (1, 1),
                    "wqe_batch": (64, None),
                    "num_qps": (300, None),
                    "wq_depth": (128, None),
                    "small_frac": (0.7, None),
                    "mixes_small_and_large": (1, 1),
                    "short_req_outstanding": (15000, None),
                },
                isin={"qp_type": ("RC",), "opcode": ("WRITE",)},
            ),
            side="rx",
            factor=0.40,
            counter="rx_buffer_full_events",
        ),
        AnomalyRule(
            tag="A11",
            title="Bidirectional cross-socket DMA on weak SMP fabrics "
            "backpressures the RNIC",
            root_cause="host_topology",
            gate=Gate(
                bounds={
                    "bidirectional": (1, 1),
                    "crosses_socket": (1, 1),
                    "weak_cross_socket": (1, 1),
                    "avg_msg": (16384, None),
                },
            ),
            side="rx",
            factor=0.40,
            counter="cross_socket_pressure",
        ),
        AnomalyRule(
            tag="A12",
            title="GPU-direct traffic detoured through the root complex "
            "(misconfigured PCIe ACSCtl)",
            root_cause="host_topology",
            gate=Gate(
                bounds={
                    "sink_via_root_complex": (1, 1),
                    "avg_msg": (4096, None),
                },
            ),
            side="rx",
            factor=0.20,
            counter="pcie_internal_backpressure",
        ),
        AnomalyRule(
            tag="A13",
            title="Loopback traffic co-existing with receive traffic causes "
            "in-NIC incast (no loopback rate limiting)",
            root_cause="nic_incast",
            gate=Gate(
                bounds={
                    "loopback": (1, 1),
                    "loopback_unlimited": (1, 1),
                    "num_qps": (8, None),
                    "avg_msg": (16384, None),
                },
            ),
            side="rx",
            factor=0.50,
            counter="internal_incast_events",
        ),
    )


def _mellanox_generic_rules() -> tuple[AnomalyRule, ...]:
    """Generation-independent Mellanox quirks (host/ICM/loopback).

    The paper notes anomalies found on the other subsystems are subsets of
    those found on F; the mechanisms that do not depend on the 200 Gbps
    datapath carry over to the CX-5 and 100 Gbps CX-6 parts.
    """
    all_rules = {rule.tag: rule for rule in _cx6_200_rules()}
    return tuple(all_rules[tag] for tag in ("A7", "A8", "A9", "A11", "A12", "A13"))


def _p2100g_rules() -> tuple[AnomalyRule, ...]:
    """Quirk table of the 100 Gbps Broadcom P2100G (subsystem H)."""
    return (
        AnomalyRule(
            tag="A14",
            title="Bidirectional RC with large MTU, long SG lists and >1K "
            "connections degrades the TX scheduler",
            root_cause="wqe_fetch",
            gate=Gate(
                bounds={
                    "bidirectional": (1, 1),
                    "mtu": (4096, None),
                    "sge_per_wqe": (4, None),
                    "total_qps": (2048, None),
                },
                isin={"qp_type": ("RC",)},
            ),
            side="tx",
            factor=0.60,
            counter="tx_wqe_fetch_stall",
        ),
        AnomalyRule(
            tag="A15",
            title="UD SEND with long WQs across tens of connections exhausts "
            "the (small) RX WQE cache",
            root_cause="rx_wqe_cache",
            gate=Gate(
                bounds={"rxq_capacity_miss": (0.45, None)},
                isin={"qp_type": ("UD",), "opcode": ("SEND",)},
            ),
            side="rx",
            factor=0.60,
            counter="rx_wqe_cache_miss",
        ),
        AnomalyRule(
            tag="A16",
            title="RC READ with many connections, batched requests and small "
            "MTU overloads response processing",
            root_cause="packet_processing",
            gate=Gate(
                bounds={
                    "mtu": (None, 1024),
                    "wqe_batch": (8, None),
                    "num_qps": (500, None),
                },
                isin={"qp_type": ("RC",), "opcode": ("READ",)},
            ),
            side="rx",
            factor=0.50,
            counter="rx_buffer_full_events",
        ),
        AnomalyRule(
            tag="A17",
            title="RC SEND, small unbatched messages over ≥64 connections "
            "with ≥128-deep WQs defeat the RX WQE prefetcher",
            root_cause="rx_wqe_cache",
            gate=Gate(
                bounds={
                    "rxq_capacity_miss": (0.85, None),
                    "wqe_batch": (None, 16),
                    "wq_depth": (128, None),
                    "avg_msg": (None, 1024),
                    "num_qps": (64, None),
                },
                isin={"qp_type": ("RC",), "opcode": ("SEND",)},
            ),
            side="rx",
            factor=0.55,
            counter="rx_wqe_cache_miss",
        ),
        AnomalyRule(
            tag="A18",
            title="Bidirectional RC WRITE, batched ≤64KB messages at small "
            "MTU over ≥32 connections (fixed by register configuration)",
            root_cause="packet_processing",
            gate=Gate(
                bounds={
                    "bidirectional": (1, 1),
                    "mtu": (None, 1024),
                    "wqe_batch": (16, None),
                    "max_msg": (None, 65536),
                    "total_qps": (32, None),
                },
                isin={"qp_type": ("RC",), "opcode": ("WRITE",)},
            ),
            side="rx",
            factor=0.50,
            counter="rx_buffer_full_events",
        ),
    )


def _mellanox_latency_rules() -> tuple[LatencyRule, ...]:
    """Latency quirks of the Mellanox parts (subsystems A-G).

    These are the §3 blind spot made concrete: the capacity accounting
    stays healthy (the wire is full, no pauses), yet every WR crawls.
    Tags are ``L``-prefixed — they extend the ground truth beyond the
    Table 2 rows, for the tail-latency trigger the monitor adds on top
    of the paper's two symptoms.
    """
    return (
        LatencyRule(
            tag="L1",
            title="RC SEND, small unbatched messages thrashing QPC and MTT "
            "together serialize two ICM refills per WR (wire stays full)",
            root_cause="icm_cache",
            gate=Gate(
                bounds={
                    "qpc_miss": (0.5, None),
                    "mtt_miss": (0.5, None),
                    "wqe_batch": (None, 8),
                    "avg_msg": (None, 4096),
                },
                isin={"qp_type": ("RC",), "opcode": ("SEND",)},
            ),
            stall_us=40.0,
            scale_feature="mtt_miss",
            counter="mtt_cache_miss",
        ),
    )


def _p2100g_latency_rules() -> tuple[LatencyRule, ...]:
    """Latency quirks of the Broadcom P2100G (subsystem H)."""
    return (
        LatencyRule(
            tag="L2",
            title="RC SEND into shallow receive queues over many connections "
            "overruns the small RX WQE cache: RNR backoff inflates per-WR "
            "latency at full message rate",
            root_cause="rx_wqe_cache",
            gate=Gate(
                bounds={
                    "rxq_capacity_miss": (0.9, None),
                    "wq_depth": (None, 64),
                    "avg_msg": (None, 1024),
                },
                isin={"qp_type": ("RC",), "opcode": ("SEND",)},
            ),
            stall_us=30.0,
            scale_feature="rxq_capacity_miss",
            counter="rx_wqe_cache_miss",
        ),
    )


def connectx5(line_rate_gbps: float) -> RNICProfile:
    """Mellanox ConnectX-5 DX at 25 or 100 Gbps (subsystems A/B/C)."""
    return RNICProfile(
        name=f"CX-5 DX {int(line_rate_gbps)}G",
        line_rate_gbps=line_rate_gbps,
        max_pps=15e6 if line_rate_gbps <= 25 else 50e6,
        processing_units=2,
        pipeline_stages=2,
        qpc_cache_entries=256,
        mtt_cache_entries=8192,
        rx_wqe_cache=RxWqeCacheSpec(
            total_entries=32768, per_qp_entries=1024, prefetch_window=64
        ),
        ack_coalesce=8,
        loopback_rate_limited=False,
        rules=_mellanox_generic_rules(),
        latency_rules=_mellanox_latency_rules(),
    )


def connectx6_100() -> RNICProfile:
    """Mellanox ConnectX-6 DX at 100 Gbps (subsystem D)."""
    return RNICProfile(
        name="CX-6 DX 100G",
        line_rate_gbps=100.0,
        max_pps=50e6,
        processing_units=2,
        pipeline_stages=2,
        qpc_cache_entries=256,
        mtt_cache_entries=8192,
        rx_wqe_cache=RxWqeCacheSpec(
            total_entries=32768, per_qp_entries=1024, prefetch_window=64
        ),
        ack_coalesce=8,
        loopback_rate_limited=False,
        rules=_mellanox_generic_rules(),
        latency_rules=_mellanox_latency_rules(),
    )


def connectx6_200(vpi: bool = False) -> RNICProfile:
    """Mellanox ConnectX-6 DX/VPI at 200 Gbps (subsystems E/F/G)."""
    return RNICProfile(
        name="CX-6 VPI 200G" if vpi else "CX-6 DX 200G",
        line_rate_gbps=200.0,
        max_pps=90e6,
        processing_units=2,
        pipeline_stages=4,
        qpc_cache_entries=256,
        mtt_cache_entries=8192,
        rx_wqe_cache=RxWqeCacheSpec(
            total_entries=8192, per_qp_entries=128, prefetch_window=32
        ),
        ack_coalesce=8,
        loopback_rate_limited=False,
        rules=_cx6_200_rules(),
        latency_rules=_mellanox_latency_rules(),
    )


def p2100g() -> RNICProfile:
    """Broadcom P2100G at 100 Gbps (subsystem H)."""
    return RNICProfile(
        name="P2100G 100G",
        line_rate_gbps=100.0,
        max_pps=36e6,
        processing_units=2,
        pipeline_stages=2,
        qpc_cache_entries=4096,
        mtt_cache_entries=65536,
        rx_wqe_cache=RxWqeCacheSpec(
            total_entries=1024, per_qp_entries=64, prefetch_window=16
        ),
        ack_coalesce=8,
        loopback_rate_limited=True,
        rules=_p2100g_rules(),
        latency_rules=_p2100g_latency_rules(),
    )
