"""The two-server testbed: hosts, simulated clock, and experiment runner.

Mirrors the paper's experiment platform (§3): two servers with RNICs
connected by a lossless switch, with out-of-band connection bootstrap and
a wall clock that charges 20–60 seconds per experiment depending on how
many QPs and MRs must be set up (§5).
"""

from repro.cluster.clock import SimulatedClock
from repro.cluster.host import Host
from repro.cluster.testbed import ExperimentResult, Testbed

__all__ = ["SimulatedClock", "Host", "ExperimentResult", "Testbed"]
