"""A simulated server: topology plus an opened verbs context."""

from __future__ import annotations

from typing import Optional

from repro.hardware.topology import HostTopology
from repro.verbs.device import (
    Context,
    Device,
    DeviceAttributes,
    QPNumberAllocator,
)


class Host:
    """One server of the two-node testbed.

    Owns the RNIC's verbs :class:`~repro.verbs.device.Context` and answers
    memory-device queries for MR registration (``reg_mr(device=...)``
    validates placement against the host's topology).
    """

    def __init__(
        self,
        name: str,
        topology: HostTopology,
        device_attrs: Optional[DeviceAttributes] = None,
        qpn_allocator: Optional[QPNumberAllocator] = None,
    ) -> None:
        self.name = name
        self.topology = topology
        self.device = Device(name=f"{name}-rnic", attributes=device_attrs)
        self.context: Context = self.device.open(
            host=self, qpn_allocator=qpn_allocator
        )

    def has_memory_device(self, device_name: str) -> bool:
        """Placement check used by ``ProtectionDomain.reg_mr``."""
        return self.topology.has_device(device_name)

    def memory_devices(self) -> list[str]:
        return self.topology.device_names()

    def __repr__(self) -> str:
        return f"Host({self.name!r}, devices={self.memory_devices()})"
