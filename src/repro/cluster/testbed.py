"""The two-server experiment runner with simulated time accounting."""

from __future__ import annotations

import dataclasses
import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cluster.clock import SimulatedClock
from repro.hardware.model import Measurement
from repro.hardware.subsystems import Subsystem, get_subsystem
from repro.hardware.workload import WorkloadDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.evalcache import EvalCache

#: Reusable no-op context for profiler-disabled span sites.
_NO_SPAN = nullcontext()


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """One experiment: its measurement and what it cost in testbed time."""

    measurement: Measurement
    setup_seconds: float
    measurement_seconds: float
    started_at: float  #: simulated clock reading when the experiment began.

    @property
    def total_seconds(self) -> float:
        return self.setup_seconds + self.measurement_seconds

    @property
    def finished_at(self) -> float:
        return self.started_at + self.total_seconds


class Testbed:
    """Two servers + lossless switch, running one experiment at a time.

    (``__test__`` opts out of pytest collection — this is a simulation
    testbed, not a test case.)

    Every ``run`` charges the simulated clock with the experiment's setup
    and measurement cost, reproducing the paper's 20–60 s per-experiment
    budget that Figures 4–6 are measured against.
    """

    __test__ = False

    def __init__(
        self,
        subsystem: "Subsystem | str",
        clock: Optional[SimulatedClock] = None,
        noise: float = 0.02,
        functional_check: bool = False,
        cache: Optional["EvalCache"] = None,
        metrics=None,
        batch: bool = True,
        profiler=None,
        victim: Optional[WorkloadDescriptor] = None,
        victim_share: float = 0.5,
    ) -> None:
        from repro.core.engine import WorkloadEngine

        if isinstance(subsystem, str):
            subsystem = get_subsystem(subsystem)
        self.subsystem = subsystem
        self.clock = clock or SimulatedClock()
        self.engine = WorkloadEngine(
            subsystem, noise=noise, cache=cache, batch=batch,
            metrics=metrics, profiler=profiler,
            victim=victim, victim_share=victim_share,
        )
        #: Isolation mode (see :class:`~repro.hardware.coexist.CoRunModel`):
        #: with a pinned victim every run measures the *victim* next to
        #: the given attacker point.  ``None`` leaves the solo datapath
        #: untouched.
        self.victim = victim
        self.victim_share = victim_share
        #: Optional obs.MetricsRegistry accounting experiment costs.
        self.metrics = metrics
        #: Optional obs.SpanProfiler ("solve" spans around evaluation).
        self.profiler = profiler
        #: Functional bursts catch malformed workloads but cost real CPU;
        #: searches (thousands of experiments) disable them and rely on
        #: the space's coercion invariants, which the test suite verifies.
        self.functional_check = functional_check
        self.experiments_run = 0
        #: Population lockstep seam: ``(workload, measurement)`` staged
        #: by :meth:`prime` for the next :meth:`run` call (see
        #: :mod:`repro.core.population`).  Always None outside a
        #: population generation.
        self._prepared: Optional[tuple] = None
        #: Set by the population driver on multi-chain runs: every
        #: yielded point is evaluated in the generation batch, so
        #: scalar-path accelerators (the MFS ladder presolve) would
        #: only re-solve what the generation already covers.  Purely a
        #: performance hint — trajectories are identical either way.
        self.lockstep = False

    @property
    def cache(self) -> Optional["EvalCache"]:
        """The evaluation cache, if one is attached."""
        return self.engine.cache

    @property
    def victim_floor(self):
        """The pinned victim's solo baseline (isolation mode), else None."""
        return getattr(self.engine.model, "floor", None)

    def _before_experiment(
        self, workload: WorkloadDescriptor, phase: str, index: int
    ) -> None:
        """Pre-experiment seam (``index`` = absolute experiment number).

        A no-op here; :class:`repro.core.faults.FaultyTestbed` overrides
        it to raise injected faults *before* the experiment charges the
        clock or consumes RNG draws, so a retried run replays its
        completed prefix bit-identically.
        """

    @property
    def batch_enabled(self) -> bool:
        """Whether the batched evaluation engine (S31) is active."""
        return self.engine.batch.enabled

    def presolve(
        self, workloads: list[WorkloadDescriptor], phase: str = "search"
    ) -> int:
        """Batch-solve upcoming points into the cache (stat-less).

        The subsequent scalar ``run`` calls replay over cache hits with
        unchanged clock charging, lookup statistics and RNG draws —
        bit-identical, only faster.
        """
        return self.engine.presolve(workloads, phase=phase)

    def run_many(
        self,
        workloads: list[WorkloadDescriptor],
        rng: Optional[np.random.Generator] = None,
        phase: str = "search",
    ) -> list[ExperimentResult]:
        """Batched :meth:`run` — bit-identical to calling it in a loop.

        Evaluation happens in one vectorized pass; the clock is then
        charged per experiment in order, so every ``started_at`` and the
        final clock reading match the scalar loop exactly.
        """
        if not workloads:
            return []
        if not self.batch_enabled or len(workloads) == 1:
            return [self.run(w, rng=rng, phase=phase) for w in workloads]
        for offset, workload in enumerate(workloads):
            self._before_experiment(
                workload, phase, self.experiments_run + offset
            )
        wall_started = time.perf_counter()
        with (
            self.profiler.span("solve")
            if self.profiler is not None else _NO_SPAN
        ):
            measurements = self.engine.measure_many(
                workloads, rng=rng,
                functional_check=self.functional_check, phase=phase,
            )
        per_point_wall = (
            (time.perf_counter() - wall_started) / len(workloads)
        )
        results = []
        for workload, measurement in zip(workloads, measurements):
            started = self.clock.now
            setup = self.engine.setup_seconds(workload)
            measure = self.engine.measurement_seconds()
            if self.metrics is not None:
                self.metrics.observe(
                    "testbed.measure_wall", per_point_wall, phase=phase
                )
                self.metrics.counter("testbed.experiments", phase=phase)
                self.metrics.observe("testbed.setup_seconds", setup)
                self.metrics.observe("testbed.measurement_seconds", measure)
            self.clock.advance(setup + measure)
            self.experiments_run += 1
            results.append(
                ExperimentResult(
                    measurement=measurement,
                    setup_seconds=setup,
                    measurement_seconds=measure,
                    started_at=started,
                )
            )
        return results

    def prime(
        self, workload: WorkloadDescriptor, measurement: Measurement
    ) -> None:
        """Stage the next :meth:`run` result (population lockstep seam).

        The measurement must have been produced by the batched engine
        from *this* testbed's chain RNG
        (:meth:`~repro.core.batcheval.BatchEvaluator.evaluate_each`),
        so the consuming ``run`` call skips only redundant work: clock
        charging, accounting and the returned result are bit-identical
        to an unprimed scalar evaluation.  The slot holds one workload,
        matched by identity, and is cleared on consumption.
        """
        self._prepared = (workload, measurement)

    def _take_prepared(
        self, workload: WorkloadDescriptor
    ) -> Optional[Measurement]:
        prepared = self._prepared
        if prepared is not None and prepared[0] is workload:
            self._prepared = None
            return prepared[1]
        return None

    def run(
        self,
        workload: WorkloadDescriptor,
        rng: Optional[np.random.Generator] = None,
        phase: str = "search",
    ) -> ExperimentResult:
        """Run one experiment, charging the simulated clock."""
        self._before_experiment(workload, phase, self.experiments_run)
        started = self.clock.now
        setup = self.engine.setup_seconds(workload)
        measure = self.engine.measurement_seconds()
        prepared = self._take_prepared(workload)
        span = (
            self.profiler.span("solve")
            if self.profiler is not None else _NO_SPAN
        )
        if self.metrics is not None:
            with self.metrics.timer("testbed.measure_wall", phase=phase), span:
                measurement = (
                    prepared if prepared is not None
                    else self.engine.measure(
                        workload, rng=rng,
                        functional_check=self.functional_check, phase=phase,
                    )
                )
            self.metrics.counter("testbed.experiments", phase=phase)
            self.metrics.observe("testbed.setup_seconds", setup)
            self.metrics.observe("testbed.measurement_seconds", measure)
        else:
            with span:
                measurement = (
                    prepared if prepared is not None
                    else self.engine.measure(
                        workload, rng=rng,
                        functional_check=self.functional_check, phase=phase,
                    )
                )
        self.clock.advance(setup + measure)
        self.experiments_run += 1
        return ExperimentResult(
            measurement=measurement,
            setup_seconds=setup,
            measurement_seconds=measure,
            started_at=started,
        )
