"""Simulated wall clock for search-time accounting.

The paper's figures 4–6 are time-to-find curves where each experiment
costs 20–60 real seconds.  The simulation charges the same costs against
a virtual clock, so a "10-hour" search budget resolves in sub-second real
time while preserving every time-based comparison.
"""

from __future__ import annotations


class SimulatedClock:
    """Monotonic virtual clock with an optional budget."""

    def __init__(self, budget_seconds: float = float("inf")) -> None:
        if budget_seconds <= 0:
            raise ValueError("budget must be positive")
        self._now = 0.0
        self.budget_seconds = budget_seconds

    @property
    def now(self) -> float:
        """Seconds elapsed since the search started."""
        return self._now

    @property
    def hours(self) -> float:
        return self._now / 3600.0

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}s")
        self._now += seconds

    @property
    def expired(self) -> bool:
        return self._now >= self.budget_seconds

    @property
    def remaining(self) -> float:
        return max(0.0, self.budget_seconds - self._now)

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now:.0f}s/{self.budget_seconds:.0f}s)"
