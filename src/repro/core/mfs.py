"""Minimal Feature Set: trigger-condition extraction (paper §5.2).

After the monitor flags a workload, Collie probes each search dimension —
holding the rest fixed — to find which features are *necessary* to keep
the anomaly alive, and over what value region.  The result, a
:class:`MinimalFeatureSet`, serves two masters:

* the **search** skips any point matching a known MFS (Alg. 1 line 5), so
  it never re-explores an already-covered anomaly region;
* **developers** read it as the set of conditions to break (§7.3).

Probing strategy (the paper's "few tests on each dimension"):

* categorical dimensions test each alternative value; the condition keeps
  the values that still trigger (absent if all do);
* ordered dimensions test up to ``probes_per_dimension`` ladder levels
  spread across the range; the condition is the smallest interval of
  probed levels containing the witness that still trigger, open-ended at
  the ladder boundaries;
* the message pattern is probed with *uniform* patterns at several sizes;
  if no uniform pattern triggers but the witness (a mixed pattern) does,
  the condition records that a small/large mix is required — Table 2's
  "mix of ≤1KB & ≥64KB" rows.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Mapping, Optional

import numpy as np

from repro.core.space import (
    CATEGORICAL_DIMENSIONS,
    ORDERED_DIMENSIONS,
    SearchSpace,
)
from repro.hardware.workload import WorkloadDescriptor



@dataclasses.dataclass(frozen=True)
class IntervalCondition:
    """Ordered-dimension condition: value must lie in [low, high]."""

    dimension: str
    low: Optional[float]
    high: Optional[float]

    def matches(self, value: float) -> bool:
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def describe(self) -> str:
        if self.low is not None and self.high is not None:
            return f"{self.low:g} <= {self.dimension} <= {self.high:g}"
        if self.low is not None:
            return f"{self.dimension} >= {self.low:g}"
        return f"{self.dimension} <= {self.high:g}"


@dataclasses.dataclass(frozen=True)
class MembershipCondition:
    """Categorical condition: value must be one of the allowed set."""

    dimension: str
    allowed: tuple[str, ...]

    def matches(self, value: str) -> bool:
        return value in self.allowed

    def describe(self) -> str:
        return f"{self.dimension} in {{{', '.join(self.allowed)}}}"


@dataclasses.dataclass(frozen=True)
class MixCondition:
    """Pattern condition: the message pattern must mix small and large."""

    dimension: str = "msg_pattern"

    def matches(self, mixes: bool) -> bool:
        return bool(mixes)

    def describe(self) -> str:
        return "message pattern mixes <=1KB and >=64KB requests"


@dataclasses.dataclass(frozen=True)
class MinimalFeatureSet:
    """The necessary trigger conditions of one anomaly."""

    symptom: str
    witness: WorkloadDescriptor
    intervals: tuple[IntervalCondition, ...] = ()
    memberships: tuple[MembershipCondition, ...] = ()
    requires_mix: bool = False
    found_at_seconds: float = 0.0
    #: Experiments spent probing (the flat segments of the paper's Fig 6).
    probe_experiments: int = 0

    def matches(self, workload: WorkloadDescriptor) -> bool:
        """Whether a workload lies inside this anomaly's region."""
        values = _dimension_values(workload)
        for cond in self.intervals:
            if not cond.matches(float(values[cond.dimension])):
                return False
        for cond in self.memberships:
            if not cond.matches(values[cond.dimension]):
                return False
        if self.requires_mix and not workload.mixes_small_and_large:
            return False
        return True

    def admits_value(self, dimension: str, value) -> bool:
        """Whether this MFS's region admits ``value`` on one dimension.

        Per-dimension projection of the region (all other dimensions
        assumed satisfiable); ``requires_mix`` constrains the joint
        pattern and is deliberately ignored here.  Coverage maps use
        this to mark which ladder buckets an MFS prunes.
        """
        for cond in self.intervals:
            if cond.dimension == dimension and not cond.matches(float(value)):
                return False
        for cond in self.memberships:
            if cond.dimension == dimension and not cond.matches(value):
                return False
        return True

    @property
    def conditions(self) -> int:
        return (
            len(self.intervals) + len(self.memberships)
            + (1 if self.requires_mix else 0)
        )

    def describe(self) -> str:
        """Human-readable condition list, Table 2-style."""
        parts = [c.describe() for c in self.memberships]
        parts += [c.describe() for c in self.intervals]
        if self.requires_mix:
            parts.append(MixCondition().describe())
        conditions = "; ".join(parts) if parts else "(no necessary conditions)"
        return f"[{self.symptom}] {conditions}"


def _dimension_values(workload: WorkloadDescriptor) -> dict:
    """Dimension-name → value view of a workload, as MFS conditions see it."""
    return {
        "qp_type": workload.qp_type.value,
        "opcode": workload.opcode.value,
        "direction": workload.direction.value,
        "colocation": workload.colocation.value,
        "sg_layout": workload.sg_layout.value,
        "src_device": workload.src_device,
        "dst_device": workload.dst_device,
        "mtu": workload.mtu,
        "num_qps": workload.num_qps,
        "wqe_batch": workload.wqe_batch,
        "sge_per_wqe": workload.sge_per_wqe,
        "wq_depth": workload.wq_depth,
        "mrs_per_qp": workload.mrs_per_qp,
        "mr_bytes": workload.mr_bytes,
        "duty_cycle": workload.duty_cycle,
        "avg_msg": workload.avg_msg_bytes,
    }


class MFSExtractor:
    """Runs the per-dimension probes of §5.2 against a trigger oracle.

    ``classify`` is a callable running one (charged) experiment and
    returning the monitor's symptom string; the extractor counts every
    probe so callers can charge testbed time.  Callers that drive
    :meth:`construct_steps` directly — the population driver's batched
    path — answer each yielded probe themselves and may pass
    ``classify=None``.

    A probe counts as *triggering* only when it reproduces the witness's
    symptom class.  Without this, a probe that lands in a *different*
    anomaly's region (pause where the witness was a silent slowdown, say)
    would be folded into the condition set, and the resulting MFS could
    cover healthy space — poisoning the search's skip test.
    """

    def __init__(
        self,
        space: SearchSpace,
        classify: Optional[Callable[[WorkloadDescriptor], str]],
        probes_per_dimension: int = 4,
        validate_box: bool = True,
        same_symptom_only: bool = True,
        metrics=None,
        presolve: Optional[Callable[[list], int]] = None,
    ) -> None:
        if probes_per_dimension < 2:
            raise ValueError("need at least 2 probes per dimension")
        self.space = space
        self.classify = classify
        self.probes_per_dimension = probes_per_dimension
        #: Optional obs.MetricsRegistry counting probe experiments.
        self.metrics = metrics
        #: Optional batched pre-solver (``Testbed.presolve``): receives
        #: the upcoming probe points so their deterministic solves run
        #: vectorized and deduplicated before ``classify`` replays them
        #: one by one over cache hits.  Purely an accelerator — the
        #: probe sequence, its RNG draws and its outcomes are unchanged.
        self.presolve = presolve
        #: Ablation toggles (see ``bench_mfs_ablation``): adversarial box
        #: validation and same-symptom probing are this implementation's
        #: additions over the paper's plain per-dimension probing.
        self.validate_box = validate_box
        self.same_symptom_only = same_symptom_only
        self.experiments = 0
        self._target_symptom: Optional[str] = None

    # -- public API ----------------------------------------------------------

    def construct(
        self,
        witness: WorkloadDescriptor,
        symptom: str,
        at_seconds: float = 0.0,
        reduce: bool = True,
        known: Optional[list] = None,
    ) -> Optional[MinimalFeatureSet]:
        """ConstructMFS (paper Alg. 1 line 15).

        Scalar driver of :meth:`construct_steps`: every yielded probe is
        answered with ``self.classify`` on the spot, reproducing the
        historical inline probing loop bit-identically.
        """
        stepper = self.construct_steps(
            witness, symptom, at_seconds=at_seconds, reduce=reduce,
            known=known,
        )
        try:
            probe = next(stepper)
            while True:
                probe = stepper.send(self.classify(probe))
        except StopIteration as stop:
            return stop.value

    def construct_steps(
        self,
        witness: WorkloadDescriptor,
        symptom: str,
        at_seconds: float = 0.0,
        reduce: bool = True,
        known: Optional[list] = None,
    ):
        """Generator form of :meth:`construct`.

        Yields each probe workload immediately before its (charged)
        experiment and receives the monitor's symptom string back via
        ``send``; ``StopIteration.value`` is the finished
        :class:`MinimalFeatureSet` — or None for a re-find of a known
        anomaly.  Nothing else crosses a yield, so a driver answering
        every probe with ``classify`` replays the scalar probe sequence
        exactly, while the population driver batches the suspended
        probes of many chains into one array program per generation.

        With ``reduce=True`` (default) the witness is first simplified
        toward a benign baseline, one dimension at a time, keeping only
        changes that preserve the anomaly.  This mirrors the paper's "we
        try our best to simplify each anomaly" and — crucially — isolates
        *one* anomaly when the original witness sat in the overlap of
        several (otherwise every single-dimension probe stays anomalous
        through a different anomaly and the MFS degenerates to the whole
        space).
        """
        self.experiments = 0
        self._target_symptom = symptom
        reduced_to_default: set = set()
        if reduce:
            witness, reduced_to_default = yield from self.reduce_witness(
                witness
            )
            if known and match_any(known, witness) is not None:
                # The simplified witness lands inside an already-extracted
                # anomaly's region: this is a re-find of a known anomaly
                # through a corner its (conservative) MFS did not cover.
                # Skip the expensive probing; the caller treats it as
                # covered.
                return None
        if self.presolve is not None:
            # Batch-solve the whole necessity ladder up front: every
            # categorical alternative, ordered rung and uniform-pattern
            # probe is known before any probe runs, and the pre-solver
            # dedupes the (frequently repeated) points internally.
            self.presolve(self._ladder_points(witness, reduced_to_default))
        intervals = []
        memberships = []
        for dimension in CATEGORICAL_DIMENSIONS:
            condition = yield from self._probe_categorical(witness, dimension)
            if condition is not None:
                memberships.append(condition)
        for dimension in ORDERED_DIMENSIONS:
            # A dimension the reduction already walked to its benign
            # default is *probably* unconstrained, but a one-sided gate
            # can still include the default (e.g. "wqe_batch <= 2" with
            # default 1), so it gets light probing — ladder extremes
            # only, refined by bisection — instead of none.
            condition = yield from self._probe_ordered(
                witness, dimension,
                light=dimension in reduced_to_default,
            )
            if condition is not None:
                intervals.append(condition)
        pattern_interval, requires_mix = yield from self._probe_pattern(
            witness
        )
        if pattern_interval is not None:
            intervals.append(pattern_interval)
        if self.validate_box:
            intervals = yield from self._validate_box(
                witness, intervals, memberships, requires_mix
            )
        if not intervals and not memberships and not requires_mix:
            # Degenerate extraction (every probe stayed anomalous): pin the
            # witness's transport identity so the MFS cannot swallow the
            # whole space.  Conservative: covers less, never more.
            values = _dimension_values(witness)
            memberships = [
                MembershipCondition(dim, (values[dim],))
                for dim in ("qp_type", "opcode", "direction", "colocation")
            ]
        return MinimalFeatureSet(
            symptom=symptom,
            witness=witness,
            intervals=tuple(intervals),
            memberships=tuple(memberships),
            requires_mix=requires_mix,
            found_at_seconds=at_seconds,
            probe_experiments=self.experiments,
        )

    # -- witness reduction ---------------------------------------------------

    def reduce_witness(
        self, witness: WorkloadDescriptor
    ):
        """Simplify a witness toward a benign baseline, keeping the anomaly.

        One pass over the dimensions in a fixed order; each simplification
        that preserves *some* anomaly is adopted.  The result typically
        sits inside a single anomaly's region even when the original
        witness straddled several.

        A sub-generator of :meth:`construct_steps` (probes suspend);
        returns the reduced witness and the set of dimensions that were
        successfully moved to their benign default — evidence those
        dimensions are not necessary conditions.
        """
        baseline = self._benign_defaults()
        reduced = witness
        reduced_to_default: set = set()
        for dimension, default in baseline.items():
            current = _dimension_values(reduced)[dimension]
            default_label = getattr(default, "value", default)
            if current == default_label:
                continue
            candidate = self.space.with_value(reduced, dimension, default)
            if _dimension_values(candidate)[dimension] != default_label:
                continue  # coercion refused the simplification
            if (yield from self._check(candidate)):
                reduced = candidate
                reduced_to_default.add(dimension)
        # Pattern simplification: prefer a uniform pattern if it still
        # triggers (uniform = the benign shape; mixes are kept only when
        # the anomaly needs them).
        if len(set(reduced.msg_sizes_bytes)) > 1:
            for size in (max(reduced.msg_sizes_bytes), min(reduced.msg_sizes_bytes)):
                uniform = self.space.with_value(
                    reduced, "msg_pattern",
                    (size,) * len(reduced.msg_sizes_bytes),
                )
                if (yield from self._check(uniform)):
                    reduced = uniform
                    break
        return reduced, reduced_to_default

    def _benign_defaults(self) -> dict:
        """Per-dimension benign values, restricted to this space's choices."""
        from repro.hardware.workload import Colocation, Direction, SGLayout
        from repro.verbs.constants import QPType, Opcode

        def pick(preferred, options):
            return preferred if preferred in options else options[0]

        def pick_near(preferred, ladder):
            return min(ladder, key=lambda v: abs(v - preferred))

        return {
            "colocation": pick(Colocation.REMOTE_ONLY, self.space.colocations),
            "sg_layout": pick(SGLayout.EVEN, self.space.sg_layouts),
            "src_device": pick("numa0", self.space.memory_devices),
            "dst_device": pick("numa0", self.space.memory_devices),
            "qp_type": pick(QPType.RC, self.space.qp_types),
            "opcode": pick(Opcode.WRITE, self.space.opcodes),
            "direction": pick(Direction.UNIDIRECTIONAL, self.space.directions),
            "mtu": pick_near(4096, self.space.mtus),
            "num_qps": pick_near(8, self.space.qps_choices),
            "wqe_batch": pick_near(1, self.space.batch_choices),
            "sge_per_wqe": pick_near(1, self.space.sge_choices),
            "wq_depth": pick_near(128, self.space.wq_depth_choices),
            "mrs_per_qp": pick_near(1, self.space.mrs_per_qp_choices),
            "mr_bytes": pick_near(65536, self.space.mr_bytes_choices),
            "duty_cycle": pick_near(1.0, self.space.duty_cycles),
        }

    # -- probes -----------------------------------------------------------

    def _check(self, workload: WorkloadDescriptor):
        """One probe (a sub-generator): yield the point, receive the
        symptom, return whether the anomaly survived."""
        self.experiments += 1
        if self.metrics is not None:
            self.metrics.counter("mfs.probes")
        symptom = yield workload
        if self.same_symptom_only:
            return symptom == self._target_symptom
        return symptom != "healthy"

    def _probe_categorical(
        self, witness: WorkloadDescriptor, dimension: str
    ):
        original = _dimension_values(witness)[dimension]
        triggering = [original]
        all_trigger = True
        for value in self.space.categorical_choices(dimension):
            label = getattr(value, "value", value)
            if label == original:
                continue
            probe = self.space.with_value(witness, dimension, value)
            if _dimension_values(probe)[dimension] != label:
                # Coercion rolled the change back (e.g. READ on UD):
                # this alternative is not expressible, skip it.
                continue
            if (yield from self._check(probe)):
                triggering.append(label)
            else:
                all_trigger = False
        if all_trigger:
            return None
        return MembershipCondition(
            dimension=dimension, allowed=tuple(sorted(set(triggering)))
        )

    def _ordered_ladder(
        self, witness: WorkloadDescriptor, dimension: str, light: bool
    ) -> tuple[list, int, list[int]]:
        """Ladder values, witness index and initial probe indices."""
        ladder = list(self.space.ordered_choices(dimension))
        original = _dimension_values(witness)[dimension]
        if original not in ladder:
            ladder = sorted(set(ladder + [original]))
        origin_index = ladder.index(original)
        if light:
            probe_indices = [
                i for i in (0, len(ladder) - 1) if i != origin_index
            ]
        else:
            probe_indices = self._probe_indices(len(ladder), origin_index)
        return ladder, origin_index, probe_indices

    def _ladder_points(
        self, witness: WorkloadDescriptor, reduced_to_default: set
    ) -> list[WorkloadDescriptor]:
        """Every initial probe point ``construct`` is about to classify.

        Mirrors the probe generators below, minus the data-dependent
        bisection refinements (those stay scalar — each depends on the
        previous outcome).  Coercion-rejected points are filtered here
        exactly as the probes skip them.
        """
        points: list[WorkloadDescriptor] = []
        values = _dimension_values(witness)
        for dimension in CATEGORICAL_DIMENSIONS:
            original = values[dimension]
            for value in self.space.categorical_choices(dimension):
                label = getattr(value, "value", value)
                if label == original:
                    continue
                probe = self.space.with_value(witness, dimension, value)
                if _dimension_values(probe)[dimension] == label:
                    points.append(probe)
        for dimension in ORDERED_DIMENSIONS:
            ladder, _, probe_indices = self._ordered_ladder(
                witness, dimension, light=dimension in reduced_to_default
            )
            for index in probe_indices:
                probe = self.space.with_value(
                    witness, dimension, ladder[index]
                )
                if _dimension_values(probe)[dimension] == ladder[index]:
                    points.append(probe)
        sizes = sorted(set(witness.msg_sizes_bytes))
        if len(sizes) == 1:
            ladder = list(self.space.msg_size_choices)
            original = witness.msg_sizes_bytes[0]
            if original not in ladder:
                ladder = sorted(set(ladder + [original]))
            origin_index = ladder.index(original)
            for index in self._probe_indices(len(ladder), origin_index):
                pattern = (ladder[index],) * len(witness.msg_sizes_bytes)
                probe = self.space.with_value(witness, "msg_pattern", pattern)
                if probe.msg_sizes_bytes[0] == ladder[index]:
                    points.append(probe)
        else:
            for size in (min(sizes), max(sizes)):
                points.append(
                    self.space.with_value(
                        witness, "msg_pattern",
                        (size,) * len(witness.msg_sizes_bytes),
                    )
                )
        return points

    def _probe_ordered(
        self, witness: WorkloadDescriptor, dimension: str,
        light: bool = False,
    ):
        ladder, origin_index, probe_indices = self._ordered_ladder(
            witness, dimension, light
        )

        def test(index: int):
            probe = self.space.with_value(witness, dimension, ladder[index])
            if _dimension_values(probe)[dimension] != ladder[index]:
                return None  # coercion clamped the value (e.g. MR budget)
            return (yield from self._check(probe))

        results = {origin_index: True}
        for index in probe_indices:
            if index in results:
                continue
            outcome = yield from test(index)
            if outcome is not None:
                results[index] = outcome

        yield from self._bisect_boundaries(results, origin_index, test)
        low_bound, high_bound = _triggering_run_bounds(
            ladder, results, origin_index
        )
        if low_bound is None and high_bound is None:
            return None
        return IntervalCondition(
            dimension=dimension, low=low_bound, high=high_bound
        )

    def _bisect_boundaries(self, results: dict, origin_index: int, test):
        """Sharpen the triggering run's edges by bisecting probe gaps.

        ``test`` is a sub-generator (as is this whole method — probes
        suspend through it).  Wide gaps between a failing and a
        triggering probe leave large under-covered corners of the
        anomaly region; each such corner the search later stumbles into
        costs a whole re-extraction, so a couple of bisection probes
        here pay for themselves many times over.
        """
        for direction in (-1, 1):
            while True:
                side = [
                    i for i in sorted(results)
                    if (i - origin_index) * direction > 0
                ]
                run_edge = origin_index
                fail_edge = None
                ordered = side if direction > 0 else list(reversed(side))
                for index in ordered:
                    if results[index]:
                        run_edge = index
                    else:
                        fail_edge = index
                        break
                if fail_edge is None or abs(fail_edge - run_edge) <= 1:
                    break
                mid = (fail_edge + run_edge) // 2
                if mid in results:
                    break
                outcome = yield from test(mid)
                if outcome is None:
                    break
                results[mid] = outcome

    def _validate_box(
        self,
        witness: WorkloadDescriptor,
        intervals: list[IntervalCondition],
        memberships: list[MembershipCondition],
        requires_mix: bool,
        samples: int = 8,
        max_tightenings: int = 12,
    ):
        """Adversarially sample the MFS box; tighten until samples trigger.

        Per-dimension probing holds the other dimensions at witness
        values, so when the true trigger couples several dimensions (a
        product like anomaly #7's ``num_qps × mrs_per_qp``, or a capacity
        term like #15's ``num_qps × wq_depth``), the independent bounds —
        and especially the dimensions left *unbounded* — can jointly
        admit healthy points.  Random points are drawn from inside the
        box; each healthy sample tightens the box by excluding that
        sample's most-deviant ordered dimension value, moving the bound
        toward the witness.  The result keeps the search's skip test
        sound (false skips hide anomalies from the search forever).
        """
        conditions = {c.dimension: c for c in intervals}
        witness_values = _dimension_values(witness)
        rng = np.random.default_rng(0xC0111E)

        def allowed_values(dim: str) -> list:
            ladder = sorted(set(self.space.ordered_choices(dim)))
            cond = conditions.get(dim)
            if cond is None:
                return ladder
            return [v for v in ladder if cond.matches(float(v))] or [
                witness_values[dim]
            ]

        def pick_adversarial(dim: str, values: list):
            """Mostly probe the box's weakest ends, sometimes uniform.

            Joint weaknesses live at corners; uniform sampling almost
            never lands on them, so each dimension independently snaps
            to an extreme of its allowed range half the time.
            """
            if len(values) == 1 or rng.random() >= 0.5:
                return values[rng.integers(len(values))]
            cond = conditions.get(dim)
            if cond is not None and cond.low is not None and cond.high is None:
                return values[0]  # the >= bound: weakest at the bottom
            if cond is not None and cond.high is not None and cond.low is None:
                return values[-1]  # the <= bound: weakest at the top
            return values[0] if rng.random() < 0.5 else values[-1]

        def sample_in_box() -> Optional[WorkloadDescriptor]:
            probe = witness
            for dim in ORDERED_DIMENSIONS:
                values = allowed_values(dim)
                probe = self.space.with_value(
                    probe, dim, pick_adversarial(dim, values)
                )
            if "avg_msg" in conditions:
                cond = conditions["avg_msg"]
                sizes = [
                    s for s in self.space.msg_size_choices
                    if cond.matches(float(s))
                ]
                if sizes:
                    size = sizes[rng.integers(len(sizes))]
                    probe = self.space.with_value(
                        probe, "msg_pattern",
                        (size,) * len(witness.msg_sizes_bytes),
                    )
            # Coercion may have clamped values back outside the box; a
            # non-matching sample proves nothing, so retry-by-skip.
            candidate = MinimalFeatureSet(
                symptom="", witness=witness,
                intervals=tuple(conditions.values()),
                memberships=tuple(memberships),
                requires_mix=requires_mix,
            )
            return probe if candidate.matches(probe) else None

        def bound_out(dim: str, probe_value: float) -> bool:
            """Shrink ``dim``'s interval so ``probe_value`` is excluded."""
            ladder = sorted(set(self.space.ordered_choices(dim)))
            witness_value = float(witness_values[dim])
            cond = conditions.get(dim, IntervalCondition(dim, None, None))
            if probe_value < witness_value:
                higher = [v for v in ladder if probe_value < v <= witness_value]
                if not higher:
                    return False
                conditions[dim] = IntervalCondition(
                    dim, float(higher[0]), cond.high
                )
            elif probe_value > witness_value:
                lower = [v for v in ladder if witness_value <= v < probe_value]
                if not lower:
                    return False
                conditions[dim] = IntervalCondition(
                    dim, cond.low, float(lower[-1])
                )
            else:
                return False
            return True

        def tighten(probe: WorkloadDescriptor):
            """Exclude a healthy sample by bounding a *culpable* dimension.

            Deviation alone misattributes blame (an irrelevant dimension
            may deviate most), so this repairs the probe toward the
            witness one dimension at a time, most-deviant first: the
            dimension whose reset flips the probe back to triggering is
            the one that matters, and its bound excludes the sample.
            """
            probe_values = _dimension_values(probe)

            def deviation(dim: str) -> float:
                p, w = float(probe_values[dim]), float(witness_values[dim])
                if p <= 0 or w <= 0 or p == w:
                    return 0.0
                return abs(math.log(p / w))

            candidates = sorted(
                (d for d in ORDERED_DIMENSIONS if deviation(d) > 0),
                key=deviation,
                reverse=True,
            )
            repaired = probe
            for dim in candidates:
                reset = self.space.with_value(
                    repaired, dim, witness_values[dim]
                )
                if (yield from self._check(reset)):
                    return bound_out(dim, float(probe_values[dim]))
                repaired = reset
            return False

        # Batched mode pre-draws a burst of samples (recording the local
        # generator's state after each draw) and pre-solves them in one
        # vectorized pass.  A burst stays valid only while the box is
        # unchanged: the first healthy sample tightens the box, so the
        # rest of the burst — drawn against the stale box — is discarded
        # and the generator rewound to just after the failing sample,
        # putting the draw stream exactly where the scalar loop's is.
        burst: list = []
        tightenings = 0
        consecutive_ok = 0
        while consecutive_ok < samples and tightenings <= max_tightenings:
            if self.presolve is not None:
                if not burst:
                    for _ in range(samples - consecutive_ok):
                        drawn = sample_in_box()
                        burst.append((drawn, rng.bit_generator.state))
                    self.presolve([p for p, _ in burst if p is not None])
                probe, state_after = burst.pop(0)
            else:
                probe, state_after = sample_in_box(), None
            if probe is None:
                consecutive_ok += 1  # clamped sample: counts as benign
                continue
            if (yield from self._check(probe)):
                consecutive_ok += 1
                continue
            consecutive_ok = 0
            tightenings += 1
            if burst:
                rng.bit_generator.state = state_after
                burst.clear()
            if not (yield from tighten(probe)):
                break  # cannot separate further; accept best effort
        return [
            cond for cond in conditions.values()
            if cond.low is not None or cond.high is not None
        ]

    def _probe_indices(self, length: int, origin: int) -> list[int]:
        """Ladder indices to probe: extremes, neighbours, spread levels."""
        candidates = {0, length - 1, origin - 1, origin + 1}
        step = max(1, length // self.probes_per_dimension)
        candidates.update(range(0, length, step))
        return sorted(i for i in candidates if 0 <= i < length and i != origin)

    def _probe_pattern(
        self, witness: WorkloadDescriptor
    ):
        """Probe the message-pattern dimension with uniform patterns."""
        sizes = sorted(set(witness.msg_sizes_bytes))
        if len(sizes) == 1:
            # Uniform witness: probe other uniform sizes as an ordered dim.
            return (yield from self._probe_uniform_sizes(witness)), False
        uniform_results = {}
        for size in (min(sizes), max(sizes)):
            probe = self.space.with_value(
                witness, "msg_pattern", (size,) * len(witness.msg_sizes_bytes)
            )
            uniform_results[size] = yield from self._check(probe)
        if not any(uniform_results.values()):
            if witness.mixes_small_and_large:
                return None, True  # only the mixed pattern triggers
            # Only the mixed pattern triggers, but it is not the
            # canonical small/large mix ``requires_mix`` describes — a
            # mix-requiring MFS would exclude its own witness, breaking
            # the skip test's soundness.  Pin the witness's mean size
            # instead: still excludes the (healthy) uniform probes,
            # still contains the witness.
            avg = float(witness.avg_msg_bytes)
            return IntervalCondition("avg_msg", avg, avg), False
        return None, False

    def _probe_uniform_sizes(
        self, witness: WorkloadDescriptor
    ):
        ladder = list(self.space.msg_size_choices)
        original = witness.msg_sizes_bytes[0]
        if original not in ladder:
            ladder = sorted(set(ladder + [original]))
        origin_index = ladder.index(original)

        def test(index: int):
            pattern = (ladder[index],) * len(witness.msg_sizes_bytes)
            probe = self.space.with_value(witness, "msg_pattern", pattern)
            if probe.msg_sizes_bytes[0] != ladder[index]:
                return None  # UD clipped the size to the MTU
            return (yield from self._check(probe))

        results = {origin_index: True}
        for index in self._probe_indices(len(ladder), origin_index):
            if index in results:
                continue
            outcome = yield from test(index)
            if outcome is not None:
                results[index] = outcome
        yield from self._bisect_boundaries(results, origin_index, test)
        low, high = _triggering_run_bounds(ladder, results, origin_index)
        if low is None and high is None:
            return None
        return IntervalCondition(dimension="avg_msg", low=low, high=high)


def _triggering_run_bounds(
    ladder: list, results: dict, origin_index: int
) -> tuple[Optional[float], Optional[float]]:
    """Interval bounds from the tested-and-triggering run around the origin.

    The bounds are always values that were *actually probed* and
    triggered — never an untested neighbour of a failing probe.  Untested
    levels between two triggering probes are assumed triggering
    (interpolation); untested levels between a failing and a triggering
    probe are excluded (conservative: the MFS may cover less than the
    true region, but never healthy space, so the search's skip test stays
    sound).

    Returns ``(None, None)`` when every probe triggered (unbounded in
    both directions — the dimension is not a necessary condition).
    """
    if all(results.values()):
        return None, None
    tested = sorted(results)
    run_low = origin_index
    for index in reversed([i for i in tested if i < origin_index]):
        if results[index]:
            run_low = index
        else:
            break
    run_high = origin_index
    for index in [i for i in tested if i > origin_index]:
        if results[index]:
            run_high = index
        else:
            break
    low = None if run_low == 0 else float(ladder[run_low])
    high = None if run_high == len(ladder) - 1 else float(ladder[run_high])
    return low, high


def match_any(
    anomaly_set: list[MinimalFeatureSet], workload: WorkloadDescriptor
) -> Optional[MinimalFeatureSet]:
    """MatchMFS (paper Alg. 1 line 5): first MFS covering the workload."""
    for mfs in anomaly_set:
        if mfs.matches(workload):
            return mfs
    return None
