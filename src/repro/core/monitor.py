"""The anomaly monitor: detection conditions of §5.2.

Two precisely-defined anomaly classes (§3):

1. **Pause frames** on an uncongested network — pause duration ratio
   above 0.1% (the threshold tolerates the brief pause blips real NICs
   emit while connections settle);
2. **Throughput below specification** — more than 20% under *both* the
   bits/s and the packets/s capability of the RNIC.  The bits bound is
   wire bytes against line rate (MTU framing overhead is not an anomaly);
   the packets bound sums both directions because the RNIC's packet
   engine is shared.

On top of the paper's two symptoms the monitor carries an optional
third, *tail-latency inflation*: a workload whose modeled per-WR p99
exceeds a multiple of its own deterministic latency floor
(:func:`~repro.hardware.model.derive_latency`).  The check runs only on
measurements the throughput/PFC conditions already call healthy, so
enabling it never relabels a paper-symptom anomaly — it can only
surface anomalies the throughput signals miss (an RNIC crawling through
cache refills can still fill the wire).

The monitor also performs the paper's stability check: it compares the
per-second samples and only classifies once the traffic is steady.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hardware.coexist import UNDEFINED_INTERFERENCE, VictimFloor
from repro.hardware.model import Measurement
from repro.hardware.pfc import PAUSE_RATIO_THRESHOLD
from repro.hardware.subsystems import Subsystem

#: §5.2: a workload 20% below the specification bounds is anomalous.
THROUGHPUT_FRACTION = 0.8

#: Tail-latency trigger: anomalous when the modeled p99 exceeds this
#: multiple of the workload's own deterministic latency floor.  The
#: generic (rule-free) stall tail is analytically bounded below this
#: multiple (see ``LATENCY_REFILL_VISIBILITY`` in the hardware model) —
#: sampled sweeps put healthy workloads under ~2.3x — so a verdict here
#: always means a latency quirk fired: most of a WR's completion time
#: is serialized refills or RNR backoff while the wire stays full.
LATENCY_INFLATION_MULTIPLE = 4.0

HEALTHY = "healthy"
PAUSE_FRAME = "pause frame"
LOW_THROUGHPUT = "low throughput"
LATENCY_INFLATION = "latency inflation"
#: Isolation-domain symptoms (co-run searches only): the victim's
#: shared throughput fell below the §5.2 fraction of its *fair
#: bandwidth share*, or its p99 inflated past the trigger multiple of
#: its own alone-floor.
VICTIM_DEGRADED = "victim degraded"
VICTIM_LATENCY = "victim latency inflation"


@dataclasses.dataclass(frozen=True)
class AnomalyVerdict:
    """Classification of one measurement."""

    #: ``healthy``, ``pause frame``, ``low throughput``, ``latency
    #: inflation`` — or, from the isolation monitor, ``victim
    #: degraded`` / ``victim latency inflation``.
    symptom: str
    pause_ratio: float
    min_wire_gbps: float
    total_packets_per_sec: float
    stable: bool
    #: Modeled per-WR p99.  0.0 when the measurement carries no profile,
    #: or when the trigger's O(1) bound ruled the profile healthy before
    #: the percentile summary was ever built (the profile itself always
    #: has the full numbers via ``measurement.latency.summary()``).
    latency_p99_us: float = 0.0
    #: p99 over the workload's deterministic latency floor (same
    #: placeholder convention as ``latency_p99_us``).  The isolation
    #: monitor reports p99 over the *victim's alone-floor* p99 here.
    latency_inflation: float = 0.0
    #: Isolation runs only: victim shared throughput over its fair
    #: bandwidth share (``None`` for solo verdicts; NaN when the fair
    #: share is zero — see
    #: :data:`~repro.hardware.coexist.UNDEFINED_INTERFERENCE`).
    interference: "float | None" = None

    @property
    def is_anomalous(self) -> bool:
        return self.symptom != HEALTHY


class AnomalyMonitor:
    """Applies the §5.2 conditions to measurements of one subsystem."""

    def __init__(
        self,
        subsystem: Subsystem,
        pause_threshold: float = PAUSE_RATIO_THRESHOLD,
        throughput_fraction: float = THROUGHPUT_FRACTION,
        stability_cv: float = 0.2,
        metrics=None,
        latency: bool = True,
        latency_multiple: float = LATENCY_INFLATION_MULTIPLE,
    ) -> None:
        self.subsystem = subsystem
        self.pause_threshold = pause_threshold
        self.throughput_fraction = throughput_fraction
        self.stability_cv = stability_cv
        #: Optional obs.MetricsRegistry tallying verdicts by symptom.
        self.metrics = metrics
        #: Whether the tail-latency trigger participates in verdicts.
        self.latency = latency
        self.latency_multiple = latency_multiple

    def classify(self, measurement: Measurement) -> AnomalyVerdict:
        """Classify one measurement.

        Pause detection reads the sampled pause-duration counter (what a
        real monitor sees); throughput bounds read the per-direction wire
        rates and the summed packet rate.
        """
        stable = self.is_stable(measurement)
        pause_us = measurement.counters["pause_duration_us_per_sec"]
        pause_ratio = pause_us / 1e6
        min_wire = measurement.min_direction_wire_gbps
        total_pps = measurement.total_packets_per_sec

        latency_p99 = 0.0
        inflation = 0.0
        profile = measurement.latency if self.latency else None
        if profile is not None:
            # Hot path: a profile whose grid maximum cannot reach the
            # trigger multiple is healthy without building the summary
            # (its verdict then reports the 0.0 placeholders, like a
            # profile-less measurement); the full estimator runs only
            # for profiles near or over the trigger, or ones something
            # else (the journal recorder, a prior verdict) already
            # summarized.
            summary = profile.cached_summary()
            if summary is None and profile.may_exceed(self.latency_multiple):
                summary = profile.summary()
            if summary is not None:
                latency_p99 = summary["p99_us"]
                inflation = summary["inflation"]

        if pause_ratio > self.pause_threshold:
            symptom = PAUSE_FRAME
        elif self._below_both_bounds(min_wire, total_pps):
            symptom = LOW_THROUGHPUT
        elif (
            self.latency
            and profile is not None
            and inflation > self.latency_multiple
        ):
            # Checked last: the paper's symptoms keep precedence, so the
            # trigger only ever promotes previously-healthy workloads.
            symptom = LATENCY_INFLATION
        else:
            symptom = HEALTHY
        if self.metrics is not None:
            self.metrics.counter("monitor.verdicts", symptom=symptom)
        return AnomalyVerdict(
            symptom=symptom,
            pause_ratio=pause_ratio,
            min_wire_gbps=min_wire,
            total_packets_per_sec=total_pps,
            stable=stable,
            latency_p99_us=latency_p99,
            latency_inflation=inflation,
        )

    def is_anomalous(self, measurement: Measurement) -> bool:
        return self.classify(measurement).is_anomalous

    def _below_both_bounds(self, wire_gbps: float, pps: float) -> bool:
        rnic = self.subsystem.rnic
        bits_ok = wire_gbps >= self.throughput_fraction * rnic.line_rate_gbps
        pps_ok = pps >= self.throughput_fraction * rnic.max_pps
        return not (bits_ok or pps_ok)

    def is_stable(self, measurement: Measurement) -> bool:
        """Coefficient-of-variation check across the per-second samples."""
        readings = np.array(
            [s.get("tx_bytes_per_sec") for s in measurement.samples]
        )
        mean = readings.mean()
        if mean <= 0:
            return True
        return float(readings.std() / mean) <= self.stability_cv


class IsolationMonitor(AnomalyMonitor):
    """Victim-degradation verdicts for co-run (isolation) searches.

    Classifies the *victim's* co-run measurements (what a
    :class:`~repro.hardware.coexist.CoRunModel` testbed produces)
    against the victim's own deterministic alone-floor
    (:class:`~repro.hardware.coexist.VictimFloor`) instead of the
    RNIC's full specification — a tenant holding half the bandwidth is
    not anomalous for running at half the line rate:

    * **victim degraded** — shared throughput below the §5.2 fraction
      (default 80%) of the victim's *fair bandwidth share*;
    * **victim latency inflation** — shared p99 above the trigger
      multiple of the victim's own alone-floor p99.

    PFC pause keeps its paper precedence (a victim pushed into emitting
    pause frames is the worst isolation failure); the latency trigger
    again runs last, so it only promotes co-runs the throughput signals
    call healthy.  Every verdict carries ``interference`` — shared
    throughput over fair share — which the flight recorder feeds into
    the ``isolation.*`` metrics.
    """

    def __init__(
        self,
        subsystem: Subsystem,
        floor: VictimFloor,
        pause_threshold: float = PAUSE_RATIO_THRESHOLD,
        throughput_fraction: float = THROUGHPUT_FRACTION,
        stability_cv: float = 0.2,
        metrics=None,
        latency: bool = True,
        latency_multiple: float = LATENCY_INFLATION_MULTIPLE,
    ) -> None:
        super().__init__(
            subsystem,
            pause_threshold=pause_threshold,
            throughput_fraction=throughput_fraction,
            stability_cv=stability_cv,
            metrics=metrics,
            latency=latency,
            latency_multiple=latency_multiple,
        )
        #: The pinned victim's solo baseline (noise-free, full part).
        self.floor = floor

    def classify(self, measurement: Measurement) -> AnomalyVerdict:
        """Classify one co-run measurement of the victim."""
        stable = self.is_stable(measurement)
        pause_us = measurement.counters["pause_duration_us_per_sec"]
        pause_ratio = pause_us / 1e6
        min_wire = measurement.min_direction_wire_gbps
        total_pps = measurement.total_packets_per_sec
        shared_gbps = measurement.directions[0].wire_gbps
        fair_gbps = self.floor.fair_share_gbps
        interference = (
            shared_gbps / fair_gbps
            if fair_gbps > 0
            else UNDEFINED_INTERFERENCE
        )

        latency_p99 = 0.0
        inflation = 0.0
        alone_p99 = self.floor.alone_p99_us
        profile = measurement.latency if self.latency else None
        if profile is not None and alone_p99 > 0:
            # Same hot-path shape as the base monitor, with the O(1)
            # bound taken against the victim's alone-floor p99: a
            # profile whose grid maximum cannot reach the trigger is
            # healthy without building the percentile summary, and the
            # verdict is the same whether or not something else already
            # summarized the profile.
            summary = profile.cached_summary()
            if summary is None and profile.may_exceed_value(
                self.latency_multiple * alone_p99
            ):
                summary = profile.summary()
            if summary is not None:
                latency_p99 = summary["p99_us"]
                inflation = latency_p99 / alone_p99

        if pause_ratio > self.pause_threshold:
            symptom = PAUSE_FRAME
        elif fair_gbps > 0 and shared_gbps < (
            self.throughput_fraction * fair_gbps
        ):
            symptom = VICTIM_DEGRADED
        elif (
            self.latency
            and profile is not None
            and inflation > self.latency_multiple
        ):
            symptom = VICTIM_LATENCY
        else:
            symptom = HEALTHY
        if self.metrics is not None:
            self.metrics.counter("monitor.verdicts", symptom=symptom)
        return AnomalyVerdict(
            symptom=symptom,
            pause_ratio=pause_ratio,
            min_wire_gbps=min_wire,
            total_packets_per_sec=total_pps,
            stable=stable,
            latency_p99_us=latency_p99,
            latency_inflation=inflation,
            interference=interference,
        )
