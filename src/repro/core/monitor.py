"""The anomaly monitor: detection conditions of §5.2.

Two precisely-defined anomaly classes (§3):

1. **Pause frames** on an uncongested network — pause duration ratio
   above 0.1% (the threshold tolerates the brief pause blips real NICs
   emit while connections settle);
2. **Throughput below specification** — more than 20% under *both* the
   bits/s and the packets/s capability of the RNIC.  The bits bound is
   wire bytes against line rate (MTU framing overhead is not an anomaly);
   the packets bound sums both directions because the RNIC's packet
   engine is shared.

The monitor also performs the paper's stability check: it compares the
per-second samples and only classifies once the traffic is steady.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hardware.model import Measurement
from repro.hardware.pfc import PAUSE_RATIO_THRESHOLD
from repro.hardware.subsystems import Subsystem

#: §5.2: a workload 20% below the specification bounds is anomalous.
THROUGHPUT_FRACTION = 0.8

HEALTHY = "healthy"
PAUSE_FRAME = "pause frame"
LOW_THROUGHPUT = "low throughput"


@dataclasses.dataclass(frozen=True)
class AnomalyVerdict:
    """Classification of one measurement."""

    symptom: str  #: ``healthy``, ``pause frame`` or ``low throughput``.
    pause_ratio: float
    min_wire_gbps: float
    total_packets_per_sec: float
    stable: bool

    @property
    def is_anomalous(self) -> bool:
        return self.symptom != HEALTHY


class AnomalyMonitor:
    """Applies the §5.2 conditions to measurements of one subsystem."""

    def __init__(
        self,
        subsystem: Subsystem,
        pause_threshold: float = PAUSE_RATIO_THRESHOLD,
        throughput_fraction: float = THROUGHPUT_FRACTION,
        stability_cv: float = 0.2,
        metrics=None,
    ) -> None:
        self.subsystem = subsystem
        self.pause_threshold = pause_threshold
        self.throughput_fraction = throughput_fraction
        self.stability_cv = stability_cv
        #: Optional obs.MetricsRegistry tallying verdicts by symptom.
        self.metrics = metrics

    def classify(self, measurement: Measurement) -> AnomalyVerdict:
        """Classify one measurement.

        Pause detection reads the sampled pause-duration counter (what a
        real monitor sees); throughput bounds read the per-direction wire
        rates and the summed packet rate.
        """
        stable = self.is_stable(measurement)
        pause_us = measurement.counters["pause_duration_us_per_sec"]
        pause_ratio = pause_us / 1e6
        min_wire = measurement.min_direction_wire_gbps
        total_pps = measurement.total_packets_per_sec

        if pause_ratio > self.pause_threshold:
            symptom = PAUSE_FRAME
        elif self._below_both_bounds(min_wire, total_pps):
            symptom = LOW_THROUGHPUT
        else:
            symptom = HEALTHY
        if self.metrics is not None:
            self.metrics.counter("monitor.verdicts", symptom=symptom)
        return AnomalyVerdict(
            symptom=symptom,
            pause_ratio=pause_ratio,
            min_wire_gbps=min_wire,
            total_packets_per_sec=total_pps,
            stable=stable,
        )

    def is_anomalous(self, measurement: Measurement) -> bool:
        return self.classify(measurement).is_anomalous

    def _below_both_bounds(self, wire_gbps: float, pps: float) -> bool:
        rnic = self.subsystem.rnic
        bits_ok = wire_gbps >= self.throughput_fraction * rnic.line_rate_gbps
        pps_ok = pps >= self.throughput_fraction * rnic.max_pps
        return not (bits_ok or pps_ok)

    def is_stable(self, measurement: Measurement) -> bool:
        """Coefficient-of-variation check across the per-second samples."""
        readings = np.array(
            [s.get("tx_bytes_per_sec") for s in measurement.samples]
        )
        mean = readings.mean()
        if mean <= 0:
            return True
        return float(readings.std() / mean) <= self.stability_cv
