"""Collie's core: search space, workload engine, anomaly monitor, MFS
algorithm, simulated-annealing search, and the top-level orchestration.

The quickest route in::

    from repro.core import Collie
    report = Collie.for_subsystem("F", seed=0, budget_hours=10.0).run()
    for anomaly in report.anomalies:
        print(anomaly.describe())
"""

from repro.core.collie import Collie, SearchReport
from repro.core.engine import WorkloadEngine
from repro.core.evalcache import EvalCache
from repro.core.executor import CampaignExecutor, ExecutorStats
from repro.core.faults import (
    FaultPlan,
    FaultSpec,
    FaultyTestbed,
    RetryPolicy,
    TaskFailed,
)
from repro.core.mfs import MinimalFeatureSet
from repro.core.monitor import AnomalyMonitor, AnomalyVerdict
from repro.core.population import PopulationCollie, PopulationReport
from repro.core.space import SearchSpace

__all__ = [
    "Collie",
    "SearchReport",
    "WorkloadEngine",
    "EvalCache",
    "CampaignExecutor",
    "ExecutorStats",
    "FaultPlan",
    "FaultSpec",
    "FaultyTestbed",
    "RetryPolicy",
    "TaskFailed",
    "MinimalFeatureSet",
    "AnomalyMonitor",
    "AnomalyVerdict",
    "PopulationCollie",
    "PopulationReport",
    "SearchSpace",
]
