"""Simulated-annealing workload search (paper Algorithm 1).

The search mutates one dimension at a time and drives a chosen hardware
counter to an extreme region — low for performance counters, high for
diagnostic counters.  The energy delta is the paper's relative form
(``(B-A)/A`` for performance, ``(A-B)/B`` for diagnostic), which makes the
algorithm insensitive to each counter's absolute value range (§5.1).

Deviations from textbook SA, as in the paper: the temperature schedule is
deliberately relaxed (the goal is to *visit* many anomalies, not converge
to one optimum), points matching a known MFS are skipped without running
an experiment, and finding a new anomaly triggers MFS extraction followed
by a restart from a fresh random point.
"""

from __future__ import annotations

import dataclasses
import math
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.cluster.testbed import Testbed
from repro.core.mfs import MFSExtractor, MinimalFeatureSet, match_any
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace, changed_dimensions
from repro.hardware.counters import MINIMIZED_COUNTERS, is_diagnostic
from repro.hardware.model import LatencySummaryView, Measurement
from repro.hardware.workload import WorkloadDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.recorder import FlightRecorder

#: Reusable no-op context for profiler-disabled span sites (stateless,
#: so one shared instance costs nothing per iteration).
_NO_SPAN = nullcontext()


@dataclasses.dataclass(frozen=True)
class SearchSignal:
    """One counter being driven to an extreme region."""

    counter: str

    @property
    def diagnostic(self) -> bool:
        return is_diagnostic(self.counter)

    @property
    def lower_is_better(self) -> bool:
        """Whether the search drives this counter toward low values."""
        return self.counter in MINIMIZED_COUNTERS

    def value(self, measurement: Measurement) -> float:
        return float(measurement.counters[self.counter])

    def delta_energy(self, old: float, new: float) -> float:
        """Paper §5.1: relative energy change, negative = improvement."""
        eps = 1e-9
        if self.diagnostic:
            return (old - new) / max(new, eps)
        if self.counter in MINIMIZED_COUNTERS:
            return (new - old) / max(old, eps)
        # Pause duration behaves like a diagnostic: more is "worse is
        # better" for anomaly hunting.
        return (old - new) / max(new, eps)


@dataclasses.dataclass(frozen=True)
class SAParams:
    """Temperature schedule; relaxed per §5.1."""

    t0: float = 1.0
    t_min: float = 0.05
    alpha: float = 0.85
    iterations_per_temperature: int = 10

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.t_min <= 0 or self.t0 <= self.t_min:
            raise ValueError("need t0 > t_min > 0")


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One experiment in the search log (feeds Figures 4–6)."""

    time_seconds: float
    counter: str  #: the signal this experiment was measured under.
    counter_value: float
    symptom: str
    tags: tuple[str, ...]  #: ground truth, never read by the search.
    workload: WorkloadDescriptor
    kind: str  #: ``probe``, ``search``, ``mfs`` or ``skip``.
    new_anomaly_index: Optional[int] = None
    #: Full averaged counter snapshot, so any counter's trajectory can be
    #: plotted across the whole run (Figure 6 follows one diagnostic
    #: counter through every phase of the search).
    counters: dict = dataclasses.field(default_factory=dict)
    #: Per-WR latency summary when the monitor's tail-latency signal is
    #: enabled (a lazily-built ``LatencySummaryView`` in live searches,
    #: a plain dict when rehydrated from a journal); ``None`` otherwise,
    #: so latency-disabled runs journal byte-identically to pre-v4 ones.
    latency: Optional[dict] = None


@dataclasses.dataclass
class SearchState:
    """Mutable state shared across the per-counter SA passes."""

    anomalies: list[MinimalFeatureSet] = dataclasses.field(default_factory=list)
    events: list[TraceEvent] = dataclasses.field(default_factory=list)
    experiments: int = 0
    skipped: int = 0


class AnnealingSearch:
    """Algorithm 1, parameterised by counter signal and MFS usage."""

    def __init__(
        self,
        testbed: Testbed,
        space: SearchSpace,
        monitor: AnomalyMonitor,
        rng: np.random.Generator,
        params: SAParams = SAParams(),
        use_mfs: bool = True,
        mfs_probes_per_dimension: int = 2,
        recorder: Optional["FlightRecorder"] = None,
    ) -> None:
        self.testbed = testbed
        self.space = space
        self.monitor = monitor
        self.rng = rng
        self.params = params
        self.use_mfs = use_mfs
        self.mfs_probes_per_dimension = mfs_probes_per_dimension
        #: Optional flight recorder; observes only, never draws RNG.
        self.recorder = recorder

    # -- measurement helpers ---------------------------------------------

    def _measure(
        self, state: SearchState, workload: WorkloadDescriptor,
        signal: SearchSignal, kind: str,
    ) -> Measurement:
        result = self.testbed.run(workload, rng=self.rng, phase=kind)
        state.experiments += 1
        measurement = result.measurement
        verdict = self.monitor.classify(measurement)
        profile = (
            measurement.latency if self.monitor.latency else None
        )
        tags = measurement.tags
        if profile is not None and profile.tags:
            # Latency quirks extend the ground truth (L-tags) only when
            # the signal is enabled, keeping disabled runs byte-identical.
            tags = tuple(sorted(set(tags) | set(profile.tags)))
        event = TraceEvent(
            time_seconds=result.finished_at,
            counter=signal.counter,
            counter_value=signal.value(measurement),
            symptom=verdict.symptom,
            tags=tags,
            workload=workload,
            kind=kind,
            counters=dict(measurement.counters),
            latency=(
                LatencySummaryView(profile) if profile is not None else None
            ),
        )
        state.events.append(event)
        if self.recorder is not None:
            self.recorder.experiment(event, state)
        return measurement

    def _handle_anomaly(
        self, state: SearchState, workload: WorkloadDescriptor,
        measurement: Measurement, signal: SearchSignal, deadline: float,
    ) -> bool:
        """Extract an MFS for a newly found anomaly (Alg. 1 lines 14-17).

        Returns True when a new anomaly entered the set (callers restart).
        Without MFS the anomaly is logged but the search keeps climbing.
        """
        verdict = self.monitor.classify(measurement)
        if not verdict.is_anomalous:
            return False
        if not self.use_mfs:
            return False
        if match_any(state.anomalies, workload) is not None:
            return False

        def probe(candidate: WorkloadDescriptor) -> str:
            if self.testbed.clock.now >= deadline:
                # Out of budget mid-probe: report healthy, which yields a
                # conservative (narrower) MFS.
                return "healthy"
            probed = self._measure(state, candidate, signal, kind="mfs")
            return self.monitor.classify(probed).symptom

        extractor = MFSExtractor(
            self.space, probe,
            probes_per_dimension=self.mfs_probes_per_dimension,
            metrics=(
                self.recorder.metrics if self.recorder is not None else None
            ),
            presolve=(
                (lambda pts: self.testbed.presolve(pts, phase="mfs"))
                if getattr(self.testbed, "batch_enabled", False)
                else None
            ),
        )
        if self.recorder is not None:
            profiler = self.recorder.profiler
            span = profiler.span("mfs") if profiler is not None else _NO_SPAN
            with self.recorder.metrics.timer("mfs.construct_wall"), span:
                mfs = extractor.construct(
                    workload, verdict.symptom,
                    at_seconds=self.testbed.clock.now,
                    known=state.anomalies,
                )
        else:
            mfs = extractor.construct(
                workload, verdict.symptom, at_seconds=self.testbed.clock.now,
                known=state.anomalies,
            )
        if mfs is None:
            return False  # re-find of a known anomaly; keep climbing
        state.anomalies.append(mfs)
        index = len(state.anomalies) - 1
        # Re-tag the triggering event with the anomaly index.
        event_index: Optional[int] = None
        for i in range(len(state.events) - 1, -1, -1):
            event = state.events[i]
            if event.workload is workload and event.kind != "mfs":
                state.events[i] = dataclasses.replace(
                    event, new_anomaly_index=index
                )
                event_index = i
                break
        if self.recorder is not None:
            self.recorder.anomaly(index, event_index, mfs)
        return True

    # -- the SA loop -------------------------------------------------------

    def run_pass(
        self, state: SearchState, signal: SearchSignal, deadline: float
    ) -> None:
        """Run SA on one counter until the simulated deadline (Alg. 1).

        Implementation notes beyond the paper's pseudocode: the relaxed
        temperature schedule reheats instead of terminating (§5.1 keeps
        the schedule loose on purpose), and a reheat usually resumes from
        a perturbation of the best point seen in this pass — basin
        hopping — rather than losing the climbed niche entirely.
        """
        clock = self.testbed.clock
        best: Optional[tuple[float, WorkloadDescriptor]] = None
        recorder = self.recorder
        profiler = recorder.profiler if recorder is not None else None

        def out_of_time() -> bool:
            return clock.now >= deadline or clock.expired

        def record_transition(action: str, temperature: float,
                              delta: float = 0.0,
                              mutated: tuple = ()) -> None:
            if recorder is not None:
                recorder.transition(
                    clock.now, action, temperature, delta, mutated
                )

        def track_best(value: float, workload: WorkloadDescriptor) -> None:
            nonlocal best
            score = -value if signal.lower_is_better else value
            if best is None or score > best[0]:
                best = (score, workload)

        def reseed(prefer_best: bool) -> Optional[tuple]:
            """Measure a fresh start point; returns (workload, value)."""
            nonlocal best
            if (
                best is not None
                and self.use_mfs
                and match_any(state.anomalies, best[1]) is not None
            ):
                # The best-seen niche has since been covered by an MFS:
                # perturbations of it would mostly be skipped, so drop it.
                best = None
            while not out_of_time():
                if prefer_best and best is not None and self.rng.random() < 0.5:
                    point = self.space.mutate(best[1], self.rng)
                else:
                    point = self.space.random(self.rng)
                if self.use_mfs and match_any(state.anomalies, point):
                    state.skipped += 1
                    if recorder is not None:
                        recorder.skip(clock.now, point)
                    continue
                measurement = self._measure(state, point, signal, kind="search")
                value = signal.value(measurement)
                if self._handle_anomaly(
                    state, point, measurement, signal, deadline
                ):
                    record_transition("restart", self.params.t0)
                    continue  # new anomaly: restart again (Alg. 1 line 17)
                track_best(value, point)
                return point, value
            return None

        seeded = reseed(prefer_best=False)
        if seeded is None:
            return
        current, energy_value = seeded

        cycle = 0
        temperature = self.params.t0
        while not out_of_time():
            for _ in range(self.params.iterations_per_temperature):
                if out_of_time():
                    return
                with (
                    profiler.span("iteration")
                    if profiler is not None else _NO_SPAN
                ):
                    candidate = self.space.mutate(current, self.rng)
                    # Label the move for mutation-effectiveness
                    # diagnostics; pure value comparison, no RNG.
                    mutated = (
                        changed_dimensions(current, candidate)
                        if recorder is not None else ()
                    )
                    if self.use_mfs and match_any(state.anomalies, candidate):
                        state.skipped += 1
                        if recorder is not None:
                            recorder.skip(clock.now, candidate)
                        continue
                    cand_measurement = self._measure(
                        state, candidate, signal, kind="search"
                    )
                    cand_value = signal.value(cand_measurement)
                    if self._handle_anomaly(
                        state, candidate, cand_measurement, signal, deadline
                    ):
                        record_transition("restart", temperature)
                        seeded = reseed(prefer_best=True)
                        if seeded is None:
                            return
                        current, energy_value = seeded
                        continue
                    track_best(cand_value, candidate)
                    delta = signal.delta_energy(energy_value, cand_value)
                    if delta < 0:
                        current, energy_value = candidate, cand_value
                        record_transition(
                            "improve", temperature, delta, mutated
                        )
                    else:
                        prob = math.exp(-delta / max(temperature, 1e-9))
                        if self.rng.random() < prob:
                            current, energy_value = candidate, cand_value
                            record_transition(
                                "accept", temperature, delta, mutated
                            )
                        else:
                            record_transition(
                                "reject", temperature, delta, mutated
                            )
            temperature *= self.params.alpha
            if temperature < self.params.t_min:
                # Relaxed schedule (§5.1): reheat instead of terminating —
                # the goal is coverage of many anomalies, not convergence.
                cycle += 1
                temperature = self.params.t0
                record_transition("reheat", temperature)
                seeded = reseed(prefer_best=True)
                if seeded is None:
                    return
                current, energy_value = seeded
