"""Simulated-annealing workload search (paper Algorithm 1).

The search mutates one dimension at a time and drives a chosen hardware
counter to an extreme region — low for performance counters, high for
diagnostic counters.  The energy delta is the paper's relative form
(``(B-A)/A`` for performance, ``(A-B)/B`` for diagnostic), which makes the
algorithm insensitive to each counter's absolute value range (§5.1).

Deviations from textbook SA, as in the paper: the temperature schedule is
deliberately relaxed (the goal is to *visit* many anomalies, not converge
to one optimum), points matching a known MFS are skipped without running
an experiment, and finding a new anomaly triggers MFS extraction followed
by a restart from a fresh random point.
"""

from __future__ import annotations

import dataclasses
import math
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.cluster.testbed import Testbed
from repro.core.mfs import MFSExtractor, MinimalFeatureSet, match_any
from repro.core.monitor import AnomalyMonitor, AnomalyVerdict
from repro.core.space import SearchSpace, changed_dimensions
from repro.hardware.counters import MINIMIZED_COUNTERS, is_diagnostic
from repro.hardware.model import LatencySummaryView, Measurement
from repro.hardware.workload import WorkloadDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.recorder import FlightRecorder

#: Reusable no-op context for profiler-disabled span sites (stateless,
#: so one shared instance costs nothing per iteration).
_NO_SPAN = nullcontext()


@dataclasses.dataclass(frozen=True)
class SearchSignal:
    """One counter being driven to an extreme region."""

    counter: str

    @property
    def diagnostic(self) -> bool:
        return is_diagnostic(self.counter)

    @property
    def lower_is_better(self) -> bool:
        """Whether the search drives this counter toward low values."""
        return self.counter in MINIMIZED_COUNTERS

    def value(self, measurement: Measurement) -> float:
        return float(measurement.counters[self.counter])

    def delta_energy(self, old: float, new: float) -> float:
        """Paper §5.1: relative energy change, negative = improvement."""
        eps = 1e-9
        if self.diagnostic:
            return (old - new) / max(new, eps)
        if self.counter in MINIMIZED_COUNTERS:
            return (new - old) / max(old, eps)
        # Pause duration behaves like a diagnostic: more is "worse is
        # better" for anomaly hunting.
        return (old - new) / max(new, eps)


@dataclasses.dataclass(frozen=True)
class SAParams:
    """Temperature schedule; relaxed per §5.1."""

    t0: float = 1.0
    t_min: float = 0.05
    alpha: float = 0.85
    iterations_per_temperature: int = 10

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.t_min <= 0 or self.t0 <= self.t_min:
            raise ValueError("need t0 > t_min > 0")


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One experiment in the search log (feeds Figures 4–6)."""

    time_seconds: float
    counter: str  #: the signal this experiment was measured under.
    counter_value: float
    symptom: str
    tags: tuple[str, ...]  #: ground truth, never read by the search.
    workload: WorkloadDescriptor
    kind: str  #: ``probe``, ``search``, ``mfs`` or ``skip``.
    new_anomaly_index: Optional[int] = None
    #: Full averaged counter snapshot, so any counter's trajectory can be
    #: plotted across the whole run (Figure 6 follows one diagnostic
    #: counter through every phase of the search).
    counters: dict = dataclasses.field(default_factory=dict)
    #: Per-WR latency summary when the monitor's tail-latency signal is
    #: enabled (a lazily-built ``LatencySummaryView`` in live searches,
    #: a plain dict when rehydrated from a journal); ``None`` otherwise,
    #: so latency-disabled runs journal byte-identically to pre-v4 ones.
    latency: Optional[dict] = None
    #: Isolation runs only: the verdict's victim-shared-over-fair-share
    #: ratio.  ``None`` on solo searches, so their journals stay
    #: byte-identical to pre-v6 ones.
    interference: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class MeasuredPoint:
    """One measurement plus the verdict and event bookkeeping from it.

    ``_measure`` classifies every measurement exactly once; threading the
    verdict (and the trace-event index) through to ``_handle_anomaly``
    keeps the hot path free of repeat classifications and makes the
    anomaly re-tag an O(1) indexed write instead of a backwards scan.
    """

    measurement: Measurement
    verdict: AnomalyVerdict
    event_index: int


@dataclasses.dataclass
class SearchState:
    """Mutable state shared across the per-counter SA passes."""

    anomalies: list[MinimalFeatureSet] = dataclasses.field(default_factory=list)
    events: list[TraceEvent] = dataclasses.field(default_factory=list)
    experiments: int = 0
    skipped: int = 0


class AnnealingSearch:
    """Algorithm 1, parameterised by counter signal and MFS usage."""

    def __init__(
        self,
        testbed: Testbed,
        space: SearchSpace,
        monitor: AnomalyMonitor,
        rng: np.random.Generator,
        params: SAParams = SAParams(),
        use_mfs: bool = True,
        mfs_probes_per_dimension: int = 2,
        recorder: Optional["FlightRecorder"] = None,
    ) -> None:
        self.testbed = testbed
        self.space = space
        self.monitor = monitor
        self.rng = rng
        self.params = params
        self.use_mfs = use_mfs
        self.mfs_probes_per_dimension = mfs_probes_per_dimension
        #: Optional flight recorder; observes only, never draws RNG.
        self.recorder = recorder
        #: Parallel-tempering hooks, driven by the population driver and
        #: dormant otherwise (the single-run path never reads them, so
        #: legacy trajectories stay byte-identical).  ``exchange_state``
        #: publishes ``(counter, workload, value)`` at the top of each
        #: SA iteration; the driver injects ``(workload, value)`` into
        #: ``exchange_inbox`` and the chain adopts it — recording an
        #: ``exchange`` transition — at its next iteration boundary.
        self.exchange_enabled = False
        self.exchange_state: Optional[tuple] = None
        self.exchange_inbox: Optional[tuple] = None

    # -- measurement helpers ---------------------------------------------

    def _measure(
        self, state: SearchState, workload: WorkloadDescriptor,
        signal: SearchSignal, kind: str,
    ) -> MeasuredPoint:
        result = self.testbed.run(workload, rng=self.rng, phase=kind)
        state.experiments += 1
        measurement = result.measurement
        verdict = self.monitor.classify(measurement)
        profile = (
            measurement.latency if self.monitor.latency else None
        )
        tags = measurement.tags
        if profile is not None and profile.tags:
            # Latency quirks extend the ground truth (L-tags) only when
            # the signal is enabled, keeping disabled runs byte-identical.
            tags = tuple(sorted(set(tags) | set(profile.tags)))
        event = TraceEvent(
            time_seconds=result.finished_at,
            counter=signal.counter,
            counter_value=signal.value(measurement),
            symptom=verdict.symptom,
            tags=tags,
            workload=workload,
            kind=kind,
            counters=dict(measurement.counters),
            latency=(
                LatencySummaryView(profile) if profile is not None else None
            ),
            interference=verdict.interference,
        )
        event_index = len(state.events)
        state.events.append(event)
        if self.recorder is not None:
            self.recorder.experiment(event, state)
        return MeasuredPoint(
            measurement=measurement, verdict=verdict,
            event_index=event_index,
        )

    def _extract(
        self, state: SearchState, stepper, signal: SearchSignal,
        deadline: float,
    ):
        """Drive an MFS extraction, suspending before each probe.

        A sub-generator: yields every in-budget probe workload right
        before measuring it (``kind="mfs"``), so the population driver
        batches probes from many chains exactly like SA candidates.
        Deadline-expired probes are answered ``"healthy"`` — yielding a
        conservative, narrower MFS — *without* suspending: there is
        nothing to batch, and a suspended-but-unmeasured point would
        leave a stale primed slot on the testbed.
        """
        try:
            probe = next(stepper)
            while True:
                if self.testbed.clock.now >= deadline:
                    probe = stepper.send("healthy")
                    continue
                yield probe
                measured = self._measure(state, probe, signal, kind="mfs")
                probe = stepper.send(measured.verdict.symptom)
        except StopIteration as stop:
            return stop.value

    def _handle_anomaly(
        self, state: SearchState, workload: WorkloadDescriptor,
        measured: MeasuredPoint, signal: SearchSignal, deadline: float,
    ):
        """Extract an MFS for a newly found anomaly (Alg. 1 lines 14-17).

        A sub-generator (``yield from`` it): yields each MFS probe
        workload immediately before its measurement, and returns True
        when a new anomaly entered the set (callers restart).  Without
        MFS the anomaly is logged but the search keeps climbing.
        """
        verdict = measured.verdict
        if not verdict.is_anomalous:
            return False
        if not self.use_mfs:
            return False
        if match_any(state.anomalies, workload) is not None:
            return False

        extractor = MFSExtractor(
            self.space, None,
            probes_per_dimension=self.mfs_probes_per_dimension,
            metrics=(
                self.recorder.metrics if self.recorder is not None else None
            ),
            presolve=(
                (lambda pts: self.testbed.presolve(pts, phase="mfs"))
                if getattr(self.testbed, "batch_enabled", False)
                and not getattr(self.testbed, "lockstep", False)
                else None
            ),
        )
        stepper = extractor.construct_steps(
            workload, verdict.symptom, at_seconds=self.testbed.clock.now,
            known=state.anomalies,
        )
        if self.recorder is not None:
            profiler = self.recorder.profiler
            span = profiler.span("mfs") if profiler is not None else _NO_SPAN
            with self.recorder.metrics.timer("mfs.construct_wall"), span:
                mfs = yield from self._extract(
                    state, stepper, signal, deadline
                )
        else:
            mfs = yield from self._extract(state, stepper, signal, deadline)
        if mfs is None:
            return False  # re-find of a known anomaly; keep climbing
        state.anomalies.append(mfs)
        index = len(state.anomalies) - 1
        # Re-tag the triggering event with the anomaly index; the event
        # slot is the one ``_measure`` just filled for this workload (MFS
        # probes only ever append after it), so the write is O(1).
        event_index = measured.event_index
        state.events[event_index] = dataclasses.replace(
            state.events[event_index], new_anomaly_index=index
        )
        if self.recorder is not None:
            self.recorder.anomaly(index, event_index, mfs)
        return True

    # -- the SA loop -------------------------------------------------------

    def run_pass(
        self, state: SearchState, signal: SearchSignal, deadline: float
    ) -> None:
        """Run SA on one counter until the simulated deadline (Alg. 1).

        Implementation notes beyond the paper's pseudocode: the relaxed
        temperature schedule reheats instead of terminating (§5.1 keeps
        the schedule loose on purpose), and a reheat usually resumes from
        a perturbation of the best point seen in this pass — basin
        hopping — rather than losing the climbed niche entirely.
        """
        for _ in self.iter_pass(state, signal, deadline):
            pass

    def iter_pass(
        self, state: SearchState, signal: SearchSignal, deadline: float
    ):
        """Generator form of the SA pass (see :meth:`run_pass`).

        Yields each workload — SA candidate or MFS probe — immediately
        before it is measured.  Driving the generator to exhaustion is
        exactly the scalar pass — no state crosses the yield, so the RNG
        stream, clock charges and journal records are untouched.  A
        population driver interleaves several of these, gathering one
        pending point per chain per generation and pre-solving the whole
        generation as one batched array op before resuming the chains.
        """
        clock = self.testbed.clock
        best: Optional[tuple[float, WorkloadDescriptor]] = None
        recorder = self.recorder
        profiler = recorder.profiler if recorder is not None else None

        def out_of_time() -> bool:
            return clock.now >= deadline or clock.expired

        def record_transition(action: str, temperature: float,
                              delta: float = 0.0,
                              mutated: tuple = ()) -> None:
            if recorder is not None:
                recorder.transition(
                    clock.now, action, temperature, delta, mutated
                )

        def track_best(value: float, workload: WorkloadDescriptor) -> None:
            nonlocal best
            score = -value if signal.lower_is_better else value
            if best is None or score > best[0]:
                best = (score, workload)

        def reseed(prefer_best: bool):
            """Measure a fresh start point; returns (workload, value).

            A sub-generator (driven with ``yield from``): its yields are
            the pre-measurement suspension points, its return value the
            seeded pair — or None when the budget ran out.
            """
            nonlocal best
            if (
                best is not None
                and self.use_mfs
                and match_any(state.anomalies, best[1]) is not None
            ):
                # The best-seen niche has since been covered by an MFS:
                # perturbations of it would mostly be skipped, so drop it.
                best = None
            while not out_of_time():
                if prefer_best and best is not None and self.rng.random() < 0.5:
                    point = self.space.mutate(best[1], self.rng)
                else:
                    point = self.space.random(self.rng)
                if self.use_mfs and match_any(state.anomalies, point):
                    state.skipped += 1
                    if recorder is not None:
                        recorder.skip(clock.now, point)
                    continue
                yield point
                measured = self._measure(state, point, signal, kind="search")
                value = signal.value(measured.measurement)
                if (yield from self._handle_anomaly(
                    state, point, measured, signal, deadline
                )):
                    record_transition("restart", self.params.t0)
                    continue  # new anomaly: restart again (Alg. 1 line 17)
                track_best(value, point)
                return point, value
            return None

        seeded = yield from reseed(prefer_best=False)
        if seeded is None:
            return
        current, energy_value = seeded

        cycle = 0
        temperature = self.params.t0
        while not out_of_time():
            for _ in range(self.params.iterations_per_temperature):
                if out_of_time():
                    return
                if self.exchange_enabled:
                    if self.exchange_inbox is not None:
                        current, energy_value = self.exchange_inbox
                        self.exchange_inbox = None
                        record_transition("exchange", temperature)
                    self.exchange_state = (
                        signal.counter, current, energy_value
                    )
                with (
                    profiler.span("iteration")
                    if profiler is not None else _NO_SPAN
                ):
                    candidate = self.space.mutate(current, self.rng)
                    # Label the move for mutation-effectiveness
                    # diagnostics; pure value comparison, no RNG.
                    mutated = (
                        changed_dimensions(current, candidate)
                        if recorder is not None else ()
                    )
                    if self.use_mfs and match_any(state.anomalies, candidate):
                        state.skipped += 1
                        if recorder is not None:
                            recorder.skip(clock.now, candidate)
                        continue
                    yield candidate
                    measured = self._measure(
                        state, candidate, signal, kind="search"
                    )
                    cand_value = signal.value(measured.measurement)
                    if (yield from self._handle_anomaly(
                        state, candidate, measured, signal, deadline
                    )):
                        record_transition("restart", temperature)
                        seeded = yield from reseed(prefer_best=True)
                        if seeded is None:
                            return
                        current, energy_value = seeded
                        continue
                    track_best(cand_value, candidate)
                    delta = signal.delta_energy(energy_value, cand_value)
                    if delta < 0:
                        current, energy_value = candidate, cand_value
                        record_transition(
                            "improve", temperature, delta, mutated
                        )
                    else:
                        prob = math.exp(-delta / max(temperature, 1e-9))
                        if self.rng.random() < prob:
                            current, energy_value = candidate, cand_value
                            record_transition(
                                "accept", temperature, delta, mutated
                            )
                        else:
                            record_transition(
                                "reject", temperature, delta, mutated
                            )
            temperature *= self.params.alpha
            if temperature < self.params.t_min:
                # Relaxed schedule (§5.1): reheat instead of terminating —
                # the goal is coverage of many anomalies, not convergence.
                cycle += 1
                temperature = self.params.t0
                record_transition("reheat", temperature)
                seeded = yield from reseed(prefer_best=True)
                if seeded is None:
                    return
                current, energy_value = seeded
