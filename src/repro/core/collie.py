"""Collie's top-level orchestration (paper Fig. 2 + §7.2 procedure).

A run:

1. measures 10 random points and ranks the candidate counters by their
   coefficient of variation (std/mean) over those probes, in decreasing
   order — exactly the §7.2 setup;
2. runs the simulated-annealing search on each counter in that order,
   splitting the remaining time budget evenly;
3. maintains the anomaly set (MFS per anomaly), skipping known regions.

``counter_mode`` selects the signal family: ``"diag"`` uses the 9 vendor
diagnostic counters (Collie (Diag)), ``"perf"`` the always-available
throughput counters (Collie (Perf)).  ``use_mfs=False`` turns the run
into the plain SA baseline of Figure 5.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cluster.clock import SimulatedClock
from repro.cluster.testbed import Testbed
from repro.core.annealing import (
    AnnealingSearch,
    SAParams,
    SearchSignal,
    SearchState,
    TraceEvent,
)
from repro.core.mfs import MinimalFeatureSet, match_any
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.counters import DIAGNOSTIC_COUNTERS, MINIMIZED_COUNTERS
from repro.hardware.subsystems import Subsystem, get_subsystem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.evalcache import EvalCache
    from repro.obs.recorder import FlightRecorder

#: §7.2: "we first generate 10 random points" to rank counters.
RANKING_PROBES = 10

#: Reusable no-op context for profiler-disabled span sites.
_NO_SPAN = nullcontext()


@dataclasses.dataclass
class SearchReport:
    """Everything a Collie run produced."""

    subsystem_name: str
    counter_mode: str
    use_mfs: bool
    anomalies: list[MinimalFeatureSet]
    events: list[TraceEvent]
    experiments: int
    skipped_points: int
    elapsed_seconds: float
    counter_ranking: list[str]

    @property
    def elapsed_hours(self) -> float:
        return self.elapsed_seconds / 3600.0

    def found_tags(self) -> list[str]:
        """Ground-truth anomaly tags hit during the run (benchmark use)."""
        tags: list[str] = []
        for event in self.events:
            for tag in event.tags:
                if tag not in tags:
                    tags.append(tag)
        return tags

    def first_hit_times(self) -> dict:
        """Ground-truth tag → simulated seconds of first anomalous hit.

        Only events the monitor actually classified as anomalous count —
        a tag firing without an observable symptom is not "found".
        """
        hits: dict = {}
        for event in self.events:
            if event.symptom == "healthy":
                continue
            for tag in event.tags:
                hits.setdefault(tag, event.time_seconds)
        return hits

    def summary(self) -> str:
        lines = [
            f"Collie({self.counter_mode}{'' if self.use_mfs else ', no MFS'}) "
            f"on subsystem {self.subsystem_name}: "
            f"{len(self.anomalies)} anomalies (MFS), "
            f"{self.experiments} experiments, "
            f"{self.skipped_points} skipped, "
            f"{self.elapsed_hours:.1f} simulated hours",
        ]
        for i, mfs in enumerate(self.anomalies, 1):
            lines.append(f"  #{i} @{mfs.found_at_seconds / 3600:.2f}h "
                         f"{mfs.describe()}")
        return "\n".join(lines)


class Collie:
    """The search tool: workload engine + anomaly monitor + generator."""

    def __init__(
        self,
        subsystem: Subsystem,
        space: Optional[SearchSpace] = None,
        counter_mode: str = "diag",
        use_mfs: bool = True,
        budget_hours: float = 10.0,
        seed: int = 0,
        sa_params: SAParams = SAParams(),
        noise: float = 0.02,
        mfs_probes_per_dimension: int = 2,
        counters: Optional[tuple] = None,
        cache: Optional["EvalCache"] = None,
        recorder: Optional["FlightRecorder"] = None,
        batch: bool = True,
        batch_probes: bool = False,
        latency: bool = True,
        victim=None,
        victim_share: float = 0.5,
    ) -> None:
        if counter_mode not in ("diag", "perf"):
            raise ValueError("counter_mode must be 'diag' or 'perf'")
        self.subsystem = subsystem
        self.space = space or SearchSpace.for_subsystem(subsystem)
        self.counter_mode = counter_mode
        #: Restrict the searched counters (the parallel-Collie extension
        #: partitions the ranked counters across machines).
        self.counter_subset = tuple(counters) if counters else None
        self.use_mfs = use_mfs
        self.budget_hours = budget_hours
        self.budget_seconds = budget_hours * 3600.0
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.clock = SimulatedClock(self.budget_seconds)
        #: Memoized evaluation (transparent: results are bit-identical
        #: with or without it; MFS probing is where it pays off most).
        self.cache = cache
        #: Optional flight recorder; its metrics registry is threaded
        #: through the monitor, testbed and cache, its journal through
        #: the annealing loop.  Purely observational: a recorded run is
        #: bit-identical to an unrecorded one.
        self.recorder = recorder
        metrics = recorder.metrics if recorder is not None else None
        profiler = recorder.profiler if recorder is not None else None
        self.profiler = profiler
        if recorder is not None and cache is not None:
            cache.observer = recorder.cache_event
            cache.profiler = profiler
        #: Pre-sample + pre-solve the §7.2 ranking probes as one batch.
        #: Changes the RNG interleaving (sampling before noise draws
        #: instead of alternating), so while runs stay deterministic per
        #: seed they differ from the scalar sequence — opt-in only.
        self.batch_probes = batch_probes
        #: Isolation mode: a pinned victim turns the run into an
        #: adversarial-neighbor search — every searched point is an
        #: attacker co-running next to the victim, and verdicts come
        #: from the isolation monitor's victim-degradation conditions.
        #: ``None`` leaves the solo search byte-identical to before.
        self.victim = victim
        self.victim_share = victim_share
        self.testbed = Testbed(
            subsystem, clock=self.clock, noise=noise, cache=cache,
            metrics=metrics, batch=batch, profiler=profiler,
            victim=victim, victim_share=victim_share,
        )
        #: ``latency=False`` (``--no-latency``) disables the tail-latency
        #: trigger AND latency journaling: the run is then bit-identical
        #: to a pre-v4 throughput-only search.
        self.latency = latency
        if victim is not None:
            from repro.core.monitor import IsolationMonitor

            self.monitor: AnomalyMonitor = IsolationMonitor(
                subsystem, self.testbed.victim_floor,
                metrics=metrics, latency=latency,
            )
        else:
            self.monitor = AnomalyMonitor(
                subsystem, metrics=metrics, latency=latency
            )
        self.search = AnnealingSearch(
            self.testbed,
            self.space,
            self.monitor,
            self.rng,
            params=sa_params,
            use_mfs=use_mfs,
            mfs_probes_per_dimension=mfs_probes_per_dimension,
            recorder=recorder,
        )
        self.last_report: Optional[SearchReport] = None

    @classmethod
    def for_subsystem(cls, letter: str, **kwargs) -> "Collie":
        """Convenience constructor from a Table 1 letter."""
        return cls(get_subsystem(letter), **kwargs)

    # -- the run -------------------------------------------------------------

    def run(self) -> SearchReport:
        """Execute the full §7.2 procedure within the time budget.

        The report is memoised on the instance (``last_report``) for the
        §7.3 developer workflows that interrogate a finished campaign.
        """
        stepper = self.steps()
        while True:
            try:
                next(stepper)
            except StopIteration as stop:
                return stop.value

    def steps(self):
        """Generator twin of :meth:`run`.

        Yields each workload (ranking probe, SA candidate or MFS probe)
        immediately before it is measured; driving it to exhaustion is
        exactly ``run()`` — no state crosses a yield, so the trajectory,
        RNG stream and journal are bit-identical.  The population driver
        interleaves several of these, pre-solving each generation's
        pending points as one batch.  ``StopIteration.value`` is the
        :class:`SearchReport`.
        """
        if self.recorder is not None:
            self.recorder.run_start(
                self.subsystem.name, self.counter_mode, self.use_mfs,
                self.budget_hours, self.seed, space=self.space,
            )
            if self.victim is not None:
                self.recorder.isolation(
                    self.victim, self.victim_share,
                    self.testbed.victim_floor,
                )
        profiler = self.profiler
        with (
            profiler.span("search") if profiler is not None else _NO_SPAN
        ):
            state = SearchState()
            with (
                profiler.span("rank") if profiler is not None else _NO_SPAN
            ):
                ranking = yield from self._rank_counters(state)
            if self.recorder is not None:
                self.recorder.ranking(ranking, self._dispersions)
            yield from self._search_counters(state, ranking)
        self.last_report = SearchReport(
            subsystem_name=self.subsystem.name,
            counter_mode=self.counter_mode,
            use_mfs=self.use_mfs,
            anomalies=state.anomalies,
            events=state.events,
            experiments=state.experiments,
            skipped_points=state.skipped,
            elapsed_seconds=self.clock.now,
            counter_ranking=ranking,
        )
        if self.recorder is not None:
            self.recorder.run_end(self.last_report)
        return self.last_report

    def _candidate_counters(self) -> tuple[str, ...]:
        if self.counter_subset is not None:
            return self.counter_subset
        if self.counter_mode == "diag":
            return DIAGNOSTIC_COUNTERS
        return tuple(sorted(MINIMIZED_COUNTERS))

    def _rank_counters(self, state: SearchState):
        """Probe 10 random points; rank counters by std/mean, descending.

        A sub-generator of :meth:`steps`: yields each probe workload
        right before measuring it, returns the ranking.
        """
        candidates = self._candidate_counters()
        observations: dict = {name: [] for name in candidates}
        signal = SearchSignal(candidates[0])
        presampled: Optional[list] = None
        if self.batch_probes and self.testbed.batch_enabled:
            presampled = [
                self.space.random(self.rng) for _ in range(RANKING_PROBES)
            ]
            self.testbed.presolve(presampled, phase="probe")
        for i in range(RANKING_PROBES):
            if self.clock.expired:
                break
            if presampled is not None:
                workload = presampled[i]
            else:
                workload = self.space.random(self.rng)
            yield workload
            measured = self.search._measure(
                state, workload, signal, kind="probe"
            )
            yield from self.search._handle_anomaly(
                state, workload, measured, signal,
                deadline=self.budget_seconds,
            )
            counters = measured.measurement.counters
            for name in candidates:
                observations[name].append(float(counters[name]))

        def dispersion(name: str) -> float:
            values = np.array(observations[name])
            if values.size == 0:
                return 0.0
            mean = values.mean()
            if mean <= 0:
                return 0.0
            return float(values.std() / mean)

        ranked = sorted(candidates, key=dispersion, reverse=True)
        # A counter that never moved across ten random probes carries no
        # searchable signal on this subsystem; spend the budget elsewhere.
        self._dispersions = {name: dispersion(name) for name in ranked}
        return [name for name in ranked if dispersion(name) > 0.0]

    def _search_counters(self, state: SearchState, ranking: list[str]):
        """Run one SA pass per counter, in ranking order.

        Budget allocation is geometric: each pass receives a fixed
        fraction of the remaining budget, so the counters ranked most
        informative — where the hard-to-trigger anomalies hide — get
        hours rather than minutes, while every ranked counter still gets
        a slice before the budget runs out.
        """
        remaining_counters = list(ranking)
        while remaining_counters and not self.clock.expired:
            counter = remaining_counters.pop(0)
            slots_left = len(remaining_counters) + 1
            slice_seconds = max(
                self.clock.remaining * 0.30,
                self.clock.remaining / slots_left,
            )
            deadline = self.clock.now + slice_seconds
            with (
                self.profiler.span("pass")
                if self.profiler is not None else _NO_SPAN
            ):
                yield from self.search.iter_pass(
                    state, SearchSignal(counter), deadline
                )

    # -- §7.3 developer workflows -----------------------------------------

    def check_restricted_space(self) -> list[MinimalFeatureSet]:
        """Anomaly-prevention mode: does a restricted space hit anomalies?

        Developers restrict the space to the workloads their application
        can generate; Collie answers whether that restricted space still
        contains performance anomalies (§5.2 "anomaly prevention").
        """
        if self.last_report is None:
            self.run()
        return self.last_report.anomalies

    def diagnose(self, workload) -> Optional[MinimalFeatureSet]:
        """Debugging mode: match an application workload against the MFS
        set of the completed campaign (running one first if needed)."""
        if self.last_report is None:
            self.run()
        return match_any(self.last_report.anomalies, workload)
