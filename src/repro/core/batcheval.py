"""Batched vectorized evaluation of workload points (S31).

Every search workflow evaluates *sets* of closely related points — MFS
necessity ladders and box-validation bursts, the exhaustive Perftest
sweep, counter-ranking probes, campaign fan-outs.  The scalar pipeline
prices them one at a time; :class:`BatchEvaluator` runs the
deterministic half (features → rule gates → per-direction steady-state
solve → ideal counters) as float64 column arithmetic over the whole
batch (:func:`repro.hardware.model.solve_batch`), deduplicating
identical points and consulting/back-filling the
:class:`~repro.core.evalcache.EvalCache` through its bulk API.

**Identity contract.**  Batched evaluation is *bit-identical* to the
scalar loop, including RNG consumption: observation noise is still
drawn from the caller's generator in the same per-point order.  A
``Generator.normal`` request for N values reads the same bit stream as
N sequential scalar requests, so one flat draw sliced per point equals
the scalar loop's per-point draws exactly — values and final generator
state (``tests/core/test_batcheval.py`` pins this over subsystems A–H).
Only a point's *active* counters (ideal value > 0) consume noise,
exactly as :class:`~repro.hardware.counters.VendorMonitor` does.

Two batching modes exist upstream of this module:

* **exact** — the batch is known before any draw (MFS ladders, box
  validation, the Perftest sweep): batched and scalar runs are
  bit-identical, so batching defaults on, with a ``batch=False`` /
  ``--no-batch`` escape hatch through the untouched scalar code;
* **opt-in** (``batch_probes``) — phases that interleave point sampling
  with noise draws on one RNG stream (random search, counter ranking)
  cannot batch bit-identically; pre-sampling the points changes the
  interleaving (still deterministic per seed) and is therefore off by
  default.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.evalcache import DEFAULT_PHASE, canonical_point
from repro.hardware.counters import ALL_COUNTERS, CounterSample, average_counters
from repro.hardware.model import (
    Measurement,
    SteadyStateModel,
    latency_for_solve,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.workload import WorkloadDescriptor
    from repro.obs.metrics import MetricsRegistry

#: Reusable no-op context for profiler-disabled span sites.
_NO_SPAN = nullcontext()


def observe_many(
    model: SteadyStateModel,
    workloads: "list[WorkloadDescriptor]",
    solves: list,
    rng: np.random.Generator,
    sample_seconds: int = 4,
) -> list[Measurement]:
    """Noisy observation of pre-solved points, scalar-loop bit stream.

    Mirrors :meth:`VendorMonitor._sample_rows` per point: one flat
    normal draw covers the whole batch and is sliced into each point's
    ``(seconds, active)`` block in original order.
    """
    n = len(workloads)
    window = int(sample_seconds)
    count = len(ALL_COUNTERS)
    base = np.array(
        [
            [float(s.ideal_counters.get(name, 0.0)) for name in ALL_COUNTERS]
            for s in solves
        ]
    ).reshape(n, count)
    rows = np.repeat(base[:, None, :], window, axis=1)
    noise = model.noise
    if noise > 0 and window > 0:
        jitter = base > 0
        active = jitter.sum(axis=1)
        total_active = int(active.sum())
        if total_active:
            flat = rng.normal(0.0, noise, size=window * total_active)
            clipped = np.maximum(0.0, 1.0 + flat)
            point_idx, cols = np.nonzero(jitter)
            starts = np.concatenate(([0], np.cumsum(window * active)))[:-1]
            group_starts = np.concatenate(([0], np.cumsum(active)))[:-1]
            within = np.arange(point_idx.size) - np.repeat(
                group_starts, active
            )
            first = starts[point_idx] + within
            step = active[point_idx]
            for second in range(window):
                rows[point_idx, second, cols] *= clipped[
                    first + second * step
                ]
    return _measurements_from_rows(model, workloads, solves, rows, window)


def observe_each(
    model: SteadyStateModel,
    workloads: "list[WorkloadDescriptor]",
    solves: list,
    rngs: "list[np.random.Generator]",
    sample_seconds: int = 4,
) -> list[Measurement]:
    """Noisy observation with one independent RNG per point.

    The population driver's seam: point ``i``'s noise is drawn from
    ``rngs[i]`` with the exact call :meth:`VendorMonitor._sample_rows`
    would make — one ``normal(size=(window, active))`` draw — so chain
    ``i``'s generator lands in the bit-identical state a standalone
    scalar evaluation would leave it in, while the deterministic row
    construction and averaging stay vectorized across the batch.
    """
    n = len(workloads)
    window = int(sample_seconds)
    count = len(ALL_COUNTERS)
    base = np.array(
        [
            [float(s.ideal_counters.get(name, 0.0)) for name in ALL_COUNTERS]
            for s in solves
        ]
    ).reshape(n, count)
    rows = np.repeat(base[:, None, :], window, axis=1)
    noise = model.noise
    if noise > 0 and window > 0:
        jitter = base > 0
        active = jitter.sum(axis=1)
        total_active = int(active.sum())
        if total_active:
            # The only per-point step is the mandatory draw from that
            # chain's generator — exactly the ``(window, active)``
            # request the scalar path makes.  Raveling each (row-major)
            # block and concatenating in point order yields the same
            # flat layout ``observe_many`` draws in one request, so the
            # application below is the shared vectorized scatter.
            flat = np.concatenate(
                [
                    rngs[i].normal(
                        0.0, noise, size=(window, int(active[i]))
                    ).ravel()
                    for i in range(n)
                    if active[i]
                ]
            )
            clipped = np.maximum(0.0, 1.0 + flat)
            point_idx, cols = np.nonzero(jitter)
            starts = np.concatenate(([0], np.cumsum(window * active)))[:-1]
            group_starts = np.concatenate(([0], np.cumsum(active)))[:-1]
            within = np.arange(point_idx.size) - np.repeat(
                group_starts, active
            )
            first = starts[point_idx] + within
            step = active[point_idx]
            for second in range(window):
                rows[point_idx, second, cols] *= clipped[
                    first + second * step
                ]
    return _measurements_from_rows(model, workloads, solves, rows, window)


def _measurements_from_rows(
    model: SteadyStateModel,
    workloads: "list[WorkloadDescriptor]",
    solves: list,
    rows: np.ndarray,
    window: int,
) -> list[Measurement]:
    """Assemble Measurements from a solved+sampled ``(n, window, c)`` cube."""
    n = len(workloads)
    measurements = []
    subsystem_name = model.subsystem.name
    if window:
        # One axis-1 reduction replaces a stack+mean per point; for the
        # short windows in play the summation order (sequential below
        # numpy's pairwise threshold) and thus every bit is the same as
        # scalar ``average_counters``.
        means = rows.mean(axis=1)
        means_list = means.tolist()
    for i in range(n):
        samples = [
            CounterSample(second=second, row=rows[i, second])
            for second in range(window)
        ]
        if window:
            counters = dict(zip(ALL_COUNTERS, means_list[i]))
        else:
            counters = average_counters(samples)
        measurements.append(
            Measurement(
                workload=workloads[i],
                subsystem_name=subsystem_name,
                samples=samples,
                counters=counters,
                directions=solves[i].directions,
                fired=solves[i].fired,
                features=solves[i].features,
                latency=latency_for_solve(model.subsystem, solves[i]),
            )
        )
    return measurements


class BatchEvaluator:
    """Deduplicating, cache-aware batched front end to the solver.

    ``enabled=False`` (the ``--no-batch`` escape hatch) routes every
    call through the existing scalar code path unchanged.
    """

    def __init__(
        self,
        model: SteadyStateModel,
        metrics: Optional["MetricsRegistry"] = None,
        enabled: bool = True,
        profiler=None,
    ) -> None:
        self.model = model
        self.metrics = metrics
        self.enabled = enabled
        #: Optional obs.SpanProfiler ("batch" spans on vectorized solves).
        self.profiler = profiler

    def _span(self):
        return (
            self.profiler.span("batch")
            if self.profiler is not None else _NO_SPAN
        )

    def _count_points(self, n: int, mode: str) -> None:
        if self.metrics is not None and n:
            self.metrics.counter("batcheval.points", float(n), mode=mode)

    # -- solving --------------------------------------------------------------

    def solve_many(
        self,
        workloads: "list[WorkloadDescriptor]",
        phase: str = DEFAULT_PHASE,
    ) -> list:
        """Deterministic solves for every point (deduped, cache-backed).

        Returns one :class:`~repro.core.evalcache.CachedSolve` per input
        point, in order; duplicates share the unique point's solve, and
        fresh solves back-fill the cache through ``put_many``.
        """
        model = self.model
        if not self.enabled or len(workloads) <= 1:
            self._count_points(len(workloads), "scalar")
            return [model._solve(w, phase) for w in workloads]
        started = time.perf_counter()
        keys = [canonical_point(w) for w in workloads]
        index_of: dict = {}
        unique: list = []
        for key, workload in zip(keys, workloads):
            if key not in index_of:
                index_of[key] = len(unique)
                unique.append(workload)
        cache = model.cache
        if cache is not None:
            solves = cache.get_many(model.subsystem, unique, phase=phase)
        else:
            solves = [None] * len(unique)
        missing = [i for i, solve in enumerate(solves) if solve is None]
        if missing:
            solve_started = time.perf_counter()
            to_solve = [unique[i] for i in missing]
            for workload in to_solve:
                model._validate(workload)
            with self._span():
                solved = model.solve_points(to_solve)
            for i, solve in zip(missing, solved):
                solves[i] = solve
            if cache is not None:
                cache.put_many(model.subsystem, to_solve, solved)
                cache.charge(
                    "solve", time.perf_counter() - solve_started
                )
        if self.metrics is not None:
            self.metrics.observe(
                "batcheval.batch_size", float(len(unique)), phase=phase
            )
        self._count_points(len(workloads), "vectorized")
        return [solves[index_of[key]] for key in keys]

    def presolve(
        self,
        workloads: "list[WorkloadDescriptor]",
        phase: str = DEFAULT_PHASE,
    ) -> int:
        """Back-fill the cache for upcoming points; returns solves done.

        Stat-less by design: membership is checked with ``peek_many``
        (no hit/miss recorded), so the subsequent scalar replay sees the
        exact lookup statistics a non-presolved run would — only faster.
        Points that fail validation are skipped (the scalar path raises
        for them later, unchanged).  A no-op without a cache or when
        batching is disabled.
        """
        model = self.model
        cache = model.cache
        if not self.enabled or cache is None or not workloads:
            return 0
        seen: set = set()
        unique: list = []
        for workload in workloads:
            key = canonical_point(workload)
            if key not in seen:
                seen.add(key)
                unique.append(workload)
        present = cache.peek_many(model.subsystem, unique)
        to_solve = []
        for workload, hit in zip(unique, present):
            if hit:
                continue
            try:
                model._validate(workload)
            except ValueError:
                continue
            to_solve.append(workload)
        if not to_solve:
            return 0
        started = time.perf_counter()
        with self._span():
            solved = model.solve_points(to_solve)
        cache.put_many(model.subsystem, to_solve, solved)
        cache.charge("solve", time.perf_counter() - started)
        if self.metrics is not None:
            self.metrics.observe(
                "batcheval.batch_size", float(len(to_solve)), phase=phase
            )
        self._count_points(len(to_solve), "vectorized")
        return len(to_solve)

    # -- full evaluation ------------------------------------------------------

    def evaluate_each(
        self,
        workloads: "list[WorkloadDescriptor]",
        rngs: "list[np.random.Generator]",
        sample_seconds: int = 4,
        phase: str = DEFAULT_PHASE,
    ) -> list[Measurement]:
        """Batched evaluation with an independent RNG per point.

        The population generation step: N chains' pending points solved
        as one deduplicated array program, each point's observation
        noise drawn from its own chain's generator in scalar order.
        Point ``i``'s measurement — and the state ``rngs[i]`` is left
        in — is bit-identical to
        ``model.evaluate(workloads[i], rngs[i], phase=phase)``.
        """
        model = self.model
        if not self.enabled or len(workloads) <= 1:
            self._count_points(len(workloads), "scalar")
            return [
                model.evaluate(
                    w, rng=r, sample_seconds=sample_seconds, phase=phase
                )
                for w, r in zip(workloads, rngs)
            ]
        started = time.perf_counter()
        solves = self.solve_many(workloads, phase=phase)
        measurements = observe_each(
            model, workloads, solves, rngs, sample_seconds
        )
        if self.metrics is not None:
            self.metrics.observe(
                "batcheval.point_seconds",
                (time.perf_counter() - started) / len(workloads),
                phase=phase,
            )
        return measurements

    def evaluate_many(
        self,
        workloads: "list[WorkloadDescriptor]",
        rng: Optional[np.random.Generator] = None,
        sample_seconds: int = 4,
        phase: str = DEFAULT_PHASE,
    ) -> list[Measurement]:
        """Batched :meth:`SteadyStateModel.evaluate` over N points.

        Bit-identical to ``[model.evaluate(w, rng, ...) for w in
        workloads]`` including the RNG draw count and order.  With
        ``rng=None`` each point gets a fresh ``default_rng(0)`` exactly
        like the scalar default, so that case falls back to the loop.
        """
        model = self.model
        if not self.enabled or len(workloads) <= 1 or rng is None:
            self._count_points(len(workloads), "scalar")
            return [
                model.evaluate(
                    w, rng=rng, sample_seconds=sample_seconds, phase=phase
                )
                for w in workloads
            ]
        started = time.perf_counter()
        solves = self.solve_many(workloads, phase=phase)
        measurements = observe_many(
            model, workloads, solves, rng, sample_seconds
        )
        if self.metrics is not None:
            self.metrics.observe(
                "batcheval.point_seconds",
                (time.perf_counter() - started) / len(workloads),
                phase=phase,
            )
        return measurements
