"""Message-level traffic traces: functional execution on a timeline.

The steady-state model answers "how fast"; sometimes an engineer wants
to *watch* a workload — which WQE posted when, which bytes landed where,
which completion fired.  The tracer runs a scaled slice of a workload
through the real verbs datapath while spacing events on the timeline the
performance model predicts, yielding a per-message event log suitable
for debugging the workload shape itself.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.cluster.host import Host
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import Subsystem, get_subsystem
from repro.hardware.workload import SGLayout, WorkloadDescriptor
from repro.verbs.constants import MTU, AccessFlags, Opcode, QPType
from repro.verbs.datapath import DataPath
from repro.verbs.fabric import Fabric
from repro.verbs.qp import QPCapabilities
from repro.verbs.wr import (
    RecvWorkRequest,
    SendWorkRequest,
    build_sg_list,
    chunk_message,
    mixed_entry_lengths,
)


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One event in a traffic trace."""

    time_us: float
    qp_index: int
    event: str  #: ``post``, ``deliver`` or ``complete``.
    wr_id: int
    nbytes: int
    detail: str = ""

    def render(self) -> str:
        return (
            f"[{self.time_us:10.3f}us] qp{self.qp_index} "
            f"{self.event:<8} wr={self.wr_id:<6} {self.nbytes:>8}B "
            f"{self.detail}"
        )


@dataclasses.dataclass
class TraceLog:
    """A complete trace plus its derived rates."""

    workload: WorkloadDescriptor
    subsystem_name: str
    records: list
    predicted_msgs_per_sec: float

    def render(self, limit: Optional[int] = 40) -> str:
        shown = self.records if limit is None else self.records[:limit]
        lines = [
            f"trace of {self.workload.summary()}",
            f"on subsystem {self.subsystem_name}: model predicts "
            f"{self.predicted_msgs_per_sec:,.0f} msgs/s",
        ]
        lines += [record.render() for record in shown]
        if limit is not None and len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more records")
        return "\n".join(lines)

    def events_of(self, kind: str) -> list:
        return [r for r in self.records if r.event == kind]


class TrafficTracer:
    """Runs traced functional slices of workloads."""

    #: Scale caps keeping traces readable and fast.
    MAX_QPS = 4
    MAX_MESSAGE = 64 * 1024

    def __init__(self, subsystem: "Subsystem | str") -> None:
        if isinstance(subsystem, str):
            subsystem = get_subsystem(subsystem)
        self.subsystem = subsystem
        self.model = SteadyStateModel(subsystem, noise=0.0)

    def trace(
        self, workload: WorkloadDescriptor, messages: int = 16
    ) -> TraceLog:
        """Trace ``messages`` messages of the workload's shape."""
        if messages <= 0:
            raise ValueError("messages must be positive")
        measurement = self.model.evaluate(
            workload, np.random.default_rng(0)
        )
        rate = measurement.directions[0].achieved_msgs_per_sec
        interval_us = 1e6 / rate if rate > 0 else 1.0

        host_a = Host("trace-a", self.subsystem.topology)
        host_b = Host("trace-b", self.subsystem.topology)
        fabric = Fabric()
        fabric.attach(host_a.context)
        fabric.attach(host_b.context)
        datapath = DataPath(fabric)

        qps = min(workload.num_qps, self.MAX_QPS)
        sizes = [
            min(s, self.MAX_MESSAGE) for s in workload.msg_sizes_bytes
        ]
        mr_bytes = max(sizes) + 4096
        cap = QPCapabilities(
            max_send_wr=max(workload.wqe_batch * 2, 64),
            max_recv_wr=max(workload.wq_depth, 64),
            max_send_sge=16,
        )
        pairs = []
        for _ in range(qps):
            pd_a, pd_b = host_a.context.alloc_pd(), host_b.context.alloc_pd()
            cq_a = host_a.context.create_cq(4096)
            cq_b = host_b.context.create_cq(4096)
            qp_a = host_a.context.create_qp(
                pd_a, workload.qp_type, cq_a, cq_a, cap
            )
            qp_b = host_b.context.create_qp(
                pd_b, workload.qp_type, cq_b, cq_b, cap
            )
            if workload.qp_type is QPType.UD:
                fabric.activate_ud(qp_a, MTU.from_bytes(workload.mtu))
                fabric.activate_ud(qp_b, MTU.from_bytes(workload.mtu))
            else:
                fabric.connect(qp_a, qp_b, MTU.from_bytes(workload.mtu))
            mr_a = pd_a.reg_mr(
                mr_bytes, AccessFlags.all_remote(), workload.src_device
            )
            mr_b = pd_b.reg_mr(
                mr_bytes, AccessFlags.all_remote(), workload.dst_device
            )
            pairs.append((qp_a, qp_b, mr_a, mr_b, cq_a, cq_b))

        records: list = []
        clock_us = 0.0
        for index in range(messages):
            qp_a, qp_b, mr_a, mr_b, cq_a, cq_b = pairs[index % qps]
            size = sizes[index % len(sizes)]
            if workload.sg_layout is SGLayout.MIXED and workload.sge_per_wqe > 1:
                lengths = mixed_entry_lengths(size, workload.sge_per_wqe)
            else:
                lengths = chunk_message(size, 1, workload.sge_per_wqe)[0]
            sg_list = build_sg_list(lengths, mr_a.addr, mr_a.lkey)
            if workload.opcode is Opcode.SEND:
                qp_b.post_recv(
                    RecvWorkRequest(
                        sg_list=build_sg_list(
                            [size + 64], mr_b.addr, mr_b.lkey
                        )
                    )
                )
                wr = SendWorkRequest(
                    opcode=Opcode.SEND,
                    sg_list=sg_list,
                    ah=qp_b.qp_num
                    if workload.qp_type is QPType.UD else None,
                )
            else:
                wr = SendWorkRequest(
                    opcode=workload.opcode,
                    sg_list=sg_list,
                    remote_addr=mr_b.addr,
                    rkey=mr_b.rkey,
                )
            records.append(
                TraceRecord(clock_us, index % qps, "post", wr.wr_id, size,
                            f"{workload.opcode.value} "
                            f"{len(sg_list)}-entry SG")
            )
            qp_a.post_send(wr)
            datapath.process(qp_a)
            records.append(
                TraceRecord(
                    clock_us + interval_us * 0.5, index % qps, "deliver",
                    wr.wr_id, size,
                    f"-> {workload.dst_device}",
                )
            )
            for wc in cq_a.drain() + cq_b.drain():
                records.append(
                    TraceRecord(
                        clock_us + interval_us, index % qps, "complete",
                        wc.wr_id, wc.byte_len, wc.status.value,
                    )
                )
            clock_us += interval_us
        return TraceLog(
            workload=workload,
            subsystem_name=self.subsystem.name,
            records=records,
            predicted_msgs_per_sec=rate,
        )
