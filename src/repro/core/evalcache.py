"""Content-addressed memoization of experiment evaluation.

Every search algorithm in the repo — Collie's SA, random fuzzing,
BayesOpt, the GA baseline — and every multi-seed campaign funnels
through the same deterministic pipeline: space point → workload engine →
steady-state solver → counters.  MFS necessity probing deliberately
revisits near-identical points, and cross-run workflows (warm-started
campaigns, before/after-fix diffing) re-evaluate the very same points.

:class:`EvalCache` memoizes the *deterministic* half of that pipeline —
feature extraction, rule firing, the per-direction steady-state solve and
the ideal counter synthesis — keyed on ``(subsystem fingerprint,
canonicalized workload point)``.  Observation noise is **not** cached:
the model re-samples it from the caller's RNG on every hit, consuming
exactly the draws an uncached evaluation would, so cached and uncached
runs are bit-identical (the determinism suite pins this).

The cache is thread-safe, keeps per-phase hit/miss statistics and wall
times (``probe``/``search``/``mfs``...), and optionally persists to a
JSON store for cross-run reuse (``python -m repro search --cache ...``,
``python -m repro stats``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, Optional

from repro.hardware.model import DirectionRates
from repro.hardware.rules import FiredRule
from repro.hardware.workload import WorkloadDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.subsystems import Subsystem

FORMAT_VERSION = 1

#: Phase label used when callers don't attribute their evaluations.
DEFAULT_PHASE = "search"

#: Reusable no-op context for profiler-disabled span sites.
_NO_SPAN = nullcontext()


def canonical_point(workload: WorkloadDescriptor) -> str:
    """Stable, collision-free text form of one search-space point.

    Every field that influences the steady-state solve appears, in a
    fixed order, rendered through ``repr`` (exact for ints and floats) —
    two workloads with different feature vectors therefore always
    canonicalize differently, while logically identical points (however
    constructed) canonicalize identically.

    The key is memoized on the (frozen, immutable) descriptor: one
    point is typically keyed several times on its way through presolve,
    the generation batch and the scalar replay, and population runs key
    thousands of points per generation wave.
    """
    memo = getattr(workload, "_canonical_key", None)
    if memo is not None:
        return memo
    key = _canonical_key(workload)
    object.__setattr__(workload, "_canonical_key", key)
    return key


def _canonical_key(workload: WorkloadDescriptor) -> str:
    return "|".join(
        (
            workload.qp_type.value,
            workload.opcode.value,
            workload.direction.value,
            workload.colocation.value,
            workload.sg_layout.value,
            repr(workload.mtu),
            repr(workload.num_qps),
            repr(workload.wqe_batch),
            repr(workload.sge_per_wqe),
            repr(workload.wq_depth),
            repr(tuple(workload.msg_sizes_bytes)),
            repr(workload.mrs_per_qp),
            repr(workload.mr_bytes),
            workload.src_device,
            workload.dst_device,
            repr(workload.duty_cycle),
        )
    )


def subsystem_fingerprint(subsystem: "Subsystem") -> str:
    """Content fingerprint of a subsystem's performance-relevant config.

    The Table 1 letters are convenient ids, but nothing stops a caller
    from building a *modified* subsystem under the same name (the fix
    ledger does exactly that).  Hashing the full dataclass repr — RNIC
    parameters, quirk-rule table, PCIe generation, topology — keeps
    entries from one hardware configuration from ever serving another.
    """
    body = repr(subsystem)
    digest = hashlib.sha1(body.encode()).hexdigest()[:12]
    return f"{subsystem.name}:{digest}"


@dataclasses.dataclass(frozen=True)
class CachedSolve:
    """The deterministic outputs of one steady-state evaluation."""

    directions: tuple[DirectionRates, ...]
    fired: tuple[FiredRule, ...]
    features: dict
    ideal_counters: dict


@dataclasses.dataclass
class PhaseStats:
    """Hit/miss/wall-time tally for one evaluation phase."""

    hits: int = 0
    misses: int = 0
    seconds: float = 0.0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class EvalCache:
    """Thread-safe memo of deterministic experiment evaluations.

    ``lookup``/``store`` are keyed on the subsystem fingerprint plus the
    canonicalized workload; per-phase statistics accumulate on every
    lookup.  ``save``/``load`` round-trip the entries (and the stats of
    the run that produced them) through a JSON store.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._lock = threading.RLock()
        self._entries: dict[str, CachedSolve] = {}
        #: Raw JSON entries from a disk store, rehydrated lazily on first
        #: lookup (rule objects need the live subsystem to resolve tags).
        self._raw_entries: dict[str, dict] = {}
        self._phases: dict[str, PhaseStats] = {}
        self._fingerprints: dict[int, str] = {}
        #: Keys that arrived via import/load (vs computed here).
        self._imported_keys: set[str] = set()
        self.path = path
        self.loaded_entries = 0
        #: Optional hit/miss observer, ``observer(phase, hit)`` — wired by
        #: the flight recorder.  Called outside the lock (it may do IO).
        self.observer: Optional[Callable[[str, bool], None]] = None
        #: Optional obs.SpanProfiler ("cache" spans on lookups) — wired
        #: by the flight recorder, like the observer.
        self.profiler = None
        if path is not None and os.path.exists(path):
            self.load(path)

    # -- keys ----------------------------------------------------------------

    def _fingerprint(self, subsystem: "Subsystem") -> str:
        """Memoized fingerprint of a live subsystem object."""
        by_id = id(subsystem)
        fingerprint = self._fingerprints.get(by_id)
        if fingerprint is None:
            fingerprint = subsystem_fingerprint(subsystem)
            with self._lock:
                self._fingerprints[by_id] = fingerprint
        return fingerprint

    def key(self, subsystem: "Subsystem", workload: WorkloadDescriptor) -> str:
        """Cache key: subsystem fingerprint + canonical point."""
        return f"{self._fingerprint(subsystem)}|{canonical_point(workload)}"

    # -- lookup / store ------------------------------------------------------

    def contains(
        self, subsystem: "Subsystem", workload: WorkloadDescriptor
    ) -> bool:
        """Whether a point is memoized, without touching hit/miss stats.

        The engine uses this to skip the functional burst for known
        points: the burst is deterministic validation (it consumes no
        RNG draws), and a memoized point already passed it when its
        entry was created — skipping it cannot change any observable.
        """
        key = self.key(subsystem, workload)
        with self._lock:
            return key in self._entries or key in self._raw_entries

    def lookup(
        self,
        subsystem: "Subsystem",
        workload: WorkloadDescriptor,
        phase: str = DEFAULT_PHASE,
    ) -> Optional[CachedSolve]:
        """Return the memoized solve for a point, recording hit/miss."""
        with (
            self.profiler.span("cache")
            if self.profiler is not None else _NO_SPAN
        ):
            key = self.key(subsystem, workload)
            with self._lock:
                stats = self._phases.setdefault(phase, PhaseStats())
                entry = self._entries.get(key)
                if entry is None and key in self._raw_entries:
                    entry = _solve_from_dict(
                        self._raw_entries.pop(key), subsystem
                    )
                    if entry is not None:
                        self._entries[key] = entry
                if entry is None:
                    stats.misses += 1
                else:
                    stats.hits += 1
        if self.observer is not None:
            self.observer(phase, entry is not None)
        return entry

    def store(
        self,
        subsystem: "Subsystem",
        workload: WorkloadDescriptor,
        solve: CachedSolve,
    ) -> None:
        key = self.key(subsystem, workload)
        with self._lock:
            self._entries[key] = solve
            self._raw_entries.pop(key, None)
            # A fresh solve supersedes any imported provenance (e.g. a
            # stale disk entry that failed rehydration and re-solved).
            self._imported_keys.discard(key)

    # -- bulk API (batched evaluation, S31) ----------------------------------

    def peek_many(
        self,
        subsystem: "Subsystem",
        workloads: "list[WorkloadDescriptor]",
    ) -> list[bool]:
        """Vector ``contains``: membership per point, no stats recorded.

        One fingerprint computation and one lock acquisition for the
        whole batch — this is what the presolver uses to find the points
        it still has to solve.
        """
        fingerprint = self._fingerprint(subsystem)
        keys = [f"{fingerprint}|{canonical_point(w)}" for w in workloads]
        with self._lock:
            return [
                key in self._entries or key in self._raw_entries
                for key in keys
            ]

    def get_many(
        self,
        subsystem: "Subsystem",
        workloads: "list[WorkloadDescriptor]",
        phase: str = DEFAULT_PHASE,
    ) -> "list[Optional[CachedSolve]]":
        """Vector ``lookup``: one fingerprint + one lock pass per batch.

        Hit/miss statistics are recorded per point (in order), and the
        observer fires per point after the lock is released, exactly as
        a sequence of scalar ``lookup`` calls would.
        """
        out: list[Optional[CachedSolve]] = []
        with (
            self.profiler.span("cache")
            if self.profiler is not None else _NO_SPAN
        ):
            fingerprint = self._fingerprint(subsystem)
            keys = [f"{fingerprint}|{canonical_point(w)}" for w in workloads]
            with self._lock:
                stats = self._phases.setdefault(phase, PhaseStats())
                for key in keys:
                    entry = self._entries.get(key)
                    if entry is None and key in self._raw_entries:
                        entry = _solve_from_dict(
                            self._raw_entries.pop(key), subsystem
                        )
                        if entry is not None:
                            self._entries[key] = entry
                    if entry is None:
                        stats.misses += 1
                    else:
                        stats.hits += 1
                    out.append(entry)
        if self.observer is not None:
            for entry in out:
                self.observer(phase, entry is not None)
        return out

    def put_many(
        self,
        subsystem: "Subsystem",
        workloads: "list[WorkloadDescriptor]",
        solves: "list[CachedSolve]",
    ) -> None:
        """Vector ``store`` for freshly solved points."""
        fingerprint = self._fingerprint(subsystem)
        with self._lock:
            for workload, solve in zip(workloads, solves):
                key = f"{fingerprint}|{canonical_point(workload)}"
                self._entries[key] = solve
                self._raw_entries.pop(key, None)
                self._imported_keys.discard(key)

    def charge(self, phase: str, seconds: float) -> None:
        """Attribute real wall time to one phase (solver or fan-out)."""
        with self._lock:
            self._phases.setdefault(phase, PhaseStats()).seconds += seconds

    def timed(self, phase: str) -> "_PhaseTimer":
        """Context manager charging its real elapsed time to ``phase``."""
        return _PhaseTimer(self, phase)

    # -- statistics ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries) + len(self._raw_entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return sum(p.hits for p in self._phases.values())

    @property
    def misses(self) -> int:
        with self._lock:
            return sum(p.misses for p in self._phases.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def phase_stats(self) -> dict[str, PhaseStats]:
        """Copy of the per-phase tallies (safe to read after a run)."""
        with self._lock:
            return {
                name: dataclasses.replace(stats)
                for name, stats in self._phases.items()
            }

    def snapshot(self) -> tuple[int, int]:
        """(hits, misses) — diff two snapshots to scope a sub-phase."""
        return self.hits, self.misses

    def merge_stats(self, stats: dict) -> None:
        """Fold a worker's exported stats into this cache's tallies."""
        with self._lock:
            for name, data in stats.get("phases", {}).items():
                mine = self._phases.setdefault(name, PhaseStats())
                mine.hits += int(data.get("hits", 0))
                mine.misses += int(data.get("misses", 0))
                mine.seconds += float(data.get("seconds", 0.0))

    def stats_dict(self) -> dict:
        """JSON-able statistics view (what ``repro stats`` prints)."""
        with self._lock:
            return {
                "entries": len(self),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "phases": {
                    name: {
                        "hits": stats.hits,
                        "misses": stats.misses,
                        "hit_rate": stats.hit_rate,
                        "seconds": stats.seconds,
                    }
                    for name, stats in sorted(self._phases.items())
                },
            }

    def describe(self) -> str:
        """Human-readable stats block (CLI surface)."""
        return describe_stats(self.stats_dict())

    # -- worker transport ------------------------------------------------------

    def export_entries(self, new_only: bool = False) -> dict[str, dict]:
        """Entries as JSON-able dicts (worker hand-off, disk store).

        ``new_only`` exports only entries this cache computed or stored
        itself, excluding what arrived via ``import_entries``/``load`` —
        workers use it so a warm start is not echoed back to the parent.
        """
        with self._lock:
            exported = {
                key: _solve_to_dict(entry)
                for key, entry in self._entries.items()
                if not (new_only and key in self._imported_keys)
            }
            if not new_only:
                exported.update(self._raw_entries)
            return exported

    def import_entries(self, entries: dict[str, dict]) -> int:
        """Absorb exported entries; existing keys win.  Returns count."""
        added = 0
        with self._lock:
            for key, raw in entries.items():
                self._imported_keys.add(key)
                if key in self._entries or key in self._raw_entries:
                    continue
                self._raw_entries[key] = raw
                added += 1
        return added

    # -- disk store ------------------------------------------------------------

    def save(self, path: Optional[str] = None) -> str:
        path = path or self.path
        if path is None:
            raise ValueError("no cache path given")
        payload = {
            "format_version": FORMAT_VERSION,
            "entries": self.export_entries(),
            "stats": self.stats_dict(),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        return path

    def load(self, path: str) -> int:
        """Warm-start from a JSON store; returns entries absorbed."""
        with open(path) as handle:
            payload = json.load(handle)
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported cache format {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        added = self.import_entries(payload.get("entries", {}))
        self.loaded_entries += added
        return added

    @staticmethod
    def load_stats(path: str) -> dict:
        """Read only the persisted statistics of a cache store."""
        with open(path) as handle:
            payload = json.load(handle)
        stats = payload.get("stats", {})
        stats.setdefault("entries", len(payload.get("entries", {})))
        return stats


def describe_stats(stats: dict) -> str:
    """Render a ``stats_dict``-shaped mapping (live or persisted)."""
    hits = int(stats.get("hits", 0))
    misses = int(stats.get("misses", 0))
    total = hits + misses
    hit_rate = stats.get("hit_rate", hits / total if total else 0.0)
    lines = [
        f"cache entries: {stats.get('entries', 0)}",
        f"lookups: {total} ({hits} hits, {misses} misses, "
        f"{hit_rate:.1%} hit rate)",
    ]
    for name, phase in sorted(stats.get("phases", {}).items()):
        phase_total = int(phase.get("hits", 0)) + int(phase.get("misses", 0))
        phase_rate = phase.get(
            "hit_rate",
            phase.get("hits", 0) / phase_total if phase_total else 0.0,
        )
        lines.append(
            f"  phase {name:<10} {phase_total:>6} lookups  "
            f"{phase_rate:>6.1%} hits  "
            f"{float(phase.get('seconds', 0.0)):8.3f}s wall"
        )
    return "\n".join(lines)


class _PhaseTimer:
    """``with cache.timed("solve"):`` — charges real elapsed seconds."""

    def __init__(self, cache: EvalCache, phase: str) -> None:
        self._cache = cache
        self._phase = phase
        self._started = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._cache.charge(self._phase, time.perf_counter() - self._started)


# -- (de)serialisation of solve entries --------------------------------------


def _solve_to_dict(solve: CachedSolve) -> dict:
    return {
        "directions": [dataclasses.asdict(d) for d in solve.directions],
        "fired": [{"tag": f.rule.tag, "factor": f.factor} for f in solve.fired],
        "features": dict(solve.features),
        "ideal": dict(solve.ideal_counters),
    }


def _solve_from_dict(data: dict, subsystem: "Subsystem") -> Optional[CachedSolve]:
    """Rehydrate a disk entry against the live subsystem's rule table.

    Returns ``None`` when a fired tag no longer exists on the subsystem
    (a rule was removed by a fix): the stale entry is dropped and the
    point re-evaluates rather than replaying outdated effects.
    """
    rules_by_tag = {rule.tag: rule for rule in subsystem.rnic.rules}
    fired = []
    for item in data.get("fired", []):
        rule = rules_by_tag.get(item["tag"])
        if rule is None:
            return None
        fired.append(FiredRule(rule=rule, factor=float(item["factor"])))
    directions = tuple(
        DirectionRates(**entry) for entry in data.get("directions", [])
    )
    if not directions:
        return None
    return CachedSolve(
        directions=directions,
        fired=tuple(fired),
        features=dict(data.get("features", {})),
        ideal_counters=dict(data.get("ideal", {})),
    )
