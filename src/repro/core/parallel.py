"""Parallel Collie: the §8 "multiple machines" extension.

"Though powerful data centers can run Collie on multiple machines for a
longer time, the search algorithm is also important" (§8).  This module
implements the natural fleet parallelisation: the diagnostic counters
are ranked once on a shared probe set, partitioned round-robin across
``machines`` independent two-server testbeds, and each machine runs the
full SA search on its counter share for the whole budget.  Results merge
by earliest discovery; wall-clock time is the *maximum* machine clock
(they run concurrently), so a counter that previously shared a 10-hour
budget with eight siblings now gets hours of dedicated attention.

With ``workers > 1`` the machines really do run concurrently: each
machine is one task for the :class:`~repro.core.executor.CampaignExecutor`
process pool.  Every machine's RNG and clock are built inside the worker
from the machine's own seed, so the merged report is bit-identical to a
serial fleet run.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.annealing import SAParams, TraceEvent
from repro.core.collie import Collie, SearchReport
from repro.core.evalcache import EvalCache
from repro.core.executor import CampaignExecutor, ExecutorStats
from repro.core.faults import FaultPlan, RetryPolicy
from repro.core.mfs import MinimalFeatureSet
from repro.core.population import PopulationCollie
from repro.core.space import SearchSpace
from repro.hardware.counters import DIAGNOSTIC_COUNTERS
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import Subsystem, get_subsystem


@dataclasses.dataclass
class ParallelReport:
    """Merged outcome of a machine fleet."""

    subsystem_name: str
    machines: int
    reports: list[SearchReport]
    elapsed_seconds: float  #: max over machines (concurrent execution).

    @property
    def anomalies(self) -> list[MinimalFeatureSet]:
        merged: list[MinimalFeatureSet] = []
        for report in self.reports:
            merged.extend(report.anomalies)
        return merged

    def first_hit_times(self) -> dict:
        """Tag → earliest concurrent discovery time across machines."""
        hits: dict = {}
        for report in self.reports:
            for tag, seconds in report.first_hit_times().items():
                if tag not in hits or seconds < hits[tag]:
                    hits[tag] = seconds
        return hits

    def found_tags(self) -> list[str]:
        return sorted(self.first_hit_times())

    @property
    def total_experiments(self) -> int:
        return sum(r.experiments for r in self.reports)

    def events(self) -> list[TraceEvent]:
        merged = [e for r in self.reports for e in r.events]
        return sorted(merged, key=lambda e: e.time_seconds)


def _run_machine(payload: dict) -> dict:
    """One fleet machine, executed inside a worker process.

    The Collie instance — clock, RNG, testbed — is built here from the
    payload's seed, so the machine's trajectory does not depend on which
    process runs it.  A per-machine :class:`EvalCache` is attached when
    requested; its entries and stats travel back for merging.

    With ``chains > 1`` the machine runs a lockstep SA population over
    its counter share instead of a single trajectory — chain ``c``
    seeds at ``seed + c``, and the machine returns one report per chain
    (bit-identical to running each seed standalone, so the fleet merge
    semantics are unchanged).
    """
    cache = EvalCache() if payload["use_cache"] else None
    if cache is not None and payload["cache_entries"]:
        cache.import_entries(payload["cache_entries"])
    chains = payload.get("chains", 1)
    if chains > 1:
        driver = PopulationCollie(
            payload["subsystem"],
            chains=chains,
            space=payload["space"],
            counters=payload["share"],
            budget_hours=payload["budget_hours"],
            seed=payload["seed"],
            sa_params=payload["sa_params"],
            noise=payload["noise"],
            cache=cache,
            batch=payload.get("batch", True),
            latency=payload.get("latency", True),
        )
        reports = driver.run().reports
    else:
        collie = Collie(
            payload["subsystem"],
            space=payload["space"],
            counters=payload["share"],
            budget_hours=payload["budget_hours"],
            seed=payload["seed"],
            sa_params=payload["sa_params"],
            noise=payload["noise"],
            cache=cache,
            batch=payload.get("batch", True),
            latency=payload.get("latency", True),
        )
        reports = [collie.run()]
    return {
        "reports": reports,
        "cache_entries": (
            cache.export_entries(new_only=True)
            if payload["use_cache"] and cache else None
        ),
        "cache_stats": (
            cache.stats_dict()
            if payload["use_cache"] and cache else None
        ),
    }


class ParallelCollie:
    """Runs Collie's counter passes across a fleet of testbeds."""

    def __init__(
        self,
        subsystem: "Subsystem | str",
        machines: int = 3,
        budget_hours: float = 10.0,
        seed: int = 0,
        space: Optional[SearchSpace] = None,
        sa_params: SAParams = SAParams(),
        noise: float = 0.02,
        workers: int = 1,
        cache: Optional[EvalCache] = None,
        recorder=None,
        batch: bool = True,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        latency: bool = True,
        chains: int = 1,
    ) -> None:
        if machines <= 0:
            raise ValueError("need at least one machine")
        if chains <= 0:
            raise ValueError("need at least one chain per machine")
        if isinstance(subsystem, str):
            subsystem = get_subsystem(subsystem)
        self.subsystem = subsystem
        self.machines = machines
        self.budget_hours = budget_hours
        self.seed = seed
        self.space = space or SearchSpace.for_subsystem(subsystem)
        self.sa_params = sa_params
        self.noise = noise
        #: Optional flight recorder.  A recorder's journal handle cannot
        #: cross the process boundary, so the fleet journals post-hoc:
        #: each machine's report is replayed into the journal on return.
        self.recorder = recorder
        self.executor = CampaignExecutor(
            workers=workers,
            metrics=recorder.metrics if recorder is not None else None,
            progress=recorder.task_progress if recorder is not None else None,
            retry=retry,
            faults=faults,
            recorder=recorder,
        )
        #: Parent-side cache: warm-starts every machine and absorbs
        #: their entries/stats after the fleet completes.
        self.cache = cache
        #: Threaded into every machine's Collie (``--no-batch``).
        self.batch = batch
        #: Threaded into every machine's Collie (``--no-latency``).
        self.latency = latency
        #: SA chains per machine: each machine steps a lockstep
        #: population over its counter share (chain ``c`` of machine
        #: ``m`` seeds at ``seed * 1000 + m + c``) and contributes one
        #: report per chain to the merge.
        self.chains = chains

    @property
    def executor_stats(self) -> Optional[ExecutorStats]:
        return self.executor.last_stats

    def _rank_counters(self) -> list[str]:
        """Shared ranking pass: 10 random probes, std/mean descending."""
        rng = np.random.default_rng(self.seed)
        model = SteadyStateModel(self.subsystem, noise=self.noise)
        observations: dict = {name: [] for name in DIAGNOSTIC_COUNTERS}
        for _ in range(10):
            measurement = model.evaluate(self.space.random(rng), rng)
            for name in DIAGNOSTIC_COUNTERS:
                observations[name].append(float(measurement.counters[name]))

        def dispersion(name: str) -> float:
            values = np.array(observations[name])
            mean = values.mean()
            return float(values.std() / mean) if mean > 0 else 0.0

        ranked = sorted(DIAGNOSTIC_COUNTERS, key=dispersion, reverse=True)
        return [name for name in ranked if dispersion(name) > 0.0]

    def _partition(self, ranked: list[str]) -> list[tuple[str, ...]]:
        """Round-robin counter shares, one per machine."""
        shares: list[list[str]] = [[] for _ in range(self.machines)]
        for index, counter in enumerate(ranked):
            shares[index % self.machines].append(counter)
        return [tuple(share) for share in shares if share]

    def run(self) -> ParallelReport:
        ranked = self._rank_counters()
        warm_entries = (
            self.cache.export_entries() if self.cache is not None else None
        )
        payloads = [
            {
                "subsystem": self.subsystem,
                "space": self.space,
                "share": share,
                "budget_hours": self.budget_hours,
                "seed": self.seed * 1000 + machine,
                "sa_params": self.sa_params,
                "noise": self.noise,
                "use_cache": self.cache is not None,
                "cache_entries": warm_entries,
                "batch": self.batch,
                "latency": self.latency,
                "chains": self.chains,
            }
            for machine, share in enumerate(self._partition(ranked))
        ]
        outcomes = self.executor.map(_run_machine, payloads)
        reports: list[SearchReport] = []
        seeds: list[int] = []
        for machine, outcome in enumerate(outcomes):
            for chain, report in enumerate(outcome["reports"]):
                reports.append(report)
                seeds.append(self.seed * 1000 + machine + chain)
        if self.recorder is not None:
            if self.executor.last_stats is not None:
                self.recorder.fanout(self.executor.last_stats)
            for report, report_seed in zip(reports, seeds):
                self.recorder.record_report(
                    report, self.budget_hours, seed=report_seed,
                )
        if self.cache is not None:
            for outcome in outcomes:
                if outcome["cache_entries"]:
                    self.cache.import_entries(outcome["cache_entries"])
                if outcome["cache_stats"]:
                    self.cache.merge_stats(outcome["cache_stats"])
        return ParallelReport(
            subsystem_name=self.subsystem.name,
            machines=self.machines,
            reports=reports,
            elapsed_seconds=max(r.elapsed_seconds for r in reports),
        )
