"""The four-dimensional workload search space (paper §4).

The space is defined from the developer's perspective — every choice a
verbs programmer can make — rather than from hardware internals:

* **Dimension 1, host topology**: which memory device backs each side's
  MRs, and whether client processes are co-located (loopback traffic);
* **Dimension 2, memory allocation**: how many MRs per QP and their size
  (bounded: ≤200K MRs total, as in the paper);
* **Dimension 3, transport**: QP type, opcode, direction, MTU, number of
  QPs (bounded at ~20K), WQE batch size, SG entries per WQE, WQ depth;
* **Dimension 4, message pattern**: a fixed-length request vector whose
  length is the RNIC's PUs × pipeline stages, with sizes discretised
  around the MTU and burst size.

:class:`SearchSpace` owns value choices per dimension, uniform sampling,
single-dimension mutation (the SA neighbour function), and coercion rules
that keep sampled points verbs-legal (UD is SEND-only and single-MTU).
"""

from __future__ import annotations

import bisect
import dataclasses
import functools
import math
from typing import Optional, Sequence

import numpy as np

from repro.hardware.subsystems import Subsystem, get_subsystem
from repro.hardware.workload import (
    Colocation,
    Direction,
    SGLayout,
    WorkloadDescriptor,
)
from repro.verbs.constants import SUPPORTED_OPCODES, Opcode, QPType

#: Paper bounds: "reasonable upper bound on the number of MRs (200K)" and
#: "an upper bound (e.g., 20K) for the number of QPs".
MAX_TOTAL_MRS = 200_000
MAX_QPS = 20_000

QPS_CHOICES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
BATCH_CHOICES = (1, 2, 4, 8, 16, 32, 64, 128)
SGE_CHOICES = (1, 2, 3, 4, 5, 6, 7, 8)
WQ_DEPTH_CHOICES = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)
MTU_CHOICES = (256, 512, 1024, 2048, 4096)
MSG_SIZE_CHOICES = (
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
    65536, 262144, 1048576, 4194304,
)
MRS_PER_QP_CHOICES = (1, 2, 8, 32, 128, 1024)
MR_BYTES_CHOICES = (4096, 65536, 262144, 1048576, 4194304)

#: The mutable dimensions, in the order MFS probing walks them.
#: ``duty_cycle`` participates only when the space enables the §8
#: inter-arrival extension (its default ladder has a single value).
ORDERED_DIMENSIONS = (
    "mtu", "num_qps", "wqe_batch", "sge_per_wqe", "wq_depth",
    "mrs_per_qp", "mr_bytes", "duty_cycle",
)
CATEGORICAL_DIMENSIONS = (
    "qp_type", "opcode", "direction", "src_device", "dst_device",
    "colocation", "sg_layout",
)
PATTERN_DIMENSION = "msg_pattern"

#: The paper's four workload dimensions (§4), as groups of the concrete
#: sub-dimensions above.  Coverage maps aggregate per group; ``avg_msg``
#: projects the request vector onto the message-size ladder.
DIMENSION_GROUPS = {
    "host_topology": ("src_device", "dst_device", "colocation"),
    "memory": ("mrs_per_qp", "mr_bytes"),
    "transport": (
        "qp_type", "opcode", "direction", "mtu", "num_qps", "wqe_batch",
        "sge_per_wqe", "wq_depth",
    ),
    "message_pattern": ("avg_msg", "sg_layout", "duty_cycle"),
}

_ORDERED_CHOICES = {
    "mtu": MTU_CHOICES,
    "num_qps": QPS_CHOICES,
    "wqe_batch": BATCH_CHOICES,
    "sge_per_wqe": SGE_CHOICES,
    "wq_depth": WQ_DEPTH_CHOICES,
    "mrs_per_qp": MRS_PER_QP_CHOICES,
    "mr_bytes": MR_BYTES_CHOICES,
}


@dataclasses.dataclass(frozen=True)
class SearchSpace:
    """Value choices for every dimension, specialised to one subsystem."""

    qp_types: tuple[QPType, ...] = (QPType.RC, QPType.UC, QPType.UD)
    opcodes: tuple[Opcode, ...] = (Opcode.SEND, Opcode.WRITE, Opcode.READ)
    directions: tuple[Direction, ...] = (
        Direction.UNIDIRECTIONAL, Direction.BIDIRECTIONAL,
    )
    colocations: tuple[Colocation, ...] = (
        Colocation.REMOTE_ONLY, Colocation.MIXED_LOOPBACK,
    )
    sg_layouts: tuple[SGLayout, ...] = (SGLayout.EVEN, SGLayout.MIXED)
    memory_devices: tuple[str, ...] = ("numa0", "numa1")
    mtus: tuple[int, ...] = MTU_CHOICES
    qps_choices: tuple[int, ...] = QPS_CHOICES
    batch_choices: tuple[int, ...] = BATCH_CHOICES
    sge_choices: tuple[int, ...] = SGE_CHOICES
    wq_depth_choices: tuple[int, ...] = WQ_DEPTH_CHOICES
    msg_size_choices: tuple[int, ...] = MSG_SIZE_CHOICES
    mrs_per_qp_choices: tuple[int, ...] = MRS_PER_QP_CHOICES
    mr_bytes_choices: tuple[int, ...] = MR_BYTES_CHOICES
    #: Request-vector length: RNIC PUs × pipeline stages (paper §4).
    pattern_length: int = 4
    #: §8 extension: sender duty cycles to explore.  The paper's space
    #: always saturates (1.0); pass several values to add the
    #: inter-arrival dimension.
    duty_cycles: tuple[float, ...] = (1.0,)

    @classmethod
    def for_subsystem(
        cls,
        subsystem: "Subsystem | str",
        qp_types: Optional[Sequence[QPType]] = None,
        opcodes: Optional[Sequence[Opcode]] = None,
        **overrides,
    ) -> "SearchSpace":
        """Build the space a subsystem actually exposes.

        The topology dimension enumerates the host's memory devices; the
        pattern length follows the RNIC's PU/pipeline geometry.  Keyword
        restrictions implement the §7.3 "developers restrict the search
        space using knowledge of their applications" workflow.
        """
        if isinstance(subsystem, str):
            subsystem = get_subsystem(subsystem)
        kwargs: dict = {
            "memory_devices": tuple(subsystem.topology.device_names()),
            "pattern_length": subsystem.rnic.pattern_length,
        }
        if qp_types is not None:
            kwargs["qp_types"] = tuple(qp_types)
        if opcodes is not None:
            kwargs["opcodes"] = tuple(opcodes)
        kwargs.update(overrides)
        return cls(**kwargs)

    # -- introspection ------------------------------------------------------

    def ordered_choices(self, dimension: str) -> tuple[int, ...]:
        """Value ladder of an ordered dimension."""
        base = dict(_ORDERED_CHOICES)
        base["mtu"] = self.mtus
        base["num_qps"] = self.qps_choices
        base["wqe_batch"] = self.batch_choices
        base["sge_per_wqe"] = self.sge_choices
        base["wq_depth"] = self.wq_depth_choices
        base["mrs_per_qp"] = self.mrs_per_qp_choices
        base["mr_bytes"] = self.mr_bytes_choices
        base["duty_cycle"] = self.duty_cycles
        if dimension not in base:
            raise KeyError(f"{dimension!r} is not an ordered dimension")
        return tuple(base[dimension])

    def categorical_choices(self, dimension: str) -> tuple:
        if dimension == "qp_type":
            return self.qp_types
        if dimension == "opcode":
            return self.opcodes
        if dimension == "direction":
            return self.directions
        if dimension == "colocation":
            return self.colocations
        if dimension == "sg_layout":
            return self.sg_layouts
        if dimension in ("src_device", "dst_device"):
            return self.memory_devices
        raise KeyError(f"{dimension!r} is not a categorical dimension")

    # -- coverage bucketing (observatory) -----------------------------------

    def coverage_dimensions(self) -> tuple[str, ...]:
        """Every bucketable dimension, grouped-dimension order."""
        return tuple(
            dimension
            for dimensions in DIMENSION_GROUPS.values()
            for dimension in dimensions
        )

    def dimension_buckets(self, dimension: str) -> tuple:
        """The bucket values of one dimension (ladder or choice set).

        Ordered dimensions bucket onto their value ladder, ``avg_msg``
        onto the message-size ladder, categoricals onto their choice
        labels.  ``str()`` of a bucket value is its display label.
        """
        if dimension == "avg_msg":
            return tuple(self.msg_size_choices)
        if dimension in ORDERED_DIMENSIONS:
            return self.ordered_choices(dimension)
        return tuple(
            getattr(value, "value", value)
            for value in self.categorical_choices(dimension)
        )

    def bucket_value(self, dimension: str, workload: WorkloadDescriptor):
        """The bucket a workload falls into on one dimension."""
        if dimension == "avg_msg":
            ladder = self.msg_size_choices
            return ladder[self._nearest_index(ladder, workload.avg_msg_bytes)]
        if dimension in ORDERED_DIMENSIONS:
            ladder = self.ordered_choices(dimension)
            return ladder[
                self._nearest_index(ladder, getattr(workload, dimension))
            ]
        value = getattr(workload, dimension)
        return getattr(value, "value", value)

    def point_buckets(self, workload: WorkloadDescriptor) -> dict:
        """Bucket values for every coverage dimension of one point."""
        return {
            dimension: self.bucket_value(dimension, workload)
            for dimension in self.coverage_dimensions()
        }

    def log10_size(self) -> float:
        """Order of magnitude of the full combinatorial space."""
        combos = (
            len(self.qp_types) * len(self.opcodes) * len(self.directions)
            * len(self.colocations) * len(self.memory_devices) ** 2
            * len(self.mtus) * len(self.qps_choices) * len(self.batch_choices)
            * len(self.sge_choices) * len(self.wq_depth_choices)
            * len(self.mrs_per_qp_choices) * len(self.mr_bytes_choices)
            * len(self.msg_size_choices) ** self.pattern_length
        )
        return math.log10(combos)

    # -- sampling -----------------------------------------------------------

    def random(self, rng: np.random.Generator) -> WorkloadDescriptor:
        """Uniform random point, coerced to verbs legality."""
        choice = rng.choice
        raw = {
            "qp_type": self.qp_types[choice(len(self.qp_types))],
            "opcode": self.opcodes[choice(len(self.opcodes))],
            "direction": self.directions[choice(len(self.directions))],
            "colocation": self.colocations[choice(len(self.colocations))],
            "sg_layout": self.sg_layouts[choice(len(self.sg_layouts))],
            "src_device": self.memory_devices[choice(len(self.memory_devices))],
            "dst_device": self.memory_devices[choice(len(self.memory_devices))],
            "mtu": int(choice(self.mtus)),
            "num_qps": int(choice(self.qps_choices)),
            "wqe_batch": int(choice(self.batch_choices)),
            "sge_per_wqe": int(choice(self.sge_choices)),
            "wq_depth": int(choice(self.wq_depth_choices)),
            "mrs_per_qp": int(choice(self.mrs_per_qp_choices)),
            "mr_bytes": int(choice(self.mr_bytes_choices)),
            "duty_cycle": float(choice(self.duty_cycles)),
            "msg_sizes_bytes": tuple(
                int(choice(self.msg_size_choices))
                for _ in range(self.pattern_length)
            ),
        }
        return self.coerce(raw)

    def mutate(
        self, workload: WorkloadDescriptor, rng: np.random.Generator
    ) -> WorkloadDescriptor:
        """Mutate the workload (paper Alg. 1, line 4).

        Usually one dimension; occasionally two at once, which lets the
        search cross trigger conditions that only matter jointly (e.g.
        anomaly #8 needs a shallow WQ *and* unbatched posting).  Ordered
        dimensions mostly step to a neighbouring ladder value (a local
        move SA can exploit) with an occasional uniform jump to escape
        plateaus; categorical dimensions resample; the message pattern
        mutates one element.
        """
        raw = self._to_raw(workload)
        mutations = 2 if rng.random() < 0.2 else 1
        for _ in range(mutations):
            self._mutate_raw(raw, rng)
        return self.coerce(raw)

    def _mutate_raw(self, raw: dict, rng: np.random.Generator) -> None:
        dims = (
            list(ORDERED_DIMENSIONS)
            + list(CATEGORICAL_DIMENSIONS)
            + [PATTERN_DIMENSION]
        )
        dimension = dims[rng.choice(len(dims))]
        if dimension == PATTERN_DIMENSION:
            pattern = list(raw["msg_sizes_bytes"])
            size = int(
                self.msg_size_choices[rng.choice(len(self.msg_size_choices))]
            )
            if rng.random() < 0.25:
                # Macro-move: a uniform pattern of one size.  Uniform
                # patterns are the corners developers actually write
                # (perftest-style fixed-size loops), and they let the
                # search reach coordinated pattern states in one step.
                pattern = [size] * len(pattern)
            else:
                pattern[int(rng.integers(len(pattern)))] = size
            raw["msg_sizes_bytes"] = tuple(pattern)
        elif dimension in ORDERED_DIMENSIONS:
            ladder = self.ordered_choices(dimension)
            index = self._nearest_index(ladder, raw[dimension])
            if rng.random() < 0.25:
                raw[dimension] = ladder[rng.choice(len(ladder))]
            else:
                step = int(rng.choice((-2, -1, 1, 2)))
                raw[dimension] = ladder[
                    max(0, min(len(ladder) - 1, index + step))
                ]
        else:
            options = [
                v for v in self.categorical_choices(dimension)
                if v != raw[dimension]
            ]
            if options:
                raw[dimension] = options[rng.choice(len(options))]

    def with_value(
        self, workload: WorkloadDescriptor, dimension: str, value
    ) -> WorkloadDescriptor:
        """Replace one dimension (used by MFS probing), then coerce."""
        raw = self._to_raw(workload)
        if dimension == PATTERN_DIMENSION:
            raw["msg_sizes_bytes"] = tuple(value)
        else:
            raw[dimension] = value
        return self.coerce(raw)

    # -- legality -----------------------------------------------------------

    def coerce(self, raw: dict) -> WorkloadDescriptor:
        """Fix up a raw dimension assignment into a legal workload.

        Verbs legality constraints are *couplings between dimensions*, so
        a mutation of one dimension may require adjusting another — the
        same fix-ups a developer would make:

        * UD supports only SEND, and one message per MTU (sizes clip);
        * UC supports SEND and WRITE (READ becomes WRITE);
        * total MRs stay within the 200K pinning budget (mrs_per_qp
          steps down);
        * QP count stays within the 20K bound.
        """
        raw = dict(raw)
        qp_type = raw["qp_type"]
        supported = SUPPORTED_OPCODES[qp_type]
        if raw["opcode"] not in supported:
            legal = [op for op in self.opcodes if op in supported] or list(supported)
            raw["opcode"] = legal[0]
        if qp_type is QPType.UD:
            raw["msg_sizes_bytes"] = tuple(
                min(size, raw["mtu"]) for size in raw["msg_sizes_bytes"]
            )
        if raw["sge_per_wqe"] == 1:
            # A single-entry SG list has no layout to mix.
            raw["sg_layout"] = SGLayout.EVEN
        raw["num_qps"] = min(raw["num_qps"], MAX_QPS)
        ladder = self.mrs_per_qp_choices
        index = self._nearest_index(ladder, raw["mrs_per_qp"])
        while index > 0 and raw["num_qps"] * ladder[index] > MAX_TOTAL_MRS:
            index -= 1
        raw["mrs_per_qp"] = ladder[index]
        return WorkloadDescriptor(**raw)

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _to_raw(workload: WorkloadDescriptor) -> dict:
        return {
            "qp_type": workload.qp_type,
            "opcode": workload.opcode,
            "direction": workload.direction,
            "colocation": workload.colocation,
            "sg_layout": workload.sg_layout,
            "src_device": workload.src_device,
            "dst_device": workload.dst_device,
            "mtu": workload.mtu,
            "num_qps": workload.num_qps,
            "wqe_batch": workload.wqe_batch,
            "sge_per_wqe": workload.sge_per_wqe,
            "wq_depth": workload.wq_depth,
            "mrs_per_qp": workload.mrs_per_qp,
            "mr_bytes": workload.mr_bytes,
            "duty_cycle": workload.duty_cycle,
            "msg_sizes_bytes": workload.msg_sizes_bytes,
        }

    @staticmethod
    def _nearest_index(ladder: Sequence[int], value: int) -> int:
        """Index of the ladder rung nearest ``value`` in log space.

        Hot on both sides of the journal: coverage tracking buckets
        every visited experiment, and every read surface (``coverage``,
        ``journal diff``, the live aggregator) re-buckets the whole
        history.  Ladders are sorted, so the nearest rung is one of the
        two bisection neighbors — two ``log2`` calls instead of one per
        rung.  A custom unsorted ladder falls back to the full scan.
        """
        if value <= 0:
            return 0
        ladder = tuple(ladder)
        if not _ladder_is_sorted(ladder):
            return min(
                range(len(ladder)),
                key=lambda i: abs(math.log2(ladder[i] / value)),
            )
        hi = bisect.bisect_left(ladder, value)
        if hi == 0:
            return 0
        if hi == len(ladder):
            return len(ladder) - 1
        below = abs(math.log2(ladder[hi - 1] / value))
        above = abs(math.log2(ladder[hi] / value))
        # <= keeps the full scan's tie-break: lowest rung wins a tie.
        return hi - 1 if below <= above else hi


@functools.lru_cache(maxsize=64)
def _ladder_is_sorted(ladder: tuple) -> bool:
    return all(a <= b for a, b in zip(ladder, ladder[1:]))


def changed_dimensions(
    before: WorkloadDescriptor, after: WorkloadDescriptor
) -> tuple[str, ...]:
    """The dimensions on which two workloads differ, canonical order.

    Pure value comparison — consumes no RNG — so the SA loop can label
    each mutation for the observatory without perturbing the search.
    Any difference in the request vector reports as ``msg_pattern``.
    """
    raw_before = SearchSpace._to_raw(before)
    raw_after = SearchSpace._to_raw(after)
    changed = [
        dimension
        for dimension in ORDERED_DIMENSIONS + CATEGORICAL_DIMENSIONS
        if raw_before[dimension] != raw_after[dimension]
    ]
    if raw_before["msg_sizes_bytes"] != raw_after["msg_sizes_bytes"]:
        changed.append(PATTERN_DIMENSION)
    return tuple(changed)
