"""The workload engine: search-space points → RDMA traffic.

The paper's engine (§4, "Workload engine") takes a test point's settings
as input parameters, sets up connections over out-of-band TCP, and
generates traffic with the requested memory/transport/message shape.
This implementation does the same against the software verbs layer:

* **setup** really allocates PDs, registers ``mrs_per_qp × num_qps``
  memory regions on the requested memory devices, creates and connects
  QPs of the requested type — so malformed placements and illegal
  transport combinations fail exactly where they would on a testbed;
* **functional burst**: a scaled-down slice of the workload (a few QPs,
  a few batches) is pushed through the byte-moving datapath, verifying
  WQE shapes, SG-list bounds and completion plumbing;
* **measurement** hands the full-scale descriptor to the steady-state
  model, which returns the counter samples the monitor consumes.

Scaling the functional burst down (rather than posting millions of WQEs)
keeps experiments fast; the *performance* consequences of full scale are
the model's job, while the *semantic* validity of the workload shape is
checked here for real.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cluster.host import Host
from repro.hardware.model import Measurement, SteadyStateModel
from repro.hardware.subsystems import Subsystem
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import MTU, AccessFlags, Opcode, QPType
from repro.verbs.datapath import DataPath
from repro.verbs.fabric import Fabric
from repro.verbs.device import QPNumberAllocator
from repro.verbs.qp import QPCapabilities
from repro.hardware.workload import SGLayout
from repro.verbs.wr import (
    RecvWorkRequest,
    SendWorkRequest,
    build_sg_list,
    chunk_message,
    mixed_entry_lengths,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.evalcache import EvalCache

#: Scale caps for the functional burst.
_FUNCTIONAL_MAX_QPS = 4
_FUNCTIONAL_MAX_BATCHES = 2
_FUNCTIONAL_MAX_MSG = 64 * 1024
_FUNCTIONAL_MAX_WQ = 64


@dataclasses.dataclass
class SetupFootprint:
    """What setup created — drives the experiment's simulated duration."""

    qps_created: int
    mrs_registered: int
    functional_messages: int


class WorkloadEngine:
    """Runs experiments for one subsystem."""

    def __init__(
        self,
        subsystem: Subsystem,
        noise: float = 0.02,
        cache: Optional["EvalCache"] = None,
        batch: bool = True,
        metrics=None,
        profiler=None,
        victim: Optional[WorkloadDescriptor] = None,
        victim_share: float = 0.5,
    ) -> None:
        from repro.core.batcheval import BatchEvaluator

        self.subsystem = subsystem
        #: Isolation mode: a pinned victim tenant makes every measured
        #: point an *attacker* co-running next to it — the model becomes
        #: a :class:`~repro.hardware.coexist.CoRunModel` and
        #: measurements describe the victim under that neighbor.  With
        #: no victim the construction is byte-identical to before.
        self.victim = victim
        self.victim_share = victim_share
        if victim is not None:
            from repro.hardware.coexist import CoRunModel

            self.model: SteadyStateModel = CoRunModel(
                subsystem,
                victim,
                victim_share=victim_share,
                noise=noise,
                cache=cache,
            )
        else:
            self.model = SteadyStateModel(subsystem, noise=noise, cache=cache)
        #: Batched front end to the solver (S31); ``batch=False`` routes
        #: everything through the scalar code path unchanged.
        self.batch = BatchEvaluator(
            self.model, metrics=metrics, enabled=batch, profiler=profiler
        )

    @property
    def cache(self) -> Optional["EvalCache"]:
        return self.model.cache

    def measure(
        self,
        workload: WorkloadDescriptor,
        rng: Optional[np.random.Generator] = None,
        functional_check: bool = True,
        phase: str = "search",
    ) -> Measurement:
        """Set up, optionally validate functionally, and measure.

        Memoized points skip the functional burst: the burst is
        deterministic validation (no RNG draws) and the point already
        passed it when its cache entry was created, so skipping changes
        no observable — only real wall time.
        """
        cache = self.cache
        if functional_check and not (
            cache is not None
            and cache.contains(self.model.subsystem, workload)
        ):
            self.functional_burst(workload)
        return self.model.evaluate(workload, rng=rng, phase=phase)

    def measure_many(
        self,
        workloads: list[WorkloadDescriptor],
        rng: Optional[np.random.Generator] = None,
        functional_check: bool = True,
        phase: str = "search",
    ) -> list[Measurement]:
        """Batched :meth:`measure` — bit-identical to a scalar loop.

        Functional bursts run once per *unique* unmemoized point (the
        burst is deterministic validation, so deduping it changes no
        observable); evaluation itself goes through the batched engine.
        """
        from repro.core.evalcache import canonical_point

        cache = self.cache
        if functional_check:
            seen: set = set()
            for workload in workloads:
                key = canonical_point(workload)
                if key in seen:
                    continue
                seen.add(key)
                if cache is not None and cache.contains(
                    self.model.subsystem, workload
                ):
                    continue
                self.functional_burst(workload)
        return self.batch.evaluate_many(workloads, rng=rng, phase=phase)

    def presolve(
        self, workloads: list[WorkloadDescriptor], phase: str = "search"
    ) -> int:
        """Back-fill the cache for upcoming points (see BatchEvaluator)."""
        return self.batch.presolve(workloads, phase=phase)

    # -- functional validation ---------------------------------------------

    def functional_burst(self, workload: WorkloadDescriptor) -> SetupFootprint:
        """Push a scaled slice of the workload through the byte datapath.

        Returns the footprint of what ran.  Raises a verbs error if the
        workload shape is illegal (bad opcode for the transport, SG lists
        exceeding caps, messages that cannot fit receive buffers...).
        """
        sub = self.subsystem
        # One fresh QPN allocator per burst, shared by both hosts: QP
        # numbering is reproducible regardless of how many experiments
        # ran earlier in this process (and of process fan-out), while
        # staying alias-free within the burst's fabric.
        qpns = QPNumberAllocator()
        host_a = Host(f"{sub.name}-a", sub.topology, qpn_allocator=qpns)
        host_b = Host(f"{sub.name}-b", sub.topology, qpn_allocator=qpns)
        fabric = Fabric()
        fabric.attach(host_a.context)
        fabric.attach(host_b.context)
        datapath = DataPath(fabric)

        qps = min(workload.num_qps, _FUNCTIONAL_MAX_QPS)
        batches = min(_FUNCTIONAL_MAX_BATCHES, 2)
        wq_depth = min(workload.wq_depth, _FUNCTIONAL_MAX_WQ)
        # The functional slice needs room for one batch in flight.
        wq_depth = max(wq_depth, workload.wqe_batch)
        mtu = MTU.from_bytes(workload.mtu)
        sizes = [min(s, _FUNCTIONAL_MAX_MSG) for s in workload.msg_sizes_bytes]
        mr_bytes = max(
            min(workload.mr_bytes, _FUNCTIONAL_MAX_MSG * 2), max(sizes) + 4096
        )

        cap = QPCapabilities(
            max_send_wr=max(wq_depth, 1),
            max_recv_wr=max(wq_depth, 1),
            max_send_sge=max(workload.sge_per_wqe, 16),
            max_recv_sge=16,
        )
        messages = 0
        for _ in range(qps):
            pd_a = host_a.context.alloc_pd()
            pd_b = host_b.context.alloc_pd()
            cq_a = host_a.context.create_cq(4096)
            cq_b = host_b.context.create_cq(4096)
            qp_a = host_a.context.create_qp(
                pd_a, workload.qp_type, cq_a, cq_a, cap
            )
            qp_b = host_b.context.create_qp(
                pd_b, workload.qp_type, cq_b, cq_b, cap
            )
            if workload.qp_type is QPType.UD:
                fabric.activate_ud(qp_a, mtu)
                fabric.activate_ud(qp_b, mtu)
            else:
                fabric.connect(qp_a, qp_b, mtu)
            mr_a = pd_a.reg_mr(
                mr_bytes, AccessFlags.all_remote(), device=workload.src_device
            )
            mr_b = pd_b.reg_mr(
                mr_bytes, AccessFlags.all_remote(), device=workload.dst_device
            )
            messages += self._drive_pair(
                datapath, workload, qp_a, qp_b, mr_a, mr_b, sizes, batches
            )
        return SetupFootprint(
            qps_created=2 * qps,
            mrs_registered=2 * qps,
            functional_messages=messages,
        )

    def _drive_pair(
        self, datapath, workload, qp_a, qp_b, mr_a, mr_b, sizes, batches
    ) -> int:
        """Post and complete ``batches`` WQE batches on one QP pair."""
        from repro.verbs.constants import GRH_BYTES

        messages = 0
        for _ in range(batches):
            batch = []
            for i in range(min(workload.wqe_batch, len(sizes) * 2)):
                size = sizes[i % len(sizes)]
                if workload.sg_layout is SGLayout.MIXED:
                    lengths = mixed_entry_lengths(size, workload.sge_per_wqe)
                else:
                    lengths = chunk_message(size, 1, workload.sge_per_wqe)[0]
                sg_list = build_sg_list(lengths, mr_a.addr, mr_a.lkey)
                if workload.opcode is Opcode.SEND:
                    recv_capacity = size + (
                        GRH_BYTES if workload.qp_type is QPType.UD else 0
                    )
                    qp_b.post_recv(
                        RecvWorkRequest(
                            sg_list=build_sg_list(
                                [recv_capacity], mr_b.addr, mr_b.lkey
                            )
                        )
                    )
                    wr = SendWorkRequest(
                        opcode=Opcode.SEND,
                        sg_list=sg_list,
                        ah=qp_b.qp_num
                        if workload.qp_type is QPType.UD
                        else None,
                    )
                else:
                    wr = SendWorkRequest(
                        opcode=workload.opcode,
                        sg_list=sg_list,
                        remote_addr=mr_b.addr,
                        rkey=mr_b.rkey,
                    )
                batch.append(wr)
            qp_a.post_send_batch(batch)
            datapath.process(qp_a)
            messages += len(batch)
            for wc in qp_a.send_cq.drain():
                if not wc.ok:
                    raise AssertionError(
                        f"functional burst completion failed: {wc.status.value}"
                    )
        return messages

    # -- experiment cost ------------------------------------------------------

    def setup_seconds(self, workload: WorkloadDescriptor) -> float:
        """Simulated setup cost of one experiment.

        The paper reports 20–60 s per experiment, "mostly depending on the
        number of QPs to create and the number of MRs to register" (§5).
        """
        base = 12.0
        qp_cost = 0.002 * workload.num_qps * (
            2 if workload.is_bidirectional else 1
        )
        mr_cost = 0.0002 * workload.total_mrs
        return min(52.0, base + qp_cost + mr_cost)

    def measurement_seconds(self) -> float:
        """Four per-second counter fetches plus stabilisation (§6)."""
        return 8.0
