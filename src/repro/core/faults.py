"""Deterministic fault injection for campaign execution.

The paper's campaigns ran for 10 hours per subsystem on a physical
testbed (§7), and production fuzzers face exactly the flaky-host
conditions that testbed hit: worker processes crash, tasks hang, hosts
degrade, evaluations fail transiently.  This module makes every one of
those failure modes *injectable at seeded, reproducible points*, so the
resilience layer in :mod:`repro.core.executor` is unit-testable: a
:class:`FaultPlan` decides — as a pure function of ``(task, host,
attempt)`` — which attempts fail and how, and a chaos test can assert
the exact retry/quarantine trajectory the plan implies.

Determinism contract: campaign tasks are pure functions of their
payload (every worker builds its RNG from the payload's seed), so
re-running a failed attempt reproduces the same result bit-for-bit.
Injected faults therefore never change *what* a campaign computes —
only how many attempts it takes — and the chaos suite pins that final
reports are bit-identical to a fault-free run.

Fault kinds:

``crash``
    The worker process dies mid-task (raised as :class:`WorkerCrash`).
``hang``
    The task never returns.  Injected hangs raise :class:`TaskHang`
    synchronously (no real waiting), which the executor treats exactly
    like a real per-task timeout expiring.
``transient``
    A retryable evaluation error (:class:`TransientEvalError`) — the
    software twin of a flaky measurement run.  Also what
    :class:`FaultyTestbed` raises from *inside* an experiment.
``slow``
    Slow-host degradation: the attempt still succeeds, but its
    reported in-worker duration is inflated by ``factor`` (and an
    optional real ``seconds`` sleep), feeding the executor's slow-host
    accounting without perturbing any simulated result.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.cluster.testbed import Testbed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass

#: Fault kinds a plan may inject.
FAULT_KINDS = ("crash", "hang", "transient", "slow")

#: Fault kinds that make the attempt fail (``slow`` degrades only).
FAILING_KINDS = ("crash", "hang", "transient")


class InjectedFault(Exception):
    """Base class of all injected failures (marks them retryable)."""


class WorkerCrash(InjectedFault):
    """A worker process died mid-task."""


class TaskHang(InjectedFault):
    """A task hung; the executor treats this as its timeout expiring."""


class TransientEvalError(InjectedFault):
    """A transient, retryable evaluation failure."""


class TaskTimeout(Exception):
    """A real per-task timeout expired (retryable, like a hang)."""


class TaskFailed(Exception):
    """A task exhausted its retry budget; carries the last error."""

    def __init__(self, task: int, attempts: int, last_error: Exception):
        self.task = task
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"task {task} failed after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )


#: Exception types the executor retries (everything else is fatal).
RETRYABLE_ERRORS = (InjectedFault, TaskTimeout, TransientEvalError)


def raise_fault(spec: "FaultSpec") -> None:
    """Raise the exception a failing fault spec stands for."""
    if spec.kind == "crash":
        raise WorkerCrash(f"injected crash ({spec})")
    if spec.kind == "hang":
        raise TaskHang(f"injected hang ({spec})")
    if spec.kind == "transient":
        raise TransientEvalError(f"injected transient error ({spec})")
    raise ValueError(f"fault kind {spec.kind!r} does not fail an attempt")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injection point.

    A spec *matches* an attempt when every non-``None`` selector agrees:
    ``task`` and ``host`` select where, ``attempt`` selects which try
    (``None`` = every try — how a persistently broken host is modeled),
    and ``experiment`` selects a testbed experiment index for
    :class:`FaultyTestbed`-level injection.
    """

    kind: str
    task: Optional[int] = None
    host: Optional[int] = None
    attempt: Optional[int] = None
    #: Testbed experiment index (FaultyTestbed injection site).
    experiment: Optional[int] = None
    #: Slow-host degradation: reported-duration multiplier.
    factor: float = 1.0
    #: Slow-host degradation: real seconds to stall the worker.
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )

    @property
    def fails(self) -> bool:
        return self.kind in FAILING_KINDS

    def matches(
        self,
        task: Optional[int] = None,
        host: Optional[int] = None,
        attempt: Optional[int] = None,
        experiment: Optional[int] = None,
    ) -> bool:
        for mine, theirs in (
            (self.task, task),
            (self.host, host),
            (self.attempt, attempt),
            (self.experiment, experiment),
        ):
            if mine is not None and mine != theirs:
                return False
        return True


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of injection points.

    Plans are plain data — picklable, hashable, order-preserving — so
    they travel into worker processes alongside the task payload and
    the same plan always injects the same faults.
    """

    faults: tuple[FaultSpec, ...] = ()
    #: The seed :meth:`random` generated this plan from (None if built
    #: by hand); carried for reporting only.
    seed: Optional[int] = None

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def fault_for(
        self, task: int, host: int, attempt: int
    ) -> Optional[FaultSpec]:
        """First failing spec matching this task attempt (else None).

        Experiment-targeted specs belong to :class:`FaultyTestbed` and
        never match at the task level.
        """
        for spec in self.faults:
            if spec.experiment is None and spec.fails and spec.matches(
                task=task, host=host, attempt=attempt
            ):
                return spec
        return None

    def slowdown_for(
        self, task: int, host: int, attempt: int
    ) -> Optional[FaultSpec]:
        """First ``slow`` spec matching this task attempt (else None)."""
        for spec in self.faults:
            if spec.kind == "slow" and spec.experiment is None and (
                spec.matches(task=task, host=host, attempt=attempt)
            ):
                return spec
        return None

    def eval_fault_for(
        self, experiment: int, attempt: int, task: Optional[int] = None
    ) -> Optional[FaultSpec]:
        """First failing experiment-targeted spec for this experiment."""
        for spec in self.faults:
            if spec.experiment is not None and spec.fails and spec.matches(
                task=task, attempt=attempt, experiment=experiment
            ):
                return spec
        return None

    def task_faults(self) -> tuple[FaultSpec, ...]:
        """The task-level failing specs, in plan order."""
        return tuple(
            spec for spec in self.faults
            if spec.experiment is None and spec.fails
        )

    def describe(self) -> str:
        if not self.faults:
            return "fault plan: empty"
        kinds: dict[str, int] = {}
        for spec in self.faults:
            kinds[spec.kind] = kinds.get(spec.kind, 0) + 1
        seeded = f" (seed {self.seed})" if self.seed is not None else ""
        body = ", ".join(f"{n} {kind}" for kind, n in sorted(kinds.items()))
        return f"fault plan{seeded}: {body}"

    @classmethod
    def random(
        cls,
        seed: int,
        tasks: int,
        fault_rate: float = 0.3,
        max_faults_per_task: int = 1,
        kinds: Iterable[str] = FAILING_KINDS,
    ) -> "FaultPlan":
        """A seeded random plan over first attempts of ``tasks`` tasks.

        Every generated spec targets ``attempt < max_faults_per_task``
        of one concrete task, so as long as the retry budget admits
        ``max_faults_per_task`` retries the campaign completes and the
        executor performs *exactly* ``len(plan.task_faults())`` retries
        — the invariant the chaos suite asserts.
        """
        rng = np.random.default_rng(seed)
        kinds = tuple(kinds)
        specs: list[FaultSpec] = []
        for task in range(tasks):
            for attempt in range(max_faults_per_task):
                if rng.random() >= fault_rate:
                    break
                kind = kinds[int(rng.integers(len(kinds)))]
                specs.append(FaultSpec(kind=kind, task=task, attempt=attempt))
        return cls(faults=tuple(specs), seed=seed)

    @classmethod
    def broken_hosts(
        cls, hosts: Iterable[int], kind: str = "crash"
    ) -> "FaultPlan":
        """Hosts that fail *every* attempt routed to them.

        This is the flaky-host scenario of the acceptance suite: the
        executor must quarantine each broken host once its failure
        budget is spent and redistribute its shard to healthy hosts.
        """
        return cls(faults=tuple(
            FaultSpec(kind=kind, host=host) for host in hosts
        ))


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``backoff(attempt)`` is a pure function — ``base * factor**attempt``
    capped at ``maximum`` — so a replayed schedule of failures yields a
    bit-identical schedule of delays.  ``base=0`` keeps the accounting
    (``stats.backoff_seconds``, journal records) without any real
    sleeping, which is what the test suite and simulated campaigns use.
    """

    max_retries: int = 2
    timeout_seconds: Optional[float] = None
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: Failed attempts a host may accumulate before quarantine.
    quarantine_after: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")

    def backoff(self, attempt: int) -> float:
        """Delay before retrying after failed attempt ``attempt``."""
        return min(
            self.backoff_base * self.backoff_factor ** attempt,
            self.backoff_max,
        )

    def describe(self) -> str:
        timeout = (
            f"{self.timeout_seconds:g}s timeout"
            if self.timeout_seconds else "no timeout"
        )
        return (
            f"retry policy: {self.max_retries} retries, {timeout}, "
            f"backoff {self.backoff_base:g}s x{self.backoff_factor:g} "
            f"(cap {self.backoff_max:g}s), quarantine after "
            f"{self.quarantine_after} failures"
        )


class FaultyTestbed(Testbed):
    """A :class:`~repro.cluster.testbed.Testbed` with injected faults.

    Consults a :class:`FaultPlan` before every experiment (via the base
    class's ``_before_experiment`` seam): an experiment-targeted spec
    matching ``(experiments_run, attempt)`` raises its fault *before*
    the experiment charges the clock or consumes RNG draws, so a
    retried attempt — rebuilt from the same payload with ``attempt``
    bumped — replays the completed prefix bit-identically and then
    sails past the injection point.
    """

    def __init__(
        self,
        subsystem,
        plan: FaultPlan,
        attempt: int = 0,
        task: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(subsystem, **kwargs)
        self.plan = plan
        self.attempt = attempt
        self.task = task
        self.faults_raised = 0

    def _before_experiment(self, workload, phase: str, index: int) -> None:
        spec = self.plan.eval_fault_for(index, self.attempt, task=self.task)
        if spec is not None:
            self.faults_raised += 1
            if self.metrics is not None:
                self.metrics.counter("faults.injected", kind=spec.kind)
            raise_fault(spec)
