"""Vendor-ready reproduction recipes for found anomalies.

The paper's workflow after finding an anomaly is to hand the vendor the
traffic-engine invocation that reproduces it ("We share the NIC vendor
with our traffic engine tool and the running command", Appendix A).
This module renders a :class:`~repro.hardware.workload.WorkloadDescriptor`
in three exchangeable forms:

* an **appendix paragraph** — the paper's prose format ("There are N
  connections of RC QP using WRITE opcode...");
* a **traffic-engine command line** — flags for a perftest-style engine
  extended with the knobs Collie's space needs;
* a **verbs pseudo-program** — the setup/post skeleton an engineer would
  translate to C.

Beyond rendering, :func:`reproduce` *executes* a recipe: it replays the
witness workload on a fresh testbed and asks the anomaly monitor
whether the expected symptom recurs.  This is the behavioural ground
truth behind every persisted MFS — the canary's hard invariant pass
(:mod:`repro.canary.invariants`) runs it against every corpus anomaly,
and the round-trip test suite runs it against every freshly found one.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.hardware.workload import (
    Colocation,
    SGLayout,
    WorkloadDescriptor,
)
from repro.verbs.constants import Opcode, QPType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.mfs import MinimalFeatureSet
    from repro.hardware.subsystems import Subsystem

#: Default RNG seed for reproduction runs.  Fixed so a reproduction
#: verdict is itself deterministic (and therefore CI-gateable).
REPRODUCE_SEED = 0x5EED

#: Default measurement attempts before declaring a recipe broken.  The
#: testbed observes with sampling noise, so a single borderline draw
#: must not condemn a sound MFS.
REPRODUCE_ATTEMPTS = 3


def _human(size: int) -> str:
    if size >= 1 << 20 and size % (1 << 20) == 0:
        return f"{size >> 20}MB"
    if size >= 1 << 10 and size % (1 << 10) == 0:
        return f"{size >> 10}KB"
    return f"{size}B"


def appendix_paragraph(workload: WorkloadDescriptor) -> str:
    """The paper's 'simplified concrete trigger setting' prose form."""
    opcode = (
        "SEND/RECV" if workload.opcode is Opcode.SEND
        else f"RDMA {workload.opcode.value}"
    )
    direction = (
        " for each direction" if workload.is_bidirectional else ""
    )
    lines = [
        f"There are {workload.num_qps} connections of "
        f"{workload.qp_type.value} QP using {opcode} opcode{direction}.",
        f"Each QP has {workload.mrs_per_qp} sending MR of "
        f"{_human(workload.mr_bytes)} and {workload.mrs_per_qp} receiving "
        f"MR of {_human(workload.mr_bytes)}.",
        f"Each QP has a work queue of length {workload.wq_depth}.",
        f"The MTU is {_human(workload.mtu)}.",
        f"The sender keeps sending {workload.wqe_batch} request"
        f"{'s' if workload.wqe_batch != 1 else ''} in a batch.",
    ]
    pattern = [_human(s) for s in workload.msg_sizes_bytes]
    if len(set(pattern)) == 1:
        lines.append(
            f"Each request has {workload.sge_per_wqe} SG element"
            f"{'s' if workload.sge_per_wqe != 1 else ''} and a fixed "
            f"size of {pattern[0]}."
        )
    else:
        lines.append(
            f"Each request has {workload.sge_per_wqe} SG element"
            f"{'s' if workload.sge_per_wqe != 1 else ''} and the pattern "
            f"is [{', '.join(pattern)}]."
        )
    if workload.sg_layout is SGLayout.MIXED and workload.sge_per_wqe > 1:
        lines.append(
            "SG lists pack small metadata entries alongside one large "
            "data entry."
        )
    if workload.src_device != "numa0" or workload.dst_device != "numa0":
        lines.append(
            f"Sender MRs are allocated from {workload.src_device} and "
            f"receiver MRs from {workload.dst_device}."
        )
    if workload.colocation is Colocation.MIXED_LOOPBACK:
        lines.append(
            "Half of the senders are co-located with the receivers "
            "(loopback traffic co-exists with receiving traffic)."
        )
    if workload.duty_cycle < 1.0:
        lines.append(
            f"The sender idles {100 * (1 - workload.duty_cycle):.0f}% of "
            "the time between batches."
        )
    return " ".join(lines)


def engine_command(workload: WorkloadDescriptor, binary: str = "collie_engine") -> str:
    """A traffic-engine command line with one flag per search dimension."""
    flags = [
        binary,
        f"--qp-type {workload.qp_type.value.lower()}",
        f"--opcode {workload.opcode.value.lower()}",
        f"--qp-num {workload.num_qps}",
        f"--mtu {workload.mtu}",
        f"--batch {workload.wqe_batch}",
        f"--sge {workload.sge_per_wqe}",
        f"--wq-depth {workload.wq_depth}",
        f"--mr-num {workload.mrs_per_qp}",
        f"--mr-size {workload.mr_bytes}",
        "--request-sizes "
        + ",".join(str(s) for s in workload.msg_sizes_bytes),
        f"--src-mem {workload.src_device}",
        f"--dst-mem {workload.dst_device}",
    ]
    if workload.is_bidirectional:
        flags.append("--bidirectional")
    if workload.sg_layout is SGLayout.MIXED:
        flags.append("--sg-layout mixed")
    if workload.colocation is Colocation.MIXED_LOOPBACK:
        flags.append("--with-loopback")
    if workload.duty_cycle < 1.0:
        flags.append(f"--duty-cycle {workload.duty_cycle}")
    return " \\\n    ".join(flags)


def verbs_program(workload: WorkloadDescriptor) -> str:
    """A verbs pseudo-program reproducing the workload shape."""
    qp_type = workload.qp_type.value
    post = (
        "ibv_post_send(qp[i], wr_batch, &bad)   /* batch of "
        f"{workload.wqe_batch} */"
    )
    recv_note = (
        f"    for (j = 0; j < {workload.wq_depth}; j++)\n"
        "        ibv_post_recv(qp[i], &recv_wr, &bad);\n"
        if workload.uses_recv_wqes
        else ""
    )
    sizes = ", ".join(str(s) for s in workload.msg_sizes_bytes)
    return (
        f"/* reproduces: {workload.summary()} */\n"
        f"ctx = ibv_open_device(dev);\n"
        f"pd  = ibv_alloc_pd(ctx);\n"
        f"for (i = 0; i < {workload.num_qps}; i++) {{\n"
        f"    for (m = 0; m < {workload.mrs_per_qp}; m++)\n"
        f"        mr[i][m] = ibv_reg_mr(pd, buf, {workload.mr_bytes}, "
        "ACCESS_ALL);\n"
        f"    qp[i] = ibv_create_qp(pd, {{.qp_type = IBV_QPT_{qp_type}, "
        f".cap = {{.max_send_wr = {workload.wq_depth}, "
        f".max_recv_wr = {workload.wq_depth}, "
        f".max_send_sge = {workload.sge_per_wqe}}}}});\n"
        f"    connect_qp(qp[i], peer, IBV_MTU_{workload.mtu});\n"
        f"{recv_note}"
        f"}}\n"
        f"sizes[] = {{{sizes}}};   /* request pattern, cycled */\n"
        f"while (running)\n"
        f"    {post};\n"
    )


def recipe(workload: WorkloadDescriptor, title: str = "anomaly") -> str:
    """The full vendor hand-off document for one trigger workload."""
    return (
        f"=== Reproduction recipe: {title} ===\n\n"
        f"{appendix_paragraph(workload)}\n\n"
        f"Traffic engine invocation:\n\n{engine_command(workload)}\n\n"
        f"Verbs skeleton:\n\n{verbs_program(workload)}"
    )


# -- executing a recipe -------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ReproductionResult:
    """Outcome of replaying one witness workload on a fresh testbed."""

    expected_symptom: str
    #: Monitor verdicts of the attempts actually run, in order (the
    #: replay stops early on the first reproducing attempt).
    observed_symptoms: tuple[str, ...]
    reproduced: bool

    def describe(self) -> str:
        verdict = "reproduced" if self.reproduced else "NOT reproduced"
        observed = ", ".join(self.observed_symptoms) or "-"
        return (
            f"{verdict}: expected {self.expected_symptom!r}, "
            f"observed [{observed}]"
        )


def reproduce(
    workload: WorkloadDescriptor,
    subsystem: Union["Subsystem", str],
    expected_symptom: str,
    attempts: int = REPRODUCE_ATTEMPTS,
    seed: int = REPRODUCE_SEED,
    noise: float = 0.02,
    victim: "WorkloadDescriptor | None" = None,
    victim_share: float = 0.5,
) -> ReproductionResult:
    """Replay a trigger workload and check the symptom recurs.

    Runs the workload through the full testbed path (engine, hardware
    model, monitor) on a fresh simulated cluster — the same machinery a
    search uses, with none of the search's state.  The recipe counts as
    reproduced when *any* attempt yields the expected symptom;
    ``attempts`` draws of measurement noise keep a borderline sample
    from condemning a sound anomaly.

    With a ``victim``, the replay is an *isolation* reproduction: the
    workload is the minimized attacker, the testbed co-runs it next to
    the pinned victim, and the isolation monitor judges the victim's
    degradation against its own alone-floor — the same machinery an
    adversarial-neighbor search uses.
    """
    from repro.cluster.testbed import Testbed
    from repro.core.monitor import AnomalyMonitor, IsolationMonitor

    if attempts < 1:
        raise ValueError("need at least one reproduction attempt")
    testbed = Testbed(
        subsystem, noise=noise, victim=victim, victim_share=victim_share
    )
    if victim is not None:
        monitor: AnomalyMonitor = IsolationMonitor(
            testbed.subsystem, testbed.victim_floor
        )
    else:
        monitor = AnomalyMonitor(testbed.subsystem)
    rng = np.random.default_rng(seed)
    observed: list[str] = []
    for _ in range(attempts):
        result = testbed.run(workload, rng=rng, phase="reproduce")
        symptom = monitor.classify(result.measurement).symptom
        observed.append(symptom)
        if symptom == expected_symptom:
            break
    return ReproductionResult(
        expected_symptom=expected_symptom,
        observed_symptoms=tuple(observed),
        reproduced=expected_symptom in observed,
    )


def reproduce_mfs(
    mfs: "MinimalFeatureSet",
    subsystem: Union["Subsystem", str],
    attempts: int = REPRODUCE_ATTEMPTS,
    seed: int = REPRODUCE_SEED,
    noise: float = 0.02,
    victim: "WorkloadDescriptor | None" = None,
    victim_share: float = 0.5,
) -> ReproductionResult:
    """Replay an MFS's witness against its recorded symptom class.

    For isolation anomalies the witness *is* the minimized attacker;
    pass the run's victim to replay the co-run.
    """
    return reproduce(
        mfs.witness, subsystem, mfs.symptom,
        attempts=attempts, seed=seed, noise=noise,
        victim=victim, victim_share=victim_share,
    )
