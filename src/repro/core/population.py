"""Population-stepped SA: N annealing chains as one array program.

``search --seeds N`` and :class:`~repro.core.parallel.ParallelCollie`
historically paid a full scalar process per chain: every chain solved
its own steady states one point at a time, and nothing was shared.
This module advances N independent SA chains *in lockstep* inside one
process instead.  Each chain is a full §7.2 Collie run — own RNG
(``seed + c``), own simulated clock, own monitor and anomaly set —
reshaped into a generator (:meth:`~repro.core.collie.Collie.steps`)
that suspends immediately before each measurement.  Per generation the
driver gathers one pending workload per live chain, pre-solves the
whole generation as a single vectorized batch against a shared
:class:`~repro.core.evalcache.EvalCache`
(:meth:`~repro.cluster.testbed.Testbed.presolve`), then resumes the
chains in order; each chain's scalar measurement is then a cache hit.

Because nothing crosses the suspension points — the presolve is
stat-less and RNG-free, and the cache is bit-transparent — every chain
is bit-identical to a standalone ``Collie(seed=seed + c).run()``.  Two
consequences the test suite pins:

* a 1-chain population *is* the legacy trajectory (same events, RNG
  stream, journal bytes, report);
* an N-chain population equals the ``search --seeds N`` campaign path
  for the same seed range, independent of worker count.

The speedup comes from where the budget actually goes: the MFS ladders
and generation batches are solved as deduplicated array programs, and
all chains share one warm cache (chains rediscovering each other's
regions pay nothing), instead of N disjoint scalar walks.

**Parallel tempering** (``temperature_ladder``): one chain per rung,
each running the relaxed schedule scaled to its rung, with a
deterministic replica-exchange sweep every ``exchange_every``
generations.  Adjacent rungs swap their current points when the hotter
chain holds the better-scoring point and both chains are driving the
same counter — greedy, RNG-free, so tempering runs are bit-identical
across repeats.  The paper couldn't afford a ladder on real hardware
(each rung is another 10-hour testbed occupation); on the simulated
testbed it is one more column in the array program.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.annealing import SAParams, SearchSignal, TraceEvent
from repro.core.collie import Collie, SearchReport
from repro.core.evalcache import EvalCache
from repro.core.mfs import MinimalFeatureSet
from repro.core.space import SearchSpace
from repro.hardware.subsystems import Subsystem, get_subsystem


@dataclasses.dataclass
class PopulationReport:
    """Merged outcome of one population run."""

    subsystem_name: str
    chains: int
    reports: list[SearchReport]  #: one per chain, in chain order.
    generations: int  #: lockstep rounds until the last chain finished.
    exchanges: int  #: replica swaps performed (tempering only).
    mode: str  #: ``independent`` or ``tempering``.
    temperature_ladder: Optional[tuple] = None

    @property
    def elapsed_seconds(self) -> float:
        """Max over chains: they run concurrently in simulated time."""
        return max((r.elapsed_seconds for r in self.reports), default=0.0)

    @property
    def anomalies(self) -> list[MinimalFeatureSet]:
        merged: list[MinimalFeatureSet] = []
        for report in self.reports:
            merged.extend(report.anomalies)
        return merged

    @property
    def total_experiments(self) -> int:
        return sum(r.experiments for r in self.reports)

    def first_hit_times(self) -> dict:
        """Tag → earliest concurrent discovery time across chains."""
        hits: dict = {}
        for report in self.reports:
            for tag, seconds in report.first_hit_times().items():
                if tag not in hits or seconds < hits[tag]:
                    hits[tag] = seconds
        return hits

    def found_tags(self) -> list[str]:
        return sorted(self.first_hit_times())

    def events(self) -> list[TraceEvent]:
        merged = [e for r in self.reports for e in r.events]
        return sorted(merged, key=lambda e: e.time_seconds)

    def summary(self) -> str:
        label = (
            f"tempering ladder {self.temperature_ladder}"
            if self.mode == "tempering" else f"{self.chains} chains"
        )
        lines = [
            f"Population({label}) on subsystem {self.subsystem_name}: "
            f"{len(self.anomalies)} anomalies (MFS), "
            f"{self.total_experiments} experiments, "
            f"{self.generations} generations"
            + (f", {self.exchanges} exchanges" if self.exchanges else ""),
        ]
        for chain, report in enumerate(self.reports):
            lines.append(
                f"  chain {chain}: {len(report.anomalies)} anomalies, "
                f"{report.experiments} experiments, "
                f"{report.elapsed_seconds / 3600:.1f} simulated hours"
            )
        return "\n".join(lines)


class PopulationCollie:
    """Steps N Collie chains in lockstep with batched steady solves."""

    def __init__(
        self,
        subsystem: "Subsystem | str",
        chains: int = 4,
        budget_hours: float = 10.0,
        seed: int = 0,
        space: Optional[SearchSpace] = None,
        counter_mode: str = "diag",
        use_mfs: bool = True,
        sa_params: SAParams = SAParams(),
        noise: float = 0.02,
        mfs_probes_per_dimension: int = 2,
        counters: Optional[tuple] = None,
        cache: Optional[EvalCache] = None,
        recorder=None,
        batch: bool = True,
        batch_probes: bool = False,
        latency: bool = True,
        temperature_ladder: Optional[tuple] = None,
        exchange_every: int = 25,
        victim=None,
        victim_share: float = 0.5,
    ) -> None:
        if isinstance(subsystem, str):
            subsystem = get_subsystem(subsystem)
        if temperature_ladder is not None:
            ladder = tuple(float(t) for t in temperature_ladder)
            if len(ladder) < 2:
                raise ValueError("a temperature ladder needs >= 2 rungs")
            if any(t <= 0 for t in ladder):
                raise ValueError("ladder temperatures must be positive")
            chains = len(ladder)
        else:
            ladder = None
        if chains < 1:
            raise ValueError("need at least one chain")
        if exchange_every < 1:
            raise ValueError("exchange_every must be >= 1")
        self.subsystem = subsystem
        self.chains = chains
        self.budget_hours = budget_hours
        self.seed = seed
        self.temperature_ladder = ladder
        self.exchange_every = exchange_every
        self.victim = victim
        self.victim_share = victim_share
        self.recorder = recorder
        self._user_cache = cache is not None
        #: The shared cross-chain cache the generation presolve batches
        #: into.  Auto-created for multi-chain runs (presolve is a no-op
        #: without one); never forced on 1-chain runs, whose journals
        #: must stay byte-identical to the legacy single trajectory.
        self.cache = cache if cache is not None else (
            EvalCache() if batch and chains > 1 else None
        )
        space = space or SearchSpace.for_subsystem(subsystem)

        def rung_params(rung: float) -> SAParams:
            # Scale the whole schedule to the rung, preserving the
            # t0/t_min ratio so every rung anneals the same number of
            # temperature steps before reheating.
            return dataclasses.replace(
                sa_params, t0=rung,
                t_min=sa_params.t_min * rung / sa_params.t0,
            )

        self._collies: list[Collie] = []
        for chain in range(chains):
            chain_recorder = None
            if recorder is not None:
                # A 1-chain population records through the parent
                # directly (no chain stamps: the journal is the legacy
                # single-run journal); multi-chain runs get stamped
                # per-chain views sharing the parent's journal/metrics.
                chain_recorder = (
                    recorder if chains == 1 else recorder.for_chain(chain)
                )
            collie = Collie(
                subsystem,
                space=space,
                counter_mode=counter_mode,
                use_mfs=use_mfs,
                budget_hours=budget_hours,
                seed=seed + chain,
                sa_params=(
                    rung_params(ladder[chain]) if ladder is not None
                    else sa_params
                ),
                noise=noise,
                mfs_probes_per_dimension=mfs_probes_per_dimension,
                counters=counters,
                cache=self.cache,
                recorder=chain_recorder,
                batch=batch,
                batch_probes=batch_probes,
                latency=latency,
                victim=victim,
                victim_share=victim_share,
            )
            if ladder is not None:
                collie.search.exchange_enabled = True
            if self.cache is not None and chains > 1:
                # Generation batches cover every yielded point, so the
                # chains' own scalar-path presolve accelerators would
                # re-solve work the population already shares.
                collie.testbed.lockstep = True
            self._collies.append(collie)
        if self.cache is not None and chains > 1:
            # Each chain Collie re-wired the shared cache's observer to
            # its own recorder view; route cache events through the
            # unstamped parent instead (they are population-global, not
            # attributable to the chain that happened to be built last),
            # and drop the profiler (chains suspend mid-span).
            self.cache.observer = (
                recorder.cache_event
                if self._user_cache and recorder is not None else None
            )
            self.cache.profiler = None
        if ladder is not None:
            # Exchange sweeps walk the ladder hottest → coldest.
            self._ladder_order = sorted(
                range(chains), key=lambda c: -ladder[c]
            )
        else:
            self._ladder_order = []
        self.exchanges = 0
        self.generations = 0
        self.last_report: Optional[PopulationReport] = None

    # -- the lockstep loop -------------------------------------------------

    def run(self) -> PopulationReport:
        """Drive every chain to completion, one generation at a time."""
        steppers = [collie.steps() for collie in self._collies]
        pending: dict = {}  # chain index -> workload awaiting measurement
        reports: list = [None] * self.chains
        self.exchanges = 0
        self.generations = 0
        for index, stepper in enumerate(steppers):
            self._advance(index, stepper, pending, reports)
        while pending:
            self.generations += 1
            if (
                self.temperature_ladder is not None
                and self.generations % self.exchange_every == 0
            ):
                self._exchange_sweep()
            self._prepare(pending)
            # dict preserves insertion order and never re-adds a
            # finished chain, so resumption order is chain order.
            for index in list(pending):
                self._advance(index, steppers[index], pending, reports)
        self.last_report = PopulationReport(
            subsystem_name=self.subsystem.name,
            chains=self.chains,
            reports=reports,
            generations=self.generations,
            exchanges=self.exchanges,
            mode=(
                "tempering" if self.temperature_ladder is not None
                else "independent"
            ),
            temperature_ladder=self.temperature_ladder,
        )
        return self.last_report

    def _advance(self, index, stepper, pending, reports) -> None:
        """Resume one chain until its next pre-measurement suspension."""
        try:
            pending[index] = next(stepper)
        except StopIteration as stop:
            pending.pop(index, None)
            reports[index] = stop.value

    def _prepare(self, pending: dict) -> None:
        """Evaluate the generation's pending points as one array program.

        One deduplicated solve for the whole generation (cache-backed),
        then each point's observation noise drawn from *its own chain's*
        generator in scalar call order (``observe_each``).  The finished
        measurements are primed into each chain's testbed, whose next
        ``run`` consumes them with unchanged clock charging — so every
        chain's trajectory, RNG state and journal stay bit-identical to
        a standalone scalar run, and the per-point work left on the
        scalar path is just bookkeeping.

        A single pending point gains nothing from batching; a point the
        solver rejects is left unprimed so the chain's own measurement
        raises exactly where the scalar path would.
        """
        if self.cache is None or len(pending) < 2:
            return
        lead = self._collies[0].testbed
        if not getattr(lead, "batch_enabled", False):
            return
        indices = list(pending)
        workloads = [pending[index] for index in indices]
        rngs = [self._collies[index].search.rng for index in indices]
        try:
            measurements = lead.engine.batch.evaluate_each(
                workloads, rngs, phase="population"
            )
        except ValueError:
            return
        for index, workload, measurement in zip(
            indices, workloads, measurements
        ):
            self._collies[index].testbed.prime(workload, measurement)

    # -- replica exchange (parallel tempering) -----------------------------

    def _exchange_sweep(self) -> None:
        """One deterministic greedy sweep over adjacent ladder rungs.

        For each hot/cold neighbour pair driving the *same* counter,
        swap their current points when the hotter chain holds the
        better score — the strong point continues annealing at the
        colder (exploiting) rung while the displaced one re-enters the
        hot (exploring) rung.  Pure value comparison: no RNG, so
        tempering stays bit-reproducible.  Chains adopt their inbox at
        the top of their next SA iteration and journal an ``exchange``
        transition.
        """
        searches = [collie.search for collie in self._collies]
        order = self._ladder_order
        for hot, cold in zip(order, order[1:]):
            hot_state = searches[hot].exchange_state
            cold_state = searches[cold].exchange_state
            if hot_state is None or cold_state is None:
                continue
            hot_counter, hot_point, hot_value = hot_state
            cold_counter, cold_point, cold_value = cold_state
            if hot_counter != cold_counter:
                continue  # different passes: energies are incomparable
            signal = SearchSignal(hot_counter)
            flip = -1.0 if signal.lower_is_better else 1.0
            if flip * hot_value > flip * cold_value:
                searches[hot].exchange_inbox = (cold_point, cold_value)
                searches[cold].exchange_inbox = (hot_point, hot_value)
                # Update the published states too, so one sweep can
                # bubble a strong point down several rungs without
                # double-donating it to two neighbours.
                searches[hot].exchange_state = (
                    hot_counter, cold_point, cold_value
                )
                searches[cold].exchange_state = (
                    cold_counter, hot_point, hot_value
                )
                self.exchanges += 1
