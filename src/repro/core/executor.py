"""Process-parallel campaign execution, bit-identical to serial runs.

The paper argues for fleet-parallel search (§8); this repo's campaigns —
multi-seed Figure 4/5 benches, :mod:`repro.analysis.campaign`, the
:class:`~repro.core.parallel.ParallelCollie` machine fleet — are
embarrassingly parallel across seeds/machines, yet ran serially.

:class:`CampaignExecutor` fans an ordered list of picklable task
payloads across :class:`concurrent.futures.ProcessPoolExecutor` workers
and returns results in task order.  Determinism contract: every task
carries its *own* seed and the worker constructs its
``numpy.random.Generator`` from that seed inside the task function —
never from process-global RNG state — so a task's result is a pure
function of its payload and fan-out is bit-identical to a serial loop
(the determinism suite pins this for Collie, random and GA campaigns).

That same purity makes the executor *fault-tolerant*: re-running a
failed attempt reproduces the lost result exactly, so an attached
:class:`~repro.core.faults.RetryPolicy` buys per-task timeouts, bounded
retries with deterministic exponential backoff, and graceful
degradation — tasks are sharded round-robin over *virtual hosts* (one
per worker slot), a host that keeps failing is quarantined after
``quarantine_after`` failed attempts, and its shard is redistributed
across the remaining healthy hosts.  Every retry and quarantine
decision is journaled (``retry``/``quarantine`` records) and counted
(``faults.*`` metrics).  A seeded
:class:`~repro.core.faults.FaultPlan` injects crashes, hangs, transient
errors and slow-host degradation at reproducible points, which is how
the chaos suite pins the exact retry/quarantine trajectory.

When process pools are unavailable (restricted sandboxes), the executor
degrades to an in-process serial loop and records that it did.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from typing import Callable, Optional, Sequence

from repro.core.faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    RETRYABLE_ERRORS,
    TaskFailed,
    TaskHang,
    TaskTimeout,
    WorkerCrash,
    raise_fault,
)

#: Reusable no-op context for profiler-disabled span sites.
_NO_SPAN = nullcontext()


@dataclasses.dataclass
class ExecutorStats:
    """Wall-time and resilience accounting of one fan-out."""

    workers: int
    tasks: int
    wall_seconds: float = 0.0
    #: Sum of per-task in-worker durations — what a serial loop would
    #: roughly have cost; ``speedup`` compares it against wall time.
    busy_seconds: float = 0.0
    fell_back_serial: bool = False
    #: Failed attempts that were re-run (injected or real).
    retries: int = 0
    #: Retryable failures that were hangs/timeouts specifically.
    timeouts: int = 0
    #: Faults the attached FaultPlan injected (all kinds, incl. slow).
    injected_faults: int = 0
    #: Deterministic backoff schedule total (accrued even when the
    #: policy's base is 0 and no real sleeping happened).
    backoff_seconds: float = 0.0
    #: Virtual hosts quarantined, in decision order.
    quarantined_hosts: tuple = ()
    #: Tasks moved off a quarantined host onto a healthy one.
    redistributed_tasks: int = 0

    @property
    def speedup(self) -> float:
        if self.wall_seconds <= 0:
            return 1.0
        return self.busy_seconds / self.wall_seconds

    def describe(self) -> str:
        mode = "serial (fallback)" if self.fell_back_serial else (
            "serial" if self.workers <= 1 else f"{self.workers} workers"
        )
        line = (
            f"{self.tasks} tasks via {mode}: "
            f"{self.wall_seconds:.3f}s wall, "
            f"{self.busy_seconds:.3f}s busy, "
            f"{self.speedup:.2f}x parallel speedup"
        )
        if self.retries:
            line += (
                f", {self.retries} retried attempt(s) "
                f"({self.backoff_seconds:.3f}s backoff)"
            )
        if self.quarantined_hosts:
            line += (
                f", {len(self.quarantined_hosts)} host(s) quarantined "
                f"({self.redistributed_tasks} task(s) redistributed)"
            )
        return line


def _timed_call(fn: Callable, payload) -> tuple:
    """Run one task in the worker, returning (result, in-worker seconds)."""
    started = time.perf_counter()
    result = fn(payload)
    return result, time.perf_counter() - started


def _faulted_call(
    fn: Callable,
    payload,
    fault: Optional[FaultSpec],
    slow: Optional[FaultSpec],
) -> tuple:
    """Worker-side twin of :func:`_timed_call` with fault injection.

    A failing fault raises before the task body runs (the attempt's
    result is lost either way, so nothing is computed for it); a
    ``slow`` spec stalls the worker and inflates the reported duration
    without touching the result.
    """
    if fault is not None:
        raise_fault(fault)
    started = time.perf_counter()
    result = fn(payload)
    seconds = time.perf_counter() - started
    if slow is not None:
        if slow.seconds > 0:
            time.sleep(slow.seconds)
        seconds = seconds * slow.factor + slow.seconds
    return result, seconds


class CampaignExecutor:
    """Deterministic fan-out of campaign tasks across worker processes.

    ``workers <= 1`` runs the tasks serially in-process — the reference
    behaviour the parallel path must reproduce bit-for-bit.  Attaching
    a ``retry`` policy (or a fault ``plan``) switches ``map`` onto the
    resilient scheduling loop; without either, the legacy fail-fast
    paths run unchanged.
    """

    def __init__(
        self,
        workers: int = 1,
        metrics=None,
        progress: Optional[Callable[[int, int], None]] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        recorder=None,
        profiler=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.last_stats: Optional[ExecutorStats] = None
        #: Optional obs.MetricsRegistry accounting fan-out wall time.
        self.metrics = metrics
        #: Optional ``progress(done, total)`` callback, invoked in the
        #: parent as each task's result lands (task order).
        self.progress = progress
        #: Resilience policy; None = legacy fail-fast behaviour.
        self.retry = retry
        #: Deterministic fault injection plan (chaos testing).
        self.faults = faults
        #: Optional FlightRecorder journaling retry/quarantine records.
        #: When set, fault metrics route through it (its registry is
        #: usually the same object as ``metrics`` — never count twice).
        self.recorder = recorder
        #: Optional obs.SpanProfiler ("pool" spans around each fan-out);
        #: defaults to the recorder's profiler when one is attached.
        self.profiler = (
            profiler if profiler is not None
            else getattr(recorder, "profiler", None)
        )

    def map(self, fn: Callable, payloads: Sequence) -> list:
        """Apply ``fn`` to every payload; results come back in order.

        ``fn`` must be a module-level callable and each payload picklable
        when ``workers > 1`` (the standard multiprocessing contract).
        Without a retry policy a worker exception propagates to the
        caller after the pool drains; with one, retryable failures are
        re-attempted within the policy's budget and only
        :class:`~repro.core.faults.TaskFailed` (budget exhausted) or a
        fatal error propagates.
        """
        payloads = list(payloads)
        stats = ExecutorStats(
            workers=min(self.workers, max(len(payloads), 1)),
            tasks=len(payloads),
        )
        started = time.perf_counter()
        resilient = self.retry is not None or self.faults is not None
        with (
            self.profiler.span("pool")
            if self.profiler is not None else _NO_SPAN
        ):
            if resilient and payloads:
                results = self._run_resilient(fn, payloads, stats)
            elif self.workers <= 1 or len(payloads) <= 1:
                results = self._run_serial(fn, payloads, stats)
            else:
                results = self._run_pooled(fn, payloads, stats)
        stats.wall_seconds = time.perf_counter() - started
        self.last_stats = stats
        if self.metrics is not None:
            self.metrics.counter("executor.tasks", stats.tasks)
            self.metrics.gauge("executor.workers", stats.workers)
            self.metrics.observe("executor.wall_seconds", stats.wall_seconds)
            self.metrics.observe("executor.busy_seconds", stats.busy_seconds)
        return results

    # -- strategies ----------------------------------------------------------

    def _run_serial(self, fn, payloads, stats: ExecutorStats) -> list:
        results = []
        for payload in payloads:
            result, seconds = _timed_call(fn, payload)
            stats.busy_seconds += seconds
            results.append(result)
            self._task_done(len(results), stats, seconds)
        return results

    def _make_pool(self, tasks: int):
        try:
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, tasks)
            )
        except (OSError, PermissionError, ValueError):
            return None

    def _run_pooled(self, fn, payloads, stats: ExecutorStats) -> list:
        pool = self._make_pool(len(payloads))
        if pool is None:
            # No process support here (restricted sandbox): same results,
            # serially — the determinism contract makes this transparent.
            stats.fell_back_serial = True
            return self._run_serial(fn, payloads, stats)
        with pool:
            futures = [
                pool.submit(_timed_call, fn, payload) for payload in payloads
            ]
            results = []
            for future in futures:  # submit order == task order
                result, seconds = future.result()
                stats.busy_seconds += seconds
                results.append(result)
                self._task_done(len(results), stats, seconds)
        return results

    # -- the resilient scheduling loop ---------------------------------------

    def _run_resilient(self, fn, payloads, stats: ExecutorStats) -> list:
        """Retry/timeout/backoff/quarantine scheduling.

        Tasks are sharded round-robin over virtual hosts (one per worker
        slot).  Attempts run in the pool when available; failures are
        handled *in task order* in the parent, which makes every retry,
        backoff and quarantine decision deterministic for a given fault
        plan regardless of real completion order.
        """
        policy = self.retry if self.retry is not None else RetryPolicy()
        plan = self.faults if self.faults is not None else FaultPlan()
        scheduler = _ResilientRun(self, fn, payloads, stats, policy, plan)
        try:
            return scheduler.run()
        finally:
            scheduler.shutdown()

    def _task_done(
        self, done: int, stats: ExecutorStats, seconds: float
    ) -> None:
        if self.metrics is not None:
            self.metrics.observe("executor.task_seconds", seconds)
        if self.recorder is not None:
            # Liveness for the telemetry plane (a no-op unless the
            # recorder asked for heartbeats).  The worker slot is
            # derived from the deterministic task-order index, so
            # serial, pooled and resilient paths report identically.
            self.recorder.heartbeat(
                (done - 1) % stats.workers, done, stats.tasks
            )
        if self.progress is not None:
            self.progress(done, stats.tasks)

    # -- fault-event fan-in (journal via recorder, else bare metrics) --------

    def _on_injected(self, spec: FaultSpec, stats: ExecutorStats) -> None:
        stats.injected_faults += 1
        if self.recorder is not None:
            self.recorder.injected_fault(spec.kind)
        elif self.metrics is not None:
            self.metrics.counter("faults.injected", kind=spec.kind)

    def _on_retry(
        self, task: int, host: int, attempt: int, error: Exception,
        backoff: float, stats: ExecutorStats,
    ) -> None:
        stats.retries += 1
        stats.backoff_seconds += backoff
        kind = _error_kind(error)
        if kind in ("hang", "timeout"):
            stats.timeouts += 1
        if self.recorder is not None:
            self.recorder.retry(task, host, attempt, kind, backoff)
        elif self.metrics is not None:
            self.metrics.counter("faults.retries", kind=kind)
            self.metrics.observe("faults.backoff_seconds", backoff)

    def _on_quarantine(
        self, host: int, failures: int, redistributed: int,
        stats: ExecutorStats,
    ) -> None:
        stats.quarantined_hosts += (host,)
        stats.redistributed_tasks += redistributed
        if self.recorder is not None:
            self.recorder.quarantine(host, failures, redistributed)
        elif self.metrics is not None:
            self.metrics.counter("faults.quarantines")
            self.metrics.counter("faults.redistributed", redistributed)


def _error_kind(error: Exception) -> str:
    """Stable short label of a retryable failure (journal/metrics key)."""
    from repro.core.faults import TransientEvalError

    if isinstance(error, TaskHang):
        return "hang"
    if isinstance(error, TaskTimeout):
        return "timeout"
    if isinstance(error, WorkerCrash):
        return "crash"
    if isinstance(error, TransientEvalError):
        return "transient"
    return type(error).__name__


class _ResilientRun:
    """One resilient ``map``: scheduling state and the retry loop."""

    def __init__(self, executor, fn, payloads, stats, policy, plan):
        self.executor = executor
        self.fn = fn
        self.payloads = payloads
        self.stats = stats
        self.policy = policy
        self.plan = plan
        self.tasks = len(payloads)
        self.hosts = stats.workers
        self.healthy = [True] * self.hosts
        self.failures = [0] * self.hosts
        #: Task → current virtual host (round-robin shards).
        self.assignment = [i % self.hosts for i in range(self.tasks)]
        #: Task → host its outstanding attempt was dispatched on (the
        #: host failures are charged to, even after redistribution).
        self.dispatched_host = list(self.assignment)
        self.attempts = [0] * self.tasks
        self.results: list = [None] * self.tasks
        self.completed = [False] * self.tasks
        self.pool = None
        self.futures: dict[int, concurrent.futures.Future] = {}
        if executor.workers > 1 and self.tasks > 1:
            self.pool = executor._make_pool(self.tasks)
            if self.pool is None:
                stats.fell_back_serial = True

    def shutdown(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None

    # -- dispatch ------------------------------------------------------------

    def _attempt_faults(self, task: int):
        host = self.assignment[task]
        attempt = self.attempts[task]
        self.dispatched_host[task] = host
        fault = self.plan.fault_for(task, host, attempt)
        slow = self.plan.slowdown_for(task, host, attempt)
        if fault is not None:
            self.executor._on_injected(fault, self.stats)
        if slow is not None:
            self.executor._on_injected(slow, self.stats)
        return fault, slow

    def _submit(self, task: int) -> None:
        fault, slow = self._attempt_faults(task)
        self.futures[task] = self.pool.submit(
            _faulted_call, self.fn, self.payloads[task], fault, slow
        )

    def _wait(self, task: int):
        """Result of the task's outstanding pooled attempt."""
        future = self.futures.pop(task)
        try:
            return future.result(timeout=self.policy.timeout_seconds)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise TaskTimeout(
                f"task {task} exceeded its "
                f"{self.policy.timeout_seconds:g}s timeout"
            ) from None
        except BrokenProcessPool:
            self._rebuild_pool(task)
            raise WorkerCrash(
                f"worker process died while running task {task}"
            ) from None

    def _rebuild_pool(self, failed_task: int) -> None:
        """Replace a broken pool and resubmit the innocent bystanders.

        Every outstanding future died with the pool; only
        ``failed_task`` is charged a failure — the others are resubmitted
        at their current attempt number, uncounted.
        """
        self.shutdown()
        self.pool = self.executor._make_pool(self.tasks)
        if self.pool is None:
            self.stats.fell_back_serial = True
            self.futures.clear()
            return
        for task in list(self.futures):
            del self.futures[task]
            self._submit(task)

    def _run_one(self, task: int):
        """One attempt of one task (pooled when a pool is up)."""
        if self.pool is not None:
            if task not in self.futures:
                self._submit(task)
            return self._wait(task)
        fault, slow = self._attempt_faults(task)
        return _faulted_call(self.fn, self.payloads[task], fault, slow)

    # -- failure handling ----------------------------------------------------

    def _quarantine_if_due(self, host: int) -> None:
        if self.failures[host] < self.policy.quarantine_after:
            return
        if not self.healthy[host]:
            return  # already quarantined; late failures change nothing
        if sum(self.healthy) <= 1:
            return  # never quarantine the last host standing
        self.healthy[host] = False
        survivors = [h for h in range(self.hosts) if self.healthy[h]]
        redistributed = 0
        for task in range(self.tasks):
            if not self.completed[task] and self.assignment[task] == host:
                self.assignment[task] = survivors[
                    redistributed % len(survivors)
                ]
                redistributed += 1
        self.executor._on_quarantine(
            host, self.failures[host], redistributed, self.stats
        )

    def _handle_failure(self, task: int, error: Exception) -> None:
        host = self.dispatched_host[task]
        self.failures[host] += 1
        self._quarantine_if_due(host)
        attempt = self.attempts[task]
        if attempt >= self.policy.max_retries:
            raise TaskFailed(task, attempt + 1, error) from error
        backoff = self.policy.backoff(attempt)
        self.executor._on_retry(
            task, host, attempt, error, backoff, self.stats
        )
        if self.policy.backoff_base > 0 and backoff > 0:
            time.sleep(backoff)
        self.attempts[task] += 1
        if self.pool is not None:
            self._submit(task)

    # -- the loop ------------------------------------------------------------

    def run(self) -> list:
        if self.pool is not None:
            for task in range(self.tasks):
                self._submit(task)
        done = 0
        for task in range(self.tasks):
            while True:
                try:
                    result, seconds = self._run_one(task)
                except RETRYABLE_ERRORS as error:
                    self._handle_failure(task, error)
                    continue
                self.results[task] = result
                self.completed[task] = True
                self.stats.busy_seconds += seconds
                done += 1
                self.executor._task_done(done, self.stats, seconds)
                break
        return self.results
