"""Process-parallel campaign execution, bit-identical to serial runs.

The paper argues for fleet-parallel search (§8); this repo's campaigns —
multi-seed Figure 4/5 benches, :mod:`repro.analysis.campaign`, the
:class:`~repro.core.parallel.ParallelCollie` machine fleet — are
embarrassingly parallel across seeds/machines, yet ran serially.

:class:`CampaignExecutor` fans an ordered list of picklable task
payloads across :class:`concurrent.futures.ProcessPoolExecutor` workers
and returns results in task order.  Determinism contract: every task
carries its *own* seed and the worker constructs its
``numpy.random.Generator`` from that seed inside the task function —
never from process-global RNG state — so a task's result is a pure
function of its payload and fan-out is bit-identical to a serial loop
(the determinism suite pins this for Collie, random and GA campaigns).

When process pools are unavailable (restricted sandboxes), the executor
degrades to an in-process serial loop and records that it did.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
from typing import Callable, Optional, Sequence


@dataclasses.dataclass
class ExecutorStats:
    """Wall-time accounting of one fan-out."""

    workers: int
    tasks: int
    wall_seconds: float = 0.0
    #: Sum of per-task in-worker durations — what a serial loop would
    #: roughly have cost; ``speedup`` compares it against wall time.
    busy_seconds: float = 0.0
    fell_back_serial: bool = False

    @property
    def speedup(self) -> float:
        if self.wall_seconds <= 0:
            return 1.0
        return self.busy_seconds / self.wall_seconds

    def describe(self) -> str:
        mode = "serial (fallback)" if self.fell_back_serial else (
            "serial" if self.workers <= 1 else f"{self.workers} workers"
        )
        return (
            f"{self.tasks} tasks via {mode}: "
            f"{self.wall_seconds:.3f}s wall, "
            f"{self.busy_seconds:.3f}s busy, "
            f"{self.speedup:.2f}x parallel speedup"
        )


def _timed_call(fn: Callable, payload) -> tuple:
    """Run one task in the worker, returning (result, in-worker seconds)."""
    started = time.perf_counter()
    result = fn(payload)
    return result, time.perf_counter() - started


class CampaignExecutor:
    """Deterministic fan-out of campaign tasks across worker processes.

    ``workers <= 1`` runs the tasks serially in-process — the reference
    behaviour the parallel path must reproduce bit-for-bit.
    """

    def __init__(
        self,
        workers: int = 1,
        metrics=None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.last_stats: Optional[ExecutorStats] = None
        #: Optional obs.MetricsRegistry accounting fan-out wall time.
        self.metrics = metrics
        #: Optional ``progress(done, total)`` callback, invoked in the
        #: parent as each task's result lands (task order).
        self.progress = progress

    def map(self, fn: Callable, payloads: Sequence) -> list:
        """Apply ``fn`` to every payload; results come back in order.

        ``fn`` must be a module-level callable and each payload picklable
        when ``workers > 1`` (the standard multiprocessing contract).  A
        worker exception propagates to the caller after the pool drains.
        """
        payloads = list(payloads)
        stats = ExecutorStats(
            workers=min(self.workers, max(len(payloads), 1)),
            tasks=len(payloads),
        )
        started = time.perf_counter()
        if self.workers <= 1 or len(payloads) <= 1:
            results = self._run_serial(fn, payloads, stats)
        else:
            results = self._run_pooled(fn, payloads, stats)
        stats.wall_seconds = time.perf_counter() - started
        self.last_stats = stats
        if self.metrics is not None:
            self.metrics.counter("executor.tasks", stats.tasks)
            self.metrics.gauge("executor.workers", stats.workers)
            self.metrics.observe("executor.wall_seconds", stats.wall_seconds)
            self.metrics.observe("executor.busy_seconds", stats.busy_seconds)
        return results

    # -- strategies ----------------------------------------------------------

    def _run_serial(self, fn, payloads, stats: ExecutorStats) -> list:
        results = []
        for payload in payloads:
            result, seconds = _timed_call(fn, payload)
            stats.busy_seconds += seconds
            results.append(result)
            self._task_done(len(results), stats, seconds)
        return results

    def _run_pooled(self, fn, payloads, stats: ExecutorStats) -> list:
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(payloads))
            )
        except (OSError, PermissionError, ValueError):
            # No process support here (restricted sandbox): same results,
            # serially — the determinism contract makes this transparent.
            stats.fell_back_serial = True
            return self._run_serial(fn, payloads, stats)
        with pool:
            futures = [
                pool.submit(_timed_call, fn, payload) for payload in payloads
            ]
            results = []
            for future in futures:  # submit order == task order
                result, seconds = future.result()
                stats.busy_seconds += seconds
                results.append(result)
                self._task_done(len(results), stats, seconds)
        return results

    def _task_done(
        self, done: int, stats: ExecutorStats, seconds: float
    ) -> None:
        if self.metrics is not None:
            self.metrics.observe("executor.task_seconds", seconds)
        if self.progress is not None:
            self.progress(done, stats.tasks)
