"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's operators use Collie:

* ``search``      — run Collie on a Table 1 subsystem, print the anomaly
                    set (optionally save a JSON report); ``--seeds N``
                    fans a multi-seed campaign across ``--workers``
                    processes and ``--cache`` memoizes evaluations;
* ``parallel``    — the §8 fleet extension: partition counters across
                    machines (``--workers``/``--cache`` as above);
* ``campaign``    — multi-seed comparison campaign for any registered
                    approach (Figure 4 style);
* ``stats``       — print hit rates and per-phase wall time from a
                    saved evaluation cache;
* ``replay``      — replay the 18 Appendix A trigger settings;
* ``diagnose``    — match a workload (JSON file) against a saved
                    report's MFS set (§7.3 debugging workflow);
* ``table1`` / ``table2`` — print the paper's tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _open_cache(args: argparse.Namespace):
    """Build the EvalCache requested by ``--cache`` (None without it)."""
    if not getattr(args, "cache", None):
        return None
    from repro.core.evalcache import EvalCache

    try:
        cache = EvalCache(path=args.cache)
    except ValueError as error:  # bad JSON or wrong format version
        print(
            f"cannot load cache store {args.cache}: {error}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if cache.loaded_entries:
        print(
            f"cache: warm-started with {cache.loaded_entries} entries "
            f"from {args.cache}"
        )
    return cache


def _close_cache(cache) -> None:
    """Persist and summarise the cache after a command."""
    if cache is None:
        return
    path = cache.save()
    print(f"\n{cache.describe()}")
    print(f"cache saved to {path}")


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.analysis.serialize import save_report
    from repro.core import Collie

    cache = _open_cache(args)
    if args.seeds > 1:
        return _run_search_campaign(args, cache)
    collie = Collie.for_subsystem(
        args.subsystem,
        counter_mode=args.counters,
        use_mfs=not args.no_mfs,
        budget_hours=args.hours,
        seed=args.seed,
        cache=cache,
    )
    report = collie.run()
    print(report.summary())
    if args.recipes:
        from repro.core.reproducer import recipe

        for index, mfs in enumerate(report.anomalies, 1):
            print()
            print(recipe(mfs.witness, title=f"anomaly {index}"))
    if args.output:
        save_report(report, args.output)
        print(f"\nreport saved to {args.output}")
    _close_cache(cache)
    return 0


def _run_search_campaign(args: argparse.Namespace, cache) -> int:
    """``search --seeds N``: the multi-seed campaign path."""
    from repro.analysis.campaign import run_campaign

    if args.no_mfs:
        approach = "sa-perf" if args.counters == "perf" else "sa-diag"
    else:
        approach = "collie-perf" if args.counters == "perf" else "collie"
    result = run_campaign(
        approach,
        subsystem=args.subsystem,
        seeds=range(args.seed, args.seed + args.seeds),
        budget_hours=args.hours,
        workers=args.workers,
        cache=cache,
    )
    print(
        f"{approach} on subsystem {args.subsystem}: "
        f"{result.seeds} seeds, {result.mean_found():.1f} anomalies/seed, "
        f"{sorted(result.union_tags()) or ['-']}"
    )
    for seed, report in zip(
        range(args.seed, args.seed + args.seeds), result.reports
    ):
        print(f"  seed {seed}: {len(report.anomalies)} anomalies, "
              f"{report.experiments} experiments")
    if result.executor_stats is not None:
        print(result.executor_stats.describe())
    _close_cache(cache)
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    from repro.core.parallel import ParallelCollie

    cache = _open_cache(args)
    fleet = ParallelCollie(
        args.subsystem,
        machines=args.machines,
        budget_hours=args.hours,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
    )
    report = fleet.run()
    print(
        f"fleet of {report.machines} machines on subsystem "
        f"{report.subsystem_name}: {len(report.anomalies)} anomalies, "
        f"{report.total_experiments} experiments, "
        f"{report.elapsed_seconds / 3600:.1f}h wall-clock"
    )
    for index, mfs in enumerate(report.anomalies, 1):
        print(f"  {index}: {mfs.describe()}")
    if fleet.executor_stats is not None:
        print(fleet.executor_stats.describe())
    _close_cache(cache)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import APPROACHES, run_campaign

    if args.approach not in APPROACHES:
        print(
            f"unknown approach {args.approach!r}; choose from "
            f"{', '.join(sorted(APPROACHES))}",
            file=sys.stderr,
        )
        return 2
    cache = _open_cache(args)
    result = run_campaign(
        args.approach,
        subsystem=args.subsystem,
        seeds=range(args.seed, args.seed + args.seeds),
        budget_hours=args.hours,
        workers=args.workers,
        cache=cache,
    )
    print(
        f"{result.approach} on subsystem {result.subsystem}: "
        f"{result.seeds} seeds x {result.budget_hours:.1f}h, "
        f"{result.mean_found():.1f} anomalies/seed"
    )
    for tag in sorted(result.union_tags()):
        print(f"  found: {tag}")
    if result.executor_stats is not None:
        print(result.executor_stats.describe())
    _close_cache(cache)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core.evalcache import EvalCache, describe_stats

    try:
        stats = EvalCache.load_stats(args.cache)
    except FileNotFoundError:
        print(f"no cache store at {args.cache}", file=sys.stderr)
        return 1
    print(f"cache store: {args.cache}")
    print(describe_stats(stats))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.monitor import AnomalyMonitor
    from repro.hardware.model import SteadyStateModel
    from repro.hardware.subsystems import get_subsystem
    from repro.workloads.appendix import APPENDIX_SETTINGS

    rng = np.random.default_rng(args.seed)
    failures = 0
    for setting in APPENDIX_SETTINGS:
        subsystem = get_subsystem(setting.subsystem)
        measurement = SteadyStateModel(subsystem).evaluate(
            setting.workload, rng
        )
        verdict = AnomalyMonitor(subsystem).classify(measurement)
        ok = (
            setting.expected_tag in measurement.tags
            and verdict.symptom == setting.expected_symptom
        )
        failures += not ok
        print(
            f"#{setting.number:2d} ({setting.subsystem}) "
            f"{'ok ' if ok else 'MISS'} expected "
            f"{setting.expected_tag}/{setting.expected_symptom}, observed "
            f"{','.join(measurement.tags) or '-'}/{verdict.symptom}"
        )
    print(f"\n{18 - failures}/18 reproduced")
    return 1 if failures else 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.analysis.serialize import load_anomalies, workload_from_dict
    from repro.core.mfs import match_any

    anomalies = load_anomalies(args.report)
    with open(args.workload) as handle:
        workload = workload_from_dict(json.load(handle))
    matched = match_any(anomalies, workload)
    print(f"workload: {workload.summary()}")
    if matched is None:
        print("no known anomaly region covers this workload")
        return 0
    print("matches a known anomaly; break one of these conditions:")
    print(f"  {matched.describe()}")
    return 2


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis import render_table, table1_rows

    print(render_table(table1_rows()))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.analysis import render_table, table2_rows
    from repro.analysis.tables import TABLE2_COLUMNS

    print(render_table(table2_rows(), columns=TABLE2_COLUMNS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Collie (NSDI 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="run Collie on one subsystem")
    search.add_argument("subsystem", choices=list("ABCDEFGH"))
    search.add_argument("--hours", type=float, default=10.0)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--counters", choices=("diag", "perf"),
                        default="diag")
    search.add_argument("--no-mfs", action="store_true",
                        help="plain SA baseline (Figure 5 ablation)")
    search.add_argument("--output", metavar="REPORT.json",
                        help="save the report as JSON")
    search.add_argument("--recipes", action="store_true",
                        help="print a vendor reproduction recipe per anomaly")
    search.add_argument("--seeds", type=_positive_int, default=1,
                        help="run a campaign over this many seeds "
                             "(starting at --seed)")
    search.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for multi-seed campaigns")
    search.add_argument("--cache", metavar="PATH",
                        help="memoize evaluations in this JSON store")
    search.set_defaults(func=_cmd_search)

    parallel = sub.add_parser("parallel", help="fleet search (§8 extension)")
    parallel.add_argument("subsystem", choices=list("ABCDEFGH"))
    parallel.add_argument("--machines", type=int, default=3)
    parallel.add_argument("--hours", type=float, default=10.0)
    parallel.add_argument("--seed", type=int, default=0)
    parallel.add_argument("--workers", type=_positive_int, default=1,
                          help="worker processes for the machine fleet")
    parallel.add_argument("--cache", metavar="PATH",
                          help="memoize evaluations in this JSON store")
    parallel.set_defaults(func=_cmd_parallel)

    campaign = sub.add_parser(
        "campaign", help="multi-seed campaign for one approach"
    )
    campaign.add_argument("approach",
                          help="approach name (e.g. collie, random, genetic)")
    campaign.add_argument("--subsystem", choices=list("ABCDEFGH"),
                          default="F")
    campaign.add_argument("--seeds", type=_positive_int, default=3)
    campaign.add_argument("--seed", type=int, default=1,
                          help="first seed of the campaign")
    campaign.add_argument("--hours", type=float, default=10.0)
    campaign.add_argument("--workers", type=_positive_int, default=1)
    campaign.add_argument("--cache", metavar="PATH",
                          help="memoize evaluations in this JSON store")
    campaign.set_defaults(func=_cmd_campaign)

    stats = sub.add_parser(
        "stats", help="print statistics from a saved evaluation cache"
    )
    stats.add_argument("cache", metavar="PATH",
                       help="JSON store written by --cache")
    stats.set_defaults(func=_cmd_stats)

    replay = sub.add_parser(
        "replay", help="replay the 18 Appendix A trigger settings"
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.set_defaults(func=_cmd_replay)

    diagnose = sub.add_parser(
        "diagnose",
        help="match a workload JSON against a saved report's MFS set",
    )
    diagnose.add_argument("report", help="JSON report from 'search --output'")
    diagnose.add_argument("workload", help="workload JSON file")
    diagnose.set_defaults(func=_cmd_diagnose)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("table2", help="print Table 2").set_defaults(
        func=_cmd_table2
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
